//! Property tests over the whole optimizer: for arbitrary (small)
//! workload shapes and counter settings, the executor never panics, is
//! deterministic, and maintains the mode-cost ordering.

use hds_bursty::BurstyConfig;
use hds_core::{OptimizerConfig, PrefetchPolicy, RunMode, SessionBuilder};
use hds_workloads::{SyntheticConfig, SyntheticWorkload, Workload};
use proptest::prelude::*;

#[derive(Clone, Debug)]
struct Shape {
    seed: u64,
    stream_count: usize,
    hot_core: usize,
    stream_len_lo: usize,
    hot_fraction: f64,
    refs_per_check: u32,
    n_check0: u64,
    n_instr0: u64,
    shared_entry: bool,
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    (
        any::<u64>(),
        4usize..40,
        1usize..8,
        3usize..12,
        0.0f64..1.0,
        1u32..16,
        8u64..400,
        4u64..80,
        any::<bool>(),
    )
        .prop_map(
            |(seed, stream_count, hot_core, len_lo, hot_fraction, rpc, nc, ni, shared)| Shape {
                seed,
                stream_count,
                hot_core: hot_core.min(stream_count),
                stream_len_lo: len_lo,
                hot_fraction,
                refs_per_check: rpc,
                n_check0: nc,
                n_instr0: ni,
                shared_entry: shared,
            },
        )
}

fn build(shape: &Shape) -> (SyntheticWorkload, OptimizerConfig) {
    let w = SyntheticWorkload::new(SyntheticConfig {
        name: "prop".into(),
        seed: shape.seed,
        total_refs: 40_000,
        stream_count: shape.stream_count,
        hot_core: shape.hot_core,
        stream_len: (shape.stream_len_lo, shape.stream_len_lo + 8),
        hot_fraction: shape.hot_fraction,
        refs_per_check: shape.refs_per_check,
        shared_entry: shape.shared_entry,
        ..SyntheticConfig::default()
    });
    let mut config = OptimizerConfig::test_scale();
    config.bursty = BurstyConfig::new(shape.n_check0, shape.n_instr0, 2, 4);
    config.analysis.min_length = 4;
    config.analysis.min_unique_refs = 2;
    (w, config)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The full optimizer handles arbitrary workload/counter shapes
    /// without panicking, and the machinery-cost ordering holds.
    #[test]
    fn executor_total_ordering_holds(shape in shape_strategy()) {
        let mut totals = Vec::new();
        for mode in [
            RunMode::Baseline,
            RunMode::ChecksOnly,
            RunMode::Profile,
            RunMode::Analyze,
            RunMode::Optimize(PrefetchPolicy::None),
        ] {
            let (mut w, config) = build(&shape);
            let procs = w.procedures();
            let report = SessionBuilder::new(config)
                .procedures(procs)
                .mode(mode)
                .run(&mut w);
            prop_assert!(report.refs >= 40_000);
            totals.push(report.total_cycles);
        }
        for pair in totals.windows(2) {
            prop_assert!(
                pair[0] <= pair[1],
                "mode ordering violated: {:?}",
                totals
            );
        }
    }

    /// Dyn-pref runs are bit-deterministic for arbitrary shapes.
    #[test]
    fn dyn_pref_deterministic(shape in shape_strategy()) {
        let run = || {
            let (mut w, config) = build(&shape);
            let procs = w.procedures();
            SessionBuilder::new(config)
                .procedures(procs)
                .optimize(PrefetchPolicy::StreamTail)
                .run(&mut w)
        };
        let (a, b) = (run(), run());
        prop_assert_eq!(a.total_cycles, b.total_cycles);
        prop_assert_eq!(a.mem, b.mem);
        prop_assert_eq!(a.cycles, b.cycles);
    }

    /// Prefetching never perturbs correctness-invariant counters: the
    /// demand reference count matches the baseline exactly, whatever the
    /// policy.
    #[test]
    fn demand_reference_count_invariant(shape in shape_strategy()) {
        let mut counts = Vec::new();
        for mode in [
            RunMode::Baseline,
            RunMode::Optimize(PrefetchPolicy::SequentialBlocks),
            RunMode::Optimize(PrefetchPolicy::StreamTail),
        ] {
            let (mut w, config) = build(&shape);
            let procs = w.procedures();
            let report = SessionBuilder::new(config)
                .procedures(procs)
                .mode(mode)
                .run(&mut w);
            counts.push((report.refs, report.mem.l1_hits + report.mem.l1_misses));
        }
        prop_assert_eq!(counts[0], counts[1]);
        prop_assert_eq!(counts[0], counts[2]);
    }
}
