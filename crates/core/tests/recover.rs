//! Crash-consistency integration tests: checkpointed runs resume
//! bit-identically, corrupted snapshots are rejected with typed errors,
//! torn edits roll forward, and no worker thread outlives its session.

use hds_core::{
    AnalysisConcurrency, CrashPoint, FaultInjector, OptimizerConfig, PrefetchPolicy, RunMode,
    Session, SessionBuilder, Snapshot, SnapshotError,
};
use hds_guard::{AccuracyConfig, GuardConfig};
use hds_vulcan::{Event, Procedure, ProgramSource};
use hds_workloads::{SyntheticConfig, SyntheticWorkload, Workload};
use proptest::prelude::*;

fn workload(total_refs: u64) -> SyntheticWorkload {
    SyntheticWorkload::new(SyntheticConfig {
        total_refs,
        ..SyntheticConfig::default()
    })
}

/// Drains a workload into a replayable event vector (plus procedures).
fn events_of(total_refs: u64) -> (Vec<Event>, Vec<Procedure>) {
    let mut w = workload(total_refs);
    let procs = w.procedures();
    let mut events = Vec::new();
    while let Some(e) = w.next_event() {
        events.push(e);
    }
    (events, procs)
}

fn config_inline() -> OptimizerConfig {
    OptimizerConfig::test_scale()
}

fn config_background_guarded() -> OptimizerConfig {
    let mut config = OptimizerConfig::test_scale();
    config.concurrency = AnalysisConcurrency::Background;
    config.guard = GuardConfig::default().with_accuracy(AccuracyConfig::new());
    config
}

/// Runs the full event vector through a fresh checkpointed session,
/// returning `(report, image_digest, a mid-run snapshot)`.
fn uninterrupted(
    config: &OptimizerConfig,
    events: &[Event],
    procs: &[Procedure],
    snapshot_at: u64,
) -> (hds_core::RunReport, u64, Option<Snapshot>) {
    let mut session = SessionBuilder::new(config.clone())
        .procedures(procs.to_vec())
        .checkpoints()
        .optimize(PrefetchPolicy::StreamTail)
        .build();
    let mut mid = None;
    for e in events {
        session.on_event(e.clone());
        if mid.is_none() && session.snapshots_taken() >= snapshot_at {
            mid = session.latest_snapshot().cloned();
        }
    }
    let digest = session.image_digest();
    (session.finish("recover"), digest, mid)
}

#[test]
fn resume_from_mid_run_snapshot_is_bit_identical() {
    for config in [config_inline(), config_background_guarded()] {
        let (events, procs) = events_of(60_000);
        let (full, full_digest, mid) = uninterrupted(&config, &events, &procs, 2);
        assert!(full.snapshots >= 2, "run too short to checkpoint twice");
        let snap = mid.expect("mid-run snapshot captured");

        // Re-validate the blob from raw bytes, then resume from it.
        let snap = Snapshot::from_bytes(snap.into_bytes()).expect("snapshot self-validates");
        let mut resumed = SessionBuilder::new(config.clone())
            .procedures(procs.clone())
            .optimize(PrefetchPolicy::StreamTail)
            .resume(&snap)
            .expect("snapshot resumes");
        let skip = usize::try_from(resumed.events_consumed()).unwrap();
        for e in &events[skip..] {
            resumed.on_event(e.clone());
        }
        assert_eq!(resumed.image_digest(), full_digest);
        let report = resumed.finish("recover");
        assert_eq!(report, full, "resumed run diverged from uninterrupted run");
    }
}

#[test]
fn resume_rejects_config_and_mode_mismatches() {
    let (events, procs) = events_of(40_000);
    let config = config_inline();
    let (_, _, mid) = uninterrupted(&config, &events, &procs, 1);
    let snap = mid.expect("snapshot captured");

    let mut other = config.clone();
    other.max_streams += 1;
    let err = SessionBuilder::new(other)
        .procedures(procs.clone())
        .optimize(PrefetchPolicy::StreamTail)
        .resume(&snap)
        .unwrap_err();
    assert!(matches!(err, SnapshotError::ConfigMismatch { .. }));

    let err = SessionBuilder::new(config)
        .procedures(procs)
        .mode(RunMode::Analyze)
        .resume(&snap)
        .unwrap_err();
    assert!(matches!(err, SnapshotError::ConfigMismatch { .. }));
}

#[test]
fn checkpointing_is_timing_neutral() {
    let (events, procs) = events_of(50_000);
    let config = config_inline();
    let (with_ck, ck_digest, _) = uninterrupted(&config, &events, &procs, u64::MAX);
    let mut plain = SessionBuilder::new(config)
        .procedures(procs)
        .optimize(PrefetchPolicy::StreamTail)
        .build();
    for e in &events {
        plain.on_event(e.clone());
    }
    assert_eq!(plain.image_digest(), ck_digest);
    let mut plain = plain.finish("recover");
    assert_eq!(plain.snapshots, 0);
    plain.snapshots = with_ck.snapshots;
    assert_eq!(plain, with_ck, "checkpointing perturbed the simulation");
}

fn snapshot_fixture() -> &'static Snapshot {
    use std::sync::OnceLock;
    static SNAP: OnceLock<Snapshot> = OnceLock::new();
    SNAP.get_or_init(|| {
        let (events, procs) = events_of(40_000);
        let (_, _, mid) = uninterrupted(&config_background_guarded(), &events, &procs, 1);
        mid.expect("snapshot captured")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Flipping any bit of any byte must yield a typed error — never a
    /// panic, never a silent load. Payload bytes (offset >= 18)
    /// specifically fail the checksum.
    #[test]
    fn corrupting_one_byte_is_rejected_typed(pos in any::<u64>(), mask in 1u8..=255) {
        let snap = snapshot_fixture();
        let mut bytes = snap.as_bytes().to_vec();
        let pos = (pos as usize) % bytes.len();
        bytes[pos] ^= mask;
        match Snapshot::from_bytes(bytes) {
            Ok(reparsed) => {
                // The only legal "success" is the degenerate non-flip
                // (impossible: mask != 0), so reject outright.
                prop_assert_eq!(reparsed.as_bytes(), snap.as_bytes());
                return Err(TestCaseError::fail("corrupted snapshot loaded"));
            }
            Err(SnapshotError::ChecksumMismatch { expected, found }) => {
                prop_assert_ne!(expected, found);
            }
            Err(
                SnapshotError::BadMagic
                | SnapshotError::UnsupportedVersion(_)
                | SnapshotError::Malformed(_),
            ) => {
                // Header corruption: typed rejection before the body is
                // even checksummed.
                prop_assert!(pos < 18, "payload corruption at {} must be ChecksumMismatch", pos);
            }
            Err(e @ SnapshotError::ConfigMismatch { .. }) => {
                return Err(TestCaseError::fail(format!("unexpected error: {e}")));
            }
        }
        if pos >= 18 {
            let mut bytes = snap.as_bytes().to_vec();
            bytes[pos] ^= mask;
            let is_checksum = matches!(
                Snapshot::from_bytes(bytes),
                Err(SnapshotError::ChecksumMismatch { .. })
            );
            prop_assert!(is_checksum);
        }
    }

    /// Truncation at any length is also a typed rejection.
    #[test]
    fn truncating_is_rejected_typed(keep in any::<u64>()) {
        let snap = snapshot_fixture();
        let keep = (keep as usize) % snap.len();
        let bytes = snap.as_bytes()[..keep].to_vec();
        prop_assert!(Snapshot::from_bytes(bytes).is_err());
    }
}

/// A hand-scheduled injector: crashes exactly once at the requested
/// kill point, optionally poisoning every edit first (the satellite-b
/// crash × failed-edit composition).
#[derive(Debug)]
struct CrashOnce {
    point: CrashPoint,
    armed: bool,
    poison_edits: bool,
}

impl CrashOnce {
    fn at(point: CrashPoint) -> Self {
        CrashOnce {
            point,
            armed: true,
            poison_edits: false,
        }
    }
    fn with_poisoned_edits(mut self) -> Self {
        self.poison_edits = true;
        self
    }
}

impl FaultInjector for CrashOnce {
    fn fail_edit(&mut self, pc: hds_trace::Pc) -> Option<hds_vulcan::EditError> {
        self.poison_edits
            .then_some(hds_vulcan::EditError::Induced(pc))
    }
    fn crash(&mut self, point: CrashPoint) -> bool {
        if self.armed && point == self.point {
            self.armed = false;
            return true;
        }
        false
    }
}

/// Feeds events until the session crashes; returns how many were fed.
fn run_until_crash<F: FaultInjector>(
    session: &mut Session<hds_core::NullObserver, F>,
    events: &[Event],
) -> usize {
    for (i, e) in events.iter().enumerate() {
        session.on_event(e.clone());
        if session.crashed() {
            return i + 1;
        }
    }
    events.len()
}

#[test]
fn crash_at_phase_boundary_leaves_that_boundarys_snapshot() {
    let (events, procs) = events_of(60_000);
    let mut session = SessionBuilder::new(config_inline())
        .procedures(procs.clone())
        .faults(CrashOnce::at(CrashPoint::PhaseBoundary))
        .checkpoints()
        .optimize(PrefetchPolicy::StreamTail)
        .build();
    let fed = run_until_crash(&mut session, &events);
    assert!(session.crashed(), "phase boundary never reached");
    assert!(fed < events.len());
    // Capture precedes the crash draw: the killing boundary's snapshot
    // survives, and its resume point is exactly the crash event.
    assert_eq!(session.snapshots_taken(), 1);
    assert!(!session.crash_recover(), "no edit was in flight");
    let snap = session.latest_snapshot().cloned().expect("snapshot");
    let resumed = SessionBuilder::new(config_inline())
        .procedures(procs)
        .optimize(PrefetchPolicy::StreamTail)
        .resume(&snap)
        .expect("boundary snapshot resumes");
    assert_eq!(resumed.events_consumed(), fed as u64);
    assert_eq!(resumed.snapshots_taken(), 1);
}

#[test]
fn torn_mid_edit_commit_rolls_forward_to_the_committed_image() {
    let (events, procs) = events_of(60_000);

    // Clean twin: same events, no faults.
    let mut clean = SessionBuilder::new(config_inline())
        .procedures(procs.clone())
        .optimize(PrefetchPolicy::StreamTail)
        .build();
    // Crashing session: dies midway through its first image edit.
    let mut torn = SessionBuilder::new(config_inline())
        .procedures(procs)
        .faults(CrashOnce::at(CrashPoint::MidEdit))
        .optimize(PrefetchPolicy::StreamTail)
        .build();
    let fed = run_until_crash(&mut torn, &events);
    assert!(torn.crashed(), "mid-edit kill point never reached");
    for e in &events[..fed] {
        clean.on_event(e.clone());
    }
    // The torn image differs from the committed one (a strict prefix of
    // the patches landed)...
    assert_ne!(torn.image_digest(), clean.image_digest());
    // ...and journal replay rolls it forward to exactly the committed
    // image. Idempotent: a second recover finds nothing pending.
    assert!(torn.crash_recover(), "journal held the torn entry");
    assert_eq!(torn.image_digest(), clean.image_digest());
    assert!(!torn.crash_recover());
    assert_eq!(torn.image_digest(), clean.image_digest());
}

#[test]
fn crash_on_an_already_failed_edit_rolls_back_exactly_once() {
    let (events, procs) = events_of(60_000);

    // Clean twin whose edits are poisoned but which never crashes: the
    // canonical single-rollback image.
    let mut rolled = SessionBuilder::new(config_inline())
        .procedures(procs.clone())
        .faults(CrashOnce::at(CrashPoint::PhaseBoundary).with_poisoned_edits())
        .optimize(PrefetchPolicy::StreamTail)
        .build();
    // Crash lands *inside* the already-failed edit.
    let mut both = SessionBuilder::new(config_inline())
        .procedures(procs)
        .faults(CrashOnce::at(CrashPoint::MidEdit).with_poisoned_edits())
        .optimize(PrefetchPolicy::StreamTail)
        .build();
    let fed = run_until_crash(&mut both, &events);
    assert!(both.crashed(), "mid-edit kill point never reached");
    for e in &events[..fed] {
        rolled.on_event(e.clone());
    }
    // A poisoned commit rolls back atomically WITHOUT journaling, so
    // the crash must not have queued a second (replayed) rollback.
    assert_eq!(both.image_digest(), rolled.image_digest());
    assert!(!both.crash_recover(), "poisoned edit must not journal");
    assert_eq!(both.image_digest(), rolled.image_digest());
}

#[test]
fn crash_mid_handoff_dies_before_hibernation() {
    let (events, procs) = events_of(60_000);
    let mut session = SessionBuilder::new(config_background_guarded())
        .procedures(procs)
        .faults(CrashOnce::at(CrashPoint::MidHandoff))
        .checkpoints()
        .optimize(PrefetchPolicy::StreamTail)
        .build();
    let fed = run_until_crash(&mut session, &events);
    assert!(session.crashed(), "mid-handoff kill point never reached");
    assert!(fed < events.len());
    // The handoff boundary was never completed: no snapshot was taken
    // at it (the previous boundary's snapshot, if any, is the latest).
    assert!(!session.crash_recover(), "handoff crash tears no edit");
}

#[test]
fn dropping_a_mid_awake_session_leaves_no_detached_worker() {
    let (events, procs) = events_of(60_000);
    let mut session = SessionBuilder::new(config_background_guarded())
        .procedures(procs)
        .optimize(PrefetchPolicy::StreamTail)
        .build();
    // Stop mid-awake (well before the first phase boundary).
    for e in &events[..200] {
        session.on_event(e.clone());
    }
    let probe = session
        .worker_probe()
        .expect("background mode has a worker");
    assert!(
        probe.upgrade().is_some(),
        "worker alive while session lives"
    );
    drop(session);
    // Drop signals shutdown and joins: by the time drop returns, the
    // worker thread has exited and released its liveness token.
    assert!(
        probe.upgrade().is_none(),
        "worker thread outlived its session"
    );
}

#[test]
fn resumed_session_reports_restarts_when_marked() {
    let (events, procs) = events_of(40_000);
    let config = config_inline();
    let (_, _, mid) = uninterrupted(&config, &events, &procs, 1);
    let snap = mid.expect("snapshot captured");
    let mut resumed = SessionBuilder::new(config)
        .procedures(procs)
        .optimize(PrefetchPolicy::StreamTail)
        .resume(&snap)
        .expect("snapshot resumes");
    resumed.mark_restarted(3, 8_000);
    let skip = usize::try_from(resumed.events_consumed()).unwrap();
    for e in &events[skip..] {
        resumed.on_event(e.clone());
    }
    let report = resumed.finish("recover");
    assert_eq!(report.restarts, 3);
    assert!(report.snapshots >= 1);
}
