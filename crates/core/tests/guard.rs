//! Integration tests for the guard layer: budget degradation, fault
//! tolerance, and accuracy-driven partial de-optimization.

use hds_core::{
    AccuracyConfig, FaultPlan, GuardConfig, OptimizerConfig, PrefetchPolicy, PrefetchScheduling,
    Session, SessionBuilder,
};
use hds_telemetry::events::{self as tev, GuardKind};
use hds_telemetry::{MetricsRecorder, Observer};
use hds_trace::{AccessKind, Addr, DataRef, Pc};
use hds_vulcan::{Event, ProcId, Procedure, VecSource};

/// A memory-bound program with many hot streams walked in pseudo-random
/// order (mirrors the executor's own `big_stream_program`).
fn big_stream_program(iterations: usize) -> (VecSource, Vec<Procedure>) {
    let pcs: Vec<Pc> = (0..4).map(|i| Pc(16 + i * 4)).collect();
    let streams: Vec<Vec<DataRef>> = (0..40u64)
        .map(|s| {
            (0..16u64)
                .map(|k| {
                    let block = 0x2000 + (s * 16 + k) * 33;
                    DataRef::new(pcs[(k % 4) as usize], Addr(block * 32))
                })
                .collect()
        })
        .collect();
    let mut events = Vec::new();
    let mut rng_state = 0x12345u64;
    for _ in 0..iterations {
        rng_state ^= rng_state << 13;
        rng_state ^= rng_state >> 7;
        rng_state ^= rng_state << 17;
        let stream = &streams[(rng_state % 40) as usize];
        events.push(Event::Enter(ProcId(0)));
        for (i, &r) in stream.iter().enumerate() {
            if i % 3 == 0 {
                events.push(Event::BackEdge(ProcId(0)));
            }
            events.push(Event::Work(2));
            events.push(Event::Access(r, AccessKind::Load));
        }
        events.push(Event::Exit(ProcId(0)));
    }
    (
        VecSource::new("bigloop", events),
        vec![Procedure::new("looper", pcs)],
    )
}

fn stream_config() -> OptimizerConfig {
    let mut c = OptimizerConfig::test_scale();
    c.bursty = hds_bursty::BurstyConfig::new(256, 512, 2, 3);
    c.analysis.min_length = 4;
    c.analysis.min_unique_refs = 2;
    c
}

#[test]
fn enabled_but_untripped_guards_are_bit_identical() {
    // Guards with unreachable budgets (and an unreachable accuracy
    // threshold) must not perturb the simulated machine at all.
    let (mut p1, procs1) = big_stream_program(2_000);
    let plain = SessionBuilder::new(stream_config())
        .procedures(procs1)
        .optimize(PrefetchPolicy::StreamTail)
        .run(&mut p1);

    let mut guarded_cfg = stream_config();
    guarded_cfg.guard = GuardConfig::disabled()
        .with_max_grammar_rules(u64::MAX)
        .with_max_analysis_cycles(u64::MAX)
        .with_max_dfsm_states(u64::MAX)
        .with_max_prefetch_queue(u64::MAX)
        .with_accuracy(AccuracyConfig {
            min_accuracy: 0.0, // accuracy < 0.0 is impossible: never flags
            bad_windows: 1,
            min_samples: 1,
        });
    let (mut p2, procs2) = big_stream_program(2_000);
    let guarded = SessionBuilder::new(guarded_cfg)
        .procedures(procs2)
        .optimize(PrefetchPolicy::StreamTail)
        .run(&mut p2);

    assert_eq!(guarded.total_cycles, plain.total_cycles);
    assert_eq!(guarded.breakdown, plain.breakdown);
    assert_eq!(guarded.mem, plain.mem);
    assert_eq!(guarded.guard_trips, 0);
    assert_eq!(guarded.partial_deopts, 0);
}

#[test]
fn grammar_budget_trips_and_skips_optimization() {
    let mut cfg = stream_config();
    cfg.guard = GuardConfig::disabled().with_max_grammar_rules(3);
    let (mut p, procs) = big_stream_program(2_000);
    let mut rec = MetricsRecorder::new();
    let report = SessionBuilder::new(cfg)
        .procedures(procs)
        .observer(&mut rec)
        .optimize(PrefetchPolicy::StreamTail)
        .run(&mut p);

    // The guard tripped in (at least) the first cycle; trip counts
    // reconcile exactly with the emitted telemetry.
    assert!(report.guard_trips >= 1, "grammar guard never tripped");
    assert_eq!(rec.guard_trips_total(), report.guard_trips);
    assert_eq!(rec.guard_trips(GuardKind::GrammarRules), report.guard_trips);
    // A muted grammar means the awake analysis is skipped: no streams,
    // no DFSM, no prefetches — but the run completes and still cycles.
    assert!(!report.cycles.is_empty());
    assert!(report.cycles.iter().all(|c| c.streams_used == 0));
    assert_eq!(report.mem.prefetches_issued, 0);
}

#[test]
fn analysis_budget_trips_and_carries_profile_cost_only() {
    let mut cfg = stream_config();
    cfg.guard = GuardConfig::disabled().with_max_analysis_cycles(1);
    let (mut p, procs) = big_stream_program(2_000);
    let report = SessionBuilder::new(cfg)
        .procedures(procs)
        .optimize(PrefetchPolicy::StreamTail)
        .run(&mut p);
    assert!(report.guard_trips >= 1);
    // Every cycle's final pass is skipped: traced refs are recorded but
    // nothing is analyzed or optimized.
    assert!(report.cycles.iter().all(|c| c.hot_streams == 0));
    assert_eq!(report.mem.prefetches_issued, 0);
    assert_eq!(report.breakdown.optimize, 0);
}

#[test]
fn dfsm_state_budget_skips_injection() {
    let mut cfg = stream_config();
    cfg.guard = GuardConfig::disabled().with_max_dfsm_states(1);
    let (mut p, procs) = big_stream_program(2_000);
    let report = SessionBuilder::new(cfg)
        .procedures(procs)
        .optimize(PrefetchPolicy::StreamTail)
        .run(&mut p);
    assert!(report.guard_trips >= 1, "state guard never tripped");
    // Analysis still runs (streams are found) but injection is skipped.
    assert!(report.cycles.iter().any(|c| c.streams_used > 0));
    assert!(report.cycles.iter().all(|c| c.dfsm_states == 0));
    assert_eq!(report.mem.prefetches_issued, 0);
}

#[test]
fn prefetch_queue_budget_truncates_but_keeps_prefetching() {
    let mut unguarded = stream_config();
    unguarded.scheduling = PrefetchScheduling::Windowed { degree: 1 };
    let mut guarded = unguarded.clone();
    guarded.guard = GuardConfig::disabled().with_max_prefetch_queue(2);

    let (mut p1, procs1) = big_stream_program(2_000);
    let free = SessionBuilder::new(unguarded)
        .procedures(procs1)
        .optimize(PrefetchPolicy::StreamTail)
        .run(&mut p1);
    let (mut p2, procs2) = big_stream_program(2_000);
    let capped = SessionBuilder::new(guarded)
        .procedures(procs2)
        .optimize(PrefetchPolicy::StreamTail)
        .run(&mut p2);

    assert!(capped.guard_trips >= 1, "queue guard never tripped");
    assert!(
        capped.mem.prefetches_issued > 0,
        "capped run stopped prefetching"
    );
    assert!(capped.mem.prefetches_issued <= free.mem.prefetches_issued);
}

#[test]
fn always_failing_edits_degrade_to_the_analyze_configuration() {
    // When every binary edit fails (and rolls back atomically), the
    // optimize-mode run must cost exactly what the analyze-only mode
    // costs: no injected checks, no prefetches, no optimize cycles.
    let (mut p1, procs1) = big_stream_program(2_000);
    let analyze = SessionBuilder::new(stream_config())
        .procedures(procs1)
        .analyze()
        .run(&mut p1);
    let (mut p2, procs2) = big_stream_program(2_000);
    let mut plan = FaultPlan::edits_always_fail(7);
    let faulted = SessionBuilder::new(stream_config())
        .procedures(procs2)
        .faults(&mut plan)
        .optimize(PrefetchPolicy::StreamTail)
        .run(&mut p2);

    assert!(
        plan.counts().failed_edits > 0,
        "no edits were ever attempted"
    );
    assert_eq!(faulted.total_cycles, analyze.total_cycles);
    assert_eq!(faulted.mem, analyze.mem);
    assert_eq!(faulted.breakdown.optimize, 0);
    assert_eq!(faulted.mem.prefetches_issued, 0);
}

// ---------------------------------------------------------------------
// Accuracy-driven partial de-optimization.
// ---------------------------------------------------------------------

const N_STREAMS: usize = 7;
const BAD: usize = 0; // the stream walked head-only during hibernation
const STREAM_LEN: u64 = 8;
const HEAD_LEN: usize = 2;

/// Stream `k`: eight refs with per-stream pcs, laid out so every
/// stream's i-th block lands in the same L1 set (0x10000 is a multiple
/// of the 4 KiB set stride). Seven streams competing for 4 ways per set
/// guarantees the bad stream's unused prefetched blocks are evicted —
/// and resolved as Polluted — by the good streams' demand misses.
fn demo_stream(k: usize) -> Vec<DataRef> {
    (0..STREAM_LEN)
        .map(|i| {
            DataRef::new(
                Pc(0x1000 * (k as u32 + 1) + 4 * i as u32),
                Addr(0x10000 * (k as u64 + 1) + i * 64),
            )
        })
        .collect()
}

fn demo_procs() -> Vec<Procedure> {
    (0..N_STREAMS)
        .map(|k| Procedure::new("p", demo_stream(k).iter().map(|r| r.pc).collect()))
        .collect()
}

/// Records the prefetch/deopt timeline so the test can assert what
/// happened strictly *after* the partial de-optimization.
#[derive(Default)]
struct Timeline {
    issued: Vec<(u64, u64)>,  // (at_cycle, addr)
    partial_deopts: Vec<u64>, // at_cycle
    full_deopts: Vec<u64>,    // at_cycle
}

impl Observer for Timeline {
    fn prefetch_issued(&mut self, e: &tev::PrefetchIssued) {
        self.issued.push((e.at_cycle, e.addr));
    }
    fn deoptimize(&mut self, e: &tev::Deoptimize) {
        if e.partial {
            self.partial_deopts.push(e.at_cycle);
        } else {
            self.full_deopts.push(e.at_cycle);
        }
    }
}

fn walk_full(session: &mut Session<&mut Timeline>, k: usize, proc_id: u32) {
    session.on_event(Event::Enter(ProcId(proc_id)));
    for (i, r) in demo_stream(k).into_iter().enumerate() {
        if i % 3 == 0 {
            session.on_event(Event::BackEdge(ProcId(proc_id)));
        }
        // Enough slack for tail prefetches to land before their uses.
        session.on_event(Event::Work(60));
        session.on_event(Event::Access(r, AccessKind::Load));
    }
    session.on_event(Event::Exit(ProcId(proc_id)));
}

fn walk_head_only(session: &mut Session<&mut Timeline>, k: usize, proc_id: u32) {
    session.on_event(Event::Enter(ProcId(proc_id)));
    for r in demo_stream(k).into_iter().take(HEAD_LEN) {
        session.on_event(Event::Work(60));
        session.on_event(Event::Access(r, AccessKind::Load));
    }
    session.on_event(Event::Exit(ProcId(proc_id)));
}

#[test]
fn low_accuracy_stream_is_surgically_removed_while_the_rest_keep_prefetching() {
    let mut cfg = OptimizerConfig::test_scale();
    cfg.bursty = hds_bursty::BurstyConfig::new(48, 80, 4, 32);
    cfg.analysis.min_length = 4;
    cfg.analysis.min_unique_refs = 4;
    // Optimize once, then hibernate indefinitely: the whole second half
    // of the test runs against one installation.
    cfg.strategy = hds_core::CycleStrategy::Static;
    cfg.guard = GuardConfig::disabled().with_accuracy(AccuracyConfig {
        min_accuracy: 0.35,
        bad_windows: 2,
        min_samples: 3,
    });

    let mut timeline = Timeline::default();
    let mut session = SessionBuilder::new(cfg)
        .procedures(demo_procs())
        .observer(&mut timeline)
        .optimize(PrefetchPolicy::StreamTail)
        .build();

    // Phase 1 — profile: walk every stream fully, in pseudo-random
    // order (so Sequitur reifies each stream as its own rule), until the
    // first optimization lands.
    let mut rng = 0x9E3779B9u64;
    let mut spins = 0;
    while session.opt_cycles_so_far() == 0 {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let k = (rng % N_STREAMS as u64) as usize;
        walk_full(&mut session, k, k as u32);
        spins += 1;
        assert!(spins < 4_000, "optimization never happened");
    }

    // Phase 2 — hibernation: good streams keep walking fully (their
    // prefetched tails are used), the bad stream only ever shows its
    // head (its prefetched tail is never used and gets evicted by the
    // set-conflicting good streams → Polluted outcomes).
    let mut hibernation_walks = 0;
    while session.guard().map_or(0, |g| g.denylist_len()) == 0 {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let k = (rng % N_STREAMS as u64) as usize;
        if k == BAD {
            walk_head_only(&mut session, k, k as u32);
        } else {
            walk_full(&mut session, k, k as u32);
        }
        hibernation_walks += 1;
        assert!(
            hibernation_walks < 20_000,
            "the bad stream was never de-optimized"
        );
    }

    // Phase 3 — after the surgical removal: the surviving streams must
    // keep prefetching.
    let issued_at_deopt = session.mem_stats().prefetches_issued;
    for _ in 0..200 {
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        let k = (rng % N_STREAMS as u64) as usize;
        if k == BAD {
            walk_head_only(&mut session, k, k as u32);
        } else {
            walk_full(&mut session, k, k as u32);
        }
    }
    let issued_after = session.mem_stats().prefetches_issued;
    assert!(
        issued_after > issued_at_deopt,
        "surviving streams stopped prefetching after the partial deopt"
    );

    let report = session.finish("partial-deopt-demo");
    assert!(report.partial_deopts >= 1, "no partial deopt recorded");
    assert!(
        report.mem.prefetches_useful > 0,
        "no stream ever predicted well"
    );

    // Timeline assertions: a partial deopt happened, no full deopt did
    // (static strategy + surgical removal), and after the partial deopt
    // the bad stream's tail was never prefetched again while the good
    // streams' tails were.
    assert!(!timeline.partial_deopts.is_empty());
    assert!(
        timeline.full_deopts.is_empty(),
        "partial deopt degenerated into a full deopt"
    );
    let t = timeline.partial_deopts[0];
    let bad_tail: Vec<u64> = demo_stream(BAD)
        .iter()
        .skip(HEAD_LEN)
        .map(|r| r.addr.0)
        .collect();
    let after: Vec<&(u64, u64)> = timeline.issued.iter().filter(|(c, _)| *c > t).collect();
    assert!(
        !after.is_empty(),
        "no prefetches at all after the partial deopt"
    );
    assert!(
        after.iter().all(|(_, a)| !bad_tail.contains(a)),
        "the removed stream's tail was still being prefetched"
    );
}
