//! The dynamic hot data stream prefetching optimizer — the paper's
//! primary contribution (Chilimbi & Hirzel, PLDI 2002).
//!
//! The optimizer runs a program through the three-phase cycle of
//! Figure 1:
//!
//! 1. **Profiling** — bursty tracing ([`hds_bursty`]) samples bursts of
//!    data references into a temporal profile, which Sequitur
//!    ([`hds_sequitur`]) compresses online;
//! 2. **Analysis and optimization** — the fast hot-data-stream analysis
//!    ([`hds_hotstream`]) extracts streams from the grammar, a
//!    prefix-matching DFSM ([`hds_dfsm`]) is built over them, and
//!    detection/prefetching code is injected into the running image
//!    ([`hds_vulcan`]);
//! 3. **Hibernation** — profiling is off; the program runs with the
//!    added prefetch instructions. At the end, the code is de-optimized
//!    and the cycle repeats.
//!
//! Execution, cache behaviour and timing come from [`hds_memsim`]; the
//! program itself is any `hds_workloads::Workload`-style event source.
//!
//! # Examples
//!
//! ```
//! use hds_core::{OptimizerConfig, PrefetchPolicy, SessionBuilder};
//! use hds_workloads::{SyntheticConfig, SyntheticWorkload, Workload};
//!
//! let make = || SyntheticWorkload::new(SyntheticConfig {
//!     total_refs: 60_000,
//!     ..SyntheticConfig::default()
//! });
//! let config = OptimizerConfig::test_scale();
//!
//! // Baseline: the unmodified program.
//! let mut w = make();
//! let procs = w.procedures();
//! let base = SessionBuilder::new(config.clone())
//!     .procedures(procs)
//!     .baseline()
//!     .run(&mut w);
//! // Full dynamic prefetching.
//! let mut w = make();
//! let procs = w.procedures();
//! let opt = SessionBuilder::new(config)
//!     .procedures(procs)
//!     .optimize(PrefetchPolicy::StreamTail)
//!     .run(&mut w);
//! assert!(opt.opt_cycles() >= 1);
//! // Reports are comparable: overhead_vs is negative when we sped up.
//! let _pct = opt.overhead_vs(&base);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod builder;
mod config;
mod executor;
mod pipeline;
mod report;
mod snapshot;

pub use builder::{
    ConfigError, EngineConfig, EngineConfigBuilder, NeedsMode, Ready, SessionBuilder,
};
pub use config::{
    AnalysisConcurrency, CycleStrategy, OptimizerConfig, PrefetchPolicy, PrefetchScheduling,
    RunMode,
};
pub use executor::Session;
pub use report::{CostBreakdown, CycleStats, RunReport, WorkerStats};
pub use snapshot::{config_fingerprint, Snapshot, SnapshotError};

// Prefetch backends: the pluggable `PrefetchBackend` trait and its
// implementations live in `hds_backend`; re-exported so embedders
// selecting `OptimizerConfig::backend` need only this crate.
pub use hds_backend::{
    self as backend, AnyBackend, BackendKind, BackendSelect, PanglossConfig, PrefetchBackend,
    TriangelConfig,
};

// Observability: the observer contract lives in `hds_telemetry`;
// re-exported here so embedders wiring a `Session` observer need only
// this crate.
pub use hds_telemetry::{self as telemetry, NullObserver, Observer};

// Robustness: budget guards, the accuracy-driven partial-deoptimization
// policy, and fault injection live in `hds_guard`; re-exported so
// embedders configuring `OptimizerConfig::guard` or running chaos
// sessions need only this crate.
pub use hds_guard::{
    self as guard, AccuracyConfig, CrashPoint, FaultInjector, FaultPlan, GuardConfig, GuardRuntime,
    NoFaults,
};
