//! Run reports: cycle breakdowns, per-optimization-cycle statistics, and
//! the comparisons the paper's figures are built from.

use std::fmt;

use hds_memsim::MemStats;

/// Where the simulated cycles went.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CostBreakdown {
    /// Plain (non-memory) instructions.
    pub work: u64,
    /// Demand memory accesses.
    pub memory: u64,
    /// Bursty-tracing dynamic checks.
    pub checks: u64,
    /// Recording traced references into the profile buffer.
    pub recording: u64,
    /// Online Sequitur + hot-data-stream analysis.
    pub analysis: u64,
    /// Executing injected DFSM prefix-match checks.
    pub matching: u64,
    /// Issuing prefetch instructions.
    pub prefetch: u64,
    /// Optimization steps (DFSM construction + binary editing).
    pub optimize: u64,
}

impl CostBreakdown {
    /// Sum of all categories. Saturates at `u64::MAX` instead of
    /// overflowing — pathological configurations (or hand-built
    /// breakdowns) must not panic a report.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.work
            .saturating_add(self.memory)
            .saturating_add(self.checks)
            .saturating_add(self.recording)
            .saturating_add(self.analysis)
            .saturating_add(self.matching)
            .saturating_add(self.prefetch)
            .saturating_add(self.optimize)
    }
}

/// Statistics of one profile → analyze → optimize cycle — one row's worth
/// of the paper's Table 2 (which reports per-cycle averages).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CycleStats {
    /// References traced during the awake phase.
    pub traced_refs: u64,
    /// Hot data streams detected.
    pub hot_streams: usize,
    /// Streams actually handed to the DFSM (after length filtering and
    /// the `max_streams` cap).
    pub streams_used: usize,
    /// DFSM state count.
    pub dfsm_states: usize,
    /// Distinct injected address checks (Table 2's "checks").
    pub dfsm_checks: usize,
    /// Procedures modified by the injection.
    pub procs_modified: usize,
    /// Grammar size (total body symbols) the analysis ran over.
    pub grammar_size: usize,
}

/// Background-analysis worker statistics (all zero in inline mode).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct WorkerStats {
    /// Awake-phase traces handed to the background worker.
    pub handoffs: u64,
    /// Analysis results installed at their ready point.
    pub applied: u64,
    /// Analysis results discarded: the hibernation span (or the run)
    /// ended, or the worker-lag guard tripped, before the ready point.
    pub starved: u64,
}

/// The result of one run.
///
/// `PartialEq` compares every field, including per-cycle statistics —
/// the parallel suite runner's determinism guarantee (sequential and
/// parallel execution produce bit-identical reports) is asserted with
/// it.
#[derive(Clone, Debug, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct RunReport {
    /// Workload name.
    pub name: String,
    /// Run-mode label (e.g. "Dyn-pref").
    pub mode: String,
    /// Total simulated execution time.
    pub total_cycles: u64,
    /// Where the cycles went.
    pub breakdown: CostBreakdown,
    /// Cache / prefetch statistics.
    pub mem: MemStats,
    /// Data references executed.
    pub refs: u64,
    /// Dynamic checks executed.
    pub checks_executed: u64,
    /// Budget-guard trips over the run (0 when no guards are
    /// configured).
    pub guard_trips: u64,
    /// Streams surgically de-optimized by the accuracy policy (0 when
    /// the policy is off).
    pub partial_deopts: u64,
    /// Background-analysis statistics (all zero in inline mode).
    pub worker: WorkerStats,
    /// Phase-boundary snapshots captured (0 unless checkpointing is
    /// on). Reconciles exactly with `RecoverySnapshot` telemetry.
    pub snapshots: u64,
    /// Supervisor restarts that contributed to this run (0 for an
    /// unsupervised or crash-free run). Reconciles exactly with
    /// `RecoveryRestart` telemetry.
    pub restarts: u64,
    /// Per-optimization-cycle statistics (empty unless optimizing).
    pub cycles: Vec<CycleStats>,
}

impl RunReport {
    /// Number of completed optimization cycles.
    #[must_use]
    pub fn opt_cycles(&self) -> usize {
        self.cycles.len()
    }

    /// Percentage overhead relative to `baseline` (positive = slower,
    /// negative = speedup), exactly as the paper's Figures 11/12 report:
    /// "normalized to the execution time of the original unoptimized
    /// program".
    #[must_use]
    pub fn overhead_vs(&self, baseline: &RunReport) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            (self.total_cycles as f64 - baseline.total_cycles as f64) / baseline.total_cycles as f64
                * 100.0
        }
    }

    /// Mean of a per-cycle statistic (helper for Table 2's "per cycle
    /// avg" columns). Returns 0.0 when no cycles completed.
    #[must_use]
    pub fn cycle_avg(&self, f: impl Fn(&CycleStats) -> f64) -> f64 {
        if self.cycles.is_empty() {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.cycles.iter().map(f).sum::<f64>() / self.cycles.len() as f64
        }
    }
}

impl fmt::Display for RunReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{} [{}]: {} cycles, {} refs, {} opt cycles",
            self.name,
            self.mode,
            self.total_cycles,
            self.refs,
            self.opt_cycles()
        )?;
        write!(f, "  {}", self.mem)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report(cycles: u64) -> RunReport {
        RunReport {
            name: "t".into(),
            mode: "m".into(),
            total_cycles: cycles,
            breakdown: CostBreakdown::default(),
            mem: MemStats::default(),
            refs: 0,
            checks_executed: 0,
            guard_trips: 0,
            partial_deopts: 0,
            worker: WorkerStats::default(),
            snapshots: 0,
            restarts: 0,
            cycles: Vec::new(),
        }
    }

    #[test]
    fn overhead_math() {
        let base = report(1000);
        assert!((report(1050).overhead_vs(&base) - 5.0).abs() < 1e-9);
        assert!((report(810).overhead_vs(&base) + 19.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_total() {
        let b = CostBreakdown {
            work: 1,
            memory: 2,
            checks: 3,
            recording: 4,
            analysis: 5,
            matching: 6,
            prefetch: 7,
            optimize: 8,
        };
        assert_eq!(b.total(), 36);
    }

    #[test]
    fn breakdown_total_saturates_instead_of_overflowing() {
        let b = CostBreakdown {
            work: u64::MAX,
            memory: 1,
            ..CostBreakdown::default()
        };
        assert_eq!(b.total(), u64::MAX);
        let b = CostBreakdown {
            work: u64::MAX / 2,
            memory: u64::MAX / 2,
            checks: u64::MAX / 2,
            ..CostBreakdown::default()
        };
        assert_eq!(b.total(), u64::MAX);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn cycle_stats_round_trip_through_json() {
        let stats = CycleStats {
            traced_refs: 12_345,
            hot_streams: 9,
            streams_used: 4,
            dfsm_states: 31,
            dfsm_checks: 17,
            procs_modified: 3,
            grammar_size: 412,
        };
        let json = serde_json::to_string(&stats).unwrap();
        let back: CycleStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }

    #[cfg(feature = "serde")]
    #[test]
    fn run_report_round_trips_through_json() {
        let mut r = report(987);
        r.breakdown = CostBreakdown {
            work: 1,
            memory: 2,
            checks: 3,
            recording: 4,
            analysis: 5,
            matching: 6,
            prefetch: 7,
            optimize: 8,
        };
        r.refs = 55;
        r.checks_executed = 11;
        r.guard_trips = 3;
        r.partial_deopts = 2;
        r.worker = WorkerStats {
            handoffs: 4,
            applied: 3,
            starved: 1,
        };
        r.snapshots = 7;
        r.restarts = 2;
        r.cycles = vec![CycleStats {
            traced_refs: 10,
            ..CycleStats::default()
        }];
        let json = serde_json::to_string_pretty(&r).unwrap();
        let back: RunReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back.name, r.name);
        assert_eq!(back.total_cycles, r.total_cycles);
        assert_eq!(back.breakdown, r.breakdown);
        assert_eq!(back.mem, r.mem);
        assert_eq!(back.cycles, r.cycles);
        assert_eq!(back.refs, r.refs);
        assert_eq!(back.checks_executed, r.checks_executed);
        assert_eq!(back.guard_trips, r.guard_trips);
        assert_eq!(back.partial_deopts, r.partial_deopts);
        assert_eq!(back.worker, r.worker);
        assert_eq!(back.snapshots, r.snapshots);
        assert_eq!(back.restarts, r.restarts);
        assert_eq!(back, r);
    }

    #[test]
    fn cycle_avg_handles_empty_and_values() {
        let mut r = report(1);
        assert_eq!(r.cycle_avg(|c| c.traced_refs as f64), 0.0);
        r.cycles = vec![
            CycleStats {
                traced_refs: 10,
                ..CycleStats::default()
            },
            CycleStats {
                traced_refs: 30,
                ..CycleStats::default()
            },
        ];
        assert!((r.cycle_avg(|c| c.traced_refs as f64) - 20.0).abs() < 1e-9);
        assert_eq!(r.opt_cycles(), 2);
    }

    #[test]
    fn display_mentions_mode() {
        let r = report(5);
        assert!(r.to_string().contains("[m]"));
    }
}
