//! The unified entry point: [`SessionBuilder`] (typestate run
//! construction) and [`EngineConfig`] (validated engine-wide
//! configuration).
//!
//! Historically the crate grew one entry point per capability — a
//! one-shot `Executor` plus matching `Session` constructors per
//! observer/fault combination — a combinatorial surface that doubled
//! with every new generic (all removed since 0.4). The builder
//! collapses them: observer and fault injector are optional
//! attachments with zero-overhead defaults ([`NullObserver`],
//! [`NoFaults`]), and the run mode is a *typestate* transition — a
//! builder without a mode has no `build()`/`run()` methods, so "forgot
//! to pick a mode" is a compile error, not a panic.
//!
//! ```
//! use hds_core::{OptimizerConfig, PrefetchPolicy, SessionBuilder};
//! use hds_workloads::{SyntheticConfig, SyntheticWorkload, Workload};
//!
//! let mut w = SyntheticWorkload::new(SyntheticConfig {
//!     total_refs: 50_000,
//!     ..SyntheticConfig::default()
//! });
//! let procs = w.procedures();
//! let report = SessionBuilder::new(OptimizerConfig::test_scale())
//!     .procedures(procs)
//!     .optimize(PrefetchPolicy::StreamTail)
//!     .run(&mut w);
//! assert!(report.refs > 0);
//! ```

use std::fmt;

use hds_backend::BackendSelect;
use hds_bursty::BurstyConfig;
use hds_guard::{FaultInjector, FaultPlan, FaultRates, GuardConfig, NoFaults};
use hds_telemetry::{NullObserver, Observer};
use hds_vulcan::{Procedure, ProgramSource};

use crate::config::{
    AnalysisConcurrency, CycleStrategy, OptimizerConfig, PrefetchPolicy, PrefetchScheduling,
    RunMode,
};
use crate::executor::Session;
use crate::report::RunReport;
use crate::snapshot::{Snapshot, SnapshotError};

// ---------------------------------------------------------------------------
// SessionBuilder
// ---------------------------------------------------------------------------

/// Typestate marker: no run mode selected yet. A
/// `SessionBuilder<NeedsMode, _, _>` has no `build()` or `run()` —
/// selecting a mode ([`SessionBuilder::mode`] or a named shortcut like
/// [`SessionBuilder::optimize`]) transitions to [`Ready`].
#[derive(Clone, Copy, Debug, Default)]
pub struct NeedsMode;

/// Typestate marker: a run mode has been selected; the builder can now
/// [`SessionBuilder::build`] a [`Session`] or [`SessionBuilder::run`] a
/// program.
#[derive(Clone, Copy, Debug)]
pub struct Ready(RunMode);

/// Builds a [`Session`] (or drives a whole run): the single way to
/// start the optimizer.
///
/// Attachments default to the zero-overhead implementations — the
/// default-generic session (`Observer = NullObserver`,
/// `FaultInjector = NoFaults`) monomorphizes to exactly the
/// uninstrumented code. Attaching an observer or fault injector swaps
/// the type parameter, never adds a runtime branch.
///
/// # Typestate
///
/// The mode parameter `M` starts at [`NeedsMode`]; `build()`/`run()`
/// only exist on `SessionBuilder<Ready, _, _>`, so a mode must be
/// selected first — at compile time.
///
/// # Examples
///
/// Observed + faulted chaos run:
///
/// ```
/// use hds_core::{FaultPlan, OptimizerConfig, PrefetchPolicy, SessionBuilder};
/// use hds_telemetry::MetricsRecorder;
/// use hds_workloads::{SyntheticConfig, SyntheticWorkload, Workload};
///
/// let mut w = SyntheticWorkload::new(SyntheticConfig {
///     total_refs: 40_000,
///     ..SyntheticConfig::default()
/// });
/// let procs = w.procedures();
/// let mut rec = MetricsRecorder::new();
/// let mut plan = FaultPlan::from_seed(7);
/// let report = SessionBuilder::new(OptimizerConfig::test_scale())
///     .procedures(procs)
///     .observer(&mut rec)
///     .faults(&mut plan)
///     .optimize(PrefetchPolicy::StreamTail)
///     .run(&mut w);
/// assert_eq!(rec.cycles_completed(), report.cycles.len() as u64);
/// ```
#[derive(Debug)]
pub struct SessionBuilder<M = NeedsMode, O: Observer = NullObserver, F: FaultInjector = NoFaults> {
    config: OptimizerConfig,
    procedures: Vec<Procedure>,
    state: M,
    obs: O,
    faults: F,
    checkpoints: bool,
}

impl SessionBuilder {
    /// Starts a builder from an [`OptimizerConfig`] with no procedures,
    /// no observer, no faults, and no checkpointing.
    #[must_use]
    pub fn new(config: OptimizerConfig) -> Self {
        SessionBuilder {
            config,
            procedures: Vec::new(),
            state: NeedsMode,
            obs: NullObserver,
            faults: NoFaults,
            checkpoints: false,
        }
    }
}

impl<M, O: Observer, F: FaultInjector> SessionBuilder<M, O, F> {
    /// Sets the static program image (needed for code injection and the
    /// Table 2 "procedures modified" statistic). Pass the workload's
    /// `procedures()`; defaults to an empty image.
    #[must_use]
    pub fn procedures(mut self, procedures: Vec<Procedure>) -> Self {
        self.procedures = procedures;
        self
    }

    /// Attaches an observer receiving every telemetry event of the run.
    /// Pass `&mut recorder` to keep access to it after the run.
    #[must_use]
    pub fn observer<O2: Observer>(self, obs: O2) -> SessionBuilder<M, O2, F> {
        SessionBuilder {
            config: self.config,
            procedures: self.procedures,
            state: self.state,
            obs,
            faults: self.faults,
            checkpoints: self.checkpoints,
        }
    }

    /// Attaches a fault injector (the chaos-testing entry point). Pass
    /// `&mut plan` to read an `hds_guard::FaultPlan`'s counts after the
    /// run.
    #[must_use]
    pub fn faults<F2: FaultInjector>(self, faults: F2) -> SessionBuilder<M, O, F2> {
        SessionBuilder {
            config: self.config,
            procedures: self.procedures,
            state: self.state,
            obs: self.obs,
            faults,
            checkpoints: self.checkpoints,
        }
    }

    /// Turns on crash-consistent checkpointing: every phase boundary
    /// captures a versioned, checksummed [`Snapshot`] of the full
    /// optimizer state, retrievable with [`Session::latest_snapshot`]
    /// and resumable with [`SessionBuilder::resume`].
    #[must_use]
    pub fn checkpoints(mut self) -> Self {
        self.checkpoints = true;
        self
    }

    /// Selects the prefetch backend for optimize-mode runs
    /// (`OptimizerConfig::backend`). The default,
    /// [`BackendSelect::DynPref`], is the paper's grammar → DFSM path;
    /// the alternatives run an online table-driven predictor instead.
    /// Geometry is validated by [`EngineConfigBuilder::build`]; this
    /// setter trusts its input like the rest of the raw
    /// [`OptimizerConfig`] surface.
    #[must_use]
    pub fn backend(mut self, backend: BackendSelect) -> Self {
        self.config.backend = backend;
        self
    }
}

impl<O: Observer, F: FaultInjector> SessionBuilder<NeedsMode, O, F> {
    /// Selects the run mode, unlocking [`SessionBuilder::build`] and
    /// [`SessionBuilder::run`].
    #[must_use]
    pub fn mode(self, mode: RunMode) -> SessionBuilder<Ready, O, F> {
        SessionBuilder {
            config: self.config,
            procedures: self.procedures,
            state: Ready(mode),
            obs: self.obs,
            faults: self.faults,
            checkpoints: self.checkpoints,
        }
    }

    /// The unmodified program ([`RunMode::Baseline`]).
    #[must_use]
    pub fn baseline(self) -> SessionBuilder<Ready, O, F> {
        self.mode(RunMode::Baseline)
    }

    /// Only the dynamic checks ([`RunMode::ChecksOnly`], Figure 11
    /// *Base*).
    #[must_use]
    pub fn checks_only(self) -> SessionBuilder<Ready, O, F> {
        self.mode(RunMode::ChecksOnly)
    }

    /// Checks + profiling ([`RunMode::Profile`], Figure 11 *Prof*).
    #[must_use]
    pub fn profile(self) -> SessionBuilder<Ready, O, F> {
        self.mode(RunMode::Profile)
    }

    /// Checks + profiling + analysis ([`RunMode::Analyze`], Figure 11
    /// *Hds*).
    #[must_use]
    pub fn analyze(self) -> SessionBuilder<Ready, O, F> {
        self.mode(RunMode::Analyze)
    }

    /// The full cycle with the given prefetch policy
    /// ([`RunMode::Optimize`], Figure 12's bars).
    #[must_use]
    pub fn optimize(self, policy: PrefetchPolicy) -> SessionBuilder<Ready, O, F> {
        self.mode(RunMode::Optimize(policy))
    }
}

impl<O: Observer, F: FaultInjector> SessionBuilder<Ready, O, F> {
    /// The selected run mode.
    #[must_use]
    pub fn selected_mode(&self) -> RunMode {
        self.state.0
    }

    /// Builds the streaming [`Session`]. Embedders producing events
    /// from a live system feed it with [`Session::on_event`] and close
    /// with [`Session::finish`].
    #[must_use]
    pub fn build(self) -> Session<O, F> {
        let checkpoints = self.checkpoints;
        let mut session = Session::construct(
            self.config,
            self.state.0,
            self.procedures,
            self.obs,
            self.faults,
        );
        if checkpoints {
            session.enable_checkpoints();
        }
        session
    }

    /// Reconstructs a session from a phase-boundary [`Snapshot`]
    /// instead of starting fresh — the crash-recovery entry point. The
    /// builder's config, mode, and procedures must match the capturing
    /// run's; any attached observer/faults carry over. See
    /// [`Session::resume_from`].
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]: corruption, a foreign format, or a
    /// snapshot captured under a different configuration.
    pub fn resume(self, snapshot: &Snapshot) -> Result<Session<O, F>, SnapshotError> {
        Session::resume_from(
            self.config,
            self.state.0,
            self.procedures,
            snapshot,
            self.obs,
            self.faults,
        )
    }

    /// Runs `program` to completion and returns its report — the
    /// one-shot driver over [`SessionBuilder::build`]. An injected
    /// crash ends the loop early (the session is dead); supervised
    /// recovery lives in `hds-engine`.
    pub fn run<W>(self, program: &mut W) -> RunReport
    where
        W: ProgramSource + ?Sized,
    {
        let mut session = self.build();
        while let Some(event) = program.next_event() {
            session.on_event(event);
            if session.crashed() {
                break;
            }
        }
        session.finish(program.name())
    }
}

// ---------------------------------------------------------------------------
// EngineConfig
// ---------------------------------------------------------------------------

/// A configuration rejected by [`EngineConfigBuilder::build`].
///
/// Every variant is a setting combination the runtime would previously
/// only surface as a panic (e.g. `BurstyConfig::new` asserts) or as
/// silent degeneracy (a duty cycle that never hibernates long enough to
/// analyze).
#[derive(Clone, Copy, Debug, PartialEq)]
#[non_exhaustive]
pub enum ConfigError {
    /// A bursty-tracing counter is zero; the framework degenerates
    /// (`BurstyConfig::new` would panic).
    ZeroBurstCounter {
        /// Which counter (`nCheck0`, `nInstr0`, `nAwake0`,
        /// `nHibernate0`).
        field: &'static str,
    },
    /// The hibernation phase is shorter than the awake phase — the duty
    /// cycle is inverted: profiling dominates and (in background mode)
    /// analysis has no hibernation span to overlap with.
    HibernationShorterThanAwake {
        /// `nAwake0` burst-periods.
        awake: u64,
        /// `nHibernate0` burst-periods.
        hibernate: u64,
    },
    /// `heat_percent` outside `(0, 100]`.
    HeatPercentOutOfRange(
        /// The rejected value.
        f64,
    ),
    /// `analysis.min_length > analysis.max_length`: no stream can ever
    /// qualify.
    StreamLengthBoundsInverted {
        /// Minimum qualifying stream length.
        min: u64,
        /// Maximum qualifying stream length.
        max: u64,
    },
    /// `dfsm.head_len == 0`: the matcher would match everything
    /// unconditionally.
    ZeroHeadLen,
    /// `max_streams == 0`: every cycle would optimize nothing.
    ZeroMaxStreams,
    /// `PrefetchScheduling::Windowed { degree: 0 }`: queued prefetches
    /// would never issue.
    ZeroWindowedDegree,
    /// An online backend's prefetch degree is zero: it would train but
    /// never predict.
    ZeroBackendDegree {
        /// The offending backend's label.
        backend: &'static str,
    },
    /// An online backend's table geometry is unusable: a row count that
    /// is zero or not a power of two (the row index is a hash mask), or
    /// a zero associativity. The backend constructors would panic on
    /// these; the builder reports them instead.
    BadBackendGeometry {
        /// The offending backend's label.
        backend: &'static str,
        /// Which geometry field (`rows`, `assoc`, `train_rows`,
        /// `table_rows`).
        field: &'static str,
        /// The rejected value.
        value: u32,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::ZeroBurstCounter { field } => {
                write!(f, "bursty counter {field} must be nonzero")
            }
            ConfigError::HibernationShorterThanAwake { awake, hibernate } => write!(
                f,
                "hibernation ({hibernate} burst-periods) is shorter than the awake phase \
                 ({awake} burst-periods); the duty cycle is inverted"
            ),
            ConfigError::HeatPercentOutOfRange(v) => {
                write!(f, "heat_percent must be in (0, 100], got {v}")
            }
            ConfigError::StreamLengthBoundsInverted { min, max } => write!(
                f,
                "analysis.min_length ({min}) exceeds max_length ({max}); no stream can qualify"
            ),
            ConfigError::ZeroHeadLen => write!(f, "dfsm.head_len must be at least 1"),
            ConfigError::ZeroMaxStreams => write!(f, "max_streams must be at least 1"),
            ConfigError::ZeroWindowedDegree => {
                write!(f, "windowed prefetch scheduling needs degree >= 1")
            }
            ConfigError::ZeroBackendDegree { backend } => {
                write!(f, "{backend} backend needs degree >= 1")
            }
            ConfigError::BadBackendGeometry {
                backend,
                field,
                value,
            } => write!(
                f,
                "{backend} backend {field} must be a nonzero power of two, got {value}"
            ),
        }
    }
}

impl std::error::Error for ConfigError {}

/// The engine-wide configuration: a *validated* [`OptimizerConfig`]
/// (which embeds the guard budgets) plus an optional fault plan, built
/// with [`EngineConfig::builder`].
///
/// Construction is the validation boundary: an `EngineConfig` in hand
/// means every cross-field invariant holds, so downstream code never
/// re-checks (and never panics on) configuration.
///
/// ```
/// use hds_core::EngineConfig;
///
/// let engine = EngineConfig::builder()
///     .bursty(240, 40, 4, 8)
///     .heat_percent(1.0)
///     .build()
///     .unwrap();
/// let _builder = engine.session();
/// ```
#[derive(Clone, Debug)]
pub struct EngineConfig {
    optimizer: OptimizerConfig,
    fault_seed: u64,
    fault_rates: Option<FaultRates>,
}

impl EngineConfig {
    /// Starts a builder from [`OptimizerConfig::paper_scale`].
    #[must_use]
    pub fn builder() -> EngineConfigBuilder {
        EngineConfigBuilder::new(OptimizerConfig::paper_scale())
    }

    /// Starts a builder from an existing optimizer configuration (still
    /// validated at `build()`).
    #[must_use]
    pub fn builder_from(optimizer: OptimizerConfig) -> EngineConfigBuilder {
        EngineConfigBuilder::new(optimizer)
    }

    /// The validated optimizer configuration.
    #[must_use]
    pub fn optimizer(&self) -> &OptimizerConfig {
        &self.optimizer
    }

    /// Consumes the config, yielding the optimizer configuration.
    #[must_use]
    pub fn into_optimizer(self) -> OptimizerConfig {
        self.optimizer
    }

    /// The configured fault plan (seeded, deterministic), when fault
    /// injection was requested with [`EngineConfigBuilder::faults`].
    #[must_use]
    pub fn fault_plan(&self) -> Option<FaultPlan> {
        self.fault_rates
            .map(|rates| FaultPlan::with_rates(self.fault_seed, rates))
    }

    /// Starts a [`SessionBuilder`] over this configuration.
    #[must_use]
    pub fn session(&self) -> SessionBuilder {
        SessionBuilder::new(self.optimizer.clone())
    }
}

/// Builder for [`EngineConfig`]; `build()` validates every cross-field
/// invariant and returns a typed [`ConfigError`] instead of panicking.
#[derive(Clone, Debug)]
pub struct EngineConfigBuilder {
    optimizer: OptimizerConfig,
    bursty_raw: Option<(u64, u64, u64, u64)>,
    fault_seed: u64,
    fault_rates: Option<FaultRates>,
}

impl EngineConfigBuilder {
    fn new(optimizer: OptimizerConfig) -> Self {
        EngineConfigBuilder {
            optimizer,
            bursty_raw: None,
            fault_seed: 0,
            fault_rates: None,
        }
    }

    /// Replaces the whole optimizer configuration.
    #[must_use]
    pub fn optimizer(mut self, optimizer: OptimizerConfig) -> Self {
        self.optimizer = optimizer;
        self
    }

    /// Sets the bursty-tracing counters from raw values. Unlike
    /// `BurstyConfig::new`, zero counters are *reported* (as
    /// [`ConfigError::ZeroBurstCounter`]) rather than panicking.
    #[must_use]
    pub fn bursty(
        mut self,
        n_check0: u64,
        n_instr0: u64,
        n_awake0: u64,
        n_hibernate0: u64,
    ) -> Self {
        self.bursty_raw = Some((n_check0, n_instr0, n_awake0, n_hibernate0));
        self
    }

    /// Sets the heat threshold (percent of each cycle's traced refs).
    #[must_use]
    pub fn heat_percent(mut self, percent: f64) -> Self {
        self.optimizer.heat_percent = percent;
        self
    }

    /// Sets where the analyze phase runs (inline or background worker).
    #[must_use]
    pub fn concurrency(mut self, concurrency: AnalysisConcurrency) -> Self {
        self.optimizer.concurrency = concurrency;
        self
    }

    /// Sets dynamic (re-profiling) or static (optimize-once) operation.
    #[must_use]
    pub fn strategy(mut self, strategy: CycleStrategy) -> Self {
        self.optimizer.strategy = strategy;
        self
    }

    /// Sets when tail prefetches are issued.
    #[must_use]
    pub fn scheduling(mut self, scheduling: PrefetchScheduling) -> Self {
        self.optimizer.scheduling = scheduling;
        self
    }

    /// Caps the streams handed to the DFSM per cycle.
    #[must_use]
    pub fn max_streams(mut self, max_streams: usize) -> Self {
        self.optimizer.max_streams = max_streams;
        self
    }

    /// Sets the budget guards and accuracy policy.
    #[must_use]
    pub fn guard(mut self, guard: GuardConfig) -> Self {
        self.optimizer.guard = guard;
        self
    }

    /// Selects the prefetch backend; geometry is validated at
    /// [`EngineConfigBuilder::build`] with typed [`ConfigError`]s
    /// instead of the backend constructors' panics.
    #[must_use]
    pub fn backend(mut self, backend: BackendSelect) -> Self {
        self.optimizer.backend = backend;
        self
    }

    /// Requests deterministic fault injection with the given seed and
    /// rates; read the plan back with [`EngineConfig::fault_plan`].
    #[must_use]
    pub fn faults(mut self, seed: u64, rates: FaultRates) -> Self {
        self.fault_seed = seed;
        self.fault_rates = Some(rates);
        self
    }

    /// Validates and produces the [`EngineConfig`].
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found; checks run in a fixed
    /// order (bursty counters, duty cycle, heat, stream bounds, DFSM,
    /// stream cap, scheduling).
    pub fn build(self) -> Result<EngineConfig, ConfigError> {
        let mut optimizer = self.optimizer;
        if let Some((n_check0, n_instr0, n_awake0, n_hibernate0)) = self.bursty_raw {
            for (value, field) in [
                (n_check0, "nCheck0"),
                (n_instr0, "nInstr0"),
                (n_awake0, "nAwake0"),
                (n_hibernate0, "nHibernate0"),
            ] {
                if value == 0 {
                    return Err(ConfigError::ZeroBurstCounter { field });
                }
            }
            optimizer.bursty = BurstyConfig {
                n_check0,
                n_instr0,
                n_awake0,
                n_hibernate0,
            };
        }
        let b = optimizer.bursty;
        if b.n_hibernate0 < b.n_awake0 {
            return Err(ConfigError::HibernationShorterThanAwake {
                awake: b.n_awake0,
                hibernate: b.n_hibernate0,
            });
        }
        if !(optimizer.heat_percent > 0.0 && optimizer.heat_percent <= 100.0) {
            return Err(ConfigError::HeatPercentOutOfRange(optimizer.heat_percent));
        }
        if optimizer.analysis.min_length > optimizer.analysis.max_length {
            return Err(ConfigError::StreamLengthBoundsInverted {
                min: optimizer.analysis.min_length,
                max: optimizer.analysis.max_length,
            });
        }
        if optimizer.dfsm.head_len == 0 {
            return Err(ConfigError::ZeroHeadLen);
        }
        if optimizer.max_streams == 0 {
            return Err(ConfigError::ZeroMaxStreams);
        }
        if let PrefetchScheduling::Windowed { degree: 0 } = optimizer.scheduling {
            return Err(ConfigError::ZeroWindowedDegree);
        }
        validate_backend(&optimizer.backend)?;
        Ok(EngineConfig {
            optimizer,
            fault_seed: self.fault_seed,
            fault_rates: self.fault_rates,
        })
    }
}

/// Checks an online backend's table geometry: row counts must be
/// nonzero powers of two (row selection is a hash mask), associativity
/// and prefetch degree must be nonzero.
fn validate_backend(backend: &BackendSelect) -> Result<(), ConfigError> {
    fn pow2(backend: &'static str, field: &'static str, value: u32) -> Result<(), ConfigError> {
        if value == 0 || !value.is_power_of_two() {
            return Err(ConfigError::BadBackendGeometry {
                backend,
                field,
                value,
            });
        }
        Ok(())
    }
    match backend {
        BackendSelect::DynPref => Ok(()),
        BackendSelect::Pangloss(c) => {
            let label = "Pangloss";
            pow2(label, "rows", c.rows)?;
            if c.assoc == 0 {
                return Err(ConfigError::BadBackendGeometry {
                    backend: label,
                    field: "assoc",
                    value: 0,
                });
            }
            if c.degree == 0 {
                return Err(ConfigError::ZeroBackendDegree { backend: label });
            }
            Ok(())
        }
        BackendSelect::Triangel(c) => {
            let label = "Triangel";
            pow2(label, "train_rows", c.train_rows)?;
            pow2(label, "table_rows", c.table_rows)?;
            if c.degree == 0 {
                return Err(ConfigError::ZeroBackendDegree { backend: label });
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hds_telemetry::MetricsRecorder;
    use hds_workloads::{SyntheticConfig, SyntheticWorkload, Workload};

    fn workload() -> SyntheticWorkload {
        SyntheticWorkload::new(SyntheticConfig {
            total_refs: 60_000,
            ..SyntheticConfig::default()
        })
    }

    #[test]
    fn builder_run_matches_manual_session_loop() {
        let mut w = workload();
        let procs = w.procedures();
        let one_shot = SessionBuilder::new(OptimizerConfig::test_scale())
            .procedures(procs)
            .optimize(PrefetchPolicy::StreamTail)
            .run(&mut w);
        let mut w = workload();
        let procs = w.procedures();
        let mut session = SessionBuilder::new(OptimizerConfig::test_scale())
            .procedures(procs)
            .optimize(PrefetchPolicy::StreamTail)
            .build();
        while let Some(event) = w.next_event() {
            session.on_event(event);
            if session.crashed() {
                break;
            }
        }
        let streamed = session.finish(w.name());
        assert_eq!(one_shot, streamed);
    }

    #[test]
    fn builder_attaches_observer_and_faults() {
        let mut w = workload();
        let procs = w.procedures();
        let mut rec = MetricsRecorder::new();
        let mut plan = FaultPlan::from_seed(3);
        let report = SessionBuilder::new(OptimizerConfig::test_scale())
            .procedures(procs)
            .observer(&mut rec)
            .faults(&mut plan)
            .optimize(PrefetchPolicy::StreamTail)
            .run(&mut w);
        assert_eq!(rec.cycles_completed(), report.cycles.len() as u64);
    }

    #[test]
    fn mode_shortcuts_select_the_right_modes() {
        let b = || SessionBuilder::new(OptimizerConfig::test_scale());
        assert_eq!(b().baseline().selected_mode(), RunMode::Baseline);
        assert_eq!(b().checks_only().selected_mode(), RunMode::ChecksOnly);
        assert_eq!(b().profile().selected_mode(), RunMode::Profile);
        assert_eq!(b().analyze().selected_mode(), RunMode::Analyze);
        assert_eq!(
            b().optimize(PrefetchPolicy::None).selected_mode(),
            RunMode::Optimize(PrefetchPolicy::None)
        );
    }

    #[test]
    fn build_yields_a_streaming_session() {
        let mut session = SessionBuilder::new(OptimizerConfig::test_scale())
            .optimize(PrefetchPolicy::StreamTail)
            .build();
        session.on_event(hds_vulcan::Event::Work(3));
        let report = session.finish("streaming");
        assert_eq!(report.refs, 0);
        assert!(report.total_cycles > 0);
    }

    #[test]
    fn engine_config_validates_zero_counters() {
        let err = EngineConfig::builder()
            .bursty(0, 40, 4, 8)
            .build()
            .unwrap_err();
        assert_eq!(err, ConfigError::ZeroBurstCounter { field: "nCheck0" });
        let err = EngineConfig::builder()
            .bursty(240, 40, 4, 0)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::ZeroBurstCounter {
                field: "nHibernate0"
            }
        );
    }

    #[test]
    fn engine_config_rejects_inverted_duty_cycle() {
        let err = EngineConfig::builder()
            .bursty(240, 40, 8, 4)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::HibernationShorterThanAwake {
                awake: 8,
                hibernate: 4
            }
        );
        assert!(err.to_string().contains("duty cycle is inverted"));
    }

    #[test]
    fn engine_config_rejects_bad_heat_and_bounds() {
        assert_eq!(
            EngineConfig::builder()
                .heat_percent(0.0)
                .build()
                .unwrap_err(),
            ConfigError::HeatPercentOutOfRange(0.0)
        );
        assert_eq!(
            EngineConfig::builder()
                .heat_percent(250.0)
                .build()
                .unwrap_err(),
            ConfigError::HeatPercentOutOfRange(250.0)
        );
        let mut opt = OptimizerConfig::test_scale();
        opt.analysis.min_length = 200;
        assert_eq!(
            EngineConfig::builder_from(opt).build().unwrap_err(),
            ConfigError::StreamLengthBoundsInverted { min: 200, max: 100 }
        );
        let mut opt = OptimizerConfig::test_scale();
        opt.dfsm.head_len = 0;
        assert_eq!(
            EngineConfig::builder_from(opt).build().unwrap_err(),
            ConfigError::ZeroHeadLen
        );
        assert_eq!(
            EngineConfig::builder().max_streams(0).build().unwrap_err(),
            ConfigError::ZeroMaxStreams
        );
        assert_eq!(
            EngineConfig::builder()
                .scheduling(PrefetchScheduling::Windowed { degree: 0 })
                .build()
                .unwrap_err(),
            ConfigError::ZeroWindowedDegree
        );
    }

    #[test]
    fn engine_config_validates_backend_geometry() {
        use hds_backend::{PanglossConfig, TriangelConfig};
        let err = EngineConfig::builder()
            .backend(BackendSelect::Pangloss(PanglossConfig {
                rows: 100,
                ..PanglossConfig::default()
            }))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::BadBackendGeometry {
                backend: "Pangloss",
                field: "rows",
                value: 100
            }
        );
        assert!(err.to_string().contains("power of two"));
        let err = EngineConfig::builder()
            .backend(BackendSelect::Pangloss(PanglossConfig {
                degree: 0,
                ..PanglossConfig::default()
            }))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::ZeroBackendDegree {
                backend: "Pangloss"
            }
        );
        let err = EngineConfig::builder()
            .backend(BackendSelect::Triangel(TriangelConfig {
                table_rows: 0,
                ..TriangelConfig::default()
            }))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            ConfigError::BadBackendGeometry {
                backend: "Triangel",
                field: "table_rows",
                value: 0
            }
        );
        // Defaults for every backend pass.
        for kind in hds_backend::BackendKind::ALL {
            assert!(EngineConfig::builder()
                .backend(BackendSelect::default_for(kind))
                .build()
                .is_ok());
        }
    }

    #[test]
    fn session_builder_backend_setter_threads_through() {
        use hds_backend::PanglossConfig;
        let select = BackendSelect::Pangloss(PanglossConfig::default());
        let session = SessionBuilder::new(OptimizerConfig::test_scale())
            .backend(select)
            .optimize(PrefetchPolicy::StreamTail)
            .build();
        let report = session.finish("backend");
        assert_eq!(report.mode, "Pangloss");
    }

    #[test]
    fn engine_config_carries_faults_and_feeds_sessions() {
        let engine = EngineConfig::builder()
            .bursty(240, 40, 4, 8)
            .concurrency(AnalysisConcurrency::Background)
            .faults(9, FaultRates::default())
            .build()
            .unwrap();
        assert_eq!(engine.optimizer().bursty.n_check0, 240);
        assert_eq!(
            engine.optimizer().concurrency,
            AnalysisConcurrency::Background
        );
        let plan = engine.fault_plan().expect("faults configured");
        assert_eq!(plan.rates(), FaultRates::default());
        let mut w = workload();
        let procs = w.procedures();
        let report = engine.session().procedures(procs).profile().run(&mut w);
        assert!(report.refs > 0);
        assert_eq!(engine.into_optimizer().bursty.n_hibernate0, 8);
    }

    #[test]
    fn valid_paper_scale_passes() {
        assert!(EngineConfig::builder().build().is_ok());
        assert!(EngineConfig::builder_from(OptimizerConfig::test_scale())
            .build()
            .is_ok());
    }
}
