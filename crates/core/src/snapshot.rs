//! Crash-consistent snapshots: versioned, checksummed captures of the
//! optimizer's full mutable state at phase boundaries.
//!
//! A [`Snapshot`] is a self-validating byte blob: an ASCII header
//! `HDSSNAP<version> <crc32> <len>\n` followed by a JSON payload of the
//! complete run state (memory hierarchy, bursty tracer, image patches,
//! guard runtime, installed streams, background-analysis in-flight
//! request, and every report counter). Decoding verifies the magic, the
//! format version, and a CRC-32 over the body *before* any field is
//! parsed — a snapshot with even one flipped byte is rejected with a
//! typed [`SnapshotError`], never silently loaded and never a panic.
//!
//! The DFSM itself is not serialized: its construction is deterministic
//! in the installed streams, so resume rebuilds it from the `installed`
//! list and a one-byte rebuild discriminant. Likewise the Sequitur
//! grammar and trace buffer are empty at every capture point (captures
//! happen only at phase boundaries, after the profile is consumed), so
//! they are asserted empty rather than stored.

use std::fmt;

use hds_bursty::TracerState;
use hds_guard::{AccuracyState, GuardState, StreamAccuracyState};
use hds_memsim::{CacheState, LineState, MemState, PrefetchFate, PrefetchResolution};
use hds_trace::{Addr, DataRef, Pc};
use hds_vulcan::{CopyState, ImageState, ProcId};
use serde::Value;

use crate::config::{OptimizerConfig, RunMode};
use crate::report::{CostBreakdown, CycleStats};

/// The current snapshot format version (the digit in the magic).
const FORMAT_VERSION: u8 = b'1';
/// Magic prefix of every snapshot: `HDSSNAP` + version digit.
const MAGIC: &[u8; 7] = b"HDSSNAP";

// ---------------------------------------------------------------------------
// Errors
// ---------------------------------------------------------------------------

/// Why a snapshot was rejected. Every decoding failure is typed; a
/// corrupted or incompatible snapshot can never load silently or panic.
#[derive(Clone, Debug, PartialEq)]
pub enum SnapshotError {
    /// The bytes do not start with the `HDSSNAP` magic.
    BadMagic,
    /// The magic matched but the format version is not one this build
    /// can read.
    UnsupportedVersion(
        /// The version byte found.
        u8,
    ),
    /// The body's CRC-32 does not match the header's.
    ChecksumMismatch {
        /// CRC recorded in the header.
        expected: u32,
        /// CRC computed over the body.
        found: u32,
    },
    /// The header or payload structure is invalid (names the first
    /// offending field).
    Malformed(String),
    /// The snapshot was captured under a different configuration or run
    /// mode; resuming would silently diverge.
    ConfigMismatch {
        /// Fingerprint the resuming session expects.
        expected: u64,
        /// Fingerprint recorded in the snapshot.
        found: u64,
    },
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot (bad magic)"),
            SnapshotError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v:#04x}")
            }
            SnapshotError::ChecksumMismatch { expected, found } => write!(
                f,
                "snapshot checksum mismatch (header {expected:08x}, body {found:08x})"
            ),
            SnapshotError::Malformed(what) => write!(f, "malformed snapshot: {what}"),
            SnapshotError::ConfigMismatch { expected, found } => write!(
                f,
                "snapshot config fingerprint {found:016x} does not match session {expected:016x}"
            ),
        }
    }
}

impl std::error::Error for SnapshotError {}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE), bitwise — no tables, no dependencies.
// ---------------------------------------------------------------------------

fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc ^= u32::from(b);
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------------
// Snapshot blob
// ---------------------------------------------------------------------------

/// A validated snapshot blob: `HDSSNAP<v> <crc32:08x> <len>\n<payload>`.
///
/// Construction goes through [`Snapshot::from_bytes`] (which validates)
/// or the crate-internal encoder, so a `Snapshot` in hand always has a
/// well-formed header whose checksum matched at construction time.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Snapshot {
    bytes: Vec<u8>,
}

impl Snapshot {
    /// The raw bytes (for persisting to disk or shipping elsewhere).
    #[must_use]
    pub fn as_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Consumes the snapshot, yielding its bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.bytes
    }

    /// Size of the blob in bytes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// Whether the blob is empty (never true for a validated snapshot).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// Validates `bytes` (magic, version, checksum, JSON structure) and
    /// wraps them as a `Snapshot`.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] except `ConfigMismatch` (configuration
    /// compatibility is checked at resume, when the target session's
    /// config is known).
    pub fn from_bytes(bytes: Vec<u8>) -> Result<Self, SnapshotError> {
        let snap = Snapshot { bytes };
        snap.decode_value()?;
        Ok(snap)
    }

    /// Encodes a payload value into a headered, checksummed blob.
    pub(crate) fn encode_value(payload: &Value) -> Snapshot {
        let json = serde_json::to_string(payload).unwrap_or_else(|_| "null".to_string());
        let body = format!("{}\n{json}", json.len());
        let crc = crc32(body.as_bytes());
        let mut bytes = Vec::with_capacity(body.len() + 18);
        bytes.extend_from_slice(MAGIC);
        bytes.push(FORMAT_VERSION);
        bytes.extend_from_slice(format!(" {crc:08x} ").as_bytes());
        bytes.extend_from_slice(body.as_bytes());
        Snapshot { bytes }
    }

    /// Validates the header and checksum, then parses the JSON payload.
    pub(crate) fn decode_value(&self) -> Result<Value, SnapshotError> {
        let b = &self.bytes;
        if b.len() < MAGIC.len() || &b[..MAGIC.len()] != MAGIC {
            return Err(SnapshotError::BadMagic);
        }
        let version = *b
            .get(MAGIC.len())
            .ok_or(SnapshotError::Malformed("truncated header".into()))?;
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion(version));
        }
        if b.get(8) != Some(&b' ') {
            return Err(SnapshotError::Malformed("missing crc separator".into()));
        }
        let crc_hex = b
            .get(9..17)
            .ok_or(SnapshotError::Malformed("truncated crc".into()))?;
        let crc_hex = std::str::from_utf8(crc_hex)
            .map_err(|_| SnapshotError::Malformed("crc is not ASCII hex".into()))?;
        let expected = u32::from_str_radix(crc_hex, 16)
            .map_err(|_| SnapshotError::Malformed("crc is not ASCII hex".into()))?;
        if b.get(17) != Some(&b' ') {
            return Err(SnapshotError::Malformed("missing body separator".into()));
        }
        let body = b
            .get(18..)
            .ok_or(SnapshotError::Malformed("missing body".into()))?;
        let found = crc32(body);
        if found != expected {
            return Err(SnapshotError::ChecksumMismatch { expected, found });
        }
        let body = std::str::from_utf8(body)
            .map_err(|_| SnapshotError::Malformed("body is not UTF-8".into()))?;
        let (len_line, payload) = body
            .split_once('\n')
            .ok_or(SnapshotError::Malformed("missing length line".into()))?;
        let len: usize = len_line
            .parse()
            .map_err(|_| SnapshotError::Malformed("bad length line".into()))?;
        if payload.len() != len {
            return Err(SnapshotError::Malformed(format!(
                "payload length {} does not match header {len}",
                payload.len()
            )));
        }
        serde_json::parse_value_str(payload)
            .map_err(|e| SnapshotError::Malformed(format!("payload JSON: {e}")))
    }
}

/// Deterministic fingerprint of the (configuration, run-mode) pair a
/// snapshot was captured under. `DefaultHasher` over the `Debug`
/// renderings: stable within a build, which is the compatibility domain
/// snapshots need (resume targets the same binary). Public so bench
/// writers can stamp `results/BENCH_*.json` meta blocks with the exact
/// configuration a number was measured under.
pub fn config_fingerprint(config: &OptimizerConfig, mode: RunMode) -> u64 {
    use std::hash::{Hash, Hasher};
    let mut h = std::collections::hash_map::DefaultHasher::new();
    format!("{config:?}").hash(&mut h);
    format!("{mode:?}").hash(&mut h);
    h.finish()
}

// ---------------------------------------------------------------------------
// SessionState: everything a Session needs to continue bit-identically.
// ---------------------------------------------------------------------------

/// In-flight background analysis, serialized: the timing pair plus the
/// full request, so resume can re-submit it to a fresh worker
/// (`analyze_trace` is pure, so the re-computed outcome is identical).
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct PendingState {
    pub handoff_at: u64,
    pub ready_at: u64,
    pub refs: Vec<DataRef>,
    pub denylist: Vec<u64>,
}

/// Background-worker counters and the in-flight request, if any.
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct BgState {
    pub handoffs: u64,
    pub applied: u64,
    pub starved: u64,
    pub pending: Option<PendingState>,
}

/// The complete serializable state of a run — the payload of a
/// [`Snapshot`]. Field-for-field mirror of the executor's `RunState`
/// (minus the rebuildable DFSM and the always-empty profile buffers).
#[derive(Clone, Debug, PartialEq)]
pub(crate) struct SessionState {
    pub cycles: u64,
    pub breakdown: CostBreakdown,
    pub mem: MemState,
    pub tracer: TracerState,
    pub image: ImageState<usize>,
    pub dfsm_state: u32,
    /// How to reconstruct the DFSM from `installed`: 0 = no machine,
    /// 1 = full build (`machine_for`), 2 = accuracy-rebuild path
    /// (`build_dfsm` over the survivors).
    pub dfsm_rebuild: u8,
    /// Per-thread call stacks as `(stack, max_depth)` pairs.
    pub frames: Vec<(Vec<(u32, u64)>, usize)>,
    pub active_thread: usize,
    pub refs: u64,
    pub checks: u64,
    pub cycle_stats: Vec<CycleStats>,
    pub pf_queue: Vec<(u64, u32)>,
    pub guard: Option<GuardState>,
    pub installed: Vec<Vec<DataRef>>,
    pub partial_deopts: u64,
    pub bg: Option<BgState>,
    pub events_consumed: u64,
    pub snapshots: u64,
    pub fault_state: u64,
    /// Online prefetch backend state, when one is selected: the
    /// backend-kind wire code (so resume can reject a snapshot captured
    /// under a different backend) plus its full table image as the
    /// canonical word export (`PrefetchBackend::export_words`).
    pub online: Option<(u8, Vec<u64>)>,
}

// --- serialization helpers (hand-built: the vendored serde shim has no
// --- derive for tuples/enums, and the canonical order must be explicit).

fn u(n: u64) -> Value {
    Value::U64(n)
}

fn arr(items: Vec<Value>) -> Value {
    Value::Arr(items)
}

fn obj(fields: Vec<(&str, Value)>) -> Value {
    Value::Obj(
        fields
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn malformed(what: impl Into<String>) -> SnapshotError {
    SnapshotError::Malformed(what.into())
}

fn as_arr<'a>(v: &'a Value, what: &str) -> Result<&'a [Value], SnapshotError> {
    match v {
        Value::Arr(items) => Ok(items),
        _ => Err(malformed(format!("{what}: expected array"))),
    }
}

fn as_u64(v: &Value, what: &str) -> Result<u64, SnapshotError> {
    match v {
        Value::U64(n) => Ok(*n),
        Value::I64(n) if *n >= 0 => Ok(*n as u64),
        _ => Err(malformed(format!("{what}: expected unsigned integer"))),
    }
}

fn as_bool(v: &Value, what: &str) -> Result<bool, SnapshotError> {
    match v {
        Value::Bool(b) => Ok(*b),
        _ => Err(malformed(format!("{what}: expected bool"))),
    }
}

fn field<'a>(v: &'a Value, key: &str) -> Result<&'a Value, SnapshotError> {
    v.get(key)
        .ok_or_else(|| malformed(format!("missing field {key}")))
}

fn u64_field(v: &Value, key: &str) -> Result<u64, SnapshotError> {
    as_u64(field(v, key)?, key)
}

fn usize_field(v: &Value, key: &str) -> Result<usize, SnapshotError> {
    usize::try_from(u64_field(v, key)?).map_err(|_| malformed(format!("{key}: out of range")))
}

fn u64s(v: &Value, what: &str) -> Result<Vec<u64>, SnapshotError> {
    as_arr(v, what)?.iter().map(|x| as_u64(x, what)).collect()
}

fn fixed<const N: usize>(v: &Value, what: &str) -> Result<[u64; N], SnapshotError> {
    let items = u64s(v, what)?;
    <[u64; N]>::try_from(items).map_err(|_| malformed(format!("{what}: expected {N} elements")))
}

fn breakdown_to_value(b: &CostBreakdown) -> Value {
    arr(vec![
        u(b.work),
        u(b.memory),
        u(b.checks),
        u(b.recording),
        u(b.analysis),
        u(b.matching),
        u(b.prefetch),
        u(b.optimize),
    ])
}

fn breakdown_from_value(v: &Value) -> Result<CostBreakdown, SnapshotError> {
    let [work, memory, checks, recording, analysis, matching, prefetch, optimize] =
        fixed::<8>(v, "breakdown")?;
    Ok(CostBreakdown {
        work,
        memory,
        checks,
        recording,
        analysis,
        matching,
        prefetch,
        optimize,
    })
}

fn cycle_stats_to_value(c: &CycleStats) -> Value {
    arr(vec![
        u(c.traced_refs),
        u(c.hot_streams as u64),
        u(c.streams_used as u64),
        u(c.dfsm_states as u64),
        u(c.dfsm_checks as u64),
        u(c.procs_modified as u64),
        u(c.grammar_size as u64),
    ])
}

fn cycle_stats_from_value(v: &Value) -> Result<CycleStats, SnapshotError> {
    let [traced_refs, hot, used, states, checks, procs, grammar] = fixed::<7>(v, "cycle_stats")?;
    Ok(CycleStats {
        traced_refs,
        hot_streams: hot as usize,
        streams_used: used as usize,
        dfsm_states: states as usize,
        dfsm_checks: checks as usize,
        procs_modified: procs as usize,
        grammar_size: grammar as usize,
    })
}

fn stats_to_value(s: &hds_memsim::MemStats) -> Value {
    arr(vec![
        u(s.l1_hits),
        u(s.l1_hits_on_prefetched),
        u(s.l1_misses),
        u(s.l2_hits),
        u(s.l2_misses),
        u(s.prefetches_issued),
        u(s.prefetches_useful),
        u(s.prefetches_late),
        u(s.prefetches_polluting),
        u(s.writebacks),
        u(s.demand_cycles),
    ])
}

fn stats_from_value(v: &Value) -> Result<hds_memsim::MemStats, SnapshotError> {
    let [h, hp, m, h2, m2, pi, pu, pl, pp, wb, dc] = fixed::<11>(v, "mem.stats")?;
    Ok(hds_memsim::MemStats {
        l1_hits: h,
        l1_hits_on_prefetched: hp,
        l1_misses: m,
        l2_hits: h2,
        l2_misses: m2,
        prefetches_issued: pi,
        prefetches_useful: pu,
        prefetches_late: pl,
        prefetches_polluting: pp,
        writebacks: wb,
        demand_cycles: dc,
    })
}

fn cache_to_value(c: &CacheState) -> Value {
    obj(vec![
        ("tick", u(c.tick)),
        (
            "sets",
            arr(c
                .sets
                .iter()
                .map(|set| {
                    arr(set
                        .iter()
                        .map(|l| {
                            arr(vec![
                                u(l.block),
                                u(l.lru),
                                u(u64::from(l.prefetched_unused)),
                                u(u64::from(l.origin_prefetched)),
                                u(u64::from(l.dirty)),
                            ])
                        })
                        .collect())
                })
                .collect()),
        ),
    ])
}

fn cache_from_value(v: &Value) -> Result<CacheState, SnapshotError> {
    let tick = u64_field(v, "tick")?;
    let mut sets = Vec::new();
    for set in as_arr(field(v, "sets")?, "cache.sets")? {
        let mut lines = Vec::new();
        for line in as_arr(set, "cache.set")? {
            let [block, lru, pu, op, dirty] = fixed::<5>(line, "cache.line")?;
            lines.push(LineState {
                block,
                lru,
                prefetched_unused: pu != 0,
                origin_prefetched: op != 0,
                dirty: dirty != 0,
            });
        }
        sets.push(lines);
    }
    Ok(CacheState { tick, sets })
}

fn mem_to_value(m: &MemState) -> Value {
    obj(vec![
        ("l1", cache_to_value(&m.l1)),
        ("l2", cache_to_value(&m.l2)),
        (
            "in_flight",
            arr(m
                .in_flight
                .iter()
                .map(|&(b, t)| arr(vec![u(b), u(t)]))
                .collect()),
        ),
        (
            "pending",
            arr(m
                .pending
                .iter()
                .map(|&(b, tag, t)| arr(vec![u(b), u(u64::from(tag)), u(t)]))
                .collect()),
        ),
        (
            "outcomes",
            arr(m
                .outcomes
                .iter()
                .map(|o| {
                    let fate = match o.fate {
                        PrefetchFate::Useful => 0,
                        PrefetchFate::Late => 1,
                        PrefetchFate::Polluted => 2,
                    };
                    arr(vec![
                        u(u64::from(o.tag)),
                        u(o.block),
                        u(fate),
                        u(o.issued_at),
                        u(o.resolved_at),
                    ])
                })
                .collect()),
        ),
        ("stats", stats_to_value(&m.stats)),
    ])
}

fn mem_from_value(v: &Value) -> Result<MemState, SnapshotError> {
    let l1 = cache_from_value(field(v, "l1")?)?;
    let l2 = cache_from_value(field(v, "l2")?)?;
    let mut in_flight = Vec::new();
    for e in as_arr(field(v, "in_flight")?, "mem.in_flight")? {
        let [b, t] = fixed::<2>(e, "mem.in_flight")?;
        in_flight.push((b, t));
    }
    let mut pending = Vec::new();
    for e in as_arr(field(v, "pending")?, "mem.pending")? {
        let [b, tag, t] = fixed::<3>(e, "mem.pending")?;
        let tag = u32::try_from(tag).map_err(|_| malformed("mem.pending: tag out of range"))?;
        pending.push((b, tag, t));
    }
    let mut outcomes = Vec::new();
    for e in as_arr(field(v, "outcomes")?, "mem.outcomes")? {
        let [tag, block, fate, issued_at, resolved_at] = fixed::<5>(e, "mem.outcomes")?;
        let fate = match fate {
            0 => PrefetchFate::Useful,
            1 => PrefetchFate::Late,
            2 => PrefetchFate::Polluted,
            _ => return Err(malformed("mem.outcomes: bad fate discriminant")),
        };
        outcomes.push(PrefetchResolution {
            tag: u32::try_from(tag).map_err(|_| malformed("mem.outcomes: tag out of range"))?,
            block,
            fate,
            issued_at,
            resolved_at,
        });
    }
    let stats = stats_from_value(field(v, "stats")?)?;
    Ok(MemState {
        l1,
        l2,
        in_flight,
        pending,
        outcomes,
        stats,
    })
}

fn tracer_to_value(t: &TracerState) -> Value {
    arr(vec![
        u(t.n_check_cur),
        u(t.n_instr_cur),
        u(t.n_check),
        u(t.n_instr),
        u(t.instrumented),
        u(t.hibernating),
        u(t.periods_in_phase),
        u(t.total_checks),
        u(t.total_bursts),
        u(t.awake_checks),
        u(t.phase_transitions),
    ])
}

fn tracer_from_value(v: &Value) -> Result<TracerState, SnapshotError> {
    let [ncc, nic, nc, ni, ins, hib, pip, tc, tb, ac, pt] = fixed::<11>(v, "tracer")?;
    Ok(TracerState {
        n_check_cur: ncc,
        n_instr_cur: nic,
        n_check: nc,
        n_instr: ni,
        instrumented: ins,
        hibernating: hib,
        periods_in_phase: pip,
        total_checks: tc,
        total_bursts: tb,
        awake_checks: ac,
        phase_transitions: pt,
    })
}

fn image_to_value(i: &ImageState<usize>) -> Value {
    obj(vec![
        ("epoch", u(i.epoch)),
        ("total_edits", u(i.total_edits)),
        ("total_deopts", u(i.total_deopts)),
        (
            "copies",
            arr(i
                .copies
                .iter()
                .map(|c| {
                    obj(vec![
                        ("proc", u(u64::from(c.proc.0))),
                        ("since_epoch", u(c.since_epoch)),
                        (
                            "checks",
                            arr(c
                                .checks
                                .iter()
                                .map(|&(pc, len)| arr(vec![u(u64::from(pc.0)), u(len as u64)]))
                                .collect()),
                        ),
                    ])
                })
                .collect()),
        ),
    ])
}

fn image_from_value(v: &Value) -> Result<ImageState<usize>, SnapshotError> {
    let mut copies = Vec::new();
    for c in as_arr(field(v, "copies")?, "image.copies")? {
        let proc_raw = u64_field(c, "proc")?;
        let proc = ProcId(
            u32::try_from(proc_raw).map_err(|_| malformed("image.copies: proc out of range"))?,
        );
        let since_epoch = u64_field(c, "since_epoch")?;
        let mut checks = Vec::new();
        for e in as_arr(field(c, "checks")?, "image.checks")? {
            let [pc, len] = fixed::<2>(e, "image.checks")?;
            let pc = Pc(u32::try_from(pc).map_err(|_| malformed("image.checks: pc out of range"))?);
            let len =
                usize::try_from(len).map_err(|_| malformed("image.checks: len out of range"))?;
            checks.push((pc, len));
        }
        copies.push(CopyState {
            proc,
            since_epoch,
            checks,
        });
    }
    Ok(ImageState {
        epoch: u64_field(v, "epoch")?,
        total_edits: u64_field(v, "total_edits")?,
        total_deopts: u64_field(v, "total_deopts")?,
        copies,
    })
}

fn refs_to_value(refs: &[DataRef]) -> Value {
    arr(refs
        .iter()
        .map(|r| arr(vec![u(u64::from(r.pc.0)), u(r.addr.0)]))
        .collect())
}

fn refs_from_value(v: &Value, what: &str) -> Result<Vec<DataRef>, SnapshotError> {
    let mut out = Vec::new();
    for e in as_arr(v, what)? {
        let [pc, addr] = fixed::<2>(e, what)?;
        let pc = Pc(u32::try_from(pc).map_err(|_| malformed(format!("{what}: pc out of range")))?);
        out.push(DataRef::new(pc, Addr(addr)));
    }
    Ok(out)
}

fn guard_to_value(g: &GuardState) -> Value {
    obj(vec![
        (
            "tripped",
            arr(g.tripped.iter().map(|&b| Value::Bool(b)).collect()),
        ),
        ("trips", arr(g.trips.iter().map(|&t| u(t)).collect())),
        (
            "accuracy",
            match &g.accuracy {
                None => Value::Null,
                Some(a) => obj(vec![
                    (
                        "streams",
                        arr(a
                            .streams
                            .iter()
                            .map(|s| {
                                arr(vec![
                                    u(u64::from(s.stream_id)),
                                    u(s.hash),
                                    u(s.useful),
                                    u(s.late),
                                    u(s.polluted),
                                    u(u64::from(s.streak)),
                                ])
                            })
                            .collect()),
                    ),
                    ("denylist", arr(a.denylist.iter().map(|&h| u(h)).collect())),
                ]),
            },
        ),
    ])
}

fn guard_from_value(v: &Value) -> Result<GuardState, SnapshotError> {
    let tripped_vals = as_arr(field(v, "tripped")?, "guard.tripped")?;
    if tripped_vals.len() != 5 {
        return Err(malformed("guard.tripped: expected 5 elements"));
    }
    let mut tripped = [false; 5];
    for (slot, val) in tripped.iter_mut().zip(tripped_vals) {
        *slot = as_bool(val, "guard.tripped")?;
    }
    let trips = fixed::<5>(field(v, "trips")?, "guard.trips")?;
    let accuracy = match field(v, "accuracy")? {
        Value::Null => None,
        a => {
            let mut streams = Vec::new();
            for s in as_arr(field(a, "streams")?, "guard.accuracy.streams")? {
                let [id, hash, useful, late, polluted, streak] =
                    fixed::<6>(s, "guard.accuracy.streams")?;
                streams.push(StreamAccuracyState {
                    stream_id: u32::try_from(id)
                        .map_err(|_| malformed("guard.accuracy: id out of range"))?,
                    hash,
                    useful,
                    late,
                    polluted,
                    streak: u32::try_from(streak)
                        .map_err(|_| malformed("guard.accuracy: streak out of range"))?,
                });
            }
            let denylist = u64s(field(a, "denylist")?, "guard.accuracy.denylist")?;
            Some(AccuracyState { streams, denylist })
        }
    };
    Ok(GuardState {
        tripped,
        trips,
        accuracy,
    })
}

impl SessionState {
    /// Serializes the state under the given config fingerprint.
    pub(crate) fn to_snapshot(&self, config_hash: u64) -> Snapshot {
        let bg = match &self.bg {
            None => Value::Null,
            Some(b) => obj(vec![
                ("handoffs", u(b.handoffs)),
                ("applied", u(b.applied)),
                ("starved", u(b.starved)),
                (
                    "pending",
                    match &b.pending {
                        None => Value::Null,
                        Some(p) => obj(vec![
                            ("handoff_at", u(p.handoff_at)),
                            ("ready_at", u(p.ready_at)),
                            ("refs", refs_to_value(&p.refs)),
                            ("denylist", arr(p.denylist.iter().map(|&h| u(h)).collect())),
                        ]),
                    },
                ),
            ]),
        };
        let payload = obj(vec![
            ("config", u(config_hash)),
            ("cycles", u(self.cycles)),
            ("breakdown", breakdown_to_value(&self.breakdown)),
            ("mem", mem_to_value(&self.mem)),
            ("tracer", tracer_to_value(&self.tracer)),
            ("image", image_to_value(&self.image)),
            ("dfsm_state", u(u64::from(self.dfsm_state))),
            ("dfsm_rebuild", u(u64::from(self.dfsm_rebuild))),
            (
                "frames",
                arr(self
                    .frames
                    .iter()
                    .map(|(stack, max_depth)| {
                        obj(vec![
                            (
                                "stack",
                                arr(stack
                                    .iter()
                                    .map(|&(p, e)| arr(vec![u(u64::from(p)), u(e)]))
                                    .collect()),
                            ),
                            ("max_depth", u(*max_depth as u64)),
                        ])
                    })
                    .collect()),
            ),
            ("active_thread", u(self.active_thread as u64)),
            ("refs", u(self.refs)),
            ("checks", u(self.checks)),
            (
                "cycle_stats",
                arr(self.cycle_stats.iter().map(cycle_stats_to_value).collect()),
            ),
            (
                "pf_queue",
                arr(self
                    .pf_queue
                    .iter()
                    .map(|&(a, t)| arr(vec![u(a), u(u64::from(t))]))
                    .collect()),
            ),
            (
                "guard",
                self.guard.as_ref().map_or(Value::Null, guard_to_value),
            ),
            (
                "installed",
                arr(self.installed.iter().map(|s| refs_to_value(s)).collect()),
            ),
            ("partial_deopts", u(self.partial_deopts)),
            ("bg", bg),
            ("events_consumed", u(self.events_consumed)),
            ("snapshots", u(self.snapshots)),
            ("fault_state", u(self.fault_state)),
            (
                "online",
                match &self.online {
                    None => Value::Null,
                    Some((kind, words)) => obj(vec![
                        ("kind", u(u64::from(*kind))),
                        ("words", arr(words.iter().map(|&w| u(w)).collect())),
                    ]),
                },
            ),
        ]);
        Snapshot::encode_value(&payload)
    }

    /// Decodes and validates a snapshot against the resuming session's
    /// config fingerprint.
    pub(crate) fn from_snapshot(
        snap: &Snapshot,
        expected_config: u64,
    ) -> Result<SessionState, SnapshotError> {
        let v = snap.decode_value()?;
        let found = u64_field(&v, "config")?;
        if found != expected_config {
            return Err(SnapshotError::ConfigMismatch {
                expected: expected_config,
                found,
            });
        }
        let mut frames = Vec::new();
        for f in as_arr(field(&v, "frames")?, "frames")? {
            let mut stack = Vec::new();
            for e in as_arr(field(f, "stack")?, "frames.stack")? {
                let [p, epoch] = fixed::<2>(e, "frames.stack")?;
                let p =
                    u32::try_from(p).map_err(|_| malformed("frames.stack: proc out of range"))?;
                stack.push((p, epoch));
            }
            frames.push((stack, usize_field(f, "max_depth")?));
        }
        let mut cycle_stats = Vec::new();
        for c in as_arr(field(&v, "cycle_stats")?, "cycle_stats")? {
            cycle_stats.push(cycle_stats_from_value(c)?);
        }
        let mut pf_queue = Vec::new();
        for e in as_arr(field(&v, "pf_queue")?, "pf_queue")? {
            let [a, t] = fixed::<2>(e, "pf_queue")?;
            let t = u32::try_from(t).map_err(|_| malformed("pf_queue: tag out of range"))?;
            pf_queue.push((a, t));
        }
        let guard = match field(&v, "guard")? {
            Value::Null => None,
            g => Some(guard_from_value(g)?),
        };
        let mut installed = Vec::new();
        for s in as_arr(field(&v, "installed")?, "installed")? {
            installed.push(refs_from_value(s, "installed")?);
        }
        let bg = match field(&v, "bg")? {
            Value::Null => None,
            b => Some(BgState {
                handoffs: u64_field(b, "handoffs")?,
                applied: u64_field(b, "applied")?,
                starved: u64_field(b, "starved")?,
                pending: match field(b, "pending")? {
                    Value::Null => None,
                    p => Some(PendingState {
                        handoff_at: u64_field(p, "handoff_at")?,
                        ready_at: u64_field(p, "ready_at")?,
                        refs: refs_from_value(field(p, "refs")?, "bg.pending.refs")?,
                        denylist: u64s(field(p, "denylist")?, "bg.pending.denylist")?,
                    }),
                },
            }),
        };
        let online = match v.get("online") {
            None | Some(Value::Null) => None,
            Some(o) => {
                let kind = u8::try_from(u64_field(o, "kind")?)
                    .map_err(|_| malformed("online.kind: out of range"))?;
                let words = u64s(field(o, "words")?, "online.words")?;
                Some((kind, words))
            }
        };
        let dfsm_state = u32::try_from(u64_field(&v, "dfsm_state")?)
            .map_err(|_| malformed("dfsm_state: out of range"))?;
        let dfsm_rebuild = u8::try_from(u64_field(&v, "dfsm_rebuild")?)
            .map_err(|_| malformed("dfsm_rebuild: out of range"))?;
        Ok(SessionState {
            cycles: u64_field(&v, "cycles")?,
            breakdown: breakdown_from_value(field(&v, "breakdown")?)?,
            mem: mem_from_value(field(&v, "mem")?)?,
            tracer: tracer_from_value(field(&v, "tracer")?)?,
            image: image_from_value(field(&v, "image")?)?,
            dfsm_state,
            dfsm_rebuild,
            frames,
            active_thread: usize_field(&v, "active_thread")?,
            refs: u64_field(&v, "refs")?,
            checks: u64_field(&v, "checks")?,
            cycle_stats,
            pf_queue,
            guard,
            installed,
            partial_deopts: u64_field(&v, "partial_deopts")?,
            bg,
            events_consumed: u64_field(&v, "events_consumed")?,
            snapshots: u64_field(&v, "snapshots")?,
            fault_state: u64_field(&v, "fault_state")?,
            online,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_state() -> SessionState {
        SessionState {
            cycles: 123_456,
            breakdown: CostBreakdown {
                work: 1,
                memory: 2,
                checks: 3,
                recording: 4,
                analysis: 5,
                matching: 6,
                prefetch: 7,
                optimize: 8,
            },
            mem: MemState {
                l1: CacheState {
                    tick: 9,
                    sets: vec![
                        vec![LineState {
                            block: 4,
                            lru: 2,
                            prefetched_unused: true,
                            origin_prefetched: true,
                            dirty: false,
                        }],
                        vec![],
                    ],
                },
                l2: CacheState {
                    tick: 11,
                    sets: vec![vec![]],
                },
                in_flight: vec![(7, 900)],
                pending: vec![(7, 2, 850)],
                outcomes: vec![PrefetchResolution {
                    tag: 1,
                    block: 3,
                    fate: PrefetchFate::Late,
                    issued_at: 10,
                    resolved_at: 20,
                }],
                stats: hds_memsim::MemStats {
                    l1_hits: 100,
                    l1_misses: 10,
                    ..hds_memsim::MemStats::default()
                },
            },
            tracer: TracerState {
                n_check_cur: 5,
                hibernating: 1,
                total_checks: 77,
                ..TracerState::default()
            },
            image: ImageState {
                epoch: 3,
                total_edits: 3,
                total_deopts: 1,
                copies: vec![CopyState {
                    proc: ProcId(0),
                    since_epoch: 3,
                    checks: vec![(Pc(16), 2), (Pc(20), 1)],
                }],
            },
            dfsm_state: 4,
            dfsm_rebuild: 1,
            frames: vec![(vec![(0, 3), (1, 3)], 5), (vec![], 2)],
            active_thread: 0,
            refs: 4242,
            checks: 99,
            cycle_stats: vec![CycleStats {
                traced_refs: 50,
                hot_streams: 2,
                streams_used: 1,
                dfsm_states: 7,
                dfsm_checks: 3,
                procs_modified: 1,
                grammar_size: 40,
            }],
            pf_queue: vec![(0x1000, 0), (0x1040, 1)],
            guard: Some(GuardState {
                tripped: [true, false, false, false, true],
                trips: [2, 0, 0, 0, 1],
                accuracy: Some(AccuracyState {
                    streams: vec![StreamAccuracyState {
                        stream_id: 0,
                        hash: 0xDEAD,
                        useful: 5,
                        late: 1,
                        polluted: 2,
                        streak: 1,
                    }],
                    denylist: vec![0xBEEF],
                }),
            }),
            installed: vec![vec![
                DataRef::new(Pc(16), Addr(0x100)),
                DataRef::new(Pc(20), Addr(0x140)),
            ]],
            partial_deopts: 1,
            bg: Some(BgState {
                handoffs: 4,
                applied: 2,
                starved: 1,
                pending: Some(PendingState {
                    handoff_at: 100,
                    ready_at: 200,
                    refs: vec![DataRef::new(Pc(16), Addr(0x100))],
                    denylist: vec![0xBEEF],
                }),
            }),
            events_consumed: 987_654,
            snapshots: 6,
            fault_state: 0x1234_5678_9ABC_DEF0,
            online: Some((1, vec![3, 0xFFFF_FFFF_FFFF_FFFF, 42])),
        }
    }

    #[test]
    fn session_state_round_trips() {
        let state = sample_state();
        let snap = state.to_snapshot(42);
        let back = SessionState::from_snapshot(&snap, 42).unwrap();
        assert_eq!(back, state);
    }

    #[test]
    fn from_bytes_revalidates() {
        let snap = sample_state().to_snapshot(42);
        let ok = Snapshot::from_bytes(snap.as_bytes().to_vec()).unwrap();
        assert_eq!(ok, snap);
        assert!(!ok.is_empty());
        assert_eq!(ok.len(), snap.as_bytes().len());
        assert_eq!(ok.clone().into_bytes(), snap.as_bytes().to_vec());
    }

    #[test]
    fn config_mismatch_is_typed() {
        let snap = sample_state().to_snapshot(42);
        assert_eq!(
            SessionState::from_snapshot(&snap, 43),
            Err(SnapshotError::ConfigMismatch {
                expected: 43,
                found: 42
            })
        );
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        assert_eq!(
            Snapshot::from_bytes(b"NOTASNAP".to_vec()),
            Err(SnapshotError::BadMagic)
        );
        assert_eq!(
            Snapshot::from_bytes(Vec::new()),
            Err(SnapshotError::BadMagic)
        );
        let mut bytes = sample_state().to_snapshot(1).into_bytes();
        bytes[7] = b'9';
        assert_eq!(
            Snapshot::from_bytes(bytes),
            Err(SnapshotError::UnsupportedVersion(b'9'))
        );
    }

    #[test]
    fn payload_corruption_is_a_checksum_mismatch() {
        let snap = sample_state().to_snapshot(7);
        let bytes = snap.as_bytes();
        for pos in [18, bytes.len() / 2, bytes.len() - 1] {
            let mut corrupt = bytes.to_vec();
            corrupt[pos] ^= 0x01;
            match Snapshot::from_bytes(corrupt) {
                Err(SnapshotError::ChecksumMismatch { .. }) => {}
                other => panic!("byte {pos}: expected ChecksumMismatch, got {other:?}"),
            }
        }
    }

    #[test]
    fn crc32_matches_known_vector() {
        // The standard IEEE CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn fingerprint_separates_configs_and_modes() {
        let a = OptimizerConfig::test_scale();
        let mut b = OptimizerConfig::test_scale();
        b.max_streams += 1;
        assert_ne!(
            config_fingerprint(&a, RunMode::Baseline),
            config_fingerprint(&b, RunMode::Baseline)
        );
        assert_ne!(
            config_fingerprint(&a, RunMode::Baseline),
            config_fingerprint(&a, RunMode::Analyze)
        );
        assert_eq!(
            config_fingerprint(&a, RunMode::Profile),
            config_fingerprint(&a, RunMode::Profile)
        );
    }

    #[test]
    fn errors_display() {
        assert!(SnapshotError::BadMagic.to_string().contains("magic"));
        assert!(SnapshotError::UnsupportedVersion(b'9')
            .to_string()
            .contains("version"));
        assert!(SnapshotError::ChecksumMismatch {
            expected: 1,
            found: 2
        }
        .to_string()
        .contains("checksum"));
        assert!(SnapshotError::Malformed("x".into())
            .to_string()
            .contains("x"));
        assert!(SnapshotError::ConfigMismatch {
            expected: 1,
            found: 2
        }
        .to_string()
        .contains("fingerprint"));
    }
}
