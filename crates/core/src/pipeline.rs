//! Off-critical-path analysis: the background worker that runs
//! Sequitur, hot-stream detection, and DFSM construction concurrently
//! with the simulated program, plus the pure analysis stages shared
//! with the inline (on-critical-path) implementation.
//!
//! # Determinism
//!
//! The worker runs on a real OS thread, but its *effect* on the
//! simulated run is scheduled entirely in simulated time. At handoff
//! the session computes a ready point
//! `ready_at = handoff_at + analysis_per_ref_cycles * trace_len (+
//! injected stall)` — the modeled latency of the analysis — and the
//! result is installed at the first dynamic check whose cycle count
//! reaches that point. If the worker has not actually finished by then,
//! the session blocks (wall-clock only) on the result channel. Real
//! thread-scheduling jitter therefore never changes what the simulated
//! program observes: runs are bit-identical whatever the host load.
//!
//! # Backpressure
//!
//! Both channels are bounded (`sync_channel(1)`), and the session
//! maintains the invariant that an in-flight request is always resolved
//! — applied or discarded as *starved* — before the next handoff, so at
//! most one trace is ever buffered (double buffering: the trace being
//! analyzed, and the one being collected).

use std::sync::mpsc::{sync_channel, Receiver, SyncSender};
use std::thread::JoinHandle;

use hds_dfsm::{build as build_dfsm, BuildError, Dfsm};
use hds_sequitur::Sequitur;
use hds_trace::{DataRef, SymbolTable};

use crate::config::OptimizerConfig;

/// Content hash of a stream's reference sequence, used by the accuracy
/// policy's cross-installation denylist. `DefaultHasher::new()` is
/// deterministic, so denylisting is reproducible run-to-run.
pub(crate) fn stream_hash(refs: &[DataRef]) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    for r in refs {
        r.pc.0.hash(&mut h);
        r.addr.0.hash(&mut h);
    }
    h.finish()
}

/// Selects the streams to hand to the DFSM from the analysis's
/// hottest-first candidates. Drops candidates that are too short to
/// outlive their match prefix (`len <= head_len`), denylisted by
/// content hash, or redundant against an accepted stream: a contiguous
/// subsequence of one — matching it separately would only duplicate
/// prefetches — or an *extension* of one (same prefix), a coincidental
/// concatenation whose head fires on every walk of the accepted stream
/// but whose extra tail rarely follows.
pub(crate) fn select_streams(
    candidates: impl IntoIterator<Item = Vec<DataRef>>,
    head_len: usize,
    max_streams: usize,
    is_denylisted: impl Fn(u64) -> bool,
) -> Vec<Vec<DataRef>> {
    let mut streams: Vec<Vec<DataRef>> = Vec::new();
    for cand in candidates {
        if cand.len() <= head_len {
            continue;
        }
        if streams.len() >= max_streams {
            break;
        }
        if is_denylisted(stream_hash(&cand)) {
            continue;
        }
        let subsumed = streams
            .iter()
            .any(|s| s.windows(cand.len()).any(|w| w == &cand[..]) || cand.starts_with(&s[..]));
        if !subsumed {
            streams.push(cand);
        }
    }
    streams
}

/// Builds the prefix-matching DFSM over `streams`, with the guard's
/// state cap (when configured) applied on top of the DFSM crate's own
/// limit.
pub(crate) fn machine_for(
    streams: &[Vec<DataRef>],
    config: &OptimizerConfig,
) -> Result<Dfsm, BuildError> {
    let mut dfsm_cfg = config.dfsm.clone();
    if let Some(cap) = config.guard.max_dfsm_states {
        dfsm_cfg.max_states = dfsm_cfg.max_states.min(cap as usize);
    }
    build_dfsm(streams, &dfsm_cfg)
}

/// One awake-phase trace handed to the worker, with everything the
/// analysis needs snapshotted at the handoff point (the worker must not
/// reach back into session state). `Clone` so an in-flight request can
/// be captured in a crash-consistent checkpoint and re-submitted to a
/// fresh worker on resume.
#[derive(Clone, Debug)]
pub(crate) struct AnalyzeRequest {
    /// The recorded references, in trace order.
    pub refs: Vec<DataRef>,
    /// Denylisted stream content hashes at the handoff, sorted.
    pub denylist: Vec<u64>,
}

/// The worker's result for one trace. Guard *observations* it implies
/// (grammar growth, DFSM state overflow) are carried as data and
/// recorded against the session's `GuardRuntime` on the main thread at
/// the apply point — the worker never touches the runtime.
#[derive(Debug, Default)]
pub(crate) struct AnalyzeOutcome {
    /// References the grammar consumed (short of the trace when muted).
    pub trace_len: u64,
    /// Grammar size (total body symbols) the analysis ran over.
    pub grammar_size: usize,
    /// Peak Sequitur rule count while consuming the trace.
    pub rules_peak: u64,
    /// The grammar-rule cap was exceeded mid-trace: the profile is
    /// incomplete and the cycle completes degraded.
    pub muted: bool,
    /// Hot data streams detected.
    pub hot_streams: usize,
    /// Streams selected for the DFSM (empty unless optimizing).
    pub streams: Vec<Vec<DataRef>>,
    /// The built matcher, when optimizing and construction stayed in
    /// budget.
    pub dfsm: Option<Dfsm>,
    /// Subset construction overflowed: the observed state count
    /// (limit + 1) for the `DfsmStates` guard.
    pub dfsm_over_limit: Option<u64>,
}

/// Runs the full analyze stage over one trace: grammar construction,
/// hot-stream detection, stream selection, and (when `optimize`) DFSM
/// construction. Pure with respect to session state — both the
/// background worker and tests call this directly.
pub(crate) fn analyze_trace(
    config: &OptimizerConfig,
    optimize: bool,
    req: &AnalyzeRequest,
) -> AnalyzeOutcome {
    let rules_cap = config.guard.max_grammar_rules;
    let mut symbols = SymbolTable::new();
    let mut sequitur = Sequitur::new();
    let mut rules_peak = 0u64;
    let mut muted = false;
    for &r in &req.refs {
        let s = symbols.intern(r);
        sequitur.append(s);
        let rules = sequitur.rule_count() as u64;
        rules_peak = rules_peak.max(rules);
        // Same mute semantics as the inline path: the reference that
        // crossed the cap is in the grammar, the rest of the trace is
        // not.
        if rules_cap.is_some_and(|cap| rules > cap) {
            muted = true;
            break;
        }
    }
    let trace_len = sequitur.input_len();
    let grammar = sequitur.grammar();
    let mut out = AnalyzeOutcome {
        trace_len,
        grammar_size: grammar.size(),
        rules_peak,
        muted,
        ..AnalyzeOutcome::default()
    };
    if muted {
        return out;
    }
    let analysis_cfg = config
        .analysis
        .clone()
        .with_heat_percent(trace_len, config.heat_percent);
    let result = hds_hotstream::fast::analyze(&grammar, &analysis_cfg);
    out.hot_streams = result.streams.len();
    if optimize {
        let candidates = result
            .streams
            .iter()
            .map(|s| symbols.resolve_all(&s.symbols));
        let streams = select_streams(candidates, config.dfsm.head_len, config.max_streams, |h| {
            req.denylist.binary_search(&h).is_ok()
        });
        if !streams.is_empty() {
            match machine_for(&streams, config) {
                Ok(dfsm) => out.dfsm = Some(dfsm),
                Err(BuildError::TooManyStates { limit }) => {
                    out.dfsm_over_limit = Some(limit as u64 + 1);
                }
                Err(_) => {}
            }
        }
        out.streams = streams;
    }
    out
}

/// An in-flight background analysis, tracked in simulated time.
///
/// Carries the handed-off request itself so a checkpoint taken while an
/// analysis is in flight can re-submit the identical trace to a fresh
/// worker on resume (`analyze_trace` is pure, so the re-run result is
/// bit-identical).
#[derive(Clone, Debug)]
pub(crate) struct PendingAnalysis {
    /// Simulated cycle count at the handoff.
    pub handoff_at: u64,
    /// The deterministic install point: the first check at or past this
    /// cycle count resolves the analysis.
    pub ready_at: u64,
    /// The handed-off request (trace + denylist at the handoff point).
    pub request: AnalyzeRequest,
}

/// The background analysis worker: a thread consuming
/// [`AnalyzeRequest`]s and producing [`AnalyzeOutcome`]s over bounded
/// channels, plus the session-side bookkeeping (the in-flight request
/// and the handoff/apply/starve counters the report surfaces).
#[derive(Debug)]
pub(crate) struct BackgroundAnalysis {
    tx: Option<SyncSender<AnalyzeRequest>>,
    rx: Receiver<AnalyzeOutcome>,
    handle: Option<JoinHandle<()>>,
    /// Weak side of a liveness token owned by the worker thread: it
    /// upgrades iff the thread is still running. Tests use it to assert
    /// that dropping a session mid-phase leaves no detached thread.
    alive: std::sync::Weak<()>,
    /// The in-flight request, if any. Invariant: resolved (applied or
    /// starved) before the next handoff.
    pub pending: Option<PendingAnalysis>,
    /// Traces handed to the worker.
    pub handoffs: u64,
    /// Results installed at their ready point.
    pub applied: u64,
    /// Results discarded (hibernation ended first, the run finished, or
    /// the worker-lag guard tripped).
    pub starved: u64,
}

impl BackgroundAnalysis {
    /// Spawns the worker. `optimize` selects whether DFSM construction
    /// runs (it is skipped in analyze-only modes, exactly as inline).
    pub fn spawn(config: OptimizerConfig, optimize: bool) -> Self {
        let (tx, req_rx) = sync_channel::<AnalyzeRequest>(1);
        let (out_tx, rx) = sync_channel::<AnalyzeOutcome>(1);
        let token = std::sync::Arc::new(());
        let alive = std::sync::Arc::downgrade(&token);
        let handle = std::thread::Builder::new()
            .name("hds-analysis".into())
            .spawn(move || {
                let _token = token; // dropped when the thread exits
                while let Ok(req) = req_rx.recv() {
                    if out_tx.send(analyze_trace(&config, optimize, &req)).is_err() {
                        break;
                    }
                }
            })
            .expect("failed to spawn the analysis worker thread");
        BackgroundAnalysis {
            tx: Some(tx),
            rx,
            handle: Some(handle),
            alive,
            pending: None,
            handoffs: 0,
            applied: 0,
            starved: 0,
        }
    }

    /// A weak handle that upgrades iff the worker thread is still
    /// running. After the session (and thus this struct) is dropped,
    /// `upgrade()` returns `None` — the joined thread released its
    /// token.
    pub fn worker_probe(&self) -> std::sync::Weak<()> {
        self.alive.clone()
    }

    /// Hands a trace to the worker. `false` when the worker is gone
    /// (it panicked), in which case the caller degrades the cycle.
    pub fn submit(&mut self, req: AnalyzeRequest) -> bool {
        self.tx.as_ref().is_some_and(|tx| tx.send(req).is_ok())
    }

    /// Receives the in-flight result, blocking (wall-clock only) until
    /// the worker delivers it. `None` when the worker is gone.
    pub fn recv(&mut self) -> Option<AnalyzeOutcome> {
        self.rx.recv().ok()
    }
}

impl Drop for BackgroundAnalysis {
    fn drop(&mut self) {
        // Close the request channel so the worker's recv fails, then
        // join. An undelivered result sits in the bounded buffer (the
        // worker never blocks on send), so this cannot deadlock.
        drop(self.tx.take());
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hds_trace::{Addr, Pc};

    fn stream(base: u64, len: u64) -> Vec<DataRef> {
        (0..len)
            .map(|k| DataRef::new(Pc(16 + (k as u32 % 4) * 4), Addr(base + k * 256)))
            .collect()
    }

    fn hot_trace() -> Vec<DataRef> {
        let s = stream(0x4000, 8);
        let mut refs = Vec::new();
        for _ in 0..50 {
            refs.extend_from_slice(&s);
        }
        refs
    }

    fn config() -> OptimizerConfig {
        let mut c = OptimizerConfig::test_scale();
        c.analysis.min_length = 4;
        c.analysis.min_unique_refs = 2;
        c
    }

    #[test]
    fn analyze_trace_detects_and_builds() {
        let req = AnalyzeRequest {
            refs: hot_trace(),
            denylist: Vec::new(),
        };
        let out = analyze_trace(&config(), true, &req);
        assert_eq!(out.trace_len, 400);
        assert!(out.hot_streams > 0, "no hot streams: {out:?}");
        assert!(!out.streams.is_empty());
        assert!(out.dfsm.is_some());
        assert!(!out.muted);
        assert!(out.rules_peak > 0);
    }

    #[test]
    fn denylisted_streams_are_not_selected() {
        let open = analyze_trace(
            &config(),
            true,
            &AnalyzeRequest {
                refs: hot_trace(),
                denylist: Vec::new(),
            },
        );
        let mut denylist: Vec<u64> = open.streams.iter().map(|s| stream_hash(s)).collect();
        denylist.sort_unstable();
        let blocked = analyze_trace(
            &config(),
            true,
            &AnalyzeRequest {
                refs: hot_trace(),
                denylist: denylist.clone(),
            },
        );
        // Previously-subsumed candidates may take the denylisted
        // streams' slots, but no selected stream may be denylisted.
        assert!(!open.streams.is_empty());
        for s in &blocked.streams {
            assert!(!denylist.contains(&stream_hash(s)));
        }
    }

    #[test]
    fn grammar_cap_mutes_and_reports_peak() {
        let mut c = config();
        c.guard = c.guard.with_max_grammar_rules(2);
        // Distinct repeated digrams each reify a rule, so the rule
        // count climbs steadily past the cap.
        let mut refs: Vec<DataRef> = Vec::new();
        for k in 0..32u64 {
            let a = DataRef::new(Pc(16), Addr(0x1000 + k * 1024));
            let b = DataRef::new(Pc(20), Addr(0x1000 + k * 1024 + 512));
            refs.extend([a, b, a, b]);
        }
        let total = refs.len() as u64;
        let out = analyze_trace(
            &c,
            true,
            &AnalyzeRequest {
                refs,
                denylist: Vec::new(),
            },
        );
        assert!(out.muted);
        assert!(out.trace_len < total);
        assert!(out.rules_peak > 2);
        assert!(out.streams.is_empty());
        assert!(out.dfsm.is_none());
    }

    #[test]
    fn worker_round_trips_a_request() {
        let mut bg = BackgroundAnalysis::spawn(config(), true);
        assert!(bg.submit(AnalyzeRequest {
            refs: hot_trace(),
            denylist: Vec::new(),
        }));
        let out = bg.recv().expect("worker died");
        assert!(out.dfsm.is_some());
        // Dropping with no traffic in flight joins cleanly.
        drop(bg);
    }

    #[test]
    fn worker_drop_with_undelivered_result_does_not_deadlock() {
        let mut bg = BackgroundAnalysis::spawn(config(), true);
        assert!(bg.submit(AnalyzeRequest {
            refs: hot_trace(),
            denylist: Vec::new(),
        }));
        // Drop without receiving: the result lands in the bounded
        // buffer and the worker exits on channel close.
        drop(bg);
    }

    #[test]
    fn worker_probe_dies_with_the_worker() {
        let bg = BackgroundAnalysis::spawn(config(), true);
        let probe = bg.worker_probe();
        assert!(probe.upgrade().is_some(), "worker should be running");
        drop(bg);
        // Drop joins the thread, so by here the token is released.
        assert!(
            probe.upgrade().is_none(),
            "worker thread outlived its session"
        );
    }

    #[test]
    fn select_streams_orders_and_dedupes() {
        let a = stream(0x1000, 6);
        let sub: Vec<DataRef> = a[1..5].to_vec(); // contiguous subsequence
        let mut ext = a.clone(); // extension: same prefix, longer
        ext.extend(stream(0x9000, 2));
        let b = stream(0x2000, 6);
        let picked = select_streams(vec![a.clone(), sub, ext, b.clone()], 2, 8, |_| false);
        assert_eq!(picked, vec![a, b]);
    }
}
