//! Optimizer configuration: run modes, prefetch policies, and the knobs
//! of every subsystem in one place.

use hds_backend::BackendSelect;
use hds_bursty::BurstyConfig;
use hds_dfsm::DfsmConfig;
use hds_guard::GuardConfig;
use hds_hotstream::AnalysisConfig;
use hds_memsim::HierarchyConfig;

/// What to prefetch when a hot data stream's head matches — the three
/// prefetching bars of the paper's Figure 12.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PrefetchPolicy {
    /// Match prefixes but never issue prefetches — Figure 12's *No-pref*:
    /// "the cost of performing all the profiling, analysis and hot data
    /// stream prefix matching, yet not inserting prefetches".
    None,
    /// On a match, prefetch the cache blocks that *sequentially follow*
    /// the matched reference — Figure 12's *Seq-pref*, "equivalent to our
    /// dynamic prefetching scheme if hot data streams are sequentially
    /// allocated".
    SequentialBlocks,
    /// On a match, prefetch the remaining stream addresses (the tail) —
    /// Figure 12's *Dyn-pref*, the paper's scheme.
    StreamTail,
}

impl PrefetchPolicy {
    /// The label used in the paper's figures.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PrefetchPolicy::None => "No-pref",
            PrefetchPolicy::SequentialBlocks => "Seq-pref",
            PrefetchPolicy::StreamTail => "Dyn-pref",
        }
    }
}

/// When to issue the prefetches of a matched stream's tail.
///
/// The paper's implementation "makes no attempt to schedule prefetches
/// (they are triggered as soon as the prefix matches). More intelligent
/// prefetch scheduling could produce larger benefits" (§4.3) — this is
/// that future-work extension.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PrefetchScheduling {
    /// Issue every tail prefetch immediately at the match (the paper's
    /// implementation).
    AllAtOnce,
    /// Issue at most `degree` queued prefetches per subsequent data
    /// reference, so fetches arrive closer to their uses (less pollution,
    /// possibly more late arrivals).
    Windowed {
        /// Prefetches issued per subsequent reference.
        degree: usize,
    },
}

/// Whether the optimizer keeps re-profiling (the paper's scheme) or
/// optimizes once and leaves the code in place.
///
/// The paper notes hot data streams "have been shown to be fairly stable
/// across program inputs and could serve as the basis for an off-line
/// static prefetching scheme \[10\]. On the other hand, for programs with
/// distinct phase behavior, a dynamic prefetching scheme that adapts …
/// may perform better" and leaves the comparison to future work (§1) —
/// this switch makes the comparison runnable.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CycleStrategy {
    /// Profile → optimize → hibernate → de-optimize, repeatedly (the
    /// paper's scheme).
    Dynamic,
    /// Profile once, optimize once, and keep the injected code for the
    /// rest of the run (no re-profiling, no de-optimization).
    Static,
}

/// Where the analyze phase (Sequitur → hot-stream detection → DFSM
/// construction) runs relative to the simulated program.
///
/// The paper runs analysis on the critical path: "the profiling phase
/// is followed by an analysis and optimization phase" that the program
/// waits out. [`AnalysisConcurrency::Background`] moves it onto a
/// worker thread: the program keeps executing hibernation references
/// while the analysis runs, and the result is installed at a
/// deterministic ready point in simulated time (see
/// `crates/core/src/pipeline.rs` and DESIGN.md §9). Runs stay
/// bit-identical across hosts and thread schedules.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum AnalysisConcurrency {
    /// Analyze at the end of each awake phase, on the critical path
    /// (the paper's implementation): per-reference grammar maintenance
    /// is charged during profiling and the final pass at phase end.
    #[default]
    Inline,
    /// Analyze on a background worker with a double-buffered trace
    /// handoff over a bounded channel. The critical path pays only
    /// recording; if the hibernation span ends (or the worker-lag
    /// guard trips) before the ready point, the result is discarded —
    /// *analysis starvation* — and the cycle completes unoptimized.
    Background,
}

/// How much of the machinery to run — the bars of Figures 11 and 12.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RunMode {
    /// The original, unmodified program (the normalisation baseline).
    Baseline,
    /// Only the dynamic checks execute — Figure 11's *Base* bar
    /// ("measured by setting `nCheck0` to an extremely large value").
    ChecksOnly,
    /// Checks + temporal data-reference profiling — Figure 11's *Prof*.
    Profile,
    /// Checks + profiling + online Sequitur + hot-data-stream analysis —
    /// Figure 11's *Hds*.
    Analyze,
    /// The full cycle including DFSM injection, with the given prefetch
    /// policy — Figure 12's bars.
    Optimize(PrefetchPolicy),
}

impl RunMode {
    /// Does this mode record data references while awake?
    #[must_use]
    pub fn records(self) -> bool {
        !matches!(self, RunMode::Baseline | RunMode::ChecksOnly)
    }

    /// Does this mode run Sequitur + the hot-stream analysis?
    #[must_use]
    pub fn analyzes(self) -> bool {
        matches!(self, RunMode::Analyze | RunMode::Optimize(_))
    }

    /// Does this mode inject prefix-matching code?
    #[must_use]
    pub fn optimizes(self) -> Option<PrefetchPolicy> {
        match self {
            RunMode::Optimize(p) => Some(p),
            _ => None,
        }
    }
}

/// All the knobs of the optimizer in one place.
#[derive(Clone, Debug)]
pub struct OptimizerConfig {
    /// Bursty-tracing counters.
    pub bursty: BurstyConfig,
    /// Hot-data-stream thresholds. The heat threshold is re-derived per
    /// cycle as `heat_percent` of the traced references; `min_length`,
    /// `max_length` and `min_unique_refs` are used as given.
    pub analysis: AnalysisConfig,
    /// Heat threshold as a percentage of each cycle's traced references
    /// (the paper: streams must "account for at least 1% of the collected
    /// trace").
    pub heat_percent: f64,
    /// DFSM construction (`headLen`, state bound).
    pub dfsm: DfsmConfig,
    /// Cache geometry and cycle costs.
    pub hierarchy: HierarchyConfig,
    /// Upper bound on streams handed to the DFSM per cycle (hottest
    /// first); guards against pathological analyses.
    pub max_streams: usize,
    /// Prefetch degree for [`PrefetchPolicy::SequentialBlocks`] is the
    /// matched stream's tail length capped at this value.
    pub seq_pref_cap: usize,
    /// When tail prefetches are issued (§4.3 future work).
    pub scheduling: PrefetchScheduling,
    /// Dynamic (re-profiling) or static (optimize-once) operation (§1
    /// future work).
    pub strategy: CycleStrategy,
    /// Whether the analyze phase runs inline (the paper) or on a
    /// background worker, off the critical path.
    pub concurrency: AnalysisConcurrency,
    /// Budget guards and the accuracy-driven partial-deoptimization
    /// policy. Disabled by default: with every guard off the layer is
    /// behaviorally inert and reported cycle costs are identical to a
    /// build without it.
    pub guard: GuardConfig,
    /// Which prefetch backend drives `RunMode::Optimize` sessions. The
    /// default, [`BackendSelect::DynPref`], is the paper's grammar →
    /// DFSM path and leaves every existing code path untouched; the
    /// alternative backends (Pangloss, Triangel) replace profiling +
    /// analysis + matching with an online table-driven predictor (see
    /// DESIGN.md §14).
    pub backend: BackendSelect,
}

impl OptimizerConfig {
    /// The paper's experiment configuration (§4.1), at simulation scale:
    /// `nInstr0 = 60`-check bursts, awake/hibernate phasing, streams of
    /// more than 10 unique references accounting for ≥ 1% of the trace,
    /// `headLen = 2`. The bursty counters are scaled (2% burst sampling,
    /// awake 25 of every 100 burst-periods) so that runs of a few million
    /// references complete several optimization cycles; EXPERIMENTS.md
    /// records the scaling.
    #[must_use]
    pub fn paper_scale() -> Self {
        OptimizerConfig {
            bursty: BurstyConfig::new(1_350, 150, 8, 40),
            analysis: AnalysisConfig {
                heat_threshold: 1, // re-derived per cycle
                min_length: 10,
                max_length: 100,
                min_unique_refs: 10,
                chop_long_rules: false,
            },
            heat_percent: 1.0,
            dfsm: DfsmConfig::new(2),
            hierarchy: HierarchyConfig::pentium_iii(),
            max_streams: 64,
            seq_pref_cap: 12,
            scheduling: PrefetchScheduling::AllAtOnce,
            strategy: CycleStrategy::Dynamic,
            concurrency: AnalysisConcurrency::Inline,
            guard: GuardConfig::disabled(),
            backend: BackendSelect::DynPref,
        }
    }

    /// A small configuration for unit and integration tests: short
    /// bursts, quick cycles, permissive stream thresholds.
    #[must_use]
    pub fn test_scale() -> Self {
        OptimizerConfig {
            bursty: BurstyConfig::new(240, 40, 4, 8),
            analysis: AnalysisConfig {
                heat_threshold: 1,
                min_length: 5,
                max_length: 100,
                min_unique_refs: 4,
                chop_long_rules: false,
            },
            heat_percent: 1.0,
            dfsm: DfsmConfig::new(2),
            hierarchy: HierarchyConfig::pentium_iii(),
            max_streams: 64,
            seq_pref_cap: 16,
            scheduling: PrefetchScheduling::AllAtOnce,
            strategy: CycleStrategy::Dynamic,
            concurrency: AnalysisConcurrency::Inline,
            guard: GuardConfig::disabled(),
            backend: BackendSelect::DynPref,
        }
    }
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig::paper_scale()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_predicates() {
        assert!(!RunMode::Baseline.records());
        assert!(!RunMode::ChecksOnly.records());
        assert!(RunMode::Profile.records());
        assert!(!RunMode::Profile.analyzes());
        assert!(RunMode::Analyze.analyzes());
        assert_eq!(RunMode::Analyze.optimizes(), None);
        assert_eq!(
            RunMode::Optimize(PrefetchPolicy::StreamTail).optimizes(),
            Some(PrefetchPolicy::StreamTail)
        );
    }

    #[test]
    fn policy_labels_match_figure12() {
        assert_eq!(PrefetchPolicy::None.label(), "No-pref");
        assert_eq!(PrefetchPolicy::SequentialBlocks.label(), "Seq-pref");
        assert_eq!(PrefetchPolicy::StreamTail.label(), "Dyn-pref");
    }

    #[test]
    fn paper_scale_matches_paper_settings() {
        let c = OptimizerConfig::paper_scale();
        assert_eq!(c.bursty.burst_period(), 1_500); // ~1500-ref bursts, as in §4.1
        assert_eq!(c.dfsm.head_len, 2); // headLen = 2 (§4.3)
        assert_eq!(c.analysis.min_length, 10); // >10 refs (§4.1)
        assert!((c.heat_percent - 1.0).abs() < f64::EPSILON); // 1% of trace
    }
}
