//! The executor: runs a program event stream through the full
//! profile → analyze → optimize → hibernate cycle, charging cycles for
//! everything, exactly once per event.

use hds_backend::{AnyBackend, PrefetchBackend};
use hds_bursty::{BurstyTracer, Mode, Phase, Signal};
use hds_dfsm::{build as build_dfsm, BuildError, Dfsm, StateId};
use hds_guard::{CrashPoint, FaultInjector, GuardRuntime, NoFaults, Trip};
use hds_hotstream::fast;
use hds_memsim::MemorySystem;
use hds_sequitur::Sequitur;
use hds_telemetry::events::GuardKind;
use hds_telemetry::{events as tev, NullObserver, Observer};
use hds_trace::{DataRef, SymbolTable, TraceBuffer};
#[cfg(test)]
use hds_vulcan::ProgramSource;
use hds_vulcan::{EditJournal, Event, FrameTracker, Image, Procedure};

use crate::config::{
    AnalysisConcurrency, CycleStrategy, OptimizerConfig, PrefetchPolicy, PrefetchScheduling,
    RunMode,
};
use crate::pipeline::{
    machine_for, select_streams, stream_hash, AnalyzeOutcome, AnalyzeRequest, BackgroundAnalysis,
    PendingAnalysis,
};
use crate::report::{CostBreakdown, CycleStats, RunReport, WorkerStats};
use crate::snapshot::{config_fingerprint, BgState, PendingState, SessionState, Snapshot};
use crate::SnapshotError;

/// All mutable state of a run.
#[derive(Debug)]
struct RunState {
    cycles: u64,
    breakdown: CostBreakdown,
    mem: MemorySystem,
    tracer: BurstyTracer,
    buffer: TraceBuffer,
    symbols: SymbolTable,
    sequitur: Sequitur,
    image: Image<usize>,
    dfsm: Option<Dfsm>,
    dfsm_state: StateId,
    /// Per-thread call stacks; single-threaded programs use only slot 0.
    frames: Vec<FrameTracker>,
    active_thread: usize,
    refs: u64,
    checks: u64,
    cycle_stats: Vec<CycleStats>,
    /// Tail addresses (with their triggering stream id) awaiting issue
    /// under windowed scheduling.
    pf_queue: std::collections::VecDeque<(hds_trace::Addr, u32)>,
    /// Budget guards + accuracy policy; `None` when every guard is off
    /// (the common case), so the unguarded paths stay branch-cheap.
    guard: Option<GuardRuntime>,
    /// The streams of the current DFSM installation (index = stream id),
    /// kept so the accuracy policy can rebuild the matcher over the
    /// survivors when it surgically removes a stream.
    installed: Vec<Vec<DataRef>>,
    /// Streams removed by accuracy-driven partial de-optimization.
    partial_deopts: u64,
    /// The background analysis worker
    /// ([`AnalysisConcurrency::Background`] only): channels, the
    /// in-flight request, and the handoff/apply/starve counters.
    bg: Option<BackgroundAnalysis>,
    /// Set by an injected crash ([`CrashPoint`]): the session is dead
    /// and consumes no further events until the supervisor restarts it
    /// from its last snapshot.
    crashed: bool,
    /// Workload events fully accepted by [`Session::on_event`] — the
    /// resume cursor a snapshot records.
    events_consumed: u64,
    /// Phase-boundary snapshots captured (reconciles with
    /// `RecoverySnapshot` telemetry and `RunReport::snapshots`).
    snapshots: u64,
    /// Supervisor restarts that produced this session (stamped by
    /// [`Session::mark_restarted`]; never serialized).
    restarts: u64,
    /// Write-ahead journal for stop-the-world image edits: a commit
    /// torn by a mid-edit crash is deterministically rolled forward by
    /// [`Session::crash_recover`], never left half-patched.
    journal: EditJournal<usize>,
    /// The most recent phase-boundary snapshot (checkpointing only).
    latest_snapshot: Option<Snapshot>,
    /// Whether phase boundaries capture snapshots.
    checkpoints: bool,
    /// How to reconstruct the DFSM from `installed` on resume:
    /// 0 = none, 1 = full build, 2 = accuracy-rebuild over survivors.
    dfsm_rebuild: u8,
    /// The online table-driven prefetch backend, when
    /// `OptimizerConfig::backend` selects one other than the default
    /// grammar → DFSM path. `None` for `BackendSelect::DynPref`, so the
    /// paper's pipeline runs exactly as before — the alternative
    /// backends replace profiling, analysis, and prefix matching with
    /// per-access table lookups (DESIGN.md §14).
    online: Option<AnyBackend>,
}

/// An incremental (streaming) optimizer session: feed execution events
/// one at a time with [`Session::on_event`], read progress with the
/// accessors, and produce the final [`RunReport`] with
/// [`Session::finish`].
///
/// [`crate::SessionBuilder::run`] is a thin driver over this type;
/// embedders that produce events from a live system (rather than a
/// [`ProgramSource`]) use `Session` directly.
///
/// # Observability
///
/// The session is generic over an [`Observer`] (default:
/// [`NullObserver`]). Every phase boundary, stream detection, DFSM
/// build, prefetch issue/outcome, and de-optimization is reported to
/// the observer. Emission sites are gated on `O::ENABLED`, a
/// monomorphization-time constant, so the default `NullObserver`
/// session compiles to exactly the uninstrumented code — zero overhead
/// when off (the `observer_overhead` benchmark in `crates/bench`
/// verifies this).
///
/// # Examples
///
/// ```
/// use hds_core::{OptimizerConfig, PrefetchPolicy, SessionBuilder};
/// use hds_trace::{AccessKind, Addr, DataRef, Pc};
/// use hds_vulcan::{Event, ProcId, Procedure};
///
/// let mut session = SessionBuilder::new(OptimizerConfig::test_scale())
///     .procedures(vec![Procedure::new("main", vec![Pc(16)])])
///     .optimize(PrefetchPolicy::StreamTail)
///     .build();
/// session.on_event(Event::Enter(ProcId(0)));
/// session.on_event(Event::Access(
///     DataRef::new(Pc(16), Addr(0x100)),
///     AccessKind::Load,
/// ));
/// session.on_event(Event::Exit(ProcId(0)));
/// let report = session.finish("embedded");
/// assert_eq!(report.refs, 1);
/// ```
///
/// With an observer (borrow it to keep it afterwards):
///
/// ```
/// use hds_core::{OptimizerConfig, PrefetchPolicy, SessionBuilder};
/// use hds_telemetry::MetricsRecorder;
///
/// let mut rec = MetricsRecorder::new();
/// let session = SessionBuilder::new(OptimizerConfig::test_scale())
///     .observer(&mut rec)
///     .optimize(PrefetchPolicy::StreamTail)
///     .build();
/// let _report = session.finish("observed");
/// assert_eq!(rec.cycles_completed(), 0);
/// ```
#[derive(Debug)]
pub struct Session<O: Observer = NullObserver, F: FaultInjector = NoFaults> {
    config: OptimizerConfig,
    mode: RunMode,
    st: RunState,
    obs: O,
    faults: F,
}

impl<O: Observer, F: FaultInjector> Session<O, F> {
    /// The one real constructor; [`crate::SessionBuilder`] (the sole
    /// public entry point) funnels here.
    pub(crate) fn construct(
        config: OptimizerConfig,
        mode: RunMode,
        procedures: Vec<Procedure>,
        obs: O,
        faults: F,
    ) -> Self {
        let mut guard = config
            .guard
            .is_enabled()
            .then(|| GuardRuntime::new(config.guard.clone()));
        // An online backend replaces the grammar → DFSM pipeline for
        // optimizing sessions; `None` (the default Dyn-pref selection)
        // leaves every existing path untouched.
        let online = if mode.optimizes().is_some() {
            AnyBackend::from_select(&config.backend, config.hierarchy.l1.block_size)
        } else {
            None
        };
        // Online backends register their table rows as guard "streams"
        // once, up front: accuracy windows then judge rows exactly like
        // DFSM stream ids, and `drop_tag` mirrors partial deopt.
        if let (Some(g), Some(b)) = (guard.as_mut(), online.as_ref()) {
            if g.tracks_accuracy() {
                g.begin_install(b.tag_registrations());
            }
        }
        // The worker thread only exists in background mode — inline
        // sessions (the default) spawn nothing, so the zero-overhead
        // claims of the observer/fault generics are untouched. Online
        // backends never analyze, so they spawn no worker either.
        let bg = (config.concurrency == AnalysisConcurrency::Background
            && mode.analyzes()
            && online.is_none())
        .then(|| BackgroundAnalysis::spawn(config.clone(), mode.optimizes().is_some()));
        let st = RunState {
            cycles: 0,
            breakdown: CostBreakdown::default(),
            mem: MemorySystem::new(config.hierarchy.clone()),
            tracer: BurstyTracer::new(config.bursty),
            buffer: TraceBuffer::new(),
            symbols: SymbolTable::new(),
            sequitur: Sequitur::new(),
            image: Image::new(procedures),
            dfsm: None,
            dfsm_state: StateId::START,
            frames: vec![FrameTracker::new()],
            active_thread: 0,
            refs: 0,
            checks: 0,
            cycle_stats: Vec::new(),
            pf_queue: std::collections::VecDeque::new(),
            guard,
            installed: Vec::new(),
            partial_deopts: 0,
            bg,
            crashed: false,
            events_consumed: 0,
            snapshots: 0,
            restarts: 0,
            journal: EditJournal::new(),
            latest_snapshot: None,
            checkpoints: false,
            dfsm_rebuild: 0,
            online,
        };
        let mut session = Session {
            config,
            mode,
            st,
            obs,
            faults,
        };
        // The first profiling cycle starts with the program (the tracer
        // begins awake); baseline modes never cycle.
        if O::ENABLED && session.mode.records() {
            session.obs.cycle_start(&tev::CycleStart {
                opt_cycle: 0,
                at_cycle: 0,
            });
            session
                .obs
                .span(&tev::SpanEvent::begin(tev::SpanKind::Profile, 0));
        }
        session
    }

    /// The attached observer.
    #[must_use]
    pub fn observer(&self) -> &O {
        &self.obs
    }

    /// The attached observer, mutably.
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.obs
    }

    /// The attached fault injector, mutably (e.g. to read an
    /// `hds_guard::FaultPlan`'s counts mid-run).
    pub fn fault_injector_mut(&mut self) -> &mut F {
        &mut self.faults
    }

    /// The guard runtime, when any guard is configured.
    #[must_use]
    pub fn guard(&self) -> Option<&GuardRuntime> {
        self.st.guard.as_ref()
    }

    /// Turns on crash-consistent checkpointing: every phase boundary
    /// captures a versioned, checksummed [`Snapshot`] of the full
    /// optimizer state, retrievable with [`Session::latest_snapshot`].
    pub fn enable_checkpoints(&mut self) {
        self.st.checkpoints = true;
    }

    /// Whether an injected crash has killed this session. A crashed
    /// session consumes no further events; restart it from
    /// [`Session::latest_snapshot`] via [`Session::resume_from`].
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.st.crashed
    }

    /// Workload events fully accepted so far — the resume cursor.
    #[must_use]
    pub fn events_consumed(&self) -> u64 {
        self.st.events_consumed
    }

    /// Phase-boundary snapshots captured so far.
    #[must_use]
    pub fn snapshots_taken(&self) -> u64 {
        self.st.snapshots
    }

    /// The most recent phase-boundary snapshot, when checkpointing is
    /// on and at least one boundary has passed.
    #[must_use]
    pub fn latest_snapshot(&self) -> Option<&Snapshot> {
        self.st.latest_snapshot.as_ref()
    }

    /// Moves the most recent phase-boundary snapshot out of the session
    /// without cloning — the hibernation hook for `hds-serve`'s LRU
    /// eviction, which snapshots a cold tenant, drops the live session,
    /// and later rehydrates it via [`Session::resume_from`] (or a fresh
    /// build plus replay when no boundary had passed yet).
    #[must_use]
    pub fn take_latest_snapshot(&mut self) -> Option<Snapshot> {
        self.st.latest_snapshot.take()
    }

    /// A deterministic digest of the edited program image — the
    /// bit-identity witness the chaos-crash suite compares between
    /// recovered and uninterrupted runs.
    #[must_use]
    pub fn image_digest(&self) -> u64 {
        self.st.image.digest_with(|len| *len as u64)
    }

    /// Inspects the write-ahead edit journal and rolls a torn commit
    /// forward, leaving the image exactly as if the commit had
    /// completed. Idempotent; returns whether anything was replayed.
    /// Emits a `RecoveryReplay` telemetry event either way.
    pub fn crash_recover(&mut self) -> bool {
        let rolled = self.st.journal.recover(&mut self.st.image);
        if O::ENABLED {
            self.obs.recovery_replay(&tev::RecoveryReplay {
                events_consumed: self.st.events_consumed,
                rolled_forward: rolled,
            });
        }
        rolled
    }

    /// Stamps the supervisor's restart count onto the session (so the
    /// final [`RunReport::restarts`] reconciles) and emits the matching
    /// `RecoveryRestart` telemetry event, stamped with this session's
    /// resume cursor. Restart counts belong to the supervisor's
    /// lifetime, not the crashed segment's, so they are never
    /// serialized; `backoff_cycles` is the modeled backoff the
    /// supervisor charged before this attempt.
    pub fn mark_restarted(&mut self, attempt: u32, backoff_cycles: u64) {
        self.st.restarts = u64::from(attempt);
        if O::ENABLED {
            self.obs.recovery_restart(&tev::RecoveryRestart {
                attempt,
                resumed_at_event: self.st.events_consumed,
                backoff_cycles,
            });
        }
    }

    /// A liveness probe for the background analysis worker thread
    /// (`None` when analysis runs inline). The probe's `upgrade()`
    /// fails once the worker has fully exited — the
    /// no-detached-threads regression tests key on this.
    #[must_use]
    pub fn worker_probe(&self) -> Option<std::sync::Weak<()>> {
        self.st.bg.as_ref().map(BackgroundAnalysis::worker_probe)
    }

    /// Reconstructs a session from a phase-boundary [`Snapshot`],
    /// continuing bit-identically to the run that captured it: feed it
    /// the same workload with the snapshot's
    /// [`events_consumed`](Session::events_consumed) leading events
    /// skipped, and the final report and image digest match the
    /// uninterrupted run exactly.
    ///
    /// `config`, `mode`, and `procedures` must be the ones the
    /// capturing session ran under (checked via a config fingerprint).
    /// The DFSM, grammar, and trace buffer are rebuilt, not decoded:
    /// their construction is deterministic in the serialized state.
    /// Checkpointing stays enabled on the resumed session.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`]: a corrupted blob (`ChecksumMismatch`), a
    /// foreign format (`BadMagic`/`UnsupportedVersion`/`Malformed`), or
    /// a snapshot from a different configuration (`ConfigMismatch`).
    pub fn resume_from(
        config: OptimizerConfig,
        mode: RunMode,
        procedures: Vec<Procedure>,
        snapshot: &Snapshot,
        obs: O,
        mut faults: F,
    ) -> Result<Self, SnapshotError> {
        let expected = config_fingerprint(&config, mode);
        let state = SessionState::from_snapshot(snapshot, expected)?;
        let mut mem = MemorySystem::new(config.hierarchy.clone());
        mem.restore_state(&state.mem);
        let mut tracer = BurstyTracer::new(config.bursty);
        tracer.restore_state(&state.tracer);
        let mut image = Image::new(procedures);
        image.restore_state(state.image);
        let dfsm = match state.dfsm_rebuild {
            0 => None,
            1 => Some(machine_for(&state.installed, &config).map_err(|_| {
                SnapshotError::Malformed("installed streams no longer build a dfsm".into())
            })?),
            2 => Some(build_dfsm(&state.installed, &config.dfsm).map_err(|_| {
                SnapshotError::Malformed("installed streams no longer build a dfsm".into())
            })?),
            d => {
                return Err(SnapshotError::Malformed(format!(
                    "dfsm_rebuild: bad discriminant {d}"
                )))
            }
        };
        let frames = state
            .frames
            .into_iter()
            .map(|(stack, max_depth)| {
                let stack = stack
                    .into_iter()
                    .map(|(p, e)| (hds_vulcan::ProcId(p), e))
                    .collect();
                FrameTracker::from_parts(stack, max_depth)
            })
            .collect();
        let guard = state.guard.as_ref().map(|gs| {
            let mut g = GuardRuntime::new(config.guard.clone());
            g.restore_state(gs);
            g
        });
        // Background mode: spawn a fresh worker and re-submit the
        // in-flight request, if any — `analyze_trace` is pure, so the
        // recomputed outcome is identical to the one the crash lost.
        let bg = state.bg.map(|bs| {
            let mut bg = BackgroundAnalysis::spawn(config.clone(), mode.optimizes().is_some());
            bg.handoffs = bs.handoffs;
            bg.applied = bs.applied;
            bg.starved = bs.starved;
            if let Some(p) = bs.pending {
                let request = AnalyzeRequest {
                    refs: p.refs,
                    denylist: p.denylist,
                };
                if bg.submit(request.clone()) {
                    bg.pending = Some(PendingAnalysis {
                        handoff_at: p.handoff_at,
                        ready_at: p.ready_at,
                        request,
                    });
                }
            }
            bg
        });
        faults.restore_state(state.fault_state);
        // Online backend: rebuild the same backend the config selects
        // and restore its table image word-for-word. A snapshot captured
        // under a different backend (or none) is rejected — resuming it
        // would silently diverge.
        let online = if mode.optimizes().is_some() {
            AnyBackend::from_select(&config.backend, config.hierarchy.l1.block_size)
        } else {
            None
        };
        let online = match (online, state.online) {
            (None, None) => None,
            (Some(mut b), Some((kind, words))) => {
                if b.kind().wire_code() != kind {
                    return Err(SnapshotError::Malformed(format!(
                        "online backend kind {kind} does not match session backend {}",
                        b.kind().wire_code()
                    )));
                }
                b.restore_words(&words)
                    .map_err(|e| SnapshotError::Malformed(format!("online backend state: {e}")))?;
                Some(b)
            }
            (Some(_), None) => {
                return Err(SnapshotError::Malformed(
                    "snapshot has no online backend state for an online session".into(),
                ))
            }
            (None, Some(_)) => {
                return Err(SnapshotError::Malformed(
                    "snapshot carries online backend state for a dfsm session".into(),
                ))
            }
        };
        let st = RunState {
            cycles: state.cycles,
            breakdown: state.breakdown,
            mem,
            tracer,
            buffer: TraceBuffer::new(),
            symbols: SymbolTable::new(),
            sequitur: Sequitur::new(),
            image,
            dfsm,
            dfsm_state: StateId(state.dfsm_state),
            frames,
            active_thread: state.active_thread,
            refs: state.refs,
            checks: state.checks,
            cycle_stats: state.cycle_stats,
            pf_queue: state
                .pf_queue
                .iter()
                .map(|&(a, t)| (hds_trace::Addr(a), t))
                .collect(),
            guard,
            installed: state.installed,
            partial_deopts: state.partial_deopts,
            bg,
            crashed: false,
            events_consumed: state.events_consumed,
            snapshots: state.snapshots,
            restarts: 0,
            journal: EditJournal::new(),
            latest_snapshot: Some(snapshot.clone()),
            checkpoints: true,
            dfsm_rebuild: state.dfsm_rebuild,
            online,
        };
        let mut session = Session {
            config,
            mode,
            st,
            obs,
            faults,
        };
        // Re-open the restored phase's span so a recorder that outlives
        // the crashed attempt (the supervisor's observer) never sees an
        // end boundary without a matching begin.
        if O::ENABLED && session.mode.records() {
            let kind = match session.st.tracer.phase() {
                Phase::Awake => tev::SpanKind::Profile,
                Phase::Hibernating => tev::SpanKind::Hibernate,
            };
            let opt_cycle = session.st.cycle_stats.len() as u64;
            session
                .obs
                .span(&tev::SpanEvent::begin(kind, session.st.cycles).with_args(opt_cycle, 0));
            // Ditto for a re-submitted in-flight background analysis:
            // its eventual resolution emits an end boundary.
            if let Some(p) = session.st.bg.as_ref().and_then(|bg| bg.pending.as_ref()) {
                let trace_len = p.request.refs.len() as u64;
                session.obs.span(
                    &tev::SpanEvent::begin(tev::SpanKind::BgAnalysis, p.handoff_at)
                        .with_args(opt_cycle, trace_len),
                );
            }
        }
        Ok(session)
    }

    /// Processes one execution event, charging its simulated cost and
    /// driving the profile -> analyze -> optimize -> hibernate machinery.
    ///
    /// A crashed session (see [`Session::crashed`]) ignores further
    /// events: the process is dead, and recovery goes through the
    /// supervisor and [`Session::resume_from`].
    pub fn on_event(&mut self, event: Event) {
        if self.st.crashed {
            return;
        }
        self.st.events_consumed += 1;
        let cost = self.config.hierarchy.cost;
        let st = &mut self.st;
        match event {
            Event::Work(n) => {
                let c = u64::from(n) * cost.work_cycles;
                st.cycles += c;
                st.breakdown.work += c;
            }
            Event::Enter(p) => {
                st.frames[st.active_thread].enter(p, st.image.epoch());
                do_check(&self.config, self.mode, st, &mut self.obs, &mut self.faults);
            }
            Event::Exit(p) => st.frames[st.active_thread].exit(p),
            Event::BackEdge(_) => {
                do_check(&self.config, self.mode, st, &mut self.obs, &mut self.faults);
            }
            Event::Access(r, kind) => {
                do_access(
                    &self.config,
                    self.mode,
                    st,
                    &mut self.obs,
                    &mut self.faults,
                    r,
                    kind,
                );
            }
            Event::Prefetch(addr) => {
                // A prefetch instruction belonging to the program
                // itself (software prefetching baselines); charged in
                // every mode, including the baseline.
                issue_prefetch(&self.config, st, &mut self.obs, addr, tev::PROGRAM_STREAM);
                drain_outcomes(st, &mut self.obs);
            }
            Event::Thread(t) => {
                // Context switch: call stacks are per-thread; the
                // matcher state and profiling counters stay global
                // (the injected code uses process-global variables,
                // exactly as in Figure 7).
                let t = t as usize;
                while st.frames.len() <= t {
                    st.frames.push(FrameTracker::new());
                }
                st.active_thread = t;
            }
        }
    }

    /// Simulated cycles charged so far.
    #[must_use]
    pub fn simulated_cycles(&self) -> u64 {
        self.st.cycles
    }

    /// Data references processed so far.
    #[must_use]
    pub fn refs_so_far(&self) -> u64 {
        self.st.refs
    }

    /// Optimization cycles completed so far.
    #[must_use]
    pub fn opt_cycles_so_far(&self) -> usize {
        self.st.cycle_stats.len()
    }

    /// Current cache/prefetch statistics.
    #[must_use]
    pub fn mem_stats(&self) -> &hds_memsim::MemStats {
        self.st.mem.stats()
    }

    /// Ends the session and produces the report, labelled with the
    /// program's `name`.
    #[must_use]
    pub fn finish(mut self, name: &str) -> RunReport {
        // A background analysis still in flight at program end can no
        // longer be installed: resolve it as starved so the handoff is
        // accounted for, then let the worker shut down (dropping the
        // run state closes the request channel and joins the thread).
        starve_background(&mut self.st, &mut self.obs);
        // Deliver any outcomes resolved since the last access (e.g.
        // pollution from the final fills).
        drain_outcomes(&mut self.st, &mut self.obs);
        // Close the phase span left open at program end. A crashed
        // session closes nothing: its dangling spans are exactly what a
        // flight dump uses to name the phase that died.
        if O::ENABLED && self.mode.records() && !self.st.crashed {
            let kind = match self.st.tracer.phase() {
                Phase::Awake => tev::SpanKind::Profile,
                Phase::Hibernating => tev::SpanKind::Hibernate,
            };
            let opt_cycle = self.st.cycle_stats.len() as u64;
            self.obs
                .span(&tev::SpanEvent::end(kind, self.st.cycles).with_args(opt_cycle, 0));
        }
        let mode_label = match (self.mode, self.st.online.as_ref()) {
            // An online backend's report is labeled with its backend,
            // not the prefetch policy: the policy's tail-vs-sequential
            // distinction belongs to the DFSM path.
            (RunMode::Optimize(_), Some(b)) => b.kind().label().to_string(),
            (RunMode::Baseline, _) => "Baseline".to_string(),
            (RunMode::ChecksOnly, _) => "Base".to_string(),
            (RunMode::Profile, _) => "Prof".to_string(),
            (RunMode::Analyze, _) => "Hds".to_string(),
            (RunMode::Optimize(p), _) => p.label().to_string(),
        };
        let st = self.st;
        let worker = st
            .bg
            .as_ref()
            .map_or_else(WorkerStats::default, |bg| WorkerStats {
                handoffs: bg.handoffs,
                applied: bg.applied,
                starved: bg.starved,
            });
        RunReport {
            name: name.to_string(),
            mode: mode_label,
            total_cycles: st.cycles,
            breakdown: st.breakdown,
            mem: *st.mem.stats(),
            refs: st.refs,
            checks_executed: st.checks,
            guard_trips: st.guard.as_ref().map_or(0, GuardRuntime::trips_total),
            partial_deopts: st.partial_deopts,
            worker,
            snapshots: st.snapshots,
            restarts: st.restarts,
            cycles: st.cycle_stats,
        }
    }
}

/// Reports a guard trip to the observer — only the first trip of each
/// guard per cycle, so emitted events reconcile exactly with
/// [`GuardRuntime::trips_total`].
fn report_trip<O: Observer>(st: &RunState, obs: &mut O, trip: Trip) {
    if O::ENABLED && trip.first_in_cycle {
        obs.guard_tripped(&tev::GuardTripped {
            guard: trip.guard,
            budget: trip.budget,
            observed: trip.observed,
            opt_cycle: st.cycle_stats.len() as u64,
            at_cycle: st.cycles,
        });
    }
}

/// Issues one prefetch, charging its cost. With an enabled observer the
/// prefetch is tagged in the memory system (so its outcome is
/// attributed back to `stream`) and reported; otherwise this is exactly
/// the untagged path.
fn issue_prefetch<O: Observer>(
    config: &OptimizerConfig,
    st: &mut RunState,
    obs: &mut O,
    addr: hds_trace::Addr,
    stream: u32,
) {
    let cost = config.hierarchy.cost;
    st.cycles += cost.prefetch_issue_cycles;
    st.breakdown.prefetch += cost.prefetch_issue_cycles;
    // The accuracy policy needs per-stream attribution even without an
    // observer attached; tagging is timing-neutral (see the
    // `observation_does_not_perturb_the_run` test).
    let track = O::ENABLED || st.guard.as_ref().is_some_and(GuardRuntime::tracks_accuracy);
    if track {
        st.mem.prefetch_tagged_at(addr, st.cycles, stream);
    } else {
        st.mem.prefetch_at(addr, st.cycles);
    }
    if O::ENABLED {
        obs.prefetch_issued(&tev::PrefetchIssued {
            stream_id: stream,
            addr: addr.0,
            block: addr.block(config.hierarchy.l1.block_size),
            at_cycle: st.cycles,
            at_ref: st.refs,
        });
    }
}

/// Forwards resolved prefetch outcomes from the memory system's
/// attribution queue to the observer and the accuracy tracker. No-op
/// (and no queue ever fills) without an enabled observer or an accuracy
/// policy.
fn drain_outcomes<O: Observer>(st: &mut RunState, obs: &mut O) {
    let track_guard = st.guard.as_ref().is_some_and(GuardRuntime::tracks_accuracy);
    if !O::ENABLED && !track_guard {
        return;
    }
    for o in st.mem.take_outcomes() {
        let fate = match o.fate {
            hds_memsim::PrefetchFate::Useful => tev::PrefetchFate::Useful,
            hds_memsim::PrefetchFate::Late => tev::PrefetchFate::Late,
            hds_memsim::PrefetchFate::Polluted => tev::PrefetchFate::Polluted,
        };
        if track_guard {
            if let Some(g) = &mut st.guard {
                g.record_outcome(o.tag, fate);
            }
        }
        if O::ENABLED {
            obs.prefetch_outcome(&tev::PrefetchOutcome {
                stream_id: o.tag,
                block: o.block,
                fate,
                issued_at_cycle: o.issued_at,
                resolved_at_cycle: o.resolved_at,
                resolved_at_ref: st.refs,
            });
        }
    }
}

/// One dynamic check site (procedure entry or loop back-edge).
fn do_check<O: Observer, F: FaultInjector>(
    config: &OptimizerConfig,
    mode: RunMode,
    st: &mut RunState,
    obs: &mut O,
    faults: &mut F,
) {
    {
        let cost = config.hierarchy.cost;
        match mode {
            RunMode::Baseline => {} // original binary: no checks exist
            RunMode::ChecksOnly => {
                // Figure 11's Base configuration: the checking code runs
                // forever (nCheck "extremely large"), so only the basic
                // check cost is paid.
                st.checks += 1;
                st.cycles += cost.check_cycles;
                st.breakdown.checks += cost.check_cycles;
            }
            _ => {
                st.checks += 1;
                let signal = st.tracer.on_check();
                let c = if st.tracer.mode() == Mode::Instrumented {
                    cost.instr_check_cycles
                } else {
                    cost.check_cycles
                };
                st.cycles += c;
                st.breakdown.checks += c;
                // Background mode: a ready analysis result installs at
                // the first check at or past its simulated ready point
                // — resolved before the signal, so an installation "at"
                // the wake-up check precedes de-optimization.
                poll_background(config, mode, st, obs, faults);
                if st.crashed {
                    // A mid-edit crash during the background install:
                    // the session is dead; the signal dies with it.
                    return;
                }
                match signal {
                    Some(Signal::BurstBegin) if st.tracer.phase() == Phase::Awake => {
                        st.buffer.begin_burst();
                    }
                    Some(Signal::BurstEnd) if st.buffer.in_burst() => {
                        st.buffer.end_burst_discard_empty();
                        // One recorded burst folded into the grammar
                        // (inline analysis only): a = references absorbed
                        // so far this phase, b = grammar rules.
                        if O::ENABLED && mode.analyzes() && st.bg.is_none() {
                            obs.span(
                                &tev::SpanEvent::instant(tev::SpanKind::SequiturAppend, st.cycles)
                                    .with_args(
                                        st.sequitur.input_len(),
                                        st.sequitur.rule_count() as u64,
                                    ),
                            );
                        }
                    }
                    Some(Signal::BurstBegin) => {}
                    Some(Signal::BurstEnd) if st.tracer.phase() == Phase::Hibernating => {
                        // Hibernation-period burst boundaries: nothing is
                        // recorded, but the prefetching code is live.
                        // These are the accuracy policy's evaluation
                        // windows — frequent enough to react within one
                        // hibernation span, coarse enough to accumulate
                        // outcome samples.
                        evaluate_accuracy(config, st, obs, faults);
                    }
                    Some(Signal::BurstEnd) => {}
                    Some(Signal::AwakeComplete) => {
                        if st.buffer.in_burst() {
                            st.buffer.end_burst_discard_empty();
                        }
                        if O::ENABLED {
                            obs.span(
                                &tev::SpanEvent::end(tev::SpanKind::Profile, st.cycles)
                                    .with_args(st.cycle_stats.len() as u64, 0),
                            );
                        }
                        finish_awake(config, mode, st, obs, faults);
                        if st.crashed {
                            // Killed mid-edit or mid-handoff inside the
                            // analysis/install: the boundary was never
                            // reached, so no snapshot is captured.
                            return;
                        }
                        st.tracer.hibernate();
                        if O::ENABLED {
                            obs.phase_transition(&phase_event(st, tev::PhaseKind::Hibernating));
                            obs.span(
                                &tev::SpanEvent::begin(tev::SpanKind::Hibernate, st.cycles)
                                    .with_args(st.cycle_stats.len() as u64, 0),
                            );
                        }
                        checkpoint(config, mode, st, obs, faults);
                    }
                    Some(Signal::HibernationComplete) => {
                        if config.strategy == CycleStrategy::Static && st.dfsm.is_some() {
                            // Static operation: the code stays optimized
                            // and profiling never resumes — just start
                            // another hibernation span.
                            st.tracer.hibernate();
                            if O::ENABLED {
                                obs.phase_transition(&phase_event(st, tev::PhaseKind::Hibernating));
                                obs.span(
                                    &tev::SpanEvent::end(tev::SpanKind::Hibernate, st.cycles)
                                        .with_args(st.cycle_stats.len() as u64, 0),
                                );
                                obs.span(
                                    &tev::SpanEvent::begin(tev::SpanKind::Hibernate, st.cycles)
                                        .with_args(st.cycle_stats.len() as u64, 0),
                                );
                            }
                            checkpoint(config, mode, st, obs, faults);
                        } else {
                            if O::ENABLED {
                                obs.span(
                                    &tev::SpanEvent::end(tev::SpanKind::Hibernate, st.cycles)
                                        .with_args(st.cycle_stats.len() as u64, 0),
                                );
                            }
                            // A background analysis that missed the
                            // whole hibernation span can no longer be
                            // installed: resolve it as starved before
                            // profiling resumes.
                            starve_background(st, obs);
                            // De-optimize: remove the injected checks and
                            // prefetches, return to profiling (§1,
                            // Figure 1).
                            let had_code = st.dfsm.is_some();
                            st.image.deoptimize();
                            st.dfsm = None;
                            st.dfsm_rebuild = 0;
                            st.dfsm_state = StateId::START;
                            st.pf_queue.clear();
                            st.installed.clear();
                            if let Some(g) = &mut st.guard {
                                // New profiling cycle: fresh trip
                                // latches. DFSM sessions have no
                                // installation to track until the next
                                // install; an online backend's table
                                // persists across cycles (it is
                                // hardware-like state, never
                                // de-optimized), so its surviving rows
                                // stay registered.
                                g.begin_cycle();
                                match st.online.as_ref() {
                                    Some(b) if g.tracks_accuracy() => {
                                        g.begin_install(b.tag_registrations());
                                    }
                                    _ => g.begin_install(std::iter::empty::<(u32, u64)>()),
                                }
                            }
                            st.tracer.wake();
                            if O::ENABLED {
                                if had_code {
                                    obs.deoptimize(&tev::Deoptimize {
                                        at_cycle: st.cycles,
                                        opt_cycle: st.cycle_stats.len() as u64,
                                        partial: false,
                                        stream_id: None,
                                    });
                                }
                                obs.phase_transition(&phase_event(st, tev::PhaseKind::Awake));
                                obs.cycle_start(&tev::CycleStart {
                                    opt_cycle: st.cycle_stats.len() as u64,
                                    at_cycle: st.cycles,
                                });
                                obs.span(
                                    &tev::SpanEvent::begin(tev::SpanKind::Profile, st.cycles)
                                        .with_args(st.cycle_stats.len() as u64, 0),
                                );
                            }
                            checkpoint(config, mode, st, obs, faults);
                        }
                    }
                    None => {}
                }
            }
        }
    }
}

/// A [`tev::PhaseTransition`] snapshot of the current run state.
fn phase_event(st: &RunState, to: tev::PhaseKind) -> tev::PhaseTransition {
    tev::PhaseTransition {
        at_cycle: st.cycles,
        at_check: st.checks,
        to,
        opt_cycle: st.cycle_stats.len() as u64,
        duty_cycle: st.tracer.duty_cycle(),
    }
}

/// A phase boundary: capture a snapshot (when checkpointing is on),
/// then draw the phase-boundary kill point. Capture strictly precedes
/// the draw, so a crash *at* a boundary still leaves that boundary's
/// snapshot behind — each boundary is captured exactly once per
/// supervised run, which is what makes `RecoverySnapshot` telemetry
/// reconcile with [`RunReport::snapshots`](crate::RunReport).
fn checkpoint<O: Observer, F: FaultInjector>(
    config: &OptimizerConfig,
    mode: RunMode,
    st: &mut RunState,
    obs: &mut O,
    faults: &mut F,
) {
    if st.checkpoints {
        // Boundaries sit between profiles: the trace buffer and grammar
        // are always empty here, which is why they need no encoding.
        debug_assert!(!st.buffer.in_burst());
        debug_assert_eq!(st.sequitur.input_len(), 0);
        // Count the capture first so the serialized counter includes
        // the snapshot in flight: a resumed session reports every
        // capture that ever happened on its timeline.
        st.snapshots += 1;
        let state = export_session_state(st, faults);
        let snap = state.to_snapshot(config_fingerprint(config, mode));
        if O::ENABLED {
            obs.recovery_snapshot(&tev::RecoverySnapshot {
                opt_cycle: st.cycle_stats.len() as u64,
                at_cycle: st.cycles,
                events_consumed: st.events_consumed,
                bytes: snap.len() as u64,
            });
        }
        st.latest_snapshot = Some(snap);
    }
    // The kill point is drawn whether or not checkpointing is on, so
    // crash schedules land identically for supervised and bare runs.
    if F::ENABLED && faults.crash(CrashPoint::PhaseBoundary) {
        st.crashed = true;
        if O::ENABLED {
            obs.span(
                &tev::SpanEvent::instant(tev::SpanKind::Crash, st.cycles)
                    .with_args(CRASH_PHASE_BOUNDARY, st.cycle_stats.len() as u64),
            );
        }
    }
}

/// `a`-payload of a [`tev::SpanKind::Crash`] instant: which
/// [`CrashPoint`] killed the session.
pub(crate) const CRASH_PHASE_BOUNDARY: u64 = 0;
/// See [`CRASH_PHASE_BOUNDARY`].
pub(crate) const CRASH_MID_EDIT: u64 = 1;
/// See [`CRASH_PHASE_BOUNDARY`].
pub(crate) const CRASH_MID_HANDOFF: u64 = 2;

/// Exports the full mutable run state for serialization. The
/// fault-injector's in-simulation stream rides along so a resumed
/// session re-draws exactly the faults the original would have.
fn export_session_state<F: FaultInjector>(st: &RunState, faults: &F) -> SessionState {
    SessionState {
        cycles: st.cycles,
        breakdown: st.breakdown,
        mem: st.mem.export_state(),
        tracer: st.tracer.export_state(),
        image: st.image.export_state(),
        dfsm_state: st.dfsm_state.0,
        dfsm_rebuild: st.dfsm_rebuild,
        frames: st
            .frames
            .iter()
            .map(|f| {
                let stack = f
                    .export_stack()
                    .into_iter()
                    .map(|(p, e)| (p.0, e))
                    .collect();
                (stack, f.max_depth())
            })
            .collect(),
        active_thread: st.active_thread,
        refs: st.refs,
        checks: st.checks,
        cycle_stats: st.cycle_stats.clone(),
        pf_queue: st.pf_queue.iter().map(|&(a, t)| (a.0, t)).collect(),
        guard: st.guard.as_ref().map(GuardRuntime::export_state),
        installed: st.installed.clone(),
        partial_deopts: st.partial_deopts,
        bg: st.bg.as_ref().map(|bg| BgState {
            handoffs: bg.handoffs,
            applied: bg.applied,
            starved: bg.starved,
            pending: bg.pending.as_ref().map(|p| PendingState {
                handoff_at: p.handoff_at,
                ready_at: p.ready_at,
                refs: p.request.refs.clone(),
                denylist: p.request.denylist.clone(),
            }),
        }),
        events_consumed: st.events_consumed,
        snapshots: st.snapshots,
        fault_state: faults.snapshot_state(),
        online: st
            .online
            .as_ref()
            .map(|b| (b.kind().wire_code(), b.export_words())),
    }
}

/// One data reference.
fn do_access<O: Observer, F: FaultInjector>(
    config: &OptimizerConfig,
    mode: RunMode,
    st: &mut RunState,
    obs: &mut O,
    faults: &mut F,
    r: DataRef,
    kind: hds_trace::AccessKind,
) {
    {
        let cost = config.hierarchy.cost;
        st.refs += 1;
        let res = st.mem.access_at(r.addr, kind, st.cycles);
        st.cycles += res.cycles;
        st.breakdown.memory += res.cycles;

        // Profiling: record the reference if a burst is live. Online
        // backends learn from the access stream directly and never
        // record a profile.
        if st.online.is_none()
            && mode.records()
            && st.tracer.should_record()
            && st.buffer.in_burst()
        {
            if F::ENABLED && faults.truncate_trace() {
                // Profiling-buffer overflow: the profile collected so
                // far this phase is lost; recording resumes at the next
                // burst.
                st.buffer.clear();
                st.symbols = SymbolTable::new();
                st.sequitur = Sequitur::new();
            } else {
                // A fault may corrupt the *traced* copy of the
                // reference (a torn read of the profiling buffer); the
                // executed access above is untouched.
                let traced = if F::ENABLED { faults.corrupt_ref(r) } else { r };
                st.cycles += cost.record_ref_cycles;
                st.breakdown.recording += cost.record_ref_cycles;
                st.buffer.record(traced);
                // Background mode records only: grammar maintenance
                // happens on the worker, so the critical path pays
                // nothing per reference for analysis — the headline
                // win of concurrent analysis.
                if mode.analyzes() && st.bg.is_none() {
                    // A tripped grammar guard mutes Sequitur for the
                    // rest of the phase: the grammar stops growing and
                    // stops charging analysis cycles.
                    let muted = st
                        .guard
                        .as_ref()
                        .is_some_and(|g| g.is_tripped(GuardKind::GrammarRules));
                    if !muted {
                        let s = st.symbols.intern(traced);
                        st.sequitur.append(s);
                        st.cycles += cost.analysis_per_ref_cycles;
                        st.breakdown.analysis += cost.analysis_per_ref_cycles;
                        let rules = st.sequitur.rule_count() as u64;
                        let trip = st
                            .guard
                            .as_mut()
                            .and_then(|g| g.observe(GuardKind::GrammarRules, rules));
                        if let Some(t) = trip {
                            report_trip(st, obs, t);
                        }
                    }
                }
            }
        }

        // Online table-driven backend (Pangloss / Triangel): a single
        // lookup-and-train step per access, replacing prefix matching.
        // Table operations are charged at the same per-check rate as an
        // injected DFSM site; issued prefetches ride the existing
        // tagged-issue path so guard accuracy windows and telemetry see
        // them exactly like Dyn-pref streams.
        if let Some(mut b) = st.online.take() {
            let policy = mode.optimizes().unwrap_or(PrefetchPolicy::None);
            let missed = !matches!(res.outcome, hds_memsim::AccessOutcome::L1Hit);
            let mut out = Vec::new();
            let ops = b.on_access(r, missed, &mut out);
            let c = cost.dfsm_check_cycles * ops;
            st.cycles += c;
            st.breakdown.matching += c;
            if policy != PrefetchPolicy::None {
                for (addr, tag) in out {
                    issue_prefetch(config, st, obs, addr, tag);
                }
            }
            st.online = Some(b);
            drain_outcomes(st, obs);
            return;
        }

        // Injected prefix-matching code (only in optimize modes, only at
        // instrumented pcs, only for activations entered after the patch).
        if let Some(policy) = mode.optimizes() {
            // Windowed scheduling: issue a few queued prefetches per
            // reference so fetches land closer to their uses.
            if let PrefetchScheduling::Windowed { degree } = config.scheduling {
                for _ in 0..degree {
                    let Some((addr, tag)) = st.pf_queue.pop_front() else {
                        break;
                    };
                    issue_prefetch(config, st, obs, addr, tag);
                }
            }
            let epoch = st.frames[st.active_thread].current_epoch().unwrap_or(0);
            if st.image.injected_at(r.pc, epoch).is_some() {
                // Flat per-site cost: the injected if-chains are "sorted
                // in such a way that more likely cases come first"
                // (§3.1), so the expected number of executed comparisons
                // is small regardless of chain length.
                let c = cost.dfsm_check_cycles;
                st.cycles += c;
                st.breakdown.matching += c;
                // Resolve the transition (and copy out the targets)
                // first, so the machine borrow ends before issuing.
                let step = st.dfsm.as_ref().map(|dfsm| {
                    dfsm.transition(st.dfsm_state, r).map(|next| {
                        let tag = dfsm
                            .completed_streams(next)
                            .first()
                            .map_or(tev::PROGRAM_STREAM, |s| s.0);
                        (next, dfsm.prefetches(next).to_vec(), tag)
                    })
                });
                if let Some(step) = step {
                    match step {
                        Some((next, targets, tag)) => {
                            st.dfsm_state = next;
                            if !targets.is_empty() {
                                let block = config.hierarchy.l1.block_size;
                                let addrs: Vec<hds_trace::Addr> = match policy {
                                    PrefetchPolicy::None => Vec::new(),
                                    PrefetchPolicy::StreamTail => targets,
                                    PrefetchPolicy::SequentialBlocks => {
                                        // Same trigger, but fetch the blocks
                                        // sequentially following the matched
                                        // reference (§4.3's Seq-pref).
                                        let n = targets.len().min(config.seq_pref_cap);
                                        let base = r.addr.block(block);
                                        (1..=n as u64)
                                            .map(|k| hds_trace::Addr((base + k) * block))
                                            .collect()
                                    }
                                };
                                match config.scheduling {
                                    PrefetchScheduling::AllAtOnce => {
                                        for addr in addrs {
                                            issue_prefetch(config, st, obs, addr, tag);
                                        }
                                    }
                                    PrefetchScheduling::Windowed { .. } => {
                                        st.pf_queue.extend(addrs.into_iter().map(|a| (a, tag)));
                                        let depth = st.pf_queue.len() as u64;
                                        let trip = st.guard.as_mut().and_then(|g| {
                                            g.observe(GuardKind::PrefetchQueue, depth)
                                        });
                                        if let Some(t) = trip {
                                            // Keep the oldest entries:
                                            // they are closest to their
                                            // use points.
                                            st.pf_queue.truncate(t.budget as usize);
                                            report_trip(st, obs, t);
                                        }
                                    }
                                }
                            }
                        }
                        None => st.dfsm_state = StateId::START,
                    }
                }
            }
        }
        drain_outcomes(st, obs);
    }
}

/// End of an awake phase: run the analysis, and in optimize modes
/// build the DFSM and edit the image. Resets the profile state for
/// the next cycle either way.
fn finish_awake<O: Observer, F: FaultInjector>(
    config: &OptimizerConfig,
    mode: RunMode,
    st: &mut RunState,
    obs: &mut O,
    faults: &mut F,
) {
    {
        let cost = config.hierarchy.cost;
        if st.online.is_some() {
            // Online backends never profile or analyze: the awake phase
            // boundary just closes an (empty) optimization-cycle record
            // so cycle counting — and the traced-reference
            // reconciliation built on it — stays uniform across
            // backends.
            degraded_cycle(st, obs, 0, 0);
            return;
        }
        if mode.analyzes() && st.bg.is_some() {
            // Concurrent analysis: hand the trace to the worker and
            // keep executing; the result installs at its ready point
            // during hibernation (or starves).
            handoff_analysis(config, st, obs, faults);
            st.buffer.clear();
            st.symbols = SymbolTable::new();
            st.sequitur = Sequitur::new();
            return;
        }
        if mode.analyzes() {
            let trace_len = st.sequitur.input_len();
            let grammar = st.sequitur.grammar();
            // Final analysis pass cost: linear in the grammar size.
            let c = cost.analysis_per_ref_cycles * grammar.size() as u64;
            // Degraded cycles skip the final pass entirely: a starved
            // budget (fault injection), a muted grammar (the rule guard
            // tripped mid-phase, so the profile is incomplete), or an
            // over-budget cost projection. Profiling carries over to the
            // next cycle; the skipped pass charges nothing.
            let starved = F::ENABLED && faults.starve_analysis();
            let muted = st
                .guard
                .as_ref()
                .is_some_and(|g| g.is_tripped(GuardKind::GrammarRules));
            let trip = st
                .guard
                .as_mut()
                .and_then(|g| g.observe(GuardKind::AnalysisCycles, c));
            let over_budget = trip.is_some();
            if let Some(t) = trip {
                report_trip(st, obs, t);
            }
            if starved || muted || over_budget {
                degraded_cycle(st, obs, trace_len, grammar.size());
                st.buffer.clear();
                st.symbols = SymbolTable::new();
                st.sequitur = Sequitur::new();
                return;
            }
            st.cycles += c;
            st.breakdown.analysis += c;
            // a = grammar size the pass runs over, b = traced references.
            if O::ENABLED {
                obs.span(
                    &tev::SpanEvent::begin(tev::SpanKind::Analyze, st.cycles)
                        .with_args(grammar.size() as u64, trace_len),
                );
            }
            let analysis_cfg = config
                .analysis
                .clone()
                .with_heat_percent(trace_len, config.heat_percent);
            let result = fast::analyze(&grammar, &analysis_cfg);
            let mut stats = CycleStats {
                traced_refs: trace_len,
                hot_streams: result.streams.len(),
                grammar_size: grammar.size(),
                ..CycleStats::default()
            };

            if mode.optimizes().is_some() {
                let head_len = config.dfsm.head_len;
                // Hottest-first selection with subsumption/extension
                // dedup and the accuracy policy's denylist — shared
                // with the background worker (`pipeline`).
                let guard = st.guard.as_ref();
                let symbols = &st.symbols;
                let streams = select_streams(
                    result
                        .streams
                        .iter()
                        .map(|s| symbols.resolve_all(&s.symbols)),
                    head_len,
                    config.max_streams,
                    |h| guard.is_some_and(|g| g.is_denylisted(h)),
                );
                stats.streams_used = streams.len();
                if O::ENABLED {
                    // Ids match the DFSM's StreamIds (build preserves
                    // input order), so prefetch events correlate back.
                    for (i, s) in streams.iter().enumerate() {
                        obs.stream_detected(&tev::StreamDetected {
                            opt_cycle: st.cycle_stats.len() as u64,
                            stream_id: i as u32,
                            len: s.len(),
                            head_len,
                        });
                    }
                }
                if !streams.is_empty() {
                    // a = streams fed to subset construction; the end
                    // boundary's b = resulting state count (0 on failure).
                    if O::ENABLED {
                        obs.span(
                            &tev::SpanEvent::begin(tev::SpanKind::DfsmBuild, st.cycles)
                                .with_args(streams.len() as u64, 0),
                        );
                    }
                    let built = machine_for(&streams, config);
                    if O::ENABLED {
                        let states = built.as_ref().map_or(0, |d| d.state_count() as u64);
                        obs.span(
                            &tev::SpanEvent::end(tev::SpanKind::DfsmBuild, st.cycles)
                                .with_args(streams.len() as u64, states),
                        );
                    }
                    match built {
                        Ok(dfsm) => {
                            install_machine(config, st, obs, faults, dfsm, streams, &mut stats);
                        }
                        Err(BuildError::TooManyStates { limit }) => {
                            // Over the state budget: skip injection for
                            // this cycle (the guard only trips when its
                            // own cap, not the crate's, was binding).
                            let trip = st
                                .guard
                                .as_mut()
                                .and_then(|g| g.observe(GuardKind::DfsmStates, limit as u64 + 1));
                            if let Some(t) = trip {
                                report_trip(st, obs, t);
                            }
                        }
                        Err(_) => {}
                    }
                }
            }
            if O::ENABLED {
                obs.cycle_end(&tev::CycleEnd {
                    opt_cycle: st.cycle_stats.len() as u64,
                    at_cycle: st.cycles,
                    traced_refs: stats.traced_refs,
                    hot_streams: stats.hot_streams,
                    streams_used: stats.streams_used,
                    dfsm_states: stats.dfsm_states,
                    dfsm_checks: stats.dfsm_checks,
                    procs_modified: stats.procs_modified,
                    grammar_size: stats.grammar_size,
                });
            }
            if O::ENABLED {
                obs.span(
                    &tev::SpanEvent::end(tev::SpanKind::Analyze, st.cycles)
                        .with_args(stats.grammar_size as u64, stats.traced_refs),
                );
            }
            st.cycle_stats.push(stats);
        }
        // Fresh profile for the next cycle: hibernation references are
        // ignored and each cycle analyzes only its own trace (§2.4).
        st.buffer.clear();
        st.symbols = SymbolTable::new();
        st.sequitur = Sequitur::new();
    }
}

/// Installs a built DFSM: stop-the-world image edit (with fault
/// injection), optimize-cost charge, stats/telemetry, and the accuracy
/// tracker's per-installation bookkeeping. Shared by the inline path
/// (at the end of the awake phase) and the background path (at the
/// result's ready point during hibernation).
fn install_machine<O: Observer, F: FaultInjector>(
    config: &OptimizerConfig,
    st: &mut RunState,
    obs: &mut O,
    faults: &mut F,
    dfsm: Dfsm,
    streams: Vec<Vec<DataRef>>,
    stats: &mut CycleStats,
) {
    let cost = config.hierarchy.cost;
    let checks = dfsm.checks_by_pc();
    // a = distinct check sites being patched. The end boundary is
    // emitted on every exit — including the torn mid-edit crash, so
    // exported traces stay well nested; the Crash instant (not a
    // dangling span) names that kill point.
    if O::ENABLED {
        obs.span(
            &tev::SpanEvent::begin(tev::SpanKind::ImageEdit, st.cycles)
                .with_args(checks.len() as u64, 0),
        );
    }
    let mut edit = st.image.edit();
    for (pc, chain) in &checks {
        if F::ENABLED {
            if let Some(err) = faults.fail_edit(*pc) {
                edit.fail(err);
                continue;
            }
        }
        // Streams come from observed references, so every pc belongs
        // to the image; ignore any that do not (defensive).
        let _ = edit.inject(*pc, chain.len());
    }
    // The mid-edit kill point: the "process" dies partway through the
    // stop-the-world patch. The write-ahead journal records the edit
    // before any patch lands, so the torn image is deterministically
    // rolled forward by `Session::crash_recover` — never half-patched.
    // A *failed* (poisoned) edit rolls back atomically WITHOUT
    // journaling, so a crash landing on an already-failed edit rolls
    // back exactly once.
    let mut tear = None;
    if F::ENABLED && faults.crash(CrashPoint::MidEdit) {
        st.crashed = true;
        tear = Some(checks.len() / 2);
        if O::ENABLED {
            obs.span(
                &tev::SpanEvent::instant(tev::SpanKind::Crash, st.cycles)
                    .with_args(CRASH_MID_EDIT, st.cycle_stats.len() as u64),
            );
        }
    }
    match edit.commit_journaled(&mut st.journal, tear) {
        Ok(None) => {
            // Torn mid-commit: a prefix of the patches landed and the
            // journal entry is pending. This session is dead; nothing
            // more happens in it (recovery rolls the image forward).
            if O::ENABLED {
                obs.span(
                    &tev::SpanEvent::end(tev::SpanKind::ImageEdit, st.cycles)
                        .with_args(checks.len() as u64, 1),
                );
            }
            return;
        }
        Ok(Some(report)) => {
            st.cycles += cost.optimize_cycles;
            st.breakdown.optimize += cost.optimize_cycles;
            stats.dfsm_states = dfsm.state_count();
            stats.dfsm_checks = dfsm.address_check_count();
            stats.procs_modified = report.procedures_modified;
            if O::ENABLED {
                obs.dfsm_built(&tev::DfsmBuilt {
                    opt_cycle: st.cycle_stats.len() as u64,
                    states: stats.dfsm_states,
                    address_checks: stats.dfsm_checks,
                    streams: streams.len(),
                    procs_modified: stats.procs_modified,
                });
            }
            st.dfsm = Some(dfsm);
            st.dfsm_state = StateId::START;
            if let Some(g) = &mut st.guard {
                g.begin_install(
                    streams
                        .iter()
                        .enumerate()
                        .map(|(i, s)| (i as u32, stream_hash(s))),
                );
            }
            st.installed = streams;
            st.dfsm_rebuild = 1;
        }
        Err(_) => {
            // The edit rolled back atomically: nothing was installed,
            // no optimize cost is charged, and the cycle completes
            // unoptimized.
        }
    }
    if O::ENABLED {
        obs.span(
            &tev::SpanEvent::end(tev::SpanKind::ImageEdit, st.cycles)
                .with_args(checks.len() as u64, 0),
        );
    }
    // A fault may force a thread switch "during" the stop-the-world
    // edit; it lands at the commit point, so stale activations exercise
    // the epoch discipline.
    if F::ENABLED {
        if let Some(t) = faults.edit_thread_switch(st.frames.len() as u32) {
            let t = t as usize;
            while st.frames.len() <= t {
                st.frames.push(FrameTracker::new());
            }
            st.active_thread = t;
        }
    }
}

/// Completes the current optimization cycle degraded: statistics carry
/// only the trace and grammar sizes, nothing was installed, and nothing
/// beyond what was already charged hits the critical path.
fn degraded_cycle<O: Observer>(
    st: &mut RunState,
    obs: &mut O,
    traced_refs: u64,
    grammar_size: usize,
) {
    let stats = CycleStats {
        traced_refs,
        grammar_size,
        ..CycleStats::default()
    };
    if O::ENABLED {
        obs.cycle_end(&tev::CycleEnd {
            opt_cycle: st.cycle_stats.len() as u64,
            at_cycle: st.cycles,
            traced_refs,
            grammar_size,
            ..tev::CycleEnd::default()
        });
    }
    st.cycle_stats.push(stats);
}

/// Hands the awake phase's trace to the background worker and computes
/// the deterministic ready point: `handoff_at + analysis_per_ref_cycles
/// × trace_len (+ injected stall)` — the modeled latency of the
/// analysis in simulated time. Wall-clock speed of the worker never
/// affects the simulated run.
fn handoff_analysis<O: Observer, F: FaultInjector>(
    config: &OptimizerConfig,
    st: &mut RunState,
    obs: &mut O,
    faults: &mut F,
) {
    let cost = config.hierarchy.cost;
    let trace_len = st.buffer.refs().len() as u64;
    // Injected analysis starvation fires at the handoff (mirroring the
    // inline path's starved budget): the trace is dropped and the
    // cycle completes degraded. The grammar was never built, so its
    // size reports as zero.
    if F::ENABLED && faults.starve_analysis() {
        degraded_cycle(st, obs, trace_len, 0);
        return;
    }
    let base = cost.analysis_per_ref_cycles * trace_len;
    let extra = if F::ENABLED {
        faults.stall_worker(base)
    } else {
        0
    };
    let denylist = st
        .guard
        .as_ref()
        .map_or_else(Vec::new, GuardRuntime::denylist_hashes);
    let refs = st.buffer.refs().to_vec();
    // The request is kept alongside the ready point so a snapshot can
    // serialize it and a resumed session can re-submit it to a fresh
    // worker (`analyze_trace` is pure, so the outcome is identical).
    let request = AnalyzeRequest { refs, denylist };
    let submitted = st.bg.as_mut().is_some_and(|bg| bg.submit(request.clone()));
    if !submitted {
        // The worker is gone (it panicked): degrade like starvation.
        degraded_cycle(st, obs, trace_len, 0);
        return;
    }
    let Some(bg) = st.bg.as_mut() else { return };
    bg.pending = Some(PendingAnalysis {
        handoff_at: st.cycles,
        ready_at: st.cycles + base + extra,
        request,
    });
    bg.handoffs += 1;
    if O::ENABLED {
        obs.analysis_handoff(&tev::AnalysisHandoff {
            opt_cycle: st.cycle_stats.len() as u64,
            at_cycle: st.cycles,
            trace_len,
        });
        // The worker's span lives on its own lane: it begins before the
        // awake phase's successor opens and ends mid-hibernation.
        // a = optimization cycle, b = handed-off trace length.
        obs.span(
            &tev::SpanEvent::begin(tev::SpanKind::BgAnalysis, st.cycles)
                .with_args(st.cycle_stats.len() as u64, trace_len),
        );
    }
    // The mid-handoff kill point: the process dies after the trace left
    // for the worker but before hibernation began. The pending request
    // dies with the process; the resumed run replays the boundary event
    // and hands off again, deterministically.
    if F::ENABLED && faults.crash(CrashPoint::MidHandoff) {
        st.crashed = true;
        if O::ENABLED {
            obs.span(
                &tev::SpanEvent::instant(tev::SpanKind::Crash, st.cycles)
                    .with_args(CRASH_MID_HANDOFF, st.cycle_stats.len() as u64),
            );
        }
    }
}

/// Resolves an in-flight background analysis whose ready point has been
/// reached: blocking receive (wall-clock only), worker-lag guard
/// observation, then install — or discard, when the lag guard tripped.
fn poll_background<O: Observer, F: FaultInjector>(
    config: &OptimizerConfig,
    mode: RunMode,
    st: &mut RunState,
    obs: &mut O,
    faults: &mut F,
) {
    let (p, outcome) = {
        let Some(bg) = st.bg.as_mut() else { return };
        let Some(pending) = bg.pending.as_ref() else {
            return;
        };
        if st.cycles < pending.ready_at {
            return;
        }
        let p = bg.pending.take().expect("pending presence checked above");
        (p, bg.recv())
    };
    let lag = st.cycles.saturating_sub(p.handoff_at);
    let trip = st
        .guard
        .as_mut()
        .and_then(|g| g.observe(GuardKind::WorkerLag, lag));
    let lag_tripped = trip.is_some();
    if let Some(t) = trip {
        report_trip(st, obs, t);
    }
    let Some(outcome) = outcome else {
        // The worker died mid-analysis: nothing to install.
        mark_starved(st, obs, p, lag, &AnalyzeOutcome::default());
        return;
    };
    if lag_tripped {
        // Stale result: the worker lagged past its budget, so the
        // hibernation span has too little left to amortize an install.
        mark_starved(st, obs, p, lag, &outcome);
        return;
    }
    apply_outcome(config, mode, st, obs, faults, p, outcome, lag);
}

/// Force-resolves an in-flight background analysis as starved: the
/// hibernation span (or the run) ended before its ready point.
fn starve_background<O: Observer>(st: &mut RunState, obs: &mut O) {
    let (p, outcome) = {
        let Some(bg) = st.bg.as_mut() else { return };
        let Some(p) = bg.pending.take() else { return };
        (p, bg.recv().unwrap_or_default())
    };
    let lag = st.cycles.saturating_sub(p.handoff_at);
    // The lag sample is recorded even on the starvation path, so lag
    // budgets see every resolution.
    let trip = st
        .guard
        .as_mut()
        .and_then(|g| g.observe(GuardKind::WorkerLag, lag));
    if let Some(t) = trip {
        report_trip(st, obs, t);
    }
    mark_starved(st, obs, p, lag, &outcome);
}

/// Accounts one starved analysis: counter, telemetry, and the degraded
/// cycle completion — every handoff produces exactly one cycle record,
/// so traced-reference reconciliation stays exact either way.
fn mark_starved<O: Observer>(
    st: &mut RunState,
    obs: &mut O,
    p: PendingAnalysis,
    lag: u64,
    outcome: &AnalyzeOutcome,
) {
    if let Some(bg) = st.bg.as_mut() {
        bg.starved += 1;
    }
    if O::ENABLED {
        obs.analysis_starved(&tev::AnalysisStarved {
            opt_cycle: st.cycle_stats.len() as u64,
            handoff_at_cycle: p.handoff_at,
            at_cycle: st.cycles,
            lag_cycles: lag,
        });
        obs.span(
            &tev::SpanEvent::end(tev::SpanKind::BgAnalysis, st.cycles)
                .with_args(st.cycle_stats.len() as u64, lag),
        );
    }
    degraded_cycle(st, obs, outcome.trace_len, outcome.grammar_size);
}

/// Installs a background analysis result at its ready point: records
/// the guard observations the worker computed but could not apply (it
/// never touches the runtime), then runs the same selection-already-
/// done install path as the inline implementation.
#[allow(clippy::too_many_arguments)]
fn apply_outcome<O: Observer, F: FaultInjector>(
    config: &OptimizerConfig,
    mode: RunMode,
    st: &mut RunState,
    obs: &mut O,
    faults: &mut F,
    p: PendingAnalysis,
    outcome: AnalyzeOutcome,
    lag: u64,
) {
    if let Some(bg) = st.bg.as_mut() {
        bg.applied += 1;
    }
    if O::ENABLED {
        obs.analysis_applied(&tev::AnalysisApplied {
            opt_cycle: st.cycle_stats.len() as u64,
            handoff_at_cycle: p.handoff_at,
            at_cycle: st.cycles,
            lag_cycles: lag,
        });
        obs.span(
            &tev::SpanEvent::end(tev::SpanKind::BgAnalysis, st.cycles)
                .with_args(st.cycle_stats.len() as u64, lag),
        );
    }
    let trip = st
        .guard
        .as_mut()
        .and_then(|g| g.observe(GuardKind::GrammarRules, outcome.rules_peak));
    if let Some(t) = trip {
        report_trip(st, obs, t);
    }
    if outcome.muted {
        // The rule cap was exceeded mid-trace: the profile is
        // incomplete, exactly like an inline muted cycle.
        degraded_cycle(st, obs, outcome.trace_len, outcome.grammar_size);
        return;
    }
    let mut stats = CycleStats {
        traced_refs: outcome.trace_len,
        hot_streams: outcome.hot_streams,
        grammar_size: outcome.grammar_size,
        ..CycleStats::default()
    };
    if mode.optimizes().is_some() {
        stats.streams_used = outcome.streams.len();
        if O::ENABLED {
            let head_len = config.dfsm.head_len;
            for (i, s) in outcome.streams.iter().enumerate() {
                obs.stream_detected(&tev::StreamDetected {
                    opt_cycle: st.cycle_stats.len() as u64,
                    stream_id: i as u32,
                    len: s.len(),
                    head_len,
                });
            }
        }
        if let Some(observed) = outcome.dfsm_over_limit {
            let trip = st
                .guard
                .as_mut()
                .and_then(|g| g.observe(GuardKind::DfsmStates, observed));
            if let Some(t) = trip {
                report_trip(st, obs, t);
            }
        }
        if let Some(dfsm) = outcome.dfsm {
            install_machine(config, st, obs, faults, dfsm, outcome.streams, &mut stats);
        }
    }
    if O::ENABLED {
        obs.cycle_end(&tev::CycleEnd {
            opt_cycle: st.cycle_stats.len() as u64,
            at_cycle: st.cycles,
            traced_refs: stats.traced_refs,
            hot_streams: stats.hot_streams,
            streams_used: stats.streams_used,
            dfsm_states: stats.dfsm_states,
            dfsm_checks: stats.dfsm_checks,
            procs_modified: stats.procs_modified,
            grammar_size: stats.grammar_size,
        });
    }
    st.cycle_stats.push(stats);
}

/// Closes one accuracy-evaluation window (a hibernation-period burst
/// boundary). Streams whose accuracy stayed below threshold for the
/// configured number of windows are *surgically* de-optimized: the
/// matcher is rebuilt over the survivors and a partial image edit
/// removes only the dropped streams' check sites, leaving the
/// well-predicting streams' checks (and their activations' epochs)
/// untouched — a finer-grained form of §3.2's de-optimization.
fn evaluate_accuracy<O: Observer, F: FaultInjector>(
    config: &OptimizerConfig,
    st: &mut RunState,
    obs: &mut O,
    faults: &mut F,
) {
    if !st.guard.as_ref().is_some_and(GuardRuntime::tracks_accuracy) {
        return;
    }
    // Online backends: a bad window surgically disables the offending
    // table rows (the backend-side analogue of dropping a stream) —
    // the guard denylists the row id so it can never re-register, and
    // `drop_tag` clears the row and masks it dead so the backend stops
    // predicting from it. Persistent inaccuracy therefore drives the
    // backend toward inertness — the guard-driven fallback.
    if st.online.is_some() {
        drain_outcomes(st, obs);
        let bad = match &mut st.guard {
            Some(g) => g.evaluate_window(),
            None => return,
        };
        if bad.is_empty() {
            return;
        }
        let bad_ids: Vec<u32> = bad.iter().map(|b| b.stream_id).collect();
        if let Some(b) = st.online.as_mut() {
            for id in &bad_ids {
                b.drop_tag(*id);
            }
        }
        st.partial_deopts += bad.len() as u64;
        if let Some(g) = &mut st.guard {
            for id in &bad_ids {
                g.drop_stream(*id);
            }
        }
        if O::ENABLED {
            for id in &bad_ids {
                obs.deoptimize(&tev::Deoptimize {
                    at_cycle: st.cycles,
                    opt_cycle: st.cycle_stats.len() as u64,
                    partial: true,
                    stream_id: Some(*id),
                });
            }
        }
        return;
    }
    if st.dfsm.is_none() {
        return;
    }
    // Attribute outcomes resolved since the last access before judging.
    drain_outcomes(st, obs);
    let bad = match &mut st.guard {
        Some(g) => g.evaluate_window(),
        None => return,
    };
    if bad.is_empty() {
        return;
    }
    let cost = config.hierarchy.cost;
    let bad_ids: Vec<u32> = bad.iter().map(|b| b.stream_id).collect();
    let kept: Vec<Vec<DataRef>> = st
        .installed
        .iter()
        .enumerate()
        .filter(|(i, _)| !bad_ids.contains(&(*i as u32)))
        .map(|(_, s)| s.clone())
        .collect();
    let old_checks = match st.dfsm.as_ref() {
        Some(d) => d.checks_by_pc(),
        None => return,
    };

    let rebuilt = if kept.is_empty() {
        None
    } else {
        build_dfsm(&kept, &config.dfsm).ok()
    };
    match rebuilt {
        Some(new_dfsm) => {
            let new_checks = new_dfsm.checks_by_pc();
            let mut edit = st.image.edit_partial();
            for pc in old_checks.keys().filter(|pc| !new_checks.contains_key(*pc)) {
                if F::ENABLED {
                    if let Some(err) = faults.fail_edit(*pc) {
                        edit.fail(err);
                        continue;
                    }
                }
                let _ = edit.remove(*pc);
            }
            for (pc, chain) in &new_checks {
                if !old_checks.contains_key(pc) {
                    let _ = edit.inject(*pc, chain.len());
                }
            }
            match edit.commit() {
                Ok(_) => {
                    // The surgical rebuild is an optimization step: DFSM
                    // construction plus a (partial) binary edit.
                    st.cycles += cost.optimize_cycles;
                    st.breakdown.optimize += cost.optimize_cycles;
                    st.partial_deopts += bad.len() as u64;
                    if let Some(g) = &mut st.guard {
                        for id in &bad_ids {
                            g.drop_stream(*id);
                        }
                        g.begin_install(
                            kept.iter()
                                .enumerate()
                                .map(|(i, s)| (i as u32, stream_hash(s))),
                        );
                    }
                    if O::ENABLED {
                        for id in &bad_ids {
                            obs.deoptimize(&tev::Deoptimize {
                                at_cycle: st.cycles,
                                opt_cycle: st.cycle_stats.len() as u64,
                                partial: true,
                                stream_id: Some(*id),
                            });
                        }
                    }
                    st.installed = kept;
                    st.dfsm = Some(new_dfsm);
                    st.dfsm_rebuild = 2;
                    // Stream ids were remapped by the rebuild: restart
                    // matching and drop prefetches queued against the
                    // old installation.
                    st.dfsm_state = StateId::START;
                    st.pf_queue.clear();
                }
                Err(_) => {
                    // The partial edit rolled back (e.g. an induced
                    // editor failure): the old installation stays live
                    // and the next window re-evaluates.
                }
            }
        }
        None => {
            // Every installed stream went bad (or the survivor rebuild
            // failed): fall back to the paper's all-or-nothing
            // de-optimization.
            st.image.deoptimize();
            st.dfsm = None;
            st.dfsm_rebuild = 0;
            st.dfsm_state = StateId::START;
            st.pf_queue.clear();
            st.installed.clear();
            if let Some(g) = &mut st.guard {
                for id in &bad_ids {
                    g.drop_stream(*id);
                }
                g.begin_install(std::iter::empty::<(u32, u64)>());
            }
            if O::ENABLED {
                obs.deoptimize(&tev::Deoptimize {
                    at_cycle: st.cycles,
                    opt_cycle: st.cycle_stats.len() as u64,
                    partial: false,
                    stream_id: None,
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hds_telemetry::events::{PrefetchFate, PROGRAM_STREAM};
    use hds_telemetry::MetricsRecorder;
    use hds_trace::{AccessKind, Addr, Pc};
    use hds_vulcan::{ProcId, VecSource};

    /// A tiny hand-built program: one procedure looping over one hot
    /// stream with periodic check sites.
    fn looping_program(reps: usize) -> (VecSource, Vec<Procedure>) {
        let pcs: Vec<Pc> = (0..4).map(|i| Pc(16 + i * 4)).collect();
        let stream: Vec<DataRef> = (0..8u64)
            .map(|k| DataRef::new(pcs[(k % 4) as usize], Addr(0x4000 + k * 256)))
            .collect();
        let mut events = Vec::new();
        for _ in 0..reps {
            events.push(Event::Enter(ProcId(0)));
            for (i, &r) in stream.iter().enumerate() {
                if i % 3 == 0 {
                    events.push(Event::BackEdge(ProcId(0)));
                }
                events.push(Event::Work(2));
                events.push(Event::Access(r, AccessKind::Load));
            }
            events.push(Event::Exit(ProcId(0)));
        }
        (
            VecSource::new("loop", events),
            vec![Procedure::new("looper", pcs)],
        )
    }

    fn tiny_config() -> OptimizerConfig {
        let mut c = OptimizerConfig::test_scale();
        c.bursty = hds_bursty::BurstyConfig::new(8, 8, 2, 3);
        c.analysis.min_length = 4;
        c.analysis.min_unique_refs = 2;
        c
    }

    /// One-shot run via the builder (the tests' shorthand).
    fn execute<W: ProgramSource + ?Sized>(
        config: OptimizerConfig,
        mode: RunMode,
        program: &mut W,
        procedures: Vec<Procedure>,
    ) -> RunReport {
        crate::SessionBuilder::new(config)
            .procedures(procedures)
            .mode(mode)
            .run(program)
    }

    /// [`execute`] with an observer attached.
    fn execute_observed<W: ProgramSource + ?Sized, O: Observer>(
        config: OptimizerConfig,
        mode: RunMode,
        program: &mut W,
        procedures: Vec<Procedure>,
        obs: O,
    ) -> RunReport {
        crate::SessionBuilder::new(config)
            .procedures(procedures)
            .observer(obs)
            .mode(mode)
            .run(program)
    }

    /// [`execute`] with an observer and fault injector attached.
    fn execute_faulted<W: ProgramSource + ?Sized, O: Observer, F: FaultInjector>(
        config: OptimizerConfig,
        mode: RunMode,
        program: &mut W,
        procedures: Vec<Procedure>,
        obs: O,
        faults: F,
    ) -> RunReport {
        crate::SessionBuilder::new(config)
            .procedures(procedures)
            .observer(obs)
            .faults(faults)
            .mode(mode)
            .run(program)
    }

    #[test]
    fn baseline_charges_no_check_costs() {
        let (mut p, procs) = looping_program(50);
        let report = execute(tiny_config(), RunMode::Baseline, &mut p, procs);
        assert_eq!(report.breakdown.checks, 0);
        assert_eq!(report.breakdown.recording, 0);
        assert_eq!(report.checks_executed, 0);
        assert!(report.refs >= 400);
        assert!(report.total_cycles > 0);
        assert_eq!(report.mode, "Baseline");
    }

    #[test]
    fn checks_only_adds_exactly_check_cost() {
        let (mut p1, procs1) = looping_program(50);
        let (mut p2, procs2) = looping_program(50);
        let base = execute(tiny_config(), RunMode::Baseline, &mut p1, procs1);
        let checks = execute(tiny_config(), RunMode::ChecksOnly, &mut p2, procs2);
        assert!(checks.checks_executed > 0);
        let expected =
            base.total_cycles + checks.checks_executed * tiny_config().hierarchy.cost.check_cycles;
        assert_eq!(checks.total_cycles, expected);
    }

    #[test]
    fn profile_records_bursts() {
        let (mut p, procs) = looping_program(200);
        let report = execute(tiny_config(), RunMode::Profile, &mut p, procs);
        assert!(report.breakdown.recording > 0, "nothing recorded");
        assert_eq!(report.breakdown.analysis, 0);
        assert!(report.cycles.is_empty());
    }

    #[test]
    fn analyze_detects_the_hot_stream() {
        let (mut p, procs) = looping_program(600);
        let report = execute(tiny_config(), RunMode::Analyze, &mut p, procs);
        assert!(report.breakdown.analysis > 0);
        assert!(!report.cycles.is_empty(), "no analysis cycles completed");
        let found: usize = report.cycles.iter().map(|c| c.hot_streams).sum();
        assert!(found > 0, "hot stream not detected: {:?}", report.cycles);
    }

    #[test]
    fn optimize_injects_and_prefetches() {
        let (mut p, procs) = looping_program(600);
        let report = execute(
            tiny_config(),
            RunMode::Optimize(PrefetchPolicy::StreamTail),
            &mut p,
            procs,
        );
        assert!(report.opt_cycles() >= 1);
        let with_dfsm: Vec<_> = report.cycles.iter().filter(|c| c.dfsm_states > 0).collect();
        assert!(
            !with_dfsm.is_empty(),
            "no DFSM ever built: {:?}",
            report.cycles
        );
        for c in &with_dfsm {
            assert!(c.procs_modified >= 1);
            assert!(c.dfsm_checks >= 1);
        }
        assert!(report.breakdown.matching > 0, "injected checks never ran");
        assert!(report.mem.prefetches_issued > 0, "no prefetches issued");
        assert!(report.breakdown.prefetch > 0);
    }

    #[test]
    fn no_pref_matches_but_never_prefetches() {
        let (mut p, procs) = looping_program(600);
        let report = execute(
            tiny_config(),
            RunMode::Optimize(PrefetchPolicy::None),
            &mut p,
            procs,
        );
        assert!(report.breakdown.matching > 0);
        assert_eq!(report.mem.prefetches_issued, 0);
        assert_eq!(report.breakdown.prefetch, 0);
        assert_eq!(report.mode, "No-pref");
    }

    /// A program with many short hot streams whose combined footprint
    /// exceeds L1 (so stream blocks miss on every revisit), walked in
    /// pseudo-random order (so Sequitur reifies each stream as its own
    /// rule instead of one maximal round-robin unit) — the memory-bound
    /// shape prefetching exists for.
    fn big_stream_program(iterations: usize) -> (VecSource, Vec<Procedure>) {
        let pcs: Vec<Pc> = (0..4).map(|i| Pc(16 + i * 4)).collect();
        // 40 streams x 16 blocks at a 33-block stride: ~20 KB > 16 KB L1.
        let streams: Vec<Vec<DataRef>> = (0..40u64)
            .map(|s| {
                (0..16u64)
                    .map(|k| {
                        let block = 0x2000 + (s * 16 + k) * 33;
                        DataRef::new(pcs[(k % 4) as usize], Addr(block * 32))
                    })
                    .collect()
            })
            .collect();
        let mut events = Vec::new();
        let mut rng_state = 0x12345u64; // xorshift: deterministic
        for _ in 0..iterations {
            rng_state ^= rng_state << 13;
            rng_state ^= rng_state >> 7;
            rng_state ^= rng_state << 17;
            let stream = &streams[(rng_state % 40) as usize];
            events.push(Event::Enter(ProcId(0)));
            for (i, &r) in stream.iter().enumerate() {
                if i % 3 == 0 {
                    events.push(Event::BackEdge(ProcId(0)));
                }
                events.push(Event::Work(2));
                events.push(Event::Access(r, AccessKind::Load));
            }
            events.push(Event::Exit(ProcId(0)));
        }
        (
            VecSource::new("bigloop", events),
            vec![Procedure::new("looper", pcs)],
        )
    }

    #[test]
    fn prefetching_speeds_up_a_stream_heavy_program() {
        // Bursts long enough to span two stream iterations, so Sequitur
        // sees the repetition.
        let mut config = tiny_config();
        config.bursty = hds_bursty::BurstyConfig::new(256, 512, 2, 3);
        let (mut p1, procs1) = big_stream_program(2_000);
        let (mut p2, procs2) = big_stream_program(2_000);
        let nopref = execute(
            config.clone(),
            RunMode::Optimize(PrefetchPolicy::None),
            &mut p1,
            procs1,
        );
        let dynpref = execute(
            config,
            RunMode::Optimize(PrefetchPolicy::StreamTail),
            &mut p2,
            procs2,
        );
        assert!(
            dynpref.mem.prefetches_useful > 0,
            "prefetches were never useful: {}",
            dynpref.mem
        );
        // Same machinery cost, so any win comes from memory cycles — and
        // it must be a real one.
        assert!(
            dynpref.breakdown.memory < nopref.breakdown.memory,
            "no memory-cycle win: {} vs {}",
            dynpref.breakdown.memory,
            nopref.breakdown.memory
        );
    }

    #[test]
    fn deterministic_runs() {
        let run = || {
            let (mut p, procs) = looping_program(300);
            execute(
                tiny_config(),
                RunMode::Optimize(PrefetchPolicy::StreamTail),
                &mut p,
                procs,
            )
            .total_cycles
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn windowed_scheduling_issues_same_prefetch_set() {
        let mut all = tiny_config();
        all.bursty = hds_bursty::BurstyConfig::new(256, 512, 2, 3);
        let mut windowed = all.clone();
        windowed.scheduling = crate::config::PrefetchScheduling::Windowed { degree: 2 };
        let (mut p1, procs1) = big_stream_program(2_000);
        let (mut p2, procs2) = big_stream_program(2_000);
        let a = execute(
            all,
            RunMode::Optimize(PrefetchPolicy::StreamTail),
            &mut p1,
            procs1,
        );
        let b = execute(
            windowed,
            RunMode::Optimize(PrefetchPolicy::StreamTail),
            &mut p2,
            procs2,
        );
        assert!(b.mem.prefetches_issued > 0);
        // Windowed never issues *more* than all-at-once (queued items can
        // be dropped at de-optimization), and both must be useful.
        assert!(b.mem.prefetches_issued <= a.mem.prefetches_issued);
        assert!(b.mem.prefetches_useful > 0);
    }

    #[test]
    fn static_strategy_profiles_once_and_keeps_code() {
        let mut config = tiny_config();
        config.bursty = hds_bursty::BurstyConfig::new(256, 512, 2, 3);
        config.strategy = crate::config::CycleStrategy::Static;
        let (mut p, procs) = big_stream_program(4_000);
        let report = execute(
            config,
            RunMode::Optimize(PrefetchPolicy::StreamTail),
            &mut p,
            procs,
        );
        // Exactly one optimization cycle, ever.
        assert_eq!(report.opt_cycles(), 1, "{:?}", report.cycles);
        // But prefetching keeps running for the rest of the program.
        assert!(report.mem.prefetches_issued > 0);
        // Recording stops after the single awake phase: far less profile
        // cost than a dynamic run of the same length.
        let mut dynamic = tiny_config();
        dynamic.bursty = hds_bursty::BurstyConfig::new(256, 512, 2, 3);
        let (mut p2, procs2) = big_stream_program(4_000);
        let dyn_report = execute(
            dynamic,
            RunMode::Optimize(PrefetchPolicy::StreamTail),
            &mut p2,
            procs2,
        );
        assert!(dyn_report.opt_cycles() > 1);
        assert!(report.breakdown.recording < dyn_report.breakdown.recording);
    }

    #[test]
    fn missing_procedure_metadata_degrades_gracefully() {
        // If the image's procedure list does not cover the hot pcs (an
        // incomplete symbolization), injection silently skips them: no
        // panic, no prefetching, but profiling and analysis still work.
        let (mut p, _full_procs) = looping_program(600);
        let procs = vec![Procedure::new("unrelated", vec![Pc(0xdead)])];
        let report = execute(
            tiny_config(),
            RunMode::Optimize(PrefetchPolicy::StreamTail),
            &mut p,
            procs,
        );
        assert!(report.opt_cycles() >= 1);
        // Streams are detected but nothing can be injected.
        assert!(report.cycles.iter().any(|c| c.hot_streams > 0));
        assert!(report.cycles.iter().all(|c| c.procs_modified == 0));
        assert_eq!(report.mem.prefetches_issued, 0);
    }

    #[test]
    fn threaded_events_keep_per_thread_stacks() {
        // Two threads with deliberately clashing nesting: a single
        // global frame tracker would panic on the interleaved exits.
        use hds_vulcan::{Interleaver, VecSource};
        let t0 = VecSource::new(
            "t0",
            vec![
                Event::Enter(ProcId(0)),
                Event::Work(1),
                Event::Access(DataRef::new(Pc(16), Addr(0x100)), AccessKind::Load),
                Event::Work(1),
                Event::Exit(ProcId(0)),
            ],
        );
        let t1 = VecSource::new(
            "t1",
            vec![
                Event::Enter(ProcId(1)),
                Event::Work(1),
                Event::Access(DataRef::new(Pc(32), Addr(0x200)), AccessKind::Load),
                Event::Work(1),
                Event::Exit(ProcId(1)),
            ],
        );
        let mut program = Interleaver::new(vec![Box::new(t0), Box::new(t1)], 2);
        let procs = vec![
            Procedure::new("p0", vec![Pc(16)]),
            Procedure::new("p1", vec![Pc(32)]),
        ];
        let report = execute(
            tiny_config(),
            RunMode::Optimize(PrefetchPolicy::StreamTail),
            &mut program,
            procs,
        );
        assert_eq!(report.refs, 2);
        assert_eq!(report.name, "interleaved");
    }

    #[test]
    fn deopt_happens_each_hibernation_end() {
        let (mut p, procs) = looping_program(2_000);
        let report = execute(
            tiny_config(),
            RunMode::Optimize(PrefetchPolicy::StreamTail),
            &mut p,
            procs,
        );
        // Several full cycles completed.
        assert!(
            report.opt_cycles() >= 2,
            "only {} cycles",
            report.opt_cycles()
        );
    }

    /// Runs the memory-bound program with a `MetricsRecorder` attached
    /// and returns (report, recorder).
    fn observed_run(iterations: usize) -> (RunReport, MetricsRecorder) {
        let mut config = tiny_config();
        config.bursty = hds_bursty::BurstyConfig::new(256, 512, 2, 3);
        let (mut p, procs) = big_stream_program(iterations);
        let mut rec = MetricsRecorder::new();
        let report = execute_observed(
            config,
            RunMode::Optimize(PrefetchPolicy::StreamTail),
            &mut p,
            procs,
            &mut rec,
        );
        (report, rec)
    }

    #[test]
    fn observer_counters_reconcile_with_report() {
        let (report, rec) = observed_run(2_000);
        assert!(report.mem.prefetches_issued > 0);
        assert_eq!(rec.prefetches_issued(), report.mem.prefetches_issued);
        assert_eq!(rec.cycles_completed(), report.cycles.len() as u64);
        assert_eq!(
            rec.traced_refs_total(),
            report.cycles.iter().map(|c| c.traced_refs).sum::<u64>()
        );
        assert_eq!(
            rec.streams_detected(),
            report
                .cycles
                .iter()
                .map(|c| c.streams_used as u64)
                .sum::<u64>()
        );
        // Outcome fates reconcile with MemStats: a late prefetch counts
        // in both `prefetches_late` and `prefetches_useful` there, while
        // each telemetry outcome has exactly one fate.
        assert_eq!(
            rec.outcomes(PrefetchFate::Useful),
            report.mem.prefetches_useful - report.mem.prefetches_late
        );
        assert_eq!(rec.outcomes(PrefetchFate::Late), report.mem.prefetches_late);
        assert_eq!(
            rec.outcomes(PrefetchFate::Polluted),
            report.mem.prefetches_polluting
        );
    }

    #[test]
    fn observer_sees_phase_boundaries_and_duty_cycle() {
        let (report, rec) = observed_run(2_000);
        assert!(rec.phase_transitions_total() >= 2);
        assert!(rec.cycles_started() >= rec.cycles_completed());
        assert!(rec.deopts() >= 1, "dynamic strategy must deoptimize");
        let duty = rec.last_duty_cycle();
        assert!(duty > 0.0 && duty < 1.0, "duty cycle {duty} out of range");
        assert!(report.cycles.len() >= 2);
    }

    #[test]
    fn observation_does_not_perturb_the_run() {
        // The observed run and the default (NullObserver) run must be
        // cycle-for-cycle identical: tagging is timing-neutral and the
        // observer is outside the simulated machine.
        let (observed, _) = observed_run(1_000);
        let mut config = tiny_config();
        config.bursty = hds_bursty::BurstyConfig::new(256, 512, 2, 3);
        let (mut p, procs) = big_stream_program(1_000);
        let plain = execute(
            config,
            RunMode::Optimize(PrefetchPolicy::StreamTail),
            &mut p,
            procs,
        );
        assert_eq!(observed.total_cycles, plain.total_cycles);
        assert_eq!(observed.mem, plain.mem);
        assert_eq!(observed.breakdown, plain.breakdown);
    }

    /// The memory-bound configuration with analysis on the background
    /// worker.
    fn bg_config() -> OptimizerConfig {
        let mut config = tiny_config();
        config.bursty = hds_bursty::BurstyConfig::new(256, 512, 2, 3);
        config.concurrency = AnalysisConcurrency::Background;
        config
    }

    #[test]
    fn background_mode_moves_analysis_off_the_critical_path() {
        let (mut p, procs) = big_stream_program(2_000);
        let bg = execute(
            bg_config(),
            RunMode::Optimize(PrefetchPolicy::StreamTail),
            &mut p,
            procs,
        );
        // The critical path never pays an analysis cycle...
        assert_eq!(bg.breakdown.analysis, 0);
        // ...while an inline run of the same program does.
        let mut inline = bg_config();
        inline.concurrency = AnalysisConcurrency::Inline;
        let (mut p2, procs2) = big_stream_program(2_000);
        let il = execute(
            inline,
            RunMode::Optimize(PrefetchPolicy::StreamTail),
            &mut p2,
            procs2,
        );
        assert!(il.breakdown.analysis > 0);
        assert_eq!(il.worker, crate::report::WorkerStats::default());
        // The worker really cycled: traces handed off, results
        // installed mid-hibernation, prefetching live afterwards.
        assert!(bg.worker.handoffs >= 2, "{:?}", bg.worker);
        assert!(bg.worker.applied >= 1, "{:?}", bg.worker);
        assert_eq!(
            bg.worker.handoffs,
            bg.worker.applied + bg.worker.starved,
            "an in-flight analysis was neither applied nor starved"
        );
        // Every handoff completes exactly one cycle record.
        assert_eq!(bg.cycles.len() as u64, bg.worker.handoffs);
        assert!(bg.mem.prefetches_issued > 0, "no prefetches after apply");
    }

    #[test]
    fn background_runs_are_bit_identical() {
        let run = || {
            let (mut p, procs) = big_stream_program(1_000);
            execute(
                bg_config(),
                RunMode::Optimize(PrefetchPolicy::StreamTail),
                &mut p,
                procs,
            )
        };
        // Full-report equality: real thread scheduling must never leak
        // into the simulated run.
        assert_eq!(run(), run());
    }

    #[test]
    fn background_observation_does_not_perturb_the_run() {
        let (mut p, procs) = big_stream_program(1_000);
        let mut rec = MetricsRecorder::new();
        let observed = execute_observed(
            bg_config(),
            RunMode::Optimize(PrefetchPolicy::StreamTail),
            &mut p,
            procs,
            &mut rec,
        );
        let (mut p2, procs2) = big_stream_program(1_000);
        let plain = execute(
            bg_config(),
            RunMode::Optimize(PrefetchPolicy::StreamTail),
            &mut p2,
            procs2,
        );
        assert_eq!(observed, plain);
    }

    #[test]
    fn background_observer_reconciles_and_populates_worker_lag() {
        let (mut p, procs) = big_stream_program(2_000);
        let mut rec = MetricsRecorder::new();
        let report = execute_observed(
            bg_config(),
            RunMode::Optimize(PrefetchPolicy::StreamTail),
            &mut p,
            procs,
            &mut rec,
        );
        assert_eq!(rec.analysis_handoffs(), report.worker.handoffs);
        assert_eq!(rec.analyses_applied(), report.worker.applied);
        assert_eq!(rec.analyses_starved(), report.worker.starved);
        // One lag sample per resolution, and the phase overlap is real:
        // the histogram is populated with nonzero lags.
        let lag = rec.worker_lag_cycles();
        assert_eq!(lag.count(), report.worker.applied + report.worker.starved);
        assert!(lag.count() > 0, "worker-lag histogram never populated");
        assert_eq!(rec.cycles_completed(), report.cycles.len() as u64);
        assert_eq!(
            rec.traced_refs_total(),
            report.cycles.iter().map(|c| c.traced_refs).sum::<u64>()
        );
    }

    #[test]
    fn background_analyze_mode_detects_streams() {
        let (mut p, procs) = big_stream_program(2_000);
        let report = execute(bg_config(), RunMode::Analyze, &mut p, procs);
        assert_eq!(report.breakdown.analysis, 0);
        assert!(report.worker.applied >= 1);
        let found: usize = report.cycles.iter().map(|c| c.hot_streams).sum();
        assert!(found > 0, "hot stream not detected: {:?}", report.cycles);
    }

    #[test]
    fn slow_worker_fault_starves_without_reconciliation_drift() {
        use hds_guard::{FaultPlan, FaultRates};
        let rates = FaultRates {
            stall_worker: 1_000, // every handoff stalls 1x-8x its latency
            ..FaultRates::quiet()
        };
        let (mut p, procs) = big_stream_program(2_000);
        let mut rec = MetricsRecorder::new();
        let mut plan = FaultPlan::with_rates(7, rates);
        let report = execute_faulted(
            bg_config(),
            RunMode::Optimize(PrefetchPolicy::StreamTail),
            &mut p,
            procs,
            &mut rec,
            &mut plan,
        );
        assert!(plan.counts().stalled_workers > 0, "{:?}", plan.counts());
        assert!(
            report.worker.starved > 0,
            "stalls never starved: {:?}",
            report.worker
        );
        assert_eq!(
            report.worker.handoffs,
            report.worker.applied + report.worker.starved
        );
        assert_eq!(rec.analyses_starved(), report.worker.starved);
        assert_eq!(rec.cycles_completed(), report.cycles.len() as u64);
        assert_eq!(
            rec.traced_refs_total(),
            report.cycles.iter().map(|c| c.traced_refs).sum::<u64>()
        );
    }

    #[test]
    fn worker_lag_guard_discards_every_late_result() {
        let mut config = bg_config();
        // Any lag exceeds this budget, so every resolution is a
        // guard-driven starvation: nothing ever installs.
        config.guard = hds_guard::GuardConfig::disabled().with_max_worker_lag(1);
        let (mut p, procs) = big_stream_program(2_000);
        let report = execute(
            config,
            RunMode::Optimize(PrefetchPolicy::StreamTail),
            &mut p,
            procs,
        );
        assert!(report.worker.handoffs > 0);
        assert_eq!(report.worker.applied, 0);
        assert_eq!(report.worker.starved, report.worker.handoffs);
        assert!(report.guard_trips >= report.worker.starved);
        assert_eq!(report.mem.prefetches_issued, 0);
        assert!(report.cycles.iter().all(|c| c.dfsm_states == 0));
    }

    /// Online backend sessions (Pangloss / Triangel) are deterministic:
    /// two identical runs produce identical reports, and the reports
    /// are labeled with the backend, not the prefetch policy.
    #[test]
    fn online_backends_run_deterministically() {
        for select in [
            hds_backend::BackendSelect::Pangloss(hds_backend::PanglossConfig::default()),
            hds_backend::BackendSelect::Triangel(hds_backend::TriangelConfig::default()),
        ] {
            let mut config = tiny_config();
            config.backend = select;
            let mode = RunMode::Optimize(PrefetchPolicy::StreamTail);
            let (mut p, procs) = big_stream_program(2_000);
            let a = execute(config.clone(), mode, &mut p, procs);
            let (mut p, procs) = big_stream_program(2_000);
            let b = execute(config, mode, &mut p, procs);
            assert_eq!(a, b);
            assert_eq!(a.mode, select.kind().label());
            // The online path never profiles or analyzes.
            assert_eq!(a.breakdown.recording, 0);
            assert_eq!(a.breakdown.analysis, 0);
            assert!(a.cycles.iter().all(|c| c.traced_refs == 0));
        }
    }

    /// An online backend issues prefetches on a repeating miss stream
    /// and its table state survives snapshot/resume bit-identically.
    #[test]
    fn online_backend_snapshot_resumes_bit_identically() {
        for select in [
            hds_backend::BackendSelect::Pangloss(hds_backend::PanglossConfig::default()),
            hds_backend::BackendSelect::Triangel(hds_backend::TriangelConfig::default()),
        ] {
            let mut config = tiny_config();
            config.backend = select;
            let mode = RunMode::Optimize(PrefetchPolicy::StreamTail);

            // Reference: one uninterrupted run.
            let (mut p, procs) = big_stream_program(4_000);
            let mut reference = crate::SessionBuilder::new(config.clone())
                .procedures(procs)
                .mode(mode)
                .build();
            reference.enable_checkpoints();
            let mut events = Vec::new();
            while let Some(e) = p.next_event() {
                events.push(e.clone());
                reference.on_event(e);
            }
            let snap = reference.latest_snapshot().cloned();
            let consumed = reference.events_consumed();
            let ref_report = reference.finish("ref");
            assert!(ref_report.mem.prefetches_issued > 0, "{select:?}");

            // Resume from the last phase-boundary snapshot and replay
            // the tail of the event stream: the final report matches
            // the uninterrupted run exactly.
            let snap = snap.expect("checkpointing session captured a snapshot");
            let (_, procs) = big_stream_program(4_000);
            let state = crate::snapshot::SessionState::from_snapshot(
                &snap,
                config_fingerprint(&config, mode),
            )
            .unwrap();
            let mut resumed = Session::<NullObserver, NoFaults>::resume_from(
                config,
                mode,
                procs,
                &snap,
                NullObserver,
                NoFaults,
            )
            .unwrap();
            assert!(state.online.is_some());
            for e in events.into_iter().skip(state.events_consumed as usize) {
                resumed.on_event(e);
            }
            assert_eq!(resumed.events_consumed(), consumed);
            assert_eq!(resumed.finish("ref"), ref_report, "{select:?}");
        }
    }

    #[test]
    fn per_stream_quality_is_populated() {
        let (_, rec) = observed_run(2_000);
        // At least one real (non-program) stream must have resolved
        // prefetches with computable quality ratios.
        let real: Vec<_> = rec
            .per_stream()
            .iter()
            .filter(|(&id, _)| id != PROGRAM_STREAM)
            .collect();
        assert!(!real.is_empty(), "no per-stream metrics recorded");
        assert!(
            real.iter().any(|(_, m)| m.accuracy() > 0.0),
            "no stream ever had a useful prefetch"
        );
    }
}
