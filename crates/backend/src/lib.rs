//! Pluggable prefetch backends.
//!
//! The paper's Dyn-pref (grammar → DFSM) scheme is one point in the
//! prefetcher design space. This crate defines the [`PrefetchBackend`]
//! trait — the contract every *online* (hardware-style, per-access)
//! backend satisfies towards the optimizer, guard, snapshot, telemetry,
//! and serve layers — plus two real implementations from the related
//! work (PAPERS.md):
//!
//! * [`PanglossBackend`] — a Markov chain over **miss-block deltas**
//!   with a compressed, quantized transition table (Pangloss). The
//!   state is the previous delta, not the previous address, so the
//!   table stays small and generalizes across the address space.
//! * [`TriangelBackend`] — a temporal (address-correlating) prefetcher
//!   with **sampled training metadata** and pattern/metadata filtering
//!   (Triangel): per-PC training units decide *which* load sites have
//!   stable temporal behavior before any correlation metadata is
//!   stored or used.
//!
//! The paper's own scheme is represented by [`BackendKind::DynPref`]
//! and implemented in `hds-core`; selecting it leaves the classic
//! profile → analyze → optimize path untouched (bit-identical).
//!
//! # Contract
//!
//! Backends are **deterministic**: integer-only state, FNV-indexed
//! fixed-capacity tables, no hash-map iteration, no randomness. Two
//! runs over the same access sequence produce identical predictions,
//! and [`PrefetchBackend::export_words`] /
//! [`PrefetchBackend::restore_words`] round-trip the full state so
//! snapshot/resume is bit-identical mid-run.
//!
//! Every prediction carries a **tag** — the index of the table row that
//! produced it — which the accuracy guard uses to attribute prefetch
//! fates and surgically disable rows whose accuracy window goes bad
//! ([`PrefetchBackend::drop_tag`]), the online analogue of the paper's
//! partial de-optimization.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod pangloss;
mod triangel;

use hds_memsim::prefetcher::Prefetcher;
use hds_memsim::AccessOutcome;
use hds_trace::{Addr, DataRef};

pub use pangloss::{PanglossBackend, PanglossConfig};
pub use triangel::{TriangelBackend, TriangelConfig};

/// FNV-1a 64-bit hash, the deterministic index/identity hash every
/// backend table uses. Re-exported from the workspace-wide
/// implementation in [`hds_trace::hash`].
pub use hds_trace::hash::fnv1a64;

/// Which prefetch backend a session runs — the identity that is
/// negotiated on the wire, recorded in snapshots, and counted in
/// telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum BackendKind {
    /// The paper's software scheme: bursty profiling → Sequitur →
    /// hot-data-stream analysis → injected prefix-matching DFSM.
    #[default]
    DynPref,
    /// Delta-Markov with a compressed/quantized transition table.
    Pangloss,
    /// Temporal prefetching with sampled training metadata and
    /// pattern/metadata filtering.
    Triangel,
}

impl BackendKind {
    /// Every kind, in wire-code order.
    pub const ALL: [BackendKind; 3] = [
        BackendKind::DynPref,
        BackendKind::Pangloss,
        BackendKind::Triangel,
    ];

    /// The label used in reports and figures (matches the paper's
    /// "Dyn-pref" naming style).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            BackendKind::DynPref => "Dyn-pref",
            BackendKind::Pangloss => "Pangloss",
            BackendKind::Triangel => "Triangel",
        }
    }

    /// The single-byte code used on the wire and in snapshots.
    #[must_use]
    pub fn wire_code(self) -> u8 {
        match self {
            BackendKind::DynPref => 0,
            BackendKind::Pangloss => 1,
            BackendKind::Triangel => 2,
        }
    }

    /// Decodes a wire/snapshot code.
    #[must_use]
    pub fn from_wire_code(code: u8) -> Option<BackendKind> {
        BackendKind::ALL.into_iter().find(|k| k.wire_code() == code)
    }

    /// Parses a lowercase name (`dyn-pref`, `pangloss`, `triangel`),
    /// as used in CLI flags.
    #[must_use]
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "dyn-pref" | "dynpref" => Some(BackendKind::DynPref),
            "pangloss" => Some(BackendKind::Pangloss),
            "triangel" => Some(BackendKind::Triangel),
            _ => None,
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Backend selection *with configuration* — the field
/// `OptimizerConfig.backend` carries. [`BackendKind`] is the identity;
/// this is the identity plus its knobs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum BackendSelect {
    /// The paper's scheme (default): no online backend, the classic
    /// grammar→DFSM path runs exactly as before.
    #[default]
    DynPref,
    /// Pangloss with the given table shape.
    Pangloss(PanglossConfig),
    /// Triangel with the given table shape.
    Triangel(TriangelConfig),
}

impl BackendSelect {
    /// The backend identity this selection names.
    #[must_use]
    pub fn kind(&self) -> BackendKind {
        match self {
            BackendSelect::DynPref => BackendKind::DynPref,
            BackendSelect::Pangloss(_) => BackendKind::Pangloss,
            BackendSelect::Triangel(_) => BackendKind::Triangel,
        }
    }

    /// The default-configured selection for a kind (used when the serve
    /// tier resolves a negotiated/e A/B-assigned kind that differs from
    /// the operator's base configuration).
    #[must_use]
    pub fn default_for(kind: BackendKind) -> BackendSelect {
        match kind {
            BackendKind::DynPref => BackendSelect::DynPref,
            BackendKind::Pangloss => BackendSelect::Pangloss(PanglossConfig::default()),
            BackendKind::Triangel => BackendSelect::Triangel(TriangelConfig::default()),
        }
    }
}

/// State-restore failure: the serialized words do not fit this
/// backend's configured table shape.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RestoreError {
    /// Word-count mismatch against the configured shape.
    BadLength {
        /// Words the configured shape serializes to.
        expected: usize,
        /// Words provided.
        got: usize,
    },
}

impl std::fmt::Display for RestoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RestoreError::BadLength { expected, got } => {
                write!(f, "backend state has {got} words, expected {expected}")
            }
        }
    }
}

impl std::error::Error for RestoreError {}

/// An online prefetch backend: observes every demand access and
/// proposes tagged prefetches.
///
/// Layer contract (DESIGN.md §14):
///
/// * the **optimizer** calls [`on_access`](PrefetchBackend::on_access)
///   once per demand access in program order and charges the returned
///   table-operation count to the matching cost category;
/// * the **guard** registers every row of
///   [`tag_registrations`](PrefetchBackend::tag_registrations) with its
///   accuracy tracker and calls
///   [`drop_tag`](PrefetchBackend::drop_tag) when a row's accuracy
///   window goes bad — a dropped row never learns or predicts again;
/// * the **snapshot** layer round-trips
///   [`export_words`](PrefetchBackend::export_words) /
///   [`restore_words`](PrefetchBackend::restore_words) and a
///   [`BackendKind::wire_code`] discriminant, and resume is
///   bit-identical;
/// * the **serve** tier may construct one backend per tenant; backends
///   must not share state.
pub trait PrefetchBackend {
    /// This backend's identity.
    fn kind(&self) -> BackendKind;

    /// Observes one demand access (`missed` = it left L1) and pushes
    /// `(address, row tag)` prefetch proposals. Returns the number of
    /// table operations performed, for cycle accounting.
    fn on_access(&mut self, r: DataRef, missed: bool, out: &mut Vec<(Addr, u32)>) -> u64;

    /// Permanently disables one table row (accuracy-driven
    /// de-optimization). Idempotent.
    fn drop_tag(&mut self, tag: u32);

    /// `(row tag, stable content hash)` for every *live* row, for guard
    /// accuracy registration. Hashes are stable across runs so the
    /// guard's denylist is reproducible.
    fn tag_registrations(&self) -> Vec<(u32, u64)>;

    /// Live (non-dropped) rows currently holding learned state.
    fn occupancy(&self) -> usize;

    /// Serializes the full mutable state as flat words.
    fn export_words(&self) -> Vec<u64>;

    /// Restores state previously produced by
    /// [`export_words`](PrefetchBackend::export_words) on an
    /// identically configured backend.
    ///
    /// # Errors
    ///
    /// [`RestoreError::BadLength`] when `words` does not fit the
    /// configured shape.
    fn restore_words(&mut self, words: &[u64]) -> Result<(), RestoreError>;
}

/// Enum dispatch over the online backends, so the optimizer holds one
/// concrete field (no `dyn` on the hot path) and snapshots carry a
/// plain discriminant.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum AnyBackend {
    /// Delta-Markov (Pangloss).
    Pangloss(PanglossBackend),
    /// Sampled temporal (Triangel).
    Triangel(TriangelBackend),
}

impl AnyBackend {
    /// Builds the online backend a selection names, at the given cache
    /// block size. `None` for [`BackendSelect::DynPref`] — the classic
    /// path has no online backend.
    ///
    /// # Panics
    ///
    /// Panics on invalid table shapes (zero degree, non-power-of-two
    /// rows); builder-validated configurations never panic.
    #[must_use]
    pub fn from_select(select: &BackendSelect, block_size: u64) -> Option<AnyBackend> {
        match select {
            BackendSelect::DynPref => None,
            BackendSelect::Pangloss(cfg) => {
                Some(AnyBackend::Pangloss(PanglossBackend::new(*cfg, block_size)))
            }
            BackendSelect::Triangel(cfg) => {
                Some(AnyBackend::Triangel(TriangelBackend::new(*cfg, block_size)))
            }
        }
    }
}

macro_rules! dispatch {
    ($self:ident, $b:ident => $e:expr) => {
        match $self {
            AnyBackend::Pangloss($b) => $e,
            AnyBackend::Triangel($b) => $e,
        }
    };
}

impl PrefetchBackend for AnyBackend {
    fn kind(&self) -> BackendKind {
        dispatch!(self, b => b.kind())
    }

    fn on_access(&mut self, r: DataRef, missed: bool, out: &mut Vec<(Addr, u32)>) -> u64 {
        dispatch!(self, b => b.on_access(r, missed, out))
    }

    fn drop_tag(&mut self, tag: u32) {
        dispatch!(self, b => b.drop_tag(tag));
    }

    fn tag_registrations(&self) -> Vec<(u32, u64)> {
        dispatch!(self, b => b.tag_registrations())
    }

    fn occupancy(&self) -> usize {
        dispatch!(self, b => b.occupancy())
    }

    fn export_words(&self) -> Vec<u64> {
        dispatch!(self, b => b.export_words())
    }

    fn restore_words(&mut self, words: &[u64]) -> Result<(), RestoreError> {
        dispatch!(self, b => b.restore_words(words))
    }
}

/// Every backend is also a [`Prefetcher`], so the hardware-baseline
/// harness (`run_with_hw_prefetcher`) and the `related_prefetchers`
/// experiment drive the *real* implementations rather than idealized
/// models.
impl Prefetcher for AnyBackend {
    fn on_access(&mut self, r: DataRef, outcome: AccessOutcome) -> Vec<Addr> {
        let mut out = Vec::new();
        let missed = !matches!(outcome, AccessOutcome::L1Hit);
        PrefetchBackend::on_access(self, r, missed, &mut out);
        out.into_iter().map(|(a, _)| a).collect()
    }

    fn name(&self) -> &'static str {
        match self {
            AnyBackend::Pangloss(_) => "pangloss",
            AnyBackend::Triangel(_) => "triangel",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hds_trace::Pc;

    fn load(pc: u32, addr: u64) -> DataRef {
        DataRef::new(Pc(pc), Addr(addr))
    }

    #[test]
    fn kind_codes_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::from_wire_code(kind.wire_code()), Some(kind));
        }
        assert_eq!(BackendKind::from_wire_code(3), None);
        assert_eq!(BackendKind::parse("pangloss"), Some(BackendKind::Pangloss));
        assert_eq!(BackendKind::parse("dyn-pref"), Some(BackendKind::DynPref));
        assert_eq!(BackendKind::parse("nope"), None);
    }

    #[test]
    fn select_kind_and_defaults() {
        assert_eq!(BackendSelect::default().kind(), BackendKind::DynPref);
        for kind in BackendKind::ALL {
            assert_eq!(BackendSelect::default_for(kind).kind(), kind);
        }
        assert!(AnyBackend::from_select(&BackendSelect::DynPref, 32).is_none());
    }

    #[test]
    fn any_backend_dispatches_and_round_trips() {
        for kind in [BackendKind::Pangloss, BackendKind::Triangel] {
            let select = BackendSelect::default_for(kind);
            let mut b = AnyBackend::from_select(&select, 32).expect("online backend");
            assert_eq!(b.kind(), kind);
            let mut out = Vec::new();
            // Drive a repeating miss pattern so state accumulates.
            for rep in 0..8 {
                for k in 0..16u64 {
                    let _ = PrefetchBackend::on_access(
                        &mut b,
                        load(16, 0x1000 + k * 4096 + rep),
                        true,
                        &mut out,
                    );
                }
            }
            let words = b.export_words();
            let mut fresh = AnyBackend::from_select(&select, 32).expect("online backend");
            fresh.restore_words(&words).expect("round trip");
            assert_eq!(fresh, b);
            assert_eq!(fresh.export_words(), words);
            assert_eq!(
                fresh.restore_words(&words[..words.len() - 1]),
                Err(RestoreError::BadLength {
                    expected: words.len(),
                    got: words.len() - 1
                })
            );
        }
    }

    #[test]
    fn determinism_same_trace_same_predictions() {
        for kind in [BackendKind::Pangloss, BackendKind::Triangel] {
            let select = BackendSelect::default_for(kind);
            let mut a = AnyBackend::from_select(&select, 32).expect("backend");
            let mut b = AnyBackend::from_select(&select, 32).expect("backend");
            let mut out_a = Vec::new();
            let mut out_b = Vec::new();
            for rep in 0..4 {
                for k in 0..32u64 {
                    let r = load(16 + (k as u32 % 3) * 4, 0x2000 + k * 2048 + rep * 7);
                    let ops_a = PrefetchBackend::on_access(&mut a, r, k % 5 != 0, &mut out_a);
                    let ops_b = PrefetchBackend::on_access(&mut b, r, k % 5 != 0, &mut out_b);
                    assert_eq!(ops_a, ops_b);
                }
            }
            assert_eq!(out_a, out_b);
            assert_eq!(a.export_words(), b.export_words());
        }
    }

    #[test]
    fn prefetcher_adapter_strips_tags() {
        let select = BackendSelect::default_for(BackendKind::Pangloss);
        let mut b = AnyBackend::from_select(&select, 32).expect("backend");
        assert_eq!(Prefetcher::name(&b), "pangloss");
        for k in 0..64u64 {
            let _ = Prefetcher::on_access(&mut b, load(16, 0x1000 + (k % 8) * 4096), {
                AccessOutcome::Memory
            });
        }
        // A hit never predicts.
        assert!(Prefetcher::on_access(&mut b, load(16, 0x1000), AccessOutcome::L1Hit).is_empty());
    }
}
