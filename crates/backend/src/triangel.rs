//! Triangel-style temporal prefetching: sampled training metadata with
//! pattern/metadata filtering.
//!
//! Temporal (address-correlating) prefetchers learn `miss → next miss`
//! pairs, which is powerful on pointer chases but expensive in
//! metadata. Triangel's insight is to *filter*: a small, sampled set of
//! per-PC **training units** first decides which load sites actually
//! exhibit stable temporal behavior (pattern filtering), and only those
//! sites are allowed to write or use correlation metadata (metadata
//! filtering). This implementation keeps both filters:
//!
//! * training units live in a fixed, hash-indexed table; an untracked
//!   PC only captures a unit once the incumbent's confidence has
//!   decayed to zero — hash-capacity **sampling** of the PC space;
//! * a unit's *pattern confidence* rises each time the temporal table
//!   correctly anticipated this PC's next miss and falls otherwise;
//!   predictions are issued only above a confidence threshold;
//! * temporal-table entries resist replacement proportionally to their
//!   own confirmation count, so proven metadata survives noise.

use hds_trace::{Addr, DataRef};

use crate::{fnv1a64, BackendKind, PrefetchBackend, RestoreError};

/// Table shape and filtering knobs for [`TriangelBackend`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TriangelConfig {
    /// Per-PC training units. Must be a nonzero power of two.
    pub train_rows: u32,
    /// Temporal-table rows (direct-mapped by miss block). Must be a
    /// nonzero power of two.
    pub table_rows: u32,
    /// Maximum chained predictions issued per miss.
    pub degree: u32,
    /// Pattern confidence a training unit needs before its PC may
    /// issue prefetches.
    pub pattern_threshold: u8,
}

impl Default for TriangelConfig {
    fn default() -> Self {
        TriangelConfig {
            train_rows: 256,
            table_rows: 2048,
            degree: 4,
            pattern_threshold: 2,
        }
    }
}

/// One per-PC training unit (`valid == false` means empty).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct TrainUnit {
    pc: u32,
    last_block: u64,
    /// Pattern confidence; doubles as the residency counter sampled
    /// replacement decays.
    conf: u8,
    valid: bool,
}

/// One temporal-table entry (`conf == 0` means empty).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct TemporalEntry {
    /// The miss block this entry correlates from.
    tag: u64,
    /// The observed next miss block.
    next: u64,
    /// Confirmation count (saturating).
    conf: u8,
}

/// The sampled temporal backend. See the module docs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TriangelBackend {
    cfg: TriangelConfig,
    block_size: u64,
    train: Vec<TrainUnit>,
    table: Vec<TemporalEntry>,
    /// One bit per temporal row: permanently disabled by the guard.
    dead: Vec<u64>,
}

impl TriangelBackend {
    /// Builds an empty backend for the given cache block size.
    ///
    /// # Panics
    ///
    /// Panics unless `train_rows`, `table_rows`, and `block_size` are
    /// nonzero powers of two and `degree` is nonzero.
    #[must_use]
    pub fn new(cfg: TriangelConfig, block_size: u64) -> Self {
        assert!(
            cfg.train_rows > 0 && cfg.train_rows.is_power_of_two(),
            "train_rows must be a nonzero power of two"
        );
        assert!(
            cfg.table_rows > 0 && cfg.table_rows.is_power_of_two(),
            "table_rows must be a nonzero power of two"
        );
        assert!(cfg.degree > 0, "degree must be nonzero");
        assert!(
            block_size.is_power_of_two(),
            "block size must be a power of two"
        );
        TriangelBackend {
            cfg,
            block_size,
            train: vec![TrainUnit::default(); cfg.train_rows as usize],
            table: vec![TemporalEntry::default(); cfg.table_rows as usize],
            dead: vec![0; (cfg.table_rows as usize).div_ceil(64)],
        }
    }

    /// The configuration this backend was built with.
    #[must_use]
    pub fn config(&self) -> TriangelConfig {
        self.cfg
    }

    fn train_row(&self, pc: u32) -> usize {
        (fnv1a64(&pc.to_le_bytes()) & u64::from(self.cfg.train_rows - 1)) as usize
    }

    fn table_row(&self, block: u64) -> usize {
        (fnv1a64(&block.to_le_bytes()) & u64::from(self.cfg.table_rows - 1)) as usize
    }

    fn is_dead(&self, row: usize) -> bool {
        self.dead[row / 64] >> (row % 64) & 1 == 1
    }

    /// Records `prev → block` in the temporal table and reports whether
    /// the table had already predicted it (pattern confirmation).
    fn correlate(&mut self, prev: u64, block: u64) -> bool {
        let row = self.table_row(prev);
        if self.is_dead(row) {
            return false;
        }
        let e = &mut self.table[row];
        if e.conf > 0 && e.tag == prev {
            if e.next == block {
                e.conf = e.conf.saturating_add(1);
                return true;
            }
            // Established metadata resists one round of contradiction.
            e.conf -= 1;
            if e.conf == 0 {
                *e = TemporalEntry {
                    tag: prev,
                    next: block,
                    conf: 1,
                };
            }
            return false;
        }
        if e.conf == 0 {
            *e = TemporalEntry {
                tag: prev,
                next: block,
                conf: 1,
            };
        } else {
            // Metadata filtering: a proven entry for another block
            // decays rather than being evicted outright.
            e.conf -= 1;
        }
        false
    }

    fn expected_words(&self) -> usize {
        self.train.len() * 2 + self.dead.len() + self.table.len() * 3
    }
}

impl PrefetchBackend for TriangelBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Triangel
    }

    fn on_access(&mut self, r: DataRef, missed: bool, out: &mut Vec<(Addr, u32)>) -> u64 {
        if !missed {
            return 0;
        }
        let block = r.addr.block(self.block_size);
        let row = self.train_row(r.pc.0);
        let mut ops = 1u64; // training-unit probe
        let unit = self.train[row];
        if !unit.valid || unit.pc != r.pc.0 {
            // Sampled training: an untracked PC claims a unit only once
            // the incumbent's confidence has decayed away.
            let u = &mut self.train[row];
            if !u.valid || u.conf == 0 {
                *u = TrainUnit {
                    pc: r.pc.0,
                    last_block: block,
                    conf: 0,
                    valid: true,
                };
            } else {
                u.conf -= 1;
            }
            return ops;
        }
        let prev = unit.last_block;
        self.train[row].last_block = block;
        if prev != block {
            ops += 1;
            let confirmed = self.correlate(prev, block);
            let u = &mut self.train[row];
            if confirmed {
                u.conf = u.conf.saturating_add(1);
            } else {
                u.conf = u.conf.saturating_sub(1);
            }
        }
        // Pattern filtering: only confident PCs issue prefetches.
        if self.train[row].conf >= self.cfg.pattern_threshold.max(1) {
            let mut cur = block;
            for _ in 0..self.cfg.degree {
                let trow = self.table_row(cur);
                ops += 1;
                let e = self.table[trow];
                if self.is_dead(trow) || e.conf == 0 || e.tag != cur {
                    break;
                }
                #[allow(clippy::cast_possible_truncation)]
                out.push((Addr(e.next.wrapping_mul(self.block_size)), trow as u32));
                cur = e.next;
            }
        }
        ops
    }

    fn drop_tag(&mut self, tag: u32) {
        if tag < self.cfg.table_rows {
            let row = tag as usize;
            self.dead[row / 64] |= 1 << (row % 64);
            self.table[row] = TemporalEntry::default();
        }
    }

    fn tag_registrations(&self) -> Vec<(u32, u64)> {
        (0..self.cfg.table_rows)
            .filter(|&row| !self.is_dead(row as usize))
            .map(|row| {
                let mut key = *b"triangel\0\0\0\0";
                key[8..].copy_from_slice(&row.to_le_bytes());
                (row, fnv1a64(&key))
            })
            .collect()
    }

    fn occupancy(&self) -> usize {
        (0..self.table.len())
            .filter(|&row| !self.is_dead(row) && self.table[row].conf > 0)
            .count()
    }

    fn export_words(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(self.expected_words());
        for u in &self.train {
            words.push(u64::from(u.pc) | (u64::from(u.conf) << 32) | (u64::from(u.valid) << 40));
            words.push(u.last_block);
        }
        words.extend_from_slice(&self.dead);
        for e in &self.table {
            words.push(e.tag);
            words.push(e.next);
            words.push(u64::from(e.conf));
        }
        words
    }

    fn restore_words(&mut self, words: &[u64]) -> Result<(), RestoreError> {
        let expected = self.expected_words();
        if words.len() != expected {
            return Err(RestoreError::BadLength {
                expected,
                got: words.len(),
            });
        }
        let mut it = words.iter().copied();
        #[allow(clippy::cast_possible_truncation)]
        for u in &mut self.train {
            let w = it.next().expect("length checked");
            *u = TrainUnit {
                pc: w as u32,
                conf: (w >> 32) as u8,
                valid: w >> 40 & 1 == 1,
                last_block: it.next().expect("length checked"),
            };
        }
        for d in &mut self.dead {
            *d = it.next().expect("length checked");
        }
        #[allow(clippy::cast_possible_truncation)]
        for e in &mut self.table {
            *e = TemporalEntry {
                tag: it.next().expect("length checked"),
                next: it.next().expect("length checked"),
                conf: it.next().expect("length checked") as u8,
            };
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hds_trace::Pc;

    fn load(pc: u32, addr: u64) -> DataRef {
        DataRef::new(Pc(pc), Addr(addr))
    }

    /// Replays a pointer-chase loop (fixed block sequence from one PC).
    fn chase(b: &mut TriangelBackend, pc: u32, blocks: &[u64], reps: usize) -> Vec<(Addr, u32)> {
        let mut out = Vec::new();
        for _ in 0..reps {
            for &blk in blocks {
                b.on_access(load(pc, blk * 32), true, &mut out);
            }
        }
        out
    }

    #[test]
    fn learns_temporal_chain_after_pattern_confidence() {
        let mut b = TriangelBackend::new(TriangelConfig::default(), 32);
        let seq = [0x100u64, 0x9a0, 0x233, 0x771];
        // The first traversal builds correlation + pattern confidence…
        let early = chase(&mut b, 16, &seq, 1);
        assert!(early.is_empty(), "unconfident PC must stay filtered");
        // …later traversals prefetch the chain.
        let out = chase(&mut b, 16, &seq, 2);
        assert!(!out.is_empty());
        let predicted: Vec<u64> = out.iter().map(|(a, _)| a.block(32)).collect();
        for p in &predicted {
            assert!(seq.contains(p), "prediction {p:#x} outside the chain");
        }
        assert!(b.occupancy() > 0);
    }

    #[test]
    fn unstable_pc_never_issues() {
        let mut b = TriangelBackend::new(TriangelConfig::default(), 32);
        let mut out = Vec::new();
        // Every miss goes somewhere new: correlations never confirm.
        for k in 0..200u64 {
            b.on_access(load(16, (0x1000 + k * 977) * 32), true, &mut out);
        }
        assert!(out.is_empty());
    }

    #[test]
    fn hits_are_free() {
        let mut b = TriangelBackend::new(TriangelConfig::default(), 32);
        let mut out = Vec::new();
        assert_eq!(b.on_access(load(16, 0x100), false, &mut out), 0);
        assert!(out.is_empty());
    }

    #[test]
    fn dropped_row_never_predicts_or_relearns() {
        let mut b = TriangelBackend::new(TriangelConfig::default(), 32);
        let seq = [0x100u64, 0x9a0, 0x233, 0x771];
        chase(&mut b, 16, &seq, 4);
        let out = chase(&mut b, 16, &seq, 1);
        let tags: Vec<u32> = out.iter().map(|&(_, t)| t).collect();
        assert!(!tags.is_empty());
        for t in &tags {
            b.drop_tag(*t);
        }
        let again = chase(&mut b, 16, &seq, 4);
        assert!(again.iter().all(|(_, t)| !tags.contains(t)));
        let regs = b.tag_registrations();
        for t in &tags {
            assert!(!regs.iter().any(|(row, _)| row == t));
        }
    }

    #[test]
    fn training_units_sample_by_decay() {
        let cfg = TriangelConfig {
            train_rows: 1,
            ..TriangelConfig::default()
        };
        let mut b = TriangelBackend::new(cfg, 32);
        let seq = [0x10u64, 0x20, 0x30];
        // PC 1 owns the single unit and gains confidence.
        chase(&mut b, 1, &seq, 4);
        // PC 2 must knock the confidence down before it can train at
        // all — and until then it predicts nothing.
        let mut out = Vec::new();
        for _ in 0..3 {
            b.on_access(load(2, 0x40 * 32), true, &mut out);
        }
        assert!(out.is_empty());
        // Eventually PC 2 captures the unit and can build its own
        // confidence.
        let out = chase(&mut b, 2, &[0x40, 0x50, 0x60], 8);
        assert!(!out.is_empty(), "PC 2 never captured the training unit");
    }
}
