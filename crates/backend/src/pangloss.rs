//! Pangloss: a Markov chain over miss-block **deltas** with a
//! compressed, quantized transition table.
//!
//! Classic Markov/correlation prefetchers key their table by miss
//! *address*, which needs megabytes of state to cover a real working
//! set. Pangloss instead models the transition `delta → next delta`
//! over cache-block deltas between consecutive misses: the state space
//! is the (small, reused) set of deltas, so a few thousand set
//! -associative rows with saturating confidence counters — the
//! "compressed/quantized" table — cover the same patterns. Prediction
//! walks the chain: from the current delta, repeatedly take the most
//! confident next delta and accumulate it onto the miss address, up to
//! the configured degree.

use hds_trace::{Addr, DataRef};

use crate::{fnv1a64, BackendKind, PrefetchBackend, RestoreError};

/// Table shape and prediction knobs for [`PanglossBackend`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct PanglossConfig {
    /// Transition-table rows (one per delta-hash bucket). Must be a
    /// nonzero power of two.
    pub rows: u32,
    /// Entries per row (bounded fan-out per delta context).
    pub assoc: u32,
    /// Maximum chained predictions issued per miss.
    pub degree: u32,
    /// Minimum saturating confidence an entry needs to predict.
    pub confidence: u8,
}

impl Default for PanglossConfig {
    fn default() -> Self {
        PanglossConfig {
            rows: 1024,
            assoc: 4,
            degree: 4,
            confidence: 2,
        }
    }
}

/// One transition-table entry: `conf == 0` means empty.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
struct Entry {
    /// The predicted next delta (quantized to 32 bits).
    delta: i32,
    /// Saturating confidence counter.
    conf: u8,
}

/// The delta-Markov backend. See the module docs.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PanglossBackend {
    cfg: PanglossConfig,
    block_size: u64,
    /// `rows * assoc` entries, row-major.
    entries: Vec<Entry>,
    /// One bit per row: permanently disabled by the accuracy guard.
    dead: Vec<u64>,
    last_block: u64,
    last_delta: i64,
    /// Bit 0: `last_block` valid; bit 1: `last_delta` valid.
    flags: u64,
}

const HAVE_BLOCK: u64 = 1;
const HAVE_DELTA: u64 = 2;

impl PanglossBackend {
    /// Builds an empty backend for the given cache block size.
    ///
    /// # Panics
    ///
    /// Panics unless `rows` and `block_size` are nonzero powers of two
    /// and `assoc`/`degree` are nonzero.
    #[must_use]
    pub fn new(cfg: PanglossConfig, block_size: u64) -> Self {
        assert!(
            cfg.rows > 0 && cfg.rows.is_power_of_two(),
            "rows must be a nonzero power of two"
        );
        assert!(cfg.assoc > 0, "assoc must be nonzero");
        assert!(cfg.degree > 0, "degree must be nonzero");
        assert!(
            block_size.is_power_of_two(),
            "block size must be a power of two"
        );
        let rows = cfg.rows as usize;
        PanglossBackend {
            cfg,
            block_size,
            entries: vec![Entry::default(); rows * cfg.assoc as usize],
            dead: vec![0; rows.div_ceil(64)],
            last_block: 0,
            last_delta: 0,
            flags: 0,
        }
    }

    /// The configuration this backend was built with.
    #[must_use]
    pub fn config(&self) -> PanglossConfig {
        self.cfg
    }

    fn row_of(&self, delta: i64) -> usize {
        (fnv1a64(&delta.to_le_bytes()) & u64::from(self.cfg.rows - 1)) as usize
    }

    fn is_dead(&self, row: usize) -> bool {
        self.dead[row / 64] >> (row % 64) & 1 == 1
    }

    fn row_entries(&mut self, row: usize) -> &mut [Entry] {
        let assoc = self.cfg.assoc as usize;
        &mut self.entries[row * assoc..(row + 1) * assoc]
    }

    /// Trains `context delta → observed delta` with saturating
    /// confidence and deterministic least-confident replacement.
    fn train(&mut self, context: i64, observed: i32) {
        let row = self.row_of(context);
        if self.is_dead(row) {
            return;
        }
        let slots = self.row_entries(row);
        if let Some(e) = slots.iter_mut().find(|e| e.conf > 0 && e.delta == observed) {
            e.conf = e.conf.saturating_add(1);
            return;
        }
        if let Some(e) = slots.iter_mut().find(|e| e.conf == 0) {
            *e = Entry {
                delta: observed,
                conf: 1,
            };
            return;
        }
        // Full row: age the least-confident entry (first wins ties);
        // replace it once its confidence decays to zero.
        let weakest = (0..slots.len())
            .min_by_key(|&i| slots[i].conf)
            .expect("assoc is nonzero");
        slots[weakest].conf -= 1;
        if slots[weakest].conf == 0 {
            slots[weakest] = Entry {
                delta: observed,
                conf: 1,
            };
        }
    }

    /// The most confident predicting entry of a delta context, if any.
    fn predict(&self, context: i64) -> Option<(usize, i32)> {
        let row = self.row_of(context);
        if self.is_dead(row) {
            return None;
        }
        let assoc = self.cfg.assoc as usize;
        self.entries[row * assoc..(row + 1) * assoc]
            .iter()
            .filter(|e| e.conf >= self.cfg.confidence.max(1))
            .max_by_key(|e| e.conf)
            .map(|e| (row, e.delta))
    }

    fn expected_words(&self) -> usize {
        3 + self.dead.len() + self.entries.len()
    }
}

impl PrefetchBackend for PanglossBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Pangloss
    }

    fn on_access(&mut self, r: DataRef, missed: bool, out: &mut Vec<(Addr, u32)>) -> u64 {
        if !missed {
            return 0;
        }
        let block = r.addr.block(self.block_size);
        let mut ops = 0u64;
        let mut context = None;
        if self.flags & HAVE_BLOCK != 0 {
            let delta = block.wrapping_sub(self.last_block) as i64;
            // Quantize: deltas beyond 32 bits saturate (they carry no
            // reusable locality anyway).
            #[allow(clippy::cast_possible_truncation)]
            let q = delta.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32;
            if self.flags & HAVE_DELTA != 0 && delta != 0 {
                self.train(self.last_delta, q);
                ops += 1;
            }
            if delta != 0 {
                self.last_delta = i64::from(q);
                self.flags |= HAVE_DELTA;
            }
            context = (self.flags & HAVE_DELTA != 0).then_some(self.last_delta);
        }
        self.last_block = block;
        self.flags |= HAVE_BLOCK;
        // Walk the delta chain from the current miss.
        let mut cur = block;
        let mut ctx = context;
        for _ in 0..self.cfg.degree {
            let Some(d) = ctx else { break };
            ops += 1;
            let Some((row, next_delta)) = self.predict(d) else {
                break;
            };
            cur = cur.wrapping_add(next_delta as i64 as u64);
            #[allow(clippy::cast_possible_truncation)]
            out.push((Addr(cur.wrapping_mul(self.block_size)), row as u32));
            ctx = Some(i64::from(next_delta));
        }
        ops
    }

    fn drop_tag(&mut self, tag: u32) {
        if tag < self.cfg.rows {
            let row = tag as usize;
            self.dead[row / 64] |= 1 << (row % 64);
            self.row_entries(row).fill(Entry::default());
        }
    }

    fn tag_registrations(&self) -> Vec<(u32, u64)> {
        (0..self.cfg.rows)
            .filter(|&row| !self.is_dead(row as usize))
            .map(|row| {
                let mut key = *b"pangloss\0\0\0\0";
                key[8..].copy_from_slice(&row.to_le_bytes());
                (row, fnv1a64(&key))
            })
            .collect()
    }

    fn occupancy(&self) -> usize {
        let assoc = self.cfg.assoc as usize;
        (0..self.cfg.rows as usize)
            .filter(|&row| {
                !self.is_dead(row)
                    && self.entries[row * assoc..(row + 1) * assoc]
                        .iter()
                        .any(|e| e.conf > 0)
            })
            .count()
    }

    fn export_words(&self) -> Vec<u64> {
        let mut words = Vec::with_capacity(self.expected_words());
        words.push(self.flags);
        words.push(self.last_block);
        words.push(self.last_delta as u64);
        words.extend_from_slice(&self.dead);
        words.extend(
            self.entries
                .iter()
                .map(|e| (u64::from(e.delta as u32) << 8) | u64::from(e.conf)),
        );
        words
    }

    fn restore_words(&mut self, words: &[u64]) -> Result<(), RestoreError> {
        let expected = self.expected_words();
        if words.len() != expected {
            return Err(RestoreError::BadLength {
                expected,
                got: words.len(),
            });
        }
        self.flags = words[0];
        self.last_block = words[1];
        self.last_delta = words[2] as i64;
        let dead_end = 3 + self.dead.len();
        self.dead.copy_from_slice(&words[3..dead_end]);
        for (e, &w) in self.entries.iter_mut().zip(&words[dead_end..]) {
            #[allow(clippy::cast_possible_truncation)]
            {
                *e = Entry {
                    delta: (w >> 8) as u32 as i32,
                    conf: (w & 0xff) as u8,
                };
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hds_trace::Pc;

    fn load(addr: u64) -> DataRef {
        DataRef::new(Pc(16), Addr(addr))
    }

    fn trained(block_size: u64, stride: u64, reps: usize) -> PanglossBackend {
        let mut b = PanglossBackend::new(PanglossConfig::default(), block_size);
        let mut out = Vec::new();
        for k in 0..reps as u64 {
            b.on_access(load(0x1_0000 + k * stride), true, &mut out);
        }
        b
    }

    #[test]
    fn learns_constant_stride_chain() {
        // Stride of 4 blocks (block size 32 → stride 128 bytes).
        let mut b = trained(32, 128, 8);
        let mut out = Vec::new();
        b.on_access(load(0x2_0000), true, &mut out);
        out.clear();
        b.on_access(load(0x2_0000 + 128), true, &mut out);
        // Chained degree-4 predictions, 4 blocks apart each.
        assert_eq!(out.len(), 4, "predictions: {out:?}");
        let base = Addr(0x2_0000 + 128).block(32);
        for (i, (addr, _tag)) in out.iter().enumerate() {
            assert_eq!(addr.block(32), base + 4 * (i as u64 + 1));
        }
    }

    #[test]
    fn hits_and_zero_deltas_are_ignored() {
        let mut b = PanglossBackend::new(PanglossConfig::default(), 32);
        let mut out = Vec::new();
        assert_eq!(b.on_access(load(0x1000), false, &mut out), 0);
        b.on_access(load(0x1000), true, &mut out);
        // Same block again: delta 0 trains nothing.
        b.on_access(load(0x1008), true, &mut out);
        assert!(out.is_empty());
        assert_eq!(b.occupancy(), 0);
    }

    #[test]
    fn dropped_row_never_predicts_or_relearns() {
        let mut b = trained(32, 128, 8);
        assert!(b.occupancy() > 0);
        let mut out = Vec::new();
        b.on_access(load(0x3_0000), true, &mut out);
        out.clear();
        b.on_access(load(0x3_0000 + 128), true, &mut out);
        let tags: Vec<u32> = out.iter().map(|&(_, t)| t).collect();
        assert!(!tags.is_empty());
        for t in &tags {
            b.drop_tag(*t);
        }
        let mut again = Vec::new();
        // Retrain hard: the dead row must stay silent.
        for k in 0..16u64 {
            again.clear();
            b.on_access(load(0x5_0000 + k * 128), true, &mut again);
        }
        assert!(again.iter().all(|(_, t)| !tags.contains(t)));
        // Registrations exclude the dead rows.
        let regs = b.tag_registrations();
        for t in &tags {
            assert!(!regs.iter().any(|(row, _)| row == t));
        }
    }

    #[test]
    fn registrations_are_stable_hashes() {
        let a = PanglossBackend::new(PanglossConfig::default(), 32);
        let b = trained(32, 128, 8);
        let ra = a.tag_registrations();
        let rb = b.tag_registrations();
        assert_eq!(ra.len(), 1024);
        assert_eq!(ra, rb, "hashes depend only on row identity");
    }

    #[test]
    fn replacement_ages_weakest_entry() {
        let cfg = PanglossConfig {
            rows: 1024,
            assoc: 1,
            degree: 1,
            confidence: 1,
        };
        let mut b = PanglossBackend::new(cfg, 32);
        let mut out = Vec::new();
        // Context delta +1 block observes +2 twice, then +3 twice: the
        // second pattern must eventually displace the first.
        for _ in 0..2 {
            b.on_access(load(0), true, &mut out);
            b.on_access(load(32), true, &mut out); // delta +1
            b.on_access(load(96), true, &mut out); // trains +1 -> +2
        }
        for _ in 0..3 {
            b.on_access(load(0), true, &mut out);
            b.on_access(load(32), true, &mut out);
            b.on_access(load(128), true, &mut out); // trains +1 -> +3
        }
        out.clear();
        b.on_access(load(0x4000), true, &mut out);
        b.on_access(load(0x4000 + 32), true, &mut out);
        let blocks: Vec<u64> = out.iter().map(|(a, _)| a.block(32)).collect();
        let cur = Addr(0x4000 + 32).block(32);
        assert_eq!(blocks, vec![cur + 3]);
    }

    #[test]
    #[should_panic(expected = "rows")]
    fn validates_rows() {
        let cfg = PanglossConfig {
            rows: 3,
            ..PanglossConfig::default()
        };
        let _ = PanglossBackend::new(cfg, 32);
    }
}
