//! Bursty tracing: the low-overhead temporal profiling framework
//! (Hirzel & Chilimbi \[15\], paper §2.1–§2.2).
//!
//! Every procedure of the profiled program exists in two versions — plain
//! *checking* code and *instrumented* code that also records data
//! references. Both transfer control to a check at procedure entries and
//! loop back-edges; a pair of counters decides which version runs next:
//!
//! > "At startup, `nCheck` is `nCheck0` and `nInstr` is zero. Most of the
//! > time, the checking code is executed, and `nCheck` is decremented at
//! > every check. When it reaches zero, `nInstr` is initialized with
//! > `nInstr0` and the check transfers control to the instrumented code.
//! > While in the instrumented code, `nInstr` is decremented at every
//! > check. When it reaches zero, `nCheck` is initialized with `nCheck0`
//! > and control returns back to the checking code."
//!
//! `nCheck0 + nInstr0` dynamic checks form one *burst-period*. For online
//! optimization the framework alternates between an **awake** phase
//! (`nAwake0` burst-periods of real tracing) and a **hibernating** phase
//! (`nHibernate0` burst-periods with `nCheck = nCheck0 + nInstr0 - 1` and
//! `nInstr = 1`, so bursts degenerate to a single ignored check and the
//! only cost is the checks themselves). The sampling rate approximates
//! `(nAwake0·nInstr0) / ((nAwake0+nHibernate0)·(nInstr0+nCheck0))`
//! (§2.2, Figure 3).
//!
//! Everything here is plain counter arithmetic — deterministic, exactly
//! as the paper requires for repeatable runs.
//!
//! # Examples
//!
//! ```
//! use hds_bursty::{BurstyConfig, BurstyTracer, Mode, Signal};
//!
//! // 3 checking checks, 2 instrumented checks per burst-period.
//! let config = BurstyConfig::new(3, 2, 1, 4);
//! let mut tracer = BurstyTracer::new(config);
//! let mut modes = Vec::new();
//! for _ in 0..5 {
//!     tracer.on_check();
//!     modes.push(tracer.mode());
//! }
//! assert_eq!(
//!     modes,
//!     vec![Mode::Checking, Mode::Checking, Mode::Instrumented,
//!          Mode::Instrumented, Mode::Checking]
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;

/// The bursty-tracing counter settings.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct BurstyConfig {
    /// `nCheck0`: checks executed in checking code per burst-period.
    pub n_check0: u64,
    /// `nInstr0`: checks executed in instrumented code per burst-period
    /// (the burst length).
    pub n_instr0: u64,
    /// `nAwake0`: burst-periods per awake phase.
    pub n_awake0: u64,
    /// `nHibernate0`: burst-periods per hibernating phase.
    pub n_hibernate0: u64,
}

impl BurstyConfig {
    /// Creates and validates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if any counter is zero (the framework degenerates).
    #[must_use]
    pub fn new(n_check0: u64, n_instr0: u64, n_awake0: u64, n_hibernate0: u64) -> Self {
        assert!(n_check0 > 0, "nCheck0 must be nonzero");
        assert!(n_instr0 > 0, "nInstr0 must be nonzero");
        assert!(n_awake0 > 0, "nAwake0 must be nonzero");
        assert!(n_hibernate0 > 0, "nHibernate0 must be nonzero");
        BurstyConfig {
            n_check0,
            n_instr0,
            n_awake0,
            n_hibernate0,
        }
    }

    /// The paper's evaluation settings (§4.1): sampling rate 0.5% with
    /// bursts of 60 dynamic checks (`nCheck0 = 11 940`, `nInstr0 = 60`),
    /// awake 50 burst-periods out of every 2 500
    /// (`nAwake0 = 50`, `nHibernate0 = 2 450`) — "1 second of every 50
    /// seconds of program execution".
    #[must_use]
    pub fn paper_default() -> Self {
        BurstyConfig::new(11_940, 60, 50, 2_450)
    }

    /// Checks per burst-period (`nCheck0 + nInstr0`).
    #[must_use]
    pub fn burst_period(&self) -> u64 {
        self.n_check0 + self.n_instr0
    }

    /// The effective sampling rate
    /// `(nAwake0·nInstr0) / ((nAwake0+nHibernate0)·(nInstr0+nCheck0))`.
    #[must_use]
    pub fn sampling_rate(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            (self.n_awake0 * self.n_instr0) as f64
                / ((self.n_awake0 + self.n_hibernate0) * self.burst_period()) as f64
        }
    }

    /// The awake-phase burst sampling rate `nInstr0 / (nCheck0+nInstr0)`
    /// (what Figure 11's "Prof" configuration pays while awake).
    #[must_use]
    pub fn awake_rate(&self) -> f64 {
        #[allow(clippy::cast_precision_loss)]
        {
            self.n_instr0 as f64 / self.burst_period() as f64
        }
    }
}

impl Default for BurstyConfig {
    fn default() -> Self {
        BurstyConfig::paper_default()
    }
}

/// Which code version executes until the next check.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Mode {
    /// The plain checking version (no profiling).
    Checking,
    /// The instrumented version (records data references — unless
    /// hibernating, in which case the references are ignored, §2.4).
    Instrumented,
}

/// The profiling phase.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Phase {
    /// Actively collecting the temporal profile.
    Awake,
    /// Counters detuned; only check overhead is paid.
    Hibernating,
}

/// Signals the tracer raises at phase boundaries.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Signal {
    /// The instrumented code is entered: a profiling burst begins.
    BurstBegin,
    /// Control returned to checking code: the burst ended.
    BurstEnd,
    /// The awake phase completed its `nAwake0` burst-periods: time for
    /// the optimizer to analyze and optimize, then call
    /// [`BurstyTracer::hibernate`].
    AwakeComplete,
    /// The hibernating phase completed: the optimizer should de-optimize
    /// and call [`BurstyTracer::wake`].
    HibernationComplete,
}

impl fmt::Display for Signal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Signal::BurstBegin => "burst-begin",
            Signal::BurstEnd => "burst-end",
            Signal::AwakeComplete => "awake-complete",
            Signal::HibernationComplete => "hibernation-complete",
        };
        f.write_str(s)
    }
}

/// The bursty-tracing counter machine.
///
/// Drive it by calling [`BurstyTracer::on_check`] at every dynamic check
/// site (procedure entry or loop back-edge); read [`BurstyTracer::mode`]
/// to know which code version executes, and
/// [`BurstyTracer::should_record`] to know whether a data reference at
/// this point enters the trace buffer.
#[derive(Clone, Debug)]
pub struct BurstyTracer {
    config: BurstyConfig,
    /// Current per-phase counter initialisation values.
    n_check_cur: u64,
    n_instr_cur: u64,
    /// Live counters.
    n_check: u64,
    n_instr: u64,
    mode: Mode,
    phase: Phase,
    /// Burst-periods completed in the current phase.
    periods_in_phase: u64,
    /// Totals (diagnostics).
    total_checks: u64,
    total_bursts: u64,
    /// Checks executed while the phase was [`Phase::Awake`].
    awake_checks: u64,
    /// Awake/hibernate boundaries crossed ([`BurstyTracer::hibernate`] +
    /// [`BurstyTracer::wake`] calls).
    phase_transitions: u64,
}

impl BurstyTracer {
    /// Creates a tracer in the awake phase, checking mode.
    #[must_use]
    pub fn new(config: BurstyConfig) -> Self {
        BurstyTracer {
            n_check_cur: config.n_check0,
            n_instr_cur: config.n_instr0,
            n_check: config.n_check0,
            n_instr: 0,
            mode: Mode::Checking,
            phase: Phase::Awake,
            periods_in_phase: 0,
            total_checks: 0,
            total_bursts: 0,
            awake_checks: 0,
            phase_transitions: 0,
            config,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &BurstyConfig {
        &self.config
    }

    /// Which code version executes until the next check.
    #[must_use]
    pub fn mode(&self) -> Mode {
        self.mode
    }

    /// The current phase.
    #[must_use]
    pub fn phase(&self) -> Phase {
        self.phase
    }

    /// Should a data reference observed now be recorded into the trace
    /// buffer? True only in instrumented mode while awake — references
    /// traced during hibernation "are ignored by Sequitur to avoid trace
    /// contamination" (§2.4).
    #[must_use]
    pub fn should_record(&self) -> bool {
        self.mode == Mode::Instrumented && self.phase == Phase::Awake
    }

    /// Executes one dynamic check; returns a boundary signal if one
    /// fired. The mode *after* the call tells which version runs next.
    pub fn on_check(&mut self) -> Option<Signal> {
        self.total_checks += 1;
        if self.phase == Phase::Awake {
            self.awake_checks += 1;
        }
        match self.mode {
            Mode::Checking => {
                self.n_check -= 1;
                if self.n_check == 0 {
                    self.n_instr = self.n_instr_cur;
                    self.mode = Mode::Instrumented;
                    self.total_bursts += 1;
                    Some(Signal::BurstBegin)
                } else {
                    None
                }
            }
            Mode::Instrumented => {
                self.n_instr -= 1;
                if self.n_instr == 0 {
                    self.n_check = self.n_check_cur;
                    self.mode = Mode::Checking;
                    self.periods_in_phase += 1;
                    match self.phase {
                        Phase::Awake if self.periods_in_phase >= self.config.n_awake0 => {
                            Some(Signal::AwakeComplete)
                        }
                        Phase::Hibernating if self.periods_in_phase >= self.config.n_hibernate0 => {
                            Some(Signal::HibernationComplete)
                        }
                        _ => Some(Signal::BurstEnd),
                    }
                } else {
                    None
                }
            }
        }
    }

    /// Enters the hibernating phase: `nCheck := nCheck0 + nInstr0 - 1`,
    /// `nInstr := 1`, so burst-periods keep the same length in checks but
    /// trace (almost) nothing (§2.2, Figure 3).
    ///
    /// # Panics
    ///
    /// Panics if called while a burst is in progress (instrumented mode)
    /// — the optimizer acts on [`Signal::AwakeComplete`], which is only
    /// raised at a burst boundary.
    pub fn hibernate(&mut self) {
        assert_eq!(
            self.mode,
            Mode::Checking,
            "hibernate must be called at a burst boundary"
        );
        self.phase = Phase::Hibernating;
        self.phase_transitions += 1;
        self.periods_in_phase = 0;
        self.n_check_cur = self.config.burst_period() - 1;
        self.n_instr_cur = 1;
        self.n_check = self.n_check_cur;
    }

    /// Returns to the awake phase, restoring the original counters.
    ///
    /// # Panics
    ///
    /// Panics if called while a burst is in progress.
    pub fn wake(&mut self) {
        assert_eq!(
            self.mode,
            Mode::Checking,
            "wake must be called at a burst boundary"
        );
        self.phase = Phase::Awake;
        self.phase_transitions += 1;
        self.periods_in_phase = 0;
        self.n_check_cur = self.config.n_check0;
        self.n_instr_cur = self.config.n_instr0;
        self.n_check = self.n_check_cur;
    }

    /// Total dynamic checks executed.
    #[must_use]
    pub fn total_checks(&self) -> u64 {
        self.total_checks
    }

    /// Total bursts begun (including degenerate hibernation bursts).
    #[must_use]
    pub fn total_bursts(&self) -> u64 {
        self.total_bursts
    }

    /// Checks executed while awake.
    #[must_use]
    pub fn awake_checks(&self) -> u64 {
        self.awake_checks
    }

    /// Awake/hibernate phase boundaries crossed so far.
    #[must_use]
    pub fn phase_transitions(&self) -> u64 {
        self.phase_transitions
    }

    /// The *effective* duty cycle so far: the fraction of dynamic checks
    /// executed while awake. Converges on
    /// `nAwake0 / (nAwake0 + nHibernate0)` once the tracer has been
    /// through full cycles; early in a run it reads high because the
    /// tracer starts awake.
    #[must_use]
    pub fn duty_cycle(&self) -> f64 {
        if self.total_checks == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.awake_checks as f64 / self.total_checks as f64
        }
    }

    /// Exports the complete counter-machine state — the checkpointing
    /// primitive. Everything the tracer is, minus the (static)
    /// configuration.
    #[must_use]
    pub fn export_state(&self) -> TracerState {
        TracerState {
            n_check_cur: self.n_check_cur,
            n_instr_cur: self.n_instr_cur,
            n_check: self.n_check,
            n_instr: self.n_instr,
            instrumented: match self.mode {
                Mode::Checking => 0,
                Mode::Instrumented => 1,
            },
            hibernating: match self.phase {
                Phase::Awake => 0,
                Phase::Hibernating => 1,
            },
            periods_in_phase: self.periods_in_phase,
            total_checks: self.total_checks,
            total_bursts: self.total_bursts,
            awake_checks: self.awake_checks,
            phase_transitions: self.phase_transitions,
        }
    }

    /// Restores state exported by [`BurstyTracer::export_state`]. The
    /// tracer continues its cadence exactly where the export left off;
    /// the configuration must be the one the state was exported under.
    pub fn restore_state(&mut self, s: &TracerState) {
        self.n_check_cur = s.n_check_cur;
        self.n_instr_cur = s.n_instr_cur;
        self.n_check = s.n_check;
        self.n_instr = s.n_instr;
        self.mode = if s.instrumented == 0 {
            Mode::Checking
        } else {
            Mode::Instrumented
        };
        self.phase = if s.hibernating == 0 {
            Phase::Awake
        } else {
            Phase::Hibernating
        };
        self.periods_in_phase = s.periods_in_phase;
        self.total_checks = s.total_checks;
        self.total_bursts = s.total_bursts;
        self.awake_checks = s.awake_checks;
        self.phase_transitions = s.phase_transitions;
    }
}

/// A [`BurstyTracer`]'s complete mutable state as plain integers (mode
/// and phase as 0/1 discriminants), produced by
/// [`BurstyTracer::export_state`] for crash-consistent snapshots.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct TracerState {
    pub n_check_cur: u64,
    pub n_instr_cur: u64,
    pub n_check: u64,
    pub n_instr: u64,
    /// 0 = checking, 1 = instrumented.
    pub instrumented: u64,
    /// 0 = awake, 1 = hibernating.
    pub hibernating: u64,
    pub periods_in_phase: u64,
    pub total_checks: u64,
    pub total_bursts: u64,
    pub awake_checks: u64,
    pub phase_transitions: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn config_validation_and_rates() {
        let c = BurstyConfig::paper_default();
        assert_eq!(c.burst_period(), 12_000);
        // 0.5% awake burst rate.
        assert!((c.awake_rate() - 0.005).abs() < 1e-9);
        // Overall: 50/2500 of 0.5% = 0.01%.
        assert!((c.sampling_rate() - 0.0001).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "nInstr0 must be nonzero")]
    fn zero_instr_rejected() {
        let _ = BurstyConfig::new(10, 0, 1, 1);
    }

    #[test]
    fn burst_period_cadence() {
        // nCheck0=3, nInstr0=2: pattern C C B(urst-begin) I E(nd) ...
        let mut t = BurstyTracer::new(BurstyConfig::new(3, 2, 10, 10));
        let mut signals = Vec::new();
        for _ in 0..10 {
            signals.push(t.on_check());
        }
        assert_eq!(
            signals,
            vec![
                None,
                None,
                Some(Signal::BurstBegin),
                None,
                Some(Signal::BurstEnd),
                None,
                None,
                Some(Signal::BurstBegin),
                None,
                Some(Signal::BurstEnd),
            ]
        );
        assert_eq!(t.total_checks(), 10);
        assert_eq!(t.total_bursts(), 2);
    }

    #[test]
    fn should_record_only_awake_instrumented() {
        let mut t = BurstyTracer::new(BurstyConfig::new(2, 1, 1, 2));
        assert!(!t.should_record());
        t.on_check();
        assert!(!t.should_record());
        let s = t.on_check();
        assert_eq!(s, Some(Signal::BurstBegin));
        assert!(t.should_record());
        let s = t.on_check();
        assert_eq!(s, Some(Signal::AwakeComplete)); // nAwake0 = 1
        assert!(!t.should_record());
    }

    #[test]
    fn awake_complete_after_n_awake_periods() {
        let config = BurstyConfig::new(3, 2, 4, 10);
        let mut t = BurstyTracer::new(config);
        let mut periods = 0;
        let mut checks = 0;
        loop {
            checks += 1;
            match t.on_check() {
                Some(Signal::BurstEnd) => periods += 1,
                Some(Signal::AwakeComplete) => {
                    periods += 1;
                    break;
                }
                _ => {}
            }
        }
        assert_eq!(periods, 4);
        assert_eq!(checks, 4 * config.burst_period());
    }

    #[test]
    fn hibernation_period_same_length_and_silent() {
        let config = BurstyConfig::new(3, 2, 1, 2);
        let mut t = BurstyTracer::new(config);
        // Run to awake-complete.
        while t.on_check() != Some(Signal::AwakeComplete) {}
        t.hibernate();
        assert_eq!(t.phase(), Phase::Hibernating);
        // One hibernation burst-period is still burst_period() checks,
        // with exactly one instrumented check that must not record.
        let mut instrumented = 0;
        let mut checks = 0;
        loop {
            checks += 1;
            let sig = t.on_check();
            if t.mode() == Mode::Instrumented {
                instrumented += 1;
                assert!(!t.should_record(), "hibernation must not record");
            }
            if sig == Some(Signal::HibernationComplete) {
                break;
            }
        }
        assert_eq!(checks, 2 * config.burst_period());
        assert_eq!(instrumented, 2); // one per hibernation period
        t.wake();
        assert_eq!(t.phase(), Phase::Awake);
        // Counters restored: next burst begins after nCheck0 checks.
        for _ in 0..config.n_check0 - 1 {
            assert_eq!(t.on_check(), None);
        }
        assert_eq!(t.on_check(), Some(Signal::BurstBegin));
    }

    #[test]
    #[should_panic(expected = "burst boundary")]
    fn hibernate_mid_burst_panics() {
        let mut t = BurstyTracer::new(BurstyConfig::new(1, 5, 1, 1));
        t.on_check(); // enters instrumented mode immediately (nCheck0 = 1)
        assert_eq!(t.mode(), Mode::Instrumented);
        t.hibernate();
    }

    #[test]
    fn deterministic_cadence() {
        let config = BurstyConfig::new(7, 3, 2, 5);
        let run = |n: usize| {
            let mut t = BurstyTracer::new(config);
            let mut sigs = Vec::new();
            for _ in 0..n {
                let s = t.on_check();
                if s == Some(Signal::AwakeComplete) {
                    t.hibernate();
                } else if s == Some(Signal::HibernationComplete) {
                    t.wake();
                }
                sigs.push((s, t.mode(), t.phase()));
            }
            sigs
        };
        assert_eq!(run(500), run(500));
    }

    #[test]
    fn full_cycle_sampling_rate_approximation() {
        // Drive many full awake/hibernate cycles and compare the fraction
        // of recording checks with the formula.
        let config = BurstyConfig::new(10, 2, 3, 7);
        let mut t = BurstyTracer::new(config);
        let mut recording = 0u64;
        let total = 100_000u64;
        for _ in 0..total {
            let s = t.on_check();
            if t.should_record() {
                recording += 1;
            }
            match s {
                Some(Signal::AwakeComplete) => t.hibernate(),
                Some(Signal::HibernationComplete) => t.wake(),
                _ => {}
            }
        }
        #[allow(clippy::cast_precision_loss)]
        let measured = recording as f64 / total as f64;
        let predicted = config.sampling_rate();
        assert!(
            (measured - predicted).abs() < predicted * 0.1,
            "measured {measured}, predicted {predicted}"
        );
    }

    #[test]
    fn duty_cycle_tracks_awake_fraction() {
        let config = BurstyConfig::new(3, 2, 2, 6);
        let mut t = BurstyTracer::new(config);
        assert_eq!(t.duty_cycle(), 0.0);
        assert_eq!(t.phase_transitions(), 0);
        // Drive several full awake/hibernate cycles.
        for _ in 0..20_000 {
            match t.on_check() {
                Some(Signal::AwakeComplete) => t.hibernate(),
                Some(Signal::HibernationComplete) => t.wake(),
                _ => {}
            }
        }
        assert!(t.phase_transitions() >= 2);
        assert_eq!(
            t.awake_checks() + (t.total_checks() - t.awake_checks()),
            t.total_checks()
        );
        // Awake 2 of every 8 burst-periods (same period length in both
        // phases), so the duty cycle converges on 0.25.
        let expected = 2.0 / 8.0;
        assert!(
            (t.duty_cycle() - expected).abs() < 0.05,
            "duty cycle {} far from {expected}",
            t.duty_cycle()
        );
    }

    #[test]
    fn signal_display() {
        assert_eq!(Signal::BurstBegin.to_string(), "burst-begin");
        assert_eq!(
            Signal::HibernationComplete.to_string(),
            "hibernation-complete"
        );
    }

    /// A restored tracer continues its cadence bit-identically: export at
    /// an arbitrary check, restore into a fresh tracer, and the two emit
    /// the same signal/mode/phase sequence forever after.
    #[test]
    fn export_restore_resumes_identical_cadence() {
        let config = BurstyConfig::new(7, 3, 2, 5);
        for stop_at in [0usize, 1, 9, 23, 137, 500] {
            let mut original = BurstyTracer::new(config);
            for _ in 0..stop_at {
                match original.on_check() {
                    Some(Signal::AwakeComplete) => original.hibernate(),
                    Some(Signal::HibernationComplete) => original.wake(),
                    _ => {}
                }
            }
            let state = original.export_state();
            let mut resumed = BurstyTracer::new(config);
            resumed.restore_state(&state);
            assert_eq!(resumed.export_state(), state, "round-trip at {stop_at}");
            for i in 0..300 {
                let a = original.on_check();
                let b = resumed.on_check();
                assert_eq!(a, b, "signal diverged at {stop_at}+{i}");
                assert_eq!(original.mode(), resumed.mode());
                assert_eq!(original.phase(), resumed.phase());
                match a {
                    Some(Signal::AwakeComplete) => {
                        original.hibernate();
                        resumed.hibernate();
                    }
                    Some(Signal::HibernationComplete) => {
                        original.wake();
                        resumed.wake();
                    }
                    _ => {}
                }
            }
            assert_eq!(original.total_checks(), resumed.total_checks());
            assert_eq!(original.total_bursts(), resumed.total_bursts());
        }
    }
}
