//! Property tests for the bursty-tracing counter machine: signal
//! well-formedness and exact cadence for arbitrary counter settings.

use hds_bursty::{BurstyConfig, BurstyTracer, Mode, Phase, Signal};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Signals are well-formed for arbitrary configurations: bursts
    /// alternate begin/end, phase-completion signals replace burst-ends
    /// exactly at the configured period counts, and the mode/phase
    /// state agrees with the signal stream.
    #[test]
    fn signal_stream_well_formed(
        n_check in 1u64..50,
        n_instr in 1u64..20,
        n_awake in 1u64..6,
        n_hibernate in 1u64..8,
        steps in 100usize..4000,
    ) {
        let config = BurstyConfig::new(n_check, n_instr, n_awake, n_hibernate);
        let mut tracer = BurstyTracer::new(config);
        let mut in_burst = false;
        let mut periods_this_phase = 0u64;
        for step in 0..steps {
            let phase_before = tracer.phase();
            let signal = tracer.on_check();
            match signal {
                Some(Signal::BurstBegin) => {
                    prop_assert!(!in_burst, "step {step}: burst began inside a burst");
                    in_burst = true;
                    prop_assert_eq!(tracer.mode(), Mode::Instrumented);
                }
                Some(Signal::BurstEnd) => {
                    prop_assert!(in_burst, "step {step}: burst ended outside a burst");
                    in_burst = false;
                    periods_this_phase += 1;
                    // An ordinary burst end never lands on the phase
                    // boundary.
                    match phase_before {
                        Phase::Awake => prop_assert!(periods_this_phase < n_awake),
                        Phase::Hibernating => prop_assert!(periods_this_phase < n_hibernate),
                    }
                    prop_assert_eq!(tracer.mode(), Mode::Checking);
                }
                Some(Signal::AwakeComplete) => {
                    prop_assert!(in_burst);
                    in_burst = false;
                    periods_this_phase += 1;
                    prop_assert_eq!(phase_before, Phase::Awake);
                    prop_assert_eq!(periods_this_phase, n_awake);
                    periods_this_phase = 0;
                    tracer.hibernate();
                }
                Some(Signal::HibernationComplete) => {
                    prop_assert!(in_burst);
                    in_burst = false;
                    periods_this_phase += 1;
                    prop_assert_eq!(phase_before, Phase::Hibernating);
                    prop_assert_eq!(periods_this_phase, n_hibernate);
                    periods_this_phase = 0;
                    tracer.wake();
                }
                None => {}
            }
            // should_record is exactly "instrumented while awake".
            prop_assert_eq!(
                tracer.should_record(),
                tracer.mode() == Mode::Instrumented && tracer.phase() == Phase::Awake
            );
        }
    }

    /// Burst-periods take exactly nCheck0 + nInstr0 checks in the awake
    /// phase and the same in hibernation (the Figure 3 alignment).
    #[test]
    fn period_lengths_exact(
        n_check in 1u64..40,
        n_instr in 1u64..15,
    ) {
        let config = BurstyConfig::new(n_check, n_instr, 2, 3);
        let mut tracer = BurstyTracer::new(config);
        let period = config.burst_period();
        let mut checks: u64 = 0;
        let mut boundaries = Vec::new();
        // Two awake periods, then hibernate for three, then wake again.
        for _ in 0..(period * 10) {
            checks += 1;
            if let Some(
                Signal::BurstEnd | Signal::AwakeComplete | Signal::HibernationComplete,
            ) = tracer.on_check()
            {
                boundaries.push(checks);
                if boundaries.len() == 2 {
                    tracer.hibernate();
                } else if boundaries.len() == 5 {
                    tracer.wake();
                }
            }
        }
        // Every period boundary is a multiple of the period length.
        for (i, &b) in boundaries.iter().enumerate() {
            prop_assert_eq!(b, period * (i as u64 + 1), "boundary {} misaligned", i);
        }
    }
}
