//! Hot data stream detection over Sequitur grammars.
//!
//! A *hot data stream* is a data-reference subsequence `v` whose
//! *regularity magnitude* (heat) `v.heat = v.length * v.frequency` exceeds
//! a predetermined threshold `H`, where `v.frequency` counts
//! non-overlapping occurrences in the trace (paper §2.3). Hot data streams
//! account for most of a program's data references and cache misses, and
//! they repeat in the same order — which is what makes them prefetchable.
//!
//! This crate provides two analyses:
//!
//! * [`fast::analyze`] — the paper's fast approximation (Figure 5): a
//!   single linear pass over the Sequitur grammar that treats each
//!   non-terminal `A` as a candidate stream with
//!   `A.heat = w_A.length * A.coldUses`, where `coldUses` discounts
//!   occurrences subsumed by other hot non-terminals. This is the analysis
//!   the online optimizer runs.
//! * [`exact`] — ground-truth utilities: exact non-overlapping occurrence
//!   counting and (for small inputs) exhaustive hot-substring
//!   enumeration. The test oracle — the fast analysis never reports a
//!   heat higher than the exact heat of the same stream.
//! * [`precise::analyze`] — a scalable precise analysis in the spirit of
//!   Larus's algorithm \[21\] (the one the paper trades away): a suffix
//!   automaton enumerates one candidate per repeated-substring
//!   occurrence class and verifies exact heat, finding *every* hot
//!   stream of the trace. The `analysis_comparison` experiment binary
//!   measures the fast analysis against it.
//!
//! # Examples
//!
//! The paper's worked example (Figures 4 and 6, Table 1):
//!
//! ```
//! use hds_hotstream::{fast, AnalysisConfig};
//! use hds_sequitur::Sequitur;
//! use hds_trace::Symbol;
//!
//! // w = abaabcabcabcabc
//! let input: Vec<Symbol> = "abaabcabcabcabc"
//!     .bytes()
//!     .map(|b| Symbol(u32::from(b - b'a')))
//!     .collect();
//! let seq: Sequitur = input.iter().copied().collect();
//! let config = AnalysisConfig::new(8, 2, 7);
//! let result = fast::analyze(&seq.grammar(), &config);
//! // Exactly one hot data stream: abcabc with heat 12.
//! assert_eq!(result.streams.len(), 1);
//! assert_eq!(result.streams[0].heat, 12);
//! assert_eq!(result.streams[0].symbols.len(), 6);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
pub mod exact;
pub mod fast;
pub mod precise;

pub use config::AnalysisConfig;
pub use fast::{AnalysisResult, HotDataStream, NonTerminalRow};
pub use precise::SuffixAutomaton;
