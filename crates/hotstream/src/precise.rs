//! A precise hot-data-stream analysis, in the spirit of Larus's
//! whole-program-paths algorithm \[21\].
//!
//! The paper's §2.3: "Larus describes an algorithm for finding a set of
//! hot data streams from a Sequitur grammar \[21\]; we use a faster,
//! less precise algorithm that relies more heavily on the ability of
//! Sequitur to infer hierarchical structure." This module is the
//! *precise* side of that trade-off, so the loss can be measured
//! (`analysis_comparison` experiment binary): it finds **every**
//! substring of the trace whose exact regularity magnitude crosses the
//! threshold, not just the ones Sequitur happened to reify as grammar
//! rules.
//!
//! Implementation: a suffix automaton over the trace gives, in
//! near-linear time, one canonical candidate per *occurrence class* of
//! repeated substrings (all substrings sharing an end-position set; the
//! longest of each class dominates the others at equal frequency).
//! Candidates whose optimistic heat (length × overlapping occurrence
//! count) reaches the threshold are then verified with the exact
//! non-overlapping count of §2.3. This is far cheaper than the
//! exhaustive oracle in [`crate::exact`] (which is quadratic-to-cubic)
//! while producing the same verdicts.

use std::collections::HashMap;

use hds_trace::Symbol;

use crate::config::AnalysisConfig;
use crate::exact::{non_overlapping_frequency, ExactStream};

/// One state of the suffix automaton.
struct State {
    /// Length of the longest substring in this state's class.
    len: u32,
    /// Suffix link.
    link: i32,
    /// Transitions.
    next: HashMap<Symbol, u32>,
    /// Number of end positions (overlapping occurrence count); filled in
    /// after construction.
    count: u64,
    /// End index (exclusive) of the first occurrence of this class's
    /// strings in the trace.
    first_end: u32,
}

/// A suffix automaton over a symbol sequence.
///
/// Exposed for reuse by tests and benchmarks; most callers want
/// [`analyze`].
pub struct SuffixAutomaton {
    states: Vec<State>,
    last: u32,
}

impl SuffixAutomaton {
    /// Builds the automaton for `trace` in `O(|trace| log |alphabet|)`.
    #[must_use]
    pub fn build(trace: &[Symbol]) -> Self {
        let mut sam = SuffixAutomaton {
            states: vec![State {
                len: 0,
                link: -1,
                next: HashMap::new(),
                count: 0,
                first_end: 0,
            }],
            last: 0,
        };
        for (i, &c) in trace.iter().enumerate() {
            sam.extend(c, (i + 1) as u32);
        }
        sam.propagate_counts();
        sam
    }

    fn extend(&mut self, c: Symbol, end: u32) {
        let cur = self.states.len() as u32;
        let last_len = self.states[self.last as usize].len;
        self.states.push(State {
            len: last_len + 1,
            link: -1,
            next: HashMap::new(),
            count: 1, // a fresh end position
            first_end: end,
        });
        let mut p = self.last as i32;
        while p >= 0 && !self.states[p as usize].next.contains_key(&c) {
            self.states[p as usize].next.insert(c, cur);
            p = self.states[p as usize].link;
        }
        if p < 0 {
            self.states[cur as usize].link = 0;
        } else {
            let q = self.states[p as usize].next[&c];
            if self.states[p as usize].len + 1 == self.states[q as usize].len {
                self.states[cur as usize].link = q as i32;
            } else {
                // Clone q.
                let clone = self.states.len() as u32;
                let cloned = State {
                    len: self.states[p as usize].len + 1,
                    link: self.states[q as usize].link,
                    next: self.states[q as usize].next.clone(),
                    count: 0, // clones own no end positions directly
                    first_end: self.states[q as usize].first_end,
                };
                self.states.push(cloned);
                let mut pp = p;
                while pp >= 0 && self.states[pp as usize].next.get(&c) == Some(&q) {
                    self.states[pp as usize].next.insert(c, clone);
                    pp = self.states[pp as usize].link;
                }
                self.states[q as usize].link = clone as i32;
                self.states[cur as usize].link = clone as i32;
            }
        }
        self.last = cur;
    }

    /// Accumulates end-position counts up the suffix links.
    fn propagate_counts(&mut self) {
        let mut order: Vec<u32> = (1..self.states.len() as u32).collect();
        order.sort_by_key(|&s| std::cmp::Reverse(self.states[s as usize].len));
        for s in order {
            let link = self.states[s as usize].link;
            let count = self.states[s as usize].count;
            if link > 0 {
                self.states[link as usize].count += count;
            }
        }
    }

    /// Number of states (diagnostic; linear in the trace length).
    #[must_use]
    pub fn state_count(&self) -> usize {
        self.states.len()
    }

    /// Counts the (possibly overlapping) occurrences of `needle`.
    /// Returns 0 if it never occurs.
    #[must_use]
    pub fn occurrences(&self, needle: &[Symbol]) -> u64 {
        let mut s = 0u32;
        for c in needle {
            match self.states[s as usize].next.get(c) {
                Some(&t) => s = t,
                None => return 0,
            }
        }
        self.states[s as usize].count
    }
}

/// Finds **all** hot data streams of the trace precisely: every substring
/// within the config's length window whose exact (non-overlapping) heat
/// reaches the threshold, reported once per occurrence class (the
/// longest, hottest representative of each class).
///
/// Results are sorted hottest-first. Compared to
/// [`exact::enumerate_hot_substrings`](crate::exact::enumerate_hot_substrings)
/// this scales to full profile-sized traces; compared to
/// [`fast::analyze`](crate::fast::analyze) it misses nothing, at the cost
/// of materialising the whole trace.
#[must_use]
pub fn analyze(trace: &[Symbol], config: &AnalysisConfig) -> Vec<ExactStream> {
    if trace.is_empty() {
        return Vec::new();
    }
    let sam = SuffixAutomaton::build(trace);
    let mut out = Vec::new();
    for s in 1..sam.states.len() {
        let st = &sam.states[s];
        let link_len = if st.link >= 0 {
            sam.states[st.link as usize].len
        } else {
            0
        };
        // The class represents lengths (link_len, st.len]. Pick the
        // longest length inside the config window; shorter windows of
        // other classes are handled by their own states.
        #[allow(clippy::cast_possible_truncation)]
        let max_len = config.max_length.min(u64::from(u32::MAX)) as u32;
        let len = u64::from(st.len.min(max_len));
        if len <= u64::from(link_len) || len < config.min_length {
            continue;
        }
        // Optimistic bound: overlapping occurrences >= non-overlapping.
        if len * st.count < config.heat_threshold {
            continue;
        }
        let end = st.first_end as usize;
        #[allow(clippy::cast_possible_truncation)]
        let start = end - len as usize;
        let candidate = &trace[start..end];
        if config.min_unique_refs > 0 {
            let unique = candidate
                .iter()
                .collect::<std::collections::HashSet<_>>()
                .len() as u64;
            if unique < config.min_unique_refs {
                continue;
            }
        }
        let freq = non_overlapping_frequency(candidate, trace);
        let heat = len * freq;
        if heat >= config.heat_threshold {
            out.push(ExactStream {
                symbols: candidate.to_vec(),
                heat,
            });
        }
    }
    out.sort_by(|a, b| b.heat.cmp(&a.heat).then_with(|| a.symbols.cmp(&b.symbols)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact;

    fn syms(s: &str) -> Vec<Symbol> {
        s.bytes().map(|b| Symbol(u32::from(b - b'a'))).collect()
    }

    #[test]
    fn sam_counts_overlapping_occurrences() {
        let trace = syms("abcabcabc");
        let sam = SuffixAutomaton::build(&trace);
        assert_eq!(sam.occurrences(&syms("abc")), 3);
        assert_eq!(sam.occurrences(&syms("bca")), 2);
        assert_eq!(sam.occurrences(&syms("abcabc")), 2); // overlapping count
        assert_eq!(sam.occurrences(&syms("zzz")), 0);
        assert_eq!(sam.occurrences(&syms("abcabcabc")), 1);
    }

    #[test]
    fn sam_counts_on_runs() {
        let trace = syms("aaaa");
        let sam = SuffixAutomaton::build(&trace);
        assert_eq!(sam.occurrences(&syms("a")), 4);
        assert_eq!(sam.occurrences(&syms("aa")), 3);
        assert_eq!(sam.occurrences(&syms("aaa")), 2);
    }

    #[test]
    fn paper_example_found_precisely() {
        let trace = syms("abaabcabcabcabc");
        let config = AnalysisConfig::new(8, 2, 7);
        let hot = analyze(&trace, &config);
        assert!(
            hot.iter()
                .any(|s| s.symbols == syms("abcabc") && s.heat == 12),
            "abcabc missing: {hot:?}"
        );
        // Everything reported really is hot, by the oracle.
        for s in &hot {
            assert_eq!(s.heat, exact::heat(&s.symbols, &trace));
            assert!(config.is_hot(s.symbols.len() as u64, s.heat));
        }
    }

    #[test]
    fn agrees_with_exhaustive_oracle_on_heat_verdicts() {
        // Every stream the exhaustive oracle finds is covered by some
        // precise candidate of at least that heat (the precise analysis
        // reports one representative per class, the oracle reports all).
        let trace = syms(&format!(
            "{}{}{}",
            "abcd".repeat(9),
            "xy".repeat(5),
            "abcd".repeat(3)
        ));
        let config = AnalysisConfig::new(12, 2, 16);
        let precise = analyze(&trace, &config);
        let oracle = exact::enumerate_hot_substrings(&trace, &config);
        assert!(!oracle.is_empty());
        let top_oracle = oracle[0].heat;
        let top_precise = precise.first().map_or(0, |s| s.heat);
        assert_eq!(top_precise, top_oracle, "hottest stream heat differs");
        // Precise candidates are a subset of oracle results.
        for p in &precise {
            assert!(
                oracle.iter().any(|o| o.symbols == p.symbols),
                "precise found {:?} the oracle missed",
                p.symbols
            );
        }
    }

    #[test]
    fn empty_and_tiny_traces() {
        assert!(analyze(&[], &AnalysisConfig::default()).is_empty());
        assert!(analyze(&syms("a"), &AnalysisConfig::default()).is_empty());
    }

    #[test]
    fn length_window_respected() {
        let trace = syms(&"abcdefgh".repeat(10));
        let config = AnalysisConfig::new(4, 2, 5);
        for s in analyze(&trace, &config) {
            let len = s.symbols.len() as u64;
            assert!((2..=5).contains(&len), "length {len} outside window");
        }
    }

    #[test]
    fn unique_refs_filter_applies() {
        let trace = syms(&"ab".repeat(40));
        let config = AnalysisConfig::new(4, 2, 10).with_min_unique_refs(3);
        assert!(analyze(&trace, &config).is_empty());
    }

    #[test]
    fn scales_past_the_oracle_cap() {
        // The exhaustive oracle refuses traces > 4096 symbols; the
        // precise analysis handles profile-sized traces comfortably.
        let mut trace = Vec::new();
        let streams: Vec<Vec<Symbol>> = (0..20u32)
            .map(|s| (0..15u32).map(|k| Symbol(s * 100 + k)).collect())
            .collect();
        let mut state = 7u64;
        while trace.len() < 30_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            trace.extend_from_slice(&streams[(state >> 33) as usize % 20]);
        }
        let config = AnalysisConfig::paper_default(trace.len() as u64);
        let hot = analyze(&trace, &config);
        assert!(hot.len() >= 15, "only {} streams found", hot.len());
    }
}
