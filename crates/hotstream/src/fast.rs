//! The paper's fast hot-data-stream approximation (Figure 5).
//!
//! The algorithm exploits the fact that each non-terminal `A` of a
//! Sequitur grammar generates exactly one word `w_A`, so non-terminals
//! *are* candidate streams. It runs in three linear passes over the
//! grammar DAG:
//!
//! 1. number the non-terminals in reverse post-order, so parents precede
//!    children;
//! 2. propagate `uses` (occurrence counts in the parse tree) top-down;
//! 3. compute `heat = w_A.length * A.coldUses`, report hot non-terminals,
//!    and subtract subsumed uses from children (`coldUses` of a child
//!    drops by the full `uses` of a hot parent, but only by the
//!    *already-subsumed* `uses - coldUses` of a cold parent).
//!
//! The result under-approximates true heat (a stream's exact
//! non-overlapping frequency is never smaller than its cold parse-tree
//! use count), which is the safe direction for a prefetcher: everything
//! reported really is hot.

use std::collections::HashSet;
use std::fmt;

use hds_sequitur::{GSym, Grammar, RuleId};
use hds_trace::Symbol;

use crate::config::AnalysisConfig;

/// One detected hot data stream.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct HotDataStream {
    /// The stream contents `w_A`, as interned symbols.
    pub symbols: Vec<Symbol>,
    /// The stream's regularity magnitude `length * coldUses`.
    pub heat: u64,
    /// The grammar rule the stream came from (diagnostic).
    pub rule: RuleId,
}

impl HotDataStream {
    /// Stream length in references.
    #[must_use]
    pub fn len(&self) -> u64 {
        self.symbols.len() as u64
    }

    /// Returns `true` if the stream is empty (never produced by the
    /// analysis, but required for a well-behaved API).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Number of distinct symbols in the stream.
    #[must_use]
    pub fn unique_refs(&self) -> u64 {
        self.symbols.iter().collect::<HashSet<_>>().len() as u64
    }
}

impl fmt::Display for HotDataStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stream[{}] len {} heat {}",
            self.rule,
            self.len(),
            self.heat
        )
    }
}

/// Per-non-terminal values computed by the analysis — one row of the
/// paper's Table 1.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct NonTerminalRow {
    /// The rule this row describes.
    pub rule: RuleId,
    /// Expansion length `w_A.length`.
    pub length: u64,
    /// Reverse post-order index.
    pub index: usize,
    /// Parse-tree use count.
    pub uses: u64,
    /// Use count not subsumed by other hot non-terminals.
    pub cold_uses: u64,
    /// `length * cold_uses`.
    pub heat: u64,
    /// Whether the non-terminal was reported as a hot data stream.
    pub reported: bool,
}

/// The full analysis output: the hot streams plus the per-non-terminal
/// table (Figure 6 / Table 1 of the paper).
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AnalysisResult {
    /// Detected hot data streams, hottest first.
    pub streams: Vec<HotDataStream>,
    /// Per-non-terminal computed values, in rule order.
    pub table: Vec<NonTerminalRow>,
}

impl AnalysisResult {
    /// Total heat of all reported streams.
    #[must_use]
    pub fn total_heat(&self) -> u64 {
        self.streams.iter().map(|s| s.heat).sum()
    }

    /// Fraction of a trace of length `trace_len` covered by the reported
    /// streams (the paper's "accounts for 12/15 = 80% of all data
    /// references" in the worked example).
    #[must_use]
    pub fn coverage(&self, trace_len: u64) -> f64 {
        if trace_len == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.total_heat() as f64 / trace_len as f64
        }
    }
}

/// Runs the fast hot-data-stream analysis of Figure 5 over a grammar
/// snapshot.
///
/// Runs in time linear in the grammar size. The returned streams are
/// sorted hottest-first and deduplicated by content (if two rules expand
/// to the same word, the hotter row wins and the heats are summed —
/// they describe the same stream).
///
/// # Panics
///
/// Panics if the grammar is malformed (see [`Grammar::verify`]).
#[must_use]
pub fn analyze(grammar: &Grammar, config: &AnalysisConfig) -> AnalysisResult {
    let n = grammar.rule_count();
    if n == 0 {
        return AnalysisResult::default();
    }

    // Pass 1: reverse post-order numbering (parents before children).
    // `order[i]` = rule visited; `index_of[rule]` = its rpo index.
    let mut index_of = vec![usize::MAX; n];
    let mut next = n;
    // Iterative DFS from the start rule. Children are the non-terminals
    // on the right-hand side, in body order.
    let mut visited = vec![false; n];
    let mut stack: Vec<(usize, usize)> = vec![(0, 0)];
    visited[0] = true;
    while let Some((rule, pos)) = stack.pop() {
        let body = grammar.rule(RuleId(rule as u32)).body();
        let mut p = pos;
        let mut descended = false;
        while p < body.len() {
            let sym = body[p];
            p += 1;
            if let GSym::Rule(r) = sym {
                if !visited[r.index()] {
                    visited[r.index()] = true;
                    stack.push((rule, p)); // resume the parent here later
                    stack.push((r.index(), 0));
                    descended = true;
                    break;
                }
            }
        }
        if !descended {
            // All children visited: assign the next reverse index.
            next -= 1;
            index_of[rule] = next;
        }
    }
    // Every rule is reachable from S in a verified grammar, but guard
    // against unused rules anyway: give them indices after the reachable
    // ones (they have zero uses and stay cold).
    for idx in index_of.iter_mut() {
        if *idx == usize::MAX {
            next -= 1;
            *idx = next;
        }
    }

    // Rules in ascending index order.
    let mut by_index: Vec<usize> = (0..n).collect();
    by_index.sort_by_key(|&r| index_of[r]);

    // Pass 2: uses/coldUses propagation.
    let mut uses = vec![0u64; n];
    let mut cold_uses = vec![0u64; n];
    uses[0] = 1;
    cold_uses[0] = 1;
    for &r in &by_index {
        let parent_uses = uses[r];
        for sym in grammar.rule(RuleId(r as u32)).body() {
            if let GSym::Rule(child) = sym {
                uses[child.index()] += parent_uses;
                cold_uses[child.index()] += parent_uses;
            }
        }
    }

    // Pass 3: heat computation and hot-stream reporting.
    let mut rows: Vec<NonTerminalRow> = (0..n)
        .map(|r| NonTerminalRow {
            rule: RuleId(r as u32),
            length: grammar.rule(RuleId(r as u32)).length(),
            index: index_of[r],
            uses: uses[r],
            cold_uses: 0, // final value filled in below
            heat: 0,
            reported: false,
        })
        .collect();
    let mut streams = Vec::new();
    for &r in &by_index {
        let length = grammar.rule(RuleId(r as u32)).length();
        let heat = length.saturating_mul(cold_uses[r]);
        let mut hot = config.is_hot(length, heat);
        let mut expansion = None;
        if hot && config.min_unique_refs > 0 {
            let w = grammar.expand(RuleId(r as u32));
            let unique = w.iter().collect::<HashSet<_>>().len() as u64;
            if unique < config.min_unique_refs {
                hot = false;
            } else {
                expansion = Some(w);
            }
        }
        // The start rule is never a prefetchable stream (it is the whole
        // trace); the paper's Table 1 marks it "no, start".
        if r == 0 {
            hot = false;
        }
        // Extension: a rule that is hot in every respect except being
        // *longer* than maxLen can be chopped into maxLen windows, each
        // of which inherits the rule's cold use count (sound: windows of
        // distinct occurrences never overlap).
        let chop = config.chop_long_rules
            && r != 0
            && !hot
            && length > config.max_length
            && heat >= config.heat_threshold
            && cold_uses[r] > 0;
        rows[r].cold_uses = cold_uses[r];
        rows[r].heat = heat;
        rows[r].reported = hot || chop;
        let subtract = if hot || chop {
            uses[r]
        } else {
            uses[r] - cold_uses[r]
        };
        if subtract > 0 {
            for sym in grammar.rule(RuleId(r as u32)).body() {
                if let GSym::Rule(child) = sym {
                    cold_uses[child.index()] = cold_uses[child.index()].saturating_sub(subtract);
                }
            }
        }
        if hot {
            let symbols = expansion.unwrap_or_else(|| grammar.expand(RuleId(r as u32)));
            streams.push(HotDataStream {
                symbols,
                heat,
                rule: RuleId(r as u32),
            });
        } else if chop {
            let w = grammar.expand(RuleId(r as u32));
            #[allow(clippy::cast_possible_truncation)]
            for chunk in w.chunks(config.max_length as usize) {
                let chunk_len = chunk.len() as u64;
                if chunk_len < config.min_length {
                    continue; // a short final remainder
                }
                if config.min_unique_refs > 0 {
                    let unique = chunk.iter().collect::<HashSet<_>>().len() as u64;
                    if unique < config.min_unique_refs {
                        continue;
                    }
                }
                streams.push(HotDataStream {
                    symbols: chunk.to_vec(),
                    heat: chunk_len.saturating_mul(cold_uses[r]),
                    rule: RuleId(r as u32),
                });
            }
        }
    }

    // Deduplicate identical stream contents (possible when distinct rules
    // expand to the same word), merging heat.
    streams.sort_by(|a, b| a.symbols.cmp(&b.symbols));
    let mut deduped: Vec<HotDataStream> = Vec::with_capacity(streams.len());
    for s in streams {
        match deduped.last_mut() {
            Some(last) if last.symbols == s.symbols => last.heat += s.heat,
            _ => deduped.push(s),
        }
    }
    deduped.sort_by(|a, b| b.heat.cmp(&a.heat).then_with(|| a.symbols.cmp(&b.symbols)));

    rows.sort_by_key(|row| row.rule);
    AnalysisResult {
        streams: deduped,
        table: rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hds_sequitur::Sequitur;

    fn syms(s: &str) -> Vec<Symbol> {
        s.bytes().map(|b| Symbol(u32::from(b - b'a'))).collect()
    }

    fn to_string(symbols: &[Symbol]) -> String {
        symbols
            .iter()
            .map(|s| char::from(b'a' + u8::try_from(s.0).unwrap()))
            .collect()
    }

    fn analyze_str(input: &str, config: &AnalysisConfig) -> AnalysisResult {
        let seq: Sequitur = syms(input).into_iter().collect();
        analyze(&seq.grammar(), config)
    }

    /// The full paper worked example: Figure 4 grammar, Figure 6 values,
    /// Table 1 rows.
    #[test]
    fn paper_table1_values() {
        let result = analyze_str("abaabcabcabcabc", &AnalysisConfig::new(8, 2, 7));

        // Exactly one hot stream: abcabc with heat 12.
        assert_eq!(result.streams.len(), 1);
        let stream = &result.streams[0];
        assert_eq!(to_string(&stream.symbols), "abcabc");
        assert_eq!(stream.heat, 12);
        // It accounts for 12/15 = 80% of the trace.
        assert!((result.coverage(15) - 0.8).abs() < 1e-9);

        // Table 1, keyed by expansion so the test is robust to rule
        // numbering: S(len 15), A=ab(2), B=abcabc(6), C=abc(3).
        let mut rows_by_len: std::collections::HashMap<u64, &NonTerminalRow> =
            std::collections::HashMap::new();
        for row in &result.table {
            rows_by_len.insert(row.length, row);
        }
        let s = rows_by_len[&15];
        assert_eq!(
            (s.index, s.uses, s.cold_uses, s.heat, s.reported),
            (0, 1, 1, 15, false)
        );
        let a = rows_by_len[&2];
        assert_eq!(
            (a.index, a.uses, a.cold_uses, a.heat, a.reported),
            (3, 5, 1, 2, false)
        );
        let b = rows_by_len[&6];
        assert_eq!(
            (b.index, b.uses, b.cold_uses, b.heat, b.reported),
            (1, 2, 2, 12, true)
        );
        let c = rows_by_len[&3];
        assert_eq!(
            (c.index, c.uses, c.cold_uses, c.heat, c.reported),
            (2, 4, 0, 0, false)
        );
    }

    #[test]
    fn empty_input_reports_nothing() {
        let result = analyze_str("", &AnalysisConfig::default());
        assert!(result.streams.is_empty());
        assert_eq!(result.table.len(), 1); // just S
        assert_eq!(result.total_heat(), 0);
        assert_eq!(result.coverage(0), 0.0);
    }

    #[test]
    fn non_repetitive_input_reports_nothing() {
        let result = analyze_str("abcdefg", &AnalysisConfig::new(4, 2, 7));
        assert!(result.streams.is_empty());
    }

    #[test]
    fn start_rule_never_reported() {
        // Whole input repeats, but S itself must not be a stream even
        // when it satisfies the window.
        let result = analyze_str("ababab", &AnalysisConfig::new(1, 1, 100));
        assert!(result.streams.iter().all(|s| s.rule != RuleId::START));
    }

    #[test]
    fn heat_threshold_filters() {
        let hot = analyze_str("abcabcabcabc", &AnalysisConfig::new(6, 2, 8));
        assert!(!hot.streams.is_empty());
        let cold = analyze_str("abcabcabcabc", &AnalysisConfig::new(1_000, 2, 8));
        assert!(cold.streams.is_empty());
    }

    #[test]
    fn length_window_filters() {
        // abcabc repeated: candidate streams of length 3, 6, 12...
        let none = analyze_str("abcabcabcabc", &AnalysisConfig::new(1, 100, 200));
        assert!(none.streams.is_empty());
    }

    #[test]
    fn unique_refs_filter() {
        // "ababab..." has streams with only 2 unique refs.
        let cfg = AnalysisConfig::new(4, 2, 50).with_min_unique_refs(3);
        let result = analyze_str(&"ab".repeat(32), &cfg);
        assert!(
            result.streams.is_empty(),
            "streams with 2 unique refs must be filtered: {:?}",
            result.streams
        );
        // Same input without the filter does report.
        let unfiltered = analyze_str(&"ab".repeat(32), &AnalysisConfig::new(4, 2, 50));
        assert!(!unfiltered.streams.is_empty());
    }

    #[test]
    fn streams_sorted_hottest_first() {
        // Two patterns with different frequencies.
        let input = format!("{}{}", "abcd".repeat(20), "efgh".repeat(5));
        let result = analyze_str(&input, &AnalysisConfig::new(8, 2, 8));
        assert!(result.streams.len() >= 2);
        for pair in result.streams.windows(2) {
            assert!(pair[0].heat >= pair[1].heat);
        }
    }

    #[test]
    fn hot_subsumption_zeroes_children() {
        // When a parent is hot, its children's cold uses drop by the
        // parent's full use count — in the paper example, C ends cold.
        let result = analyze_str("abaabcabcabcabc", &AnalysisConfig::new(8, 2, 7));
        let c_row = result.table.iter().find(|r| r.length == 3).unwrap();
        assert_eq!(c_row.cold_uses, 0);
        assert!(!c_row.reported);
    }

    #[test]
    fn table_covers_every_rule() {
        let seq: Sequitur = syms("abcabdabcabd").into_iter().collect();
        let g = seq.grammar();
        let result = analyze(&g, &AnalysisConfig::default());
        assert_eq!(result.table.len(), g.rule_count());
        // Indices are a permutation of 0..n.
        let mut idx: Vec<_> = result.table.iter().map(|r| r.index).collect();
        idx.sort_unstable();
        assert_eq!(idx, (0..g.rule_count()).collect::<Vec<_>>());
        // Parents precede children: S has index 0.
        assert_eq!(
            result
                .table
                .iter()
                .find(|r| r.rule == RuleId::START)
                .unwrap()
                .index,
            0
        );
    }

    #[test]
    fn chopping_recovers_streams_from_oversized_rules() {
        // A fixed 20-symbol unit repeated 6 times with no internal
        // repetition: Sequitur folds it into one rule of length 20; with
        // maxLen = 8 the plain analysis reports nothing.
        let unit: String = ('a'..='t').collect();
        let mut input = String::new();
        for i in 0..6 {
            input.push_str(&unit);
            // Varying separators prevent a mega-rule over the repeats.
            for _ in 0..=i {
                input.push('u');
            }
        }
        let plain = AnalysisConfig::new(20, 4, 8);
        let none = analyze_str(&input, &plain);
        assert!(
            none.streams.is_empty(),
            "plain analysis should find nothing"
        );
        let chopped = analyze_str(&input, &plain.clone().with_chopping());
        assert!(
            !chopped.streams.is_empty(),
            "chopping should recover windows"
        );
        for s in &chopped.streams {
            assert!(s.symbols.len() <= 8);
            assert!(s.symbols.len() >= 4);
            // Every window is a real substring with at least the claimed
            // frequency.
            let syms_in = syms(&input);
            assert!(
                crate::exact::heat(&s.symbols, &syms_in) >= s.heat,
                "chopped heat {} exceeds exact for {:?}",
                s.heat,
                s.symbols
            );
        }
        // The windows tile the unit: together they cover most of it.
        let covered: usize = chopped.streams.iter().map(|s| s.symbols.len()).sum();
        assert!(covered >= 16, "only {covered} of 20 covered");
    }

    #[test]
    fn stream_display_and_accessors() {
        let result = analyze_str("abcabcabcabc", &AnalysisConfig::new(6, 2, 8));
        let s = &result.streams[0];
        assert!(!s.is_empty());
        assert_eq!(s.unique_refs(), 3);
        assert!(s.to_string().contains("heat"));
    }
}
