//! Exact reference analyses used as the test oracle and ablation baseline.
//!
//! The paper's fast analysis (Figure 5) trades precision for speed,
//! relying "more heavily on the ability of Sequitur to infer hierarchical
//! structure" than Larus's precise hot-subpath algorithm \[21\]. This
//! module provides the precise quantities:
//!
//! * [`non_overlapping_frequency`] — the exact `v.frequency` of §2.3: the
//!   maximum number of non-overlapping occurrences of `v` in `w`;
//! * [`heat`] — the exact regularity magnitude `v.length * v.frequency`;
//! * [`enumerate_hot_substrings`] — exhaustive enumeration of all hot
//!   substrings of a (small) trace, the ground truth against which the
//!   fast analysis is validated.

use std::collections::HashMap;

use hds_trace::Symbol;

use crate::config::AnalysisConfig;

/// Counts the maximum number of non-overlapping occurrences of `needle`
/// in `haystack`.
///
/// Greedy left-to-right matching is optimal for this objective (taking
/// the earliest possible next occurrence never reduces the count), so the
/// run time is `O(|haystack| * |needle|)` worst case; typical inputs are
/// far cheaper.
///
/// An empty needle is defined to occur zero times (streams are non-empty
/// by construction).
///
/// # Examples
///
/// ```
/// use hds_hotstream::exact::non_overlapping_frequency;
/// use hds_trace::Symbol;
///
/// let w: Vec<Symbol> = [0, 1, 0, 1, 0, 1].iter().map(|&i| Symbol(i)).collect();
/// let v: Vec<Symbol> = [0, 1].iter().map(|&i| Symbol(i)).collect();
/// assert_eq!(non_overlapping_frequency(&v, &w), 3);
/// // Overlaps don't double-count: "aaa" contains "aa" twice overlapping,
/// // once non-overlapping... plus the second disjoint start.
/// let w: Vec<Symbol> = vec![Symbol(7); 5];
/// let v: Vec<Symbol> = vec![Symbol(7); 2];
/// assert_eq!(non_overlapping_frequency(&v, &w), 2);
/// ```
#[must_use]
pub fn non_overlapping_frequency(needle: &[Symbol], haystack: &[Symbol]) -> u64 {
    if needle.is_empty() || needle.len() > haystack.len() {
        return 0;
    }
    let mut count = 0u64;
    let mut i = 0usize;
    while i + needle.len() <= haystack.len() {
        if haystack[i..i + needle.len()] == *needle {
            count += 1;
            i += needle.len();
        } else {
            i += 1;
        }
    }
    count
}

/// The exact regularity magnitude of `needle` within `haystack`:
/// `needle.len() * frequency`.
#[must_use]
pub fn heat(needle: &[Symbol], haystack: &[Symbol]) -> u64 {
    needle.len() as u64 * non_overlapping_frequency(needle, haystack)
}

/// One entry of the exhaustive enumeration: a substring and its exact
/// heat.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct ExactStream {
    /// The substring contents.
    pub symbols: Vec<Symbol>,
    /// Exact heat (`len * non-overlapping frequency`).
    pub heat: u64,
}

/// Exhaustively enumerates every distinct substring of `trace` within the
/// config's length window whose exact heat reaches the threshold.
/// Intended for *small* traces (`O(n^3)`-ish): it is the test oracle, not
/// a production analysis.
///
/// Results are sorted hottest first, ties broken lexicographically.
///
/// # Panics
///
/// Panics if the trace is longer than 4096 symbols — an accidental call
/// on a production-sized trace would appear to hang.
#[must_use]
pub fn enumerate_hot_substrings(trace: &[Symbol], config: &AnalysisConfig) -> Vec<ExactStream> {
    assert!(
        trace.len() <= 4096,
        "enumerate_hot_substrings is an oracle for small traces (got {} symbols)",
        trace.len()
    );
    let n = trace.len();
    let mut seen: HashMap<&[Symbol], u64> = HashMap::new();
    #[allow(clippy::cast_possible_truncation)]
    let max_len = (config.max_length as usize).min(n);
    let min_len = config.min_length as usize;
    for len in min_len..=max_len {
        if len == 0 || len > n {
            continue;
        }
        for start in 0..=(n - len) {
            let candidate = &trace[start..start + len];
            seen.entry(candidate).or_insert(0);
        }
    }
    let mut out: Vec<ExactStream> = seen
        .into_keys()
        .filter_map(|candidate| {
            let h = heat(candidate, trace);
            if h >= config.heat_threshold {
                if config.min_unique_refs > 0 {
                    let unique = candidate
                        .iter()
                        .collect::<std::collections::HashSet<_>>()
                        .len() as u64;
                    if unique < config.min_unique_refs {
                        return None;
                    }
                }
                Some(ExactStream {
                    symbols: candidate.to_vec(),
                    heat: h,
                })
            } else {
                None
            }
        })
        .collect();
    out.sort_by(|a, b| b.heat.cmp(&a.heat).then_with(|| a.symbols.cmp(&b.symbols)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(s: &str) -> Vec<Symbol> {
        s.bytes().map(|b| Symbol(u32::from(b - b'a'))).collect()
    }

    #[test]
    fn frequency_basic() {
        assert_eq!(non_overlapping_frequency(&syms("ab"), &syms("ababab")), 3);
        assert_eq!(
            non_overlapping_frequency(&syms("abc"), &syms("abcabcab")),
            2
        );
        assert_eq!(non_overlapping_frequency(&syms("x"), &syms("abc")), 0);
        assert_eq!(non_overlapping_frequency(&syms(""), &syms("abc")), 0);
        assert_eq!(non_overlapping_frequency(&syms("abcd"), &syms("abc")), 0);
    }

    #[test]
    fn frequency_overlap_is_not_counted() {
        assert_eq!(non_overlapping_frequency(&syms("aa"), &syms("aaa")), 1);
        assert_eq!(non_overlapping_frequency(&syms("aa"), &syms("aaaa")), 2);
        assert_eq!(non_overlapping_frequency(&syms("aba"), &syms("ababa")), 1);
    }

    #[test]
    fn heat_is_len_times_freq() {
        assert_eq!(heat(&syms("abc"), &syms("abcabcabc")), 9);
        assert_eq!(heat(&syms("ab"), &syms("abab")), 4);
    }

    #[test]
    fn paper_example_exact_heat() {
        // In w = abaabcabcabcabc the stream abcabc occurs twice
        // (non-overlapping), heat 12 — matching the fast analysis.
        let w = syms("abaabcabcabcabc");
        assert_eq!(heat(&syms("abcabc"), &w), 12);
        // abc occurs 4 times, heat 12 as well (the fast analysis
        // attributes all of them to abcabc and reports abc cold).
        assert_eq!(heat(&syms("abc"), &w), 12);
    }

    #[test]
    fn enumeration_finds_the_paper_stream() {
        let w = syms("abaabcabcabcabc");
        let cfg = AnalysisConfig::new(8, 2, 7);
        let hot = enumerate_hot_substrings(&w, &cfg);
        assert!(hot
            .iter()
            .any(|s| s.symbols == syms("abcabc") && s.heat == 12));
        // Everything reported really satisfies the thresholds.
        for s in &hot {
            assert!(cfg.is_hot(s.symbols.len() as u64, s.heat));
        }
    }

    #[test]
    fn enumeration_respects_unique_filter() {
        let cfg = AnalysisConfig::new(4, 2, 8).with_min_unique_refs(3);
        let hot = enumerate_hot_substrings(&syms("abababab"), &cfg);
        assert!(hot.is_empty());
    }

    #[test]
    fn enumeration_sorted_hottest_first() {
        let w = syms(&format!("{}{}", "ab".repeat(10), "cde".repeat(4)));
        let hot = enumerate_hot_substrings(&w, &AnalysisConfig::new(6, 2, 10));
        for pair in hot.windows(2) {
            assert!(pair[0].heat >= pair[1].heat);
        }
    }

    #[test]
    #[should_panic(expected = "small traces")]
    fn enumeration_rejects_huge_traces() {
        let w = vec![Symbol(0); 5000];
        let _ = enumerate_hot_substrings(&w, &AnalysisConfig::default());
    }
}
