//! Analysis configuration: the heat threshold `H` and the stream length
//! window `[minLen, maxLen]`.

/// Configuration for hot data stream detection.
///
/// A non-terminal `A` is hot iff
/// `minLen <= A.length <= maxLen && H <= A.heat` (paper §2.3). The paper's
/// production setting (§4.1) detects "streams that contain more than 10
/// references, and account for at least 1% of the collected trace" —
/// build that with [`AnalysisConfig::paper_default`].
///
/// # Examples
///
/// ```
/// use hds_hotstream::AnalysisConfig;
///
/// // The Figure 6 / Table 1 worked example.
/// let c = AnalysisConfig::new(8, 2, 7);
/// assert_eq!(c.heat_threshold, 8);
///
/// // Production settings for a 100k-reference trace: H = 1% of trace.
/// let c = AnalysisConfig::paper_default(100_000);
/// assert_eq!(c.heat_threshold, 1_000);
/// assert_eq!(c.min_length, 10);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct AnalysisConfig {
    /// Heat threshold `H`: minimum `length * coldUses` for a stream to be
    /// reported.
    pub heat_threshold: u64,
    /// Minimum stream length `minLen` (in references). Streams shorter
    /// than this do not justify the prefix-matching overhead.
    pub min_length: u64,
    /// Maximum stream length `maxLen`. Overly long streams (like the
    /// whole trace) are useless as prefetch units.
    pub max_length: u64,
    /// Optional additional filter: minimum number of *distinct* references
    /// in the stream. The paper's configuration requires streams with
    /// "more than ten unique references" — prefetching a stream that
    /// bounces between two addresses buys nothing. `0` disables the
    /// filter.
    pub min_unique_refs: u64,
    /// Extension (ours, not the paper's): when a *hot* non-terminal
    /// exceeds `max_length`, report its expansion chopped into
    /// `max_length`-sized windows instead of skipping it entirely.
    /// Without this, a program whose entire inner loop Sequitur folds
    /// into one giant rule (e.g. a long fixed traversal with no other
    /// repetition) yields no streams at all. Sound: each window occurs
    /// at least `coldUses` times, non-overlapping. Off by default.
    pub chop_long_rules: bool,
}

impl AnalysisConfig {
    /// Creates a configuration from the three core parameters; the
    /// unique-reference filter is disabled.
    ///
    /// # Panics
    ///
    /// Panics if `min_length > max_length` or `min_length == 0`.
    #[must_use]
    pub fn new(heat_threshold: u64, min_length: u64, max_length: u64) -> Self {
        assert!(min_length > 0, "min_length must be at least 1");
        assert!(
            min_length <= max_length,
            "min_length {min_length} exceeds max_length {max_length}"
        );
        AnalysisConfig {
            heat_threshold,
            min_length,
            max_length,
            min_unique_refs: 0,
            chop_long_rules: false,
        }
    }

    /// The paper's production configuration (§4.1) for a trace of
    /// `trace_len` references: streams of more than 10 (unique)
    /// references accounting for at least 1% of the trace.
    #[must_use]
    pub fn paper_default(trace_len: u64) -> Self {
        AnalysisConfig {
            heat_threshold: (trace_len / 100).max(1),
            min_length: 10,
            max_length: 100,
            min_unique_refs: 10,
            chop_long_rules: false,
        }
    }

    /// Returns a copy with the heat threshold set to `percent`% of
    /// `trace_len`.
    #[must_use]
    pub fn with_heat_percent(mut self, trace_len: u64, percent: f64) -> Self {
        assert!(
            (0.0..=100.0).contains(&percent),
            "percent must be within 0..=100, got {percent}"
        );
        #[allow(
            clippy::cast_precision_loss,
            clippy::cast_possible_truncation,
            clippy::cast_sign_loss
        )]
        let h = ((trace_len as f64) * percent / 100.0).ceil() as u64;
        self.heat_threshold = h.max(1);
        self
    }

    /// Returns a copy with the unique-reference filter set.
    #[must_use]
    pub fn with_min_unique_refs(mut self, n: u64) -> Self {
        self.min_unique_refs = n;
        self
    }

    /// Returns a copy with long-rule chopping enabled (see
    /// [`AnalysisConfig::chop_long_rules`]).
    #[must_use]
    pub fn with_chopping(mut self) -> Self {
        self.chop_long_rules = true;
        self
    }

    /// Does a stream of length `len` and heat `heat` satisfy the core
    /// (length-window and threshold) criteria?
    #[must_use]
    pub fn is_hot(&self, len: u64, heat: u64) -> bool {
        self.min_length <= len && len <= self.max_length && self.heat_threshold <= heat
    }
}

impl Default for AnalysisConfig {
    /// A small-scale default suitable for unit tests: `H = 8`,
    /// `minLen = 2`, `maxLen = 100`.
    fn default() -> Self {
        AnalysisConfig::new(8, 2, 100)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn is_hot_window_edges() {
        let c = AnalysisConfig::new(8, 2, 7);
        assert!(c.is_hot(2, 8));
        assert!(c.is_hot(7, 8));
        assert!(!c.is_hot(1, 100));
        assert!(!c.is_hot(8, 100));
        assert!(!c.is_hot(5, 7));
    }

    #[test]
    fn paper_default_scales_with_trace() {
        let c = AnalysisConfig::paper_default(50_000);
        assert_eq!(c.heat_threshold, 500);
        assert_eq!(c.min_unique_refs, 10);
        // Tiny traces never get a zero threshold.
        assert_eq!(AnalysisConfig::paper_default(5).heat_threshold, 1);
    }

    #[test]
    fn heat_percent_rounds_up() {
        let c = AnalysisConfig::default().with_heat_percent(999, 1.0);
        assert_eq!(c.heat_threshold, 10);
        let c = AnalysisConfig::default().with_heat_percent(0, 1.0);
        assert_eq!(c.heat_threshold, 1);
    }

    #[test]
    #[should_panic(expected = "min_length")]
    fn rejects_inverted_window() {
        let _ = AnalysisConfig::new(8, 9, 7);
    }

    #[test]
    #[should_panic(expected = "min_length must be at least 1")]
    fn rejects_zero_min() {
        let _ = AnalysisConfig::new(8, 0, 7);
    }

    #[test]
    #[should_panic(expected = "percent")]
    fn rejects_bad_percent() {
        let _ = AnalysisConfig::default().with_heat_percent(100, 150.0);
    }
}
