//! Property-based validation of the fast hot-data-stream analysis
//! against the exact oracle.

use hds_hotstream::{exact, fast, precise, AnalysisConfig};
use hds_sequitur::Sequitur;
use hds_trace::Symbol;
use proptest::prelude::*;

fn to_symbols(input: &[u8]) -> Vec<Symbol> {
    input.iter().map(|&b| Symbol(u32::from(b))).collect()
}

fn grammar_of(symbols: &[Symbol]) -> hds_sequitur::Grammar {
    let seq: Sequitur = symbols.iter().copied().collect();
    seq.grammar()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Soundness: the heat the fast analysis reports for a stream is a
    /// lower bound on the stream's exact heat (cold parse-tree uses are a
    /// subset of actual non-overlapping occurrences). Everything reported
    /// really is hot.
    #[test]
    fn reported_heat_is_a_lower_bound(input in proptest::collection::vec(0u8..4, 0..160)) {
        let symbols = to_symbols(&input);
        let config = AnalysisConfig::new(6, 2, 20);
        let result = fast::analyze(&grammar_of(&symbols), &config);
        for stream in &result.streams {
            let exact_heat = exact::heat(&stream.symbols, &symbols);
            prop_assert!(
                stream.heat <= exact_heat,
                "stream {:?}: fast heat {} > exact heat {}",
                stream.symbols, stream.heat, exact_heat
            );
            prop_assert!(config.is_hot(stream.symbols.len() as u64, stream.heat));
        }
    }

    /// Every reported stream actually occurs in the trace (it is a real
    /// substring, not an artifact of grammar manipulation).
    #[test]
    fn reported_streams_occur_in_trace(input in proptest::collection::vec(0u8..3, 0..200)) {
        let symbols = to_symbols(&input);
        let result = fast::analyze(&grammar_of(&symbols), &AnalysisConfig::new(4, 2, 30));
        for stream in &result.streams {
            prop_assert!(
                exact::non_overlapping_frequency(&stream.symbols, &symbols) >= 1,
                "stream {:?} not found in trace", stream.symbols
            );
        }
    }

    /// The per-non-terminal table is internally consistent: coldUses
    /// never exceeds uses, heat = length * coldUses, and the sum of heats
    /// of reported streams never exceeds the trace length times... nothing
    /// — but each stream's heat is at most the trace length.
    #[test]
    fn table_consistency(input in proptest::collection::vec(0u8..5, 0..160)) {
        let symbols = to_symbols(&input);
        let result = fast::analyze(&grammar_of(&symbols), &AnalysisConfig::new(6, 2, 20));
        for row in &result.table {
            prop_assert!(row.cold_uses <= row.uses);
            prop_assert_eq!(row.heat, row.length * row.cold_uses);
        }
        for stream in &result.streams {
            prop_assert!(stream.heat <= symbols.len() as u64,
                "heat {} exceeds trace length {}", stream.heat, symbols.len());
        }
    }

    /// Total reported heat never exceeds the trace length: cold uses of
    /// distinct hot non-terminals cover disjoint parts of the parse tree.
    #[test]
    fn total_heat_bounded_by_trace(input in proptest::collection::vec(0u8..3, 0..220)) {
        let symbols = to_symbols(&input);
        let result = fast::analyze(&grammar_of(&symbols), &AnalysisConfig::new(2, 2, 40));
        prop_assert!(result.total_heat() <= symbols.len() as u64);
    }

    /// Agreement with the oracle on coverage: every stream the fast
    /// analysis reports is also found by exhaustive enumeration at the
    /// same thresholds (enumeration is the superset — it finds streams
    /// the grammar happened not to reify as rules).
    #[test]
    fn fast_is_subset_of_exhaustive(input in proptest::collection::vec(0u8..3, 0..120)) {
        let symbols = to_symbols(&input);
        let config = AnalysisConfig::new(6, 2, 16);
        let fast_result = fast::analyze(&grammar_of(&symbols), &config);
        let oracle = exact::enumerate_hot_substrings(&symbols, &config);
        for stream in &fast_result.streams {
            prop_assert!(
                oracle.iter().any(|o| o.symbols == stream.symbols),
                "fast stream {:?} missing from oracle", stream.symbols
            );
        }
    }

    /// Determinism of the analysis.
    #[test]
    fn analysis_deterministic(input in proptest::collection::vec(0u8..4, 0..150)) {
        let symbols = to_symbols(&input);
        let g = grammar_of(&symbols);
        let config = AnalysisConfig::new(6, 2, 20);
        prop_assert_eq!(fast::analyze(&g, &config), fast::analyze(&g, &config));
    }

    /// The precise (suffix-automaton) analysis agrees with the
    /// exhaustive oracle: same hottest heat, and everything it reports
    /// is in the oracle's result set.
    #[test]
    fn precise_agrees_with_oracle(input in proptest::collection::vec(0u8..4, 0..180)) {
        let symbols = to_symbols(&input);
        let config = AnalysisConfig::new(6, 2, 24);
        let precise = precise::analyze(&symbols, &config);
        let oracle = exact::enumerate_hot_substrings(&symbols, &config);
        prop_assert_eq!(
            precise.first().map(|s| s.heat).unwrap_or(0),
            oracle.first().map(|s| s.heat).unwrap_or(0),
            "hottest heat differs"
        );
        for p in &precise {
            prop_assert!(
                oracle.iter().any(|o| o.symbols == p.symbols && o.heat == p.heat),
                "precise stream {:?} not confirmed by oracle", p.symbols
            );
        }
    }

    /// The fast analysis never finds heat the precise analysis misses:
    /// the precise top heat bounds the fast top heat from above.
    #[test]
    fn precise_dominates_fast(input in proptest::collection::vec(0u8..3, 0..200)) {
        let symbols = to_symbols(&input);
        let config = AnalysisConfig::new(6, 2, 30);
        let fast_result = fast::analyze(&grammar_of(&symbols), &config);
        let precise = precise::analyze(&symbols, &config);
        let fast_top = fast_result.streams.first().map(|s| s.heat).unwrap_or(0);
        let precise_top = precise.first().map(|s| s.heat).unwrap_or(0);
        prop_assert!(
            precise_top >= fast_top,
            "fast found heat {} but precise only {}", fast_top, precise_top
        );
    }

    /// The suffix automaton's overlapping occurrence counts are exact.
    #[test]
    fn sam_occurrence_counts_exact(
        input in proptest::collection::vec(0u8..3, 1..120),
        needle in proptest::collection::vec(0u8..3, 1..6),
    ) {
        let symbols = to_symbols(&input);
        let needle = to_symbols(&needle);
        let sam = hds_hotstream::SuffixAutomaton::build(&symbols);
        let expected = if needle.len() > symbols.len() {
            0
        } else {
            symbols
                .windows(needle.len())
                .filter(|w| *w == &needle[..])
                .count() as u64
        };
        prop_assert_eq!(sam.occurrences(&needle), expected);
    }
}
