//! JSONL export: one self-describing JSON record per event.

use std::io::Write;

use serde::{Serialize, Value};

use crate::events::{
    AnalysisApplied, AnalysisHandoff, AnalysisStarved, ClusterMigrated, ClusterOwnerRestarted,
    ClusterRehomed, CycleEnd, CycleStart, Deoptimize, DfsmBuilt, GuardTripped, PhaseTransition,
    PrefetchFate, PrefetchIssued, PrefetchOutcome, RecoveryGaveUp, RecoveryReplay, RecoveryRestart,
    RecoverySnapshot, ServeBusy, ServeSessionEvicted, ServeSessionOpened, ServeSessionResumed,
    ServeShardPump, ServeShed, StoreCompacted, StoreExpired, StoreFaultObserved, StoreLoaded,
    StoreSpilled, StreamDetected,
};
use crate::Observer;

/// An [`Observer`] that appends one JSON object per event to a writer,
/// newline-delimited. Every record carries an `"event"` tag naming its
/// kind, so the file is self-describing.
///
/// `cycle_end` records additionally carry the running global prefetch
/// `accuracy` / `coverage` / `timeliness`, so each line of the per-cycle
/// series is a complete snapshot on its own.
///
/// Write errors do not panic (observers are called from the optimizer's
/// hot path); they are counted and readable via
/// [`JsonlSink::write_errors`].
///
/// The sink flushes its writer when dropped — including during an
/// unwind — so a faulted run that panics (or a truncated-trace chaos
/// schedule that aborts a session early) never loses buffered tail
/// events.
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    /// `None` only after [`JsonlSink::into_inner`] took the writer
    /// (the drop-flush guard then has nothing left to do).
    out: Option<W>,
    write_errors: u64,
    records: u64,
    // Running global tallies for the per-cycle quality snapshot.
    issued: u64,
    useful: u64,
    late: u64,
}

impl<W: Write> JsonlSink<W> {
    /// A sink writing to `out`.
    pub fn new(out: W) -> Self {
        JsonlSink {
            out: Some(out),
            write_errors: 0,
            records: 0,
            issued: 0,
            useful: 0,
            late: 0,
        }
    }

    /// Records successfully written.
    #[must_use]
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Writes that failed (the records were dropped).
    #[must_use]
    pub fn write_errors(&self) -> u64 {
        self.write_errors
    }

    /// Flushes and returns the writer.
    ///
    /// # Errors
    ///
    /// Returns the flush error, if any.
    pub fn into_inner(mut self) -> std::io::Result<W> {
        let mut out = self.out.take().expect("writer present until into_inner");
        out.flush()?;
        Ok(out)
    }

    fn emit(&mut self, kind: &str, event: &impl Serialize) {
        self.emit_with(kind, event, Vec::new());
    }

    fn emit_with(&mut self, kind: &str, event: &impl Serialize, extra: Vec<(String, Value)>) {
        let mut value = event.to_value();
        if let Value::Obj(fields) = &mut value {
            fields.insert(0, ("event".to_string(), Value::Str(kind.to_string())));
            fields.extend(extra);
        }
        let line = serde_json::to_string(&value).unwrap_or_else(|_| "null".to_string());
        let Some(out) = self.out.as_mut() else { return };
        match writeln!(out, "{line}") {
            Ok(()) => self.records += 1,
            Err(_) => self.write_errors += 1,
        }
    }

    #[allow(clippy::cast_precision_loss)]
    fn ratio(num: u64, den: u64) -> f64 {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    }
}

/// The drop-flush guard: buffered tail events survive early returns
/// and panics in the instrumented run. Flush errors here are ignored
/// (they were either already counted per-record, or there is no caller
/// left to report them to).
impl<W: Write> Drop for JsonlSink<W> {
    fn drop(&mut self) {
        if let Some(out) = self.out.as_mut() {
            let _ = out.flush();
        }
    }
}

// Raw `Value`s serialize as themselves.
struct Raw(Value);

impl Serialize for Raw {
    fn to_value(&self) -> Value {
        self.0.clone()
    }
}

impl<W: Write> Observer for JsonlSink<W> {
    fn phase_transition(&mut self, event: &PhaseTransition) {
        self.emit("phase_transition", event);
    }

    fn cycle_start(&mut self, event: &CycleStart) {
        self.emit("cycle_start", event);
    }

    fn cycle_end(&mut self, event: &CycleEnd) {
        let extra = vec![
            (
                "prefetch_accuracy".to_string(),
                Value::F64(Self::ratio(self.useful, self.issued)),
            ),
            (
                "prefetch_coverage".to_string(),
                Value::F64(Self::ratio(self.useful + self.late, self.issued)),
            ),
            (
                "prefetch_timeliness".to_string(),
                Value::F64(Self::ratio(self.useful, self.useful + self.late)),
            ),
        ];
        self.emit_with("cycle_end", event, extra);
    }

    fn stream_detected(&mut self, event: &StreamDetected) {
        self.emit("stream_detected", event);
    }

    fn dfsm_built(&mut self, event: &DfsmBuilt) {
        self.emit("dfsm_built", event);
    }

    fn prefetch_issued(&mut self, event: &PrefetchIssued) {
        self.issued += 1;
        self.emit("prefetch_issued", event);
    }

    fn prefetch_outcome(&mut self, event: &PrefetchOutcome) {
        match event.fate {
            PrefetchFate::Useful => self.useful += 1,
            PrefetchFate::Late => self.late += 1,
            PrefetchFate::Polluted => {}
        }
        // The fate enum serializes as its variant name; re-wrap with the
        // lower-case label for a stable external schema.
        let mut value = event.to_value();
        if let Value::Obj(fields) = &mut value {
            for (k, v) in fields.iter_mut() {
                if k == "fate" {
                    *v = Value::Str(event.fate.label().to_string());
                }
            }
        }
        self.emit("prefetch_outcome", &Raw(value));
    }

    fn deoptimize(&mut self, event: &Deoptimize) {
        self.emit("deoptimize", event);
    }

    fn guard_tripped(&mut self, event: &GuardTripped) {
        // The kind enum serializes as its variant name; re-wrap with the
        // lower-case label for a stable external schema.
        let mut value = event.to_value();
        if let Value::Obj(fields) = &mut value {
            for (k, v) in fields.iter_mut() {
                if k == "guard" {
                    *v = Value::Str(event.guard.label().to_string());
                }
            }
        }
        self.emit("guard_tripped", &Raw(value));
    }

    fn analysis_handoff(&mut self, event: &AnalysisHandoff) {
        self.emit("analysis_handoff", event);
    }

    fn analysis_applied(&mut self, event: &AnalysisApplied) {
        self.emit("analysis_applied", event);
    }

    fn analysis_starved(&mut self, event: &AnalysisStarved) {
        self.emit("analysis_starved", event);
    }

    fn recovery_snapshot(&mut self, event: &RecoverySnapshot) {
        self.emit("recovery_snapshot", event);
    }

    fn recovery_replay(&mut self, event: &RecoveryReplay) {
        self.emit("recovery_replay", event);
    }

    fn recovery_restart(&mut self, event: &RecoveryRestart) {
        self.emit("recovery_restart", event);
    }

    fn recovery_gave_up(&mut self, event: &RecoveryGaveUp) {
        self.emit("recovery_gave_up", event);
    }

    fn serve_session_opened(&mut self, event: &ServeSessionOpened) {
        self.emit("serve_session_opened", event);
    }

    fn serve_session_evicted(&mut self, event: &ServeSessionEvicted) {
        self.emit("serve_session_evicted", event);
    }

    fn serve_session_resumed(&mut self, event: &ServeSessionResumed) {
        self.emit("serve_session_resumed", event);
    }

    fn serve_shed(&mut self, event: &ServeShed) {
        // The kind enum serializes as its variant name; re-wrap with the
        // lower-case label for a stable external schema.
        let mut value = event.to_value();
        if let Value::Obj(fields) = &mut value {
            for (k, v) in fields.iter_mut() {
                if k == "kind" {
                    *v = Value::Str(event.kind.label().to_string());
                }
            }
        }
        self.emit("serve_shed", &Raw(value));
    }

    fn serve_busy(&mut self, event: &ServeBusy) {
        self.emit("serve_busy", event);
    }

    fn serve_shard_pump(&mut self, event: &ServeShardPump) {
        self.emit("serve_shard_pump", event);
    }

    fn store_spilled(&mut self, event: &StoreSpilled) {
        self.emit("store_spilled", event);
    }

    fn store_loaded(&mut self, event: &StoreLoaded) {
        self.emit("store_loaded", event);
    }

    fn store_compacted(&mut self, event: &StoreCompacted) {
        self.emit("store_compacted", event);
    }

    fn store_expired(&mut self, event: &StoreExpired) {
        self.emit("store_expired", event);
    }

    fn store_fault(&mut self, event: &StoreFaultObserved) {
        self.emit("store_fault", event);
    }

    fn cluster_migrated(&mut self, event: &ClusterMigrated) {
        self.emit("cluster_migrated", event);
    }

    fn cluster_rehomed(&mut self, event: &ClusterRehomed) {
        self.emit("cluster_rehomed", event);
    }

    fn cluster_owner_restarted(&mut self, event: &ClusterOwnerRestarted) {
        self.emit("cluster_owner_restarted", event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::PhaseKind;

    fn lines(sink: JsonlSink<Vec<u8>>) -> Vec<Value> {
        let buf = sink.into_inner().unwrap();
        String::from_utf8(buf)
            .unwrap()
            .lines()
            .map(|l| serde_json::parse_value_str(l).unwrap())
            .collect()
    }

    #[test]
    fn records_are_tagged_and_parse() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.cycle_start(&CycleStart {
            opt_cycle: 0,
            at_cycle: 0,
        });
        sink.phase_transition(&PhaseTransition {
            at_cycle: 10,
            at_check: 2,
            to: PhaseKind::Hibernating,
            opt_cycle: 1,
            duty_cycle: 0.25,
        });
        assert_eq!(sink.records(), 2);
        assert_eq!(sink.write_errors(), 0);
        let records = lines(sink);
        assert_eq!(
            records[0].get("event"),
            Some(&Value::Str("cycle_start".into()))
        );
        assert_eq!(
            records[1].get("event"),
            Some(&Value::Str("phase_transition".into()))
        );
        assert_eq!(
            records[1].get("to"),
            Some(&Value::Str("Hibernating".into()))
        );
        assert_eq!(records[1].get("duty_cycle"), Some(&Value::F64(0.25)));
    }

    #[test]
    fn cycle_end_carries_quality_snapshot() {
        let mut sink = JsonlSink::new(Vec::new());
        for block in 0..2u64 {
            sink.prefetch_issued(&PrefetchIssued {
                stream_id: 0,
                addr: block * 32,
                block,
                at_cycle: 1,
                at_ref: 0,
            });
        }
        sink.prefetch_outcome(&PrefetchOutcome {
            stream_id: 0,
            block: 0,
            fate: PrefetchFate::Useful,
            issued_at_cycle: 1,
            resolved_at_cycle: 2,
            resolved_at_ref: 1,
        });
        sink.cycle_end(&CycleEnd::default());
        let records = lines(sink);
        let end = records.last().unwrap();
        assert_eq!(end.get("prefetch_accuracy"), Some(&Value::F64(0.5)));
        assert_eq!(end.get("prefetch_coverage"), Some(&Value::F64(0.5)));
        assert_eq!(end.get("prefetch_timeliness"), Some(&Value::F64(1.0)));
        // The outcome record uses the lower-case fate label.
        let outcome = records
            .iter()
            .find(|r| r.get("event") == Some(&Value::Str("prefetch_outcome".into())))
            .unwrap();
        assert_eq!(outcome.get("fate"), Some(&Value::Str("useful".into())));
    }

    #[test]
    fn guard_trips_use_stable_labels() {
        use crate::events::GuardKind;
        let mut sink = JsonlSink::new(Vec::new());
        sink.guard_tripped(&GuardTripped {
            guard: GuardKind::DfsmStates,
            budget: 64,
            observed: 65,
            opt_cycle: 0,
            at_cycle: 10,
        });
        let records = lines(sink);
        assert_eq!(
            records[0].get("event"),
            Some(&Value::Str("guard_tripped".into()))
        );
        assert_eq!(
            records[0].get("guard"),
            Some(&Value::Str("dfsm_states".into()))
        );
        assert_eq!(records[0].get("budget"), Some(&Value::U64(64)));
    }

    #[test]
    fn drop_flushes_buffered_tail() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;

        /// Counts flushes without consuming the shared tally on drop.
        struct FlushCounter(Arc<AtomicU64>);
        impl Write for FlushCounter {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                self.0.fetch_add(1, Ordering::SeqCst);
                Ok(())
            }
        }

        let flushes = Arc::new(AtomicU64::new(0));
        {
            let mut sink = JsonlSink::new(FlushCounter(Arc::clone(&flushes)));
            sink.cycle_start(&CycleStart::default());
            assert_eq!(flushes.load(Ordering::SeqCst), 0);
        }
        assert_eq!(flushes.load(Ordering::SeqCst), 1, "drop must flush");

        // During an unwind too.
        let flushes_panic = Arc::new(AtomicU64::new(0));
        let moved = Arc::clone(&flushes_panic);
        let _ = std::panic::catch_unwind(move || {
            let mut sink = JsonlSink::new(FlushCounter(moved));
            sink.cycle_start(&CycleStart::default());
            panic!("simulated faulted run");
        });
        assert_eq!(flushes_panic.load(Ordering::SeqCst), 1, "unwind must flush");

        // into_inner still hands the writer back (no double flush on drop).
        let flushes_inner = Arc::new(AtomicU64::new(0));
        let sink = JsonlSink::new(FlushCounter(Arc::clone(&flushes_inner)));
        let _writer = sink.into_inner().unwrap();
        assert_eq!(flushes_inner.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn analysis_events_are_tagged() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.analysis_handoff(&AnalysisHandoff {
            opt_cycle: 0,
            at_cycle: 100,
            trace_len: 42,
        });
        sink.analysis_applied(&AnalysisApplied {
            opt_cycle: 0,
            handoff_at_cycle: 100,
            at_cycle: 180,
            lag_cycles: 80,
        });
        sink.analysis_starved(&AnalysisStarved {
            opt_cycle: 1,
            handoff_at_cycle: 300,
            at_cycle: 500,
            lag_cycles: 200,
        });
        let records = lines(sink);
        assert_eq!(
            records[0].get("event"),
            Some(&Value::Str("analysis_handoff".into()))
        );
        assert_eq!(records[0].get("trace_len"), Some(&Value::U64(42)));
        assert_eq!(
            records[1].get("event"),
            Some(&Value::Str("analysis_applied".into()))
        );
        assert_eq!(records[1].get("lag_cycles"), Some(&Value::U64(80)));
        assert_eq!(
            records[2].get("event"),
            Some(&Value::Str("analysis_starved".into()))
        );
    }

    #[test]
    fn recovery_events_are_tagged() {
        let mut sink = JsonlSink::new(Vec::new());
        sink.recovery_snapshot(&RecoverySnapshot {
            opt_cycle: 1,
            at_cycle: 4000,
            events_consumed: 81,
            bytes: 2048,
        });
        sink.recovery_replay(&RecoveryReplay {
            events_consumed: 90,
            rolled_forward: true,
        });
        sink.recovery_restart(&RecoveryRestart {
            attempt: 1,
            resumed_at_event: 81,
            backoff_cycles: 1000,
        });
        sink.recovery_gave_up(&RecoveryGaveUp {
            restarts: 4,
            crashes: 5,
        });
        let records = lines(sink);
        assert_eq!(
            records[0].get("event"),
            Some(&Value::Str("recovery_snapshot".into()))
        );
        assert_eq!(records[0].get("bytes"), Some(&Value::U64(2048)));
        assert_eq!(
            records[1].get("event"),
            Some(&Value::Str("recovery_replay".into()))
        );
        assert_eq!(records[1].get("rolled_forward"), Some(&Value::Bool(true)));
        assert_eq!(
            records[2].get("event"),
            Some(&Value::Str("recovery_restart".into()))
        );
        assert_eq!(records[2].get("backoff_cycles"), Some(&Value::U64(1000)));
        assert_eq!(
            records[3].get("event"),
            Some(&Value::Str("recovery_gave_up".into()))
        );
        assert_eq!(records[3].get("restarts"), Some(&Value::U64(4)));
    }

    #[test]
    fn serve_events_are_tagged_with_stable_labels() {
        use crate::events::ServeBudgetKind;
        let mut sink = JsonlSink::new(Vec::new());
        sink.serve_session_opened(&ServeSessionOpened {
            tenant: 0xbeef,
            shard: 2,
            backend: 1,
        });
        sink.serve_shed(&ServeShed {
            tenant: 0xbeef,
            shard: 2,
            kind: ServeBudgetKind::TenantQueue,
            budget: 4,
            observed: 5,
        });
        let records = lines(sink);
        assert_eq!(
            records[0].get("event"),
            Some(&Value::Str("serve_session_opened".into()))
        );
        assert_eq!(records[0].get("shard"), Some(&Value::U64(2)));
        assert_eq!(
            records[1].get("event"),
            Some(&Value::Str("serve_shed".into()))
        );
        assert_eq!(
            records[1].get("kind"),
            Some(&Value::Str("tenant_queue".into()))
        );
        assert_eq!(records[1].get("observed"), Some(&Value::U64(5)));
    }

    #[test]
    fn write_errors_are_counted_not_fatal() {
        /// A writer that always fails.
        struct Broken;
        impl Write for Broken {
            fn write(&mut self, _buf: &[u8]) -> std::io::Result<usize> {
                Err(std::io::Error::other("broken"))
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let mut sink = JsonlSink::new(Broken);
        sink.cycle_start(&CycleStart::default());
        assert_eq!(sink.records(), 0);
        assert_eq!(sink.write_errors(), 1);
    }
}
