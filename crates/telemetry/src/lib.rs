//! Observability for the hot-data-stream prefetching cycle.
//!
//! The optimizer (`hds-core`) emits a typed event at every interesting
//! boundary of the profile → analyze → optimize → hibernate loop:
//! phase transitions, cycle starts/ends, stream detection, DFSM
//! construction, prefetch issue, prefetch outcome, and de-optimization.
//! This crate defines those events ([`events`]), the [`Observer`] trait
//! that receives them, and two production observers:
//!
//! - [`MetricsRecorder`]: in-memory counters, log-scaled histograms, and
//!   per-stream prefetch accuracy / coverage / timeliness, renderable in
//!   Prometheus text exposition format.
//! - [`JsonlSink`]: one self-describing JSON record per event, for
//!   offline analysis.
//!
//! # Zero overhead when off
//!
//! [`NullObserver`] implements every hook as an empty default method and
//! sets [`Observer::ENABLED`] to `false`. Instrumented code is generic
//! over `O: Observer`, so the `NullObserver` instantiation monomorphizes
//! every emission site to nothing, and `O::ENABLED` lets callers skip
//! even the *construction* of event payloads. The
//! `observer_overhead` benchmark in `hds-bench` verifies the paired
//! claim end to end.
//!
//! # Examples
//!
//! ```
//! use hds_telemetry::{MetricsRecorder, Observer};
//! use hds_telemetry::events::{CycleEnd, PrefetchFate, PrefetchOutcome};
//!
//! let mut metrics = MetricsRecorder::new();
//! metrics.prefetch_outcome(&PrefetchOutcome {
//!     stream_id: 0,
//!     block: 0x40,
//!     fate: PrefetchFate::Useful,
//!     issued_at_cycle: 100,
//!     resolved_at_cycle: 190,
//!     resolved_at_ref: 12,
//! });
//! metrics.cycle_end(&CycleEnd { opt_cycle: 0, at_cycle: 200, ..CycleEnd::default() });
//! let text = metrics.render_prometheus();
//! assert!(text.contains("hds_prefetch_outcomes_total{fate=\"useful\"} 1"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod events;
mod jsonl;
mod metrics;

pub use jsonl::JsonlSink;
pub use metrics::{Histogram, MetricsRecorder, StreamMetrics};

use events::{
    AnalysisApplied, AnalysisHandoff, AnalysisStarved, ClusterMigrated, ClusterOwnerRestarted,
    ClusterRehomed, CycleEnd, CycleStart, Deoptimize, DfsmBuilt, GuardTripped, PhaseTransition,
    PrefetchIssued, PrefetchOutcome, RecoveryGaveUp, RecoveryReplay, RecoveryRestart,
    RecoverySnapshot, ServeBusy, ServeSessionEvicted, ServeSessionOpened, ServeSessionResumed,
    ServeShardPump, ServeShed, SpanEvent, StoreCompacted, StoreExpired, StoreFaultObserved,
    StoreLoaded, StoreSpilled, StreamDetected,
};

/// Receiver of optimizer lifecycle events.
///
/// Every hook has an empty default body, so observers implement only
/// what they care about. Instrumentation sites should gate any work
/// that exists *only* to build an event payload behind
/// [`Observer::ENABLED`]:
///
/// ```ignore
/// if O::ENABLED {
///     observer.stream_detected(&expensive_to_build_event());
/// }
/// ```
pub trait Observer {
    /// Whether this observer consumes events at all. `false` only for
    /// [`NullObserver`] (and compositions of it): emission sites compile
    /// to nothing when this is `false`.
    const ENABLED: bool = true;

    /// The bursty tracer crossed an awake/hibernate boundary.
    fn phase_transition(&mut self, _event: &PhaseTransition) {}
    /// A profile → analyze → optimize cycle began (profiling starts).
    fn cycle_start(&mut self, _event: &CycleStart) {}
    /// A cycle's awake phase finished: analysis ran, statistics final.
    fn cycle_end(&mut self, _event: &CycleEnd) {}
    /// A hot data stream was accepted for prefetching.
    fn stream_detected(&mut self, _event: &StreamDetected) {}
    /// A prefix-matching DFSM was built and injected.
    fn dfsm_built(&mut self, _event: &DfsmBuilt) {}
    /// A prefetch instruction was issued.
    fn prefetch_issued(&mut self, _event: &PrefetchIssued) {}
    /// An issued prefetch resolved (used, late, or evicted unused).
    fn prefetch_outcome(&mut self, _event: &PrefetchOutcome) {}
    /// Injected code was removed (fully at the end of a hibernation
    /// span, or partially by the accuracy guard).
    fn deoptimize(&mut self, _event: &Deoptimize) {}
    /// A budget guard tripped and degraded the current cycle.
    fn guard_tripped(&mut self, _event: &GuardTripped) {}
    /// An awake-phase trace was handed to the background analysis
    /// worker (concurrent-analysis mode).
    fn analysis_handoff(&mut self, _event: &AnalysisHandoff) {}
    /// A background analysis result was installed; the lag sample
    /// measures the overlap with execution.
    fn analysis_applied(&mut self, _event: &AnalysisApplied) {}
    /// A background analysis result was discarded (worker starved).
    fn analysis_starved(&mut self, _event: &AnalysisStarved) {}
    /// A crash-consistent checkpoint was captured at a phase boundary.
    fn recovery_snapshot(&mut self, _event: &RecoverySnapshot) {}
    /// Crash recovery inspected (and possibly rolled forward) the
    /// write-ahead edit journal.
    fn recovery_replay(&mut self, _event: &RecoveryReplay) {}
    /// The supervisor restarted a crashed session from its snapshot.
    fn recovery_restart(&mut self, _event: &RecoveryRestart) {}
    /// The supervisor's restart circuit breaker opened.
    fn recovery_gave_up(&mut self, _event: &RecoveryGaveUp) {}
    /// The serving layer admitted a tenant and opened its session.
    fn serve_session_opened(&mut self, _event: &ServeSessionOpened) {}
    /// The serving layer evicted a cold tenant's session to a snapshot
    /// plus replay tail.
    fn serve_session_evicted(&mut self, _event: &ServeSessionEvicted) {}
    /// The serving layer rehydrated an evicted tenant's session.
    fn serve_session_resumed(&mut self, _event: &ServeSessionResumed) {}
    /// The serving layer dropped a trace chunk (a serve budget was
    /// exhausted) and answered with a typed `Shed` frame.
    fn serve_shed(&mut self, _event: &ServeShed) {}
    /// The serving layer refused an `OpenSession` with a typed `Busy`
    /// frame (session cap reached, eviction disabled).
    fn serve_busy(&mut self, _event: &ServeBusy) {}
    /// A serving shard drained its mailbox for one pump.
    fn serve_shard_pump(&mut self, _event: &ServeShardPump) {}
    /// The durable store spilled a hibernated tenant to disk and the
    /// serve layer dropped its in-memory cold state.
    fn store_spilled(&mut self, _event: &StoreSpilled) {}
    /// The durable store loaded a spilled tenant back for rehydration.
    fn store_loaded(&mut self, _event: &StoreLoaded) {}
    /// The durable store compacted its segments at rest.
    fn store_compacted(&mut self, _event: &StoreCompacted) {}
    /// The durable store expired a dead tenant past its TTL.
    fn store_expired(&mut self, _event: &StoreExpired) {}
    /// A storage fault was observed and degraded gracefully.
    fn store_fault(&mut self, _event: &StoreFaultObserved) {}
    /// The cluster router completed a planned tenant migration between
    /// owner processes (export → re-home → rehydrate → journal replay).
    fn cluster_migrated(&mut self, _event: &ClusterMigrated) {}
    /// The cluster router re-homed a tenant after its owner died,
    /// rebuilding the session from the last refreshed record plus the
    /// journaled tail.
    fn cluster_rehomed(&mut self, _event: &ClusterRehomed) {}
    /// The cluster supervisor restarted a dead owner process and the
    /// router replayed its tenants back onto it.
    fn cluster_owner_restarted(&mut self, _event: &ClusterOwnerRestarted) {}
    /// A hierarchical span boundary (begin/end) or instant marker on
    /// the phase timeline. Spans charge zero simulated cycles; the
    /// flight recorder in `hds-flight` turns them into Perfetto-style
    /// traces and crash dumps.
    fn span(&mut self, _event: &SpanEvent) {}
}

/// The do-nothing observer: every hook is a no-op and
/// [`Observer::ENABLED`] is `false`, so instrumented code monomorphizes
/// to exactly the uninstrumented code.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullObserver;

impl Observer for NullObserver {
    const ENABLED: bool = false;
}

/// Forwarding through a mutable reference, so an observer can stay
/// owned by the caller while a session borrows it.
impl<O: Observer> Observer for &mut O {
    const ENABLED: bool = O::ENABLED;

    fn phase_transition(&mut self, event: &PhaseTransition) {
        (**self).phase_transition(event);
    }
    fn cycle_start(&mut self, event: &CycleStart) {
        (**self).cycle_start(event);
    }
    fn cycle_end(&mut self, event: &CycleEnd) {
        (**self).cycle_end(event);
    }
    fn stream_detected(&mut self, event: &StreamDetected) {
        (**self).stream_detected(event);
    }
    fn dfsm_built(&mut self, event: &DfsmBuilt) {
        (**self).dfsm_built(event);
    }
    fn prefetch_issued(&mut self, event: &PrefetchIssued) {
        (**self).prefetch_issued(event);
    }
    fn prefetch_outcome(&mut self, event: &PrefetchOutcome) {
        (**self).prefetch_outcome(event);
    }
    fn deoptimize(&mut self, event: &Deoptimize) {
        (**self).deoptimize(event);
    }
    fn guard_tripped(&mut self, event: &GuardTripped) {
        (**self).guard_tripped(event);
    }
    fn analysis_handoff(&mut self, event: &AnalysisHandoff) {
        (**self).analysis_handoff(event);
    }
    fn analysis_applied(&mut self, event: &AnalysisApplied) {
        (**self).analysis_applied(event);
    }
    fn analysis_starved(&mut self, event: &AnalysisStarved) {
        (**self).analysis_starved(event);
    }
    fn recovery_snapshot(&mut self, event: &RecoverySnapshot) {
        (**self).recovery_snapshot(event);
    }
    fn recovery_replay(&mut self, event: &RecoveryReplay) {
        (**self).recovery_replay(event);
    }
    fn recovery_restart(&mut self, event: &RecoveryRestart) {
        (**self).recovery_restart(event);
    }
    fn recovery_gave_up(&mut self, event: &RecoveryGaveUp) {
        (**self).recovery_gave_up(event);
    }
    fn serve_session_opened(&mut self, event: &ServeSessionOpened) {
        (**self).serve_session_opened(event);
    }
    fn serve_session_evicted(&mut self, event: &ServeSessionEvicted) {
        (**self).serve_session_evicted(event);
    }
    fn serve_session_resumed(&mut self, event: &ServeSessionResumed) {
        (**self).serve_session_resumed(event);
    }
    fn serve_shed(&mut self, event: &ServeShed) {
        (**self).serve_shed(event);
    }
    fn serve_busy(&mut self, event: &ServeBusy) {
        (**self).serve_busy(event);
    }
    fn serve_shard_pump(&mut self, event: &ServeShardPump) {
        (**self).serve_shard_pump(event);
    }
    fn store_spilled(&mut self, event: &StoreSpilled) {
        (**self).store_spilled(event);
    }
    fn store_loaded(&mut self, event: &StoreLoaded) {
        (**self).store_loaded(event);
    }
    fn store_compacted(&mut self, event: &StoreCompacted) {
        (**self).store_compacted(event);
    }
    fn store_expired(&mut self, event: &StoreExpired) {
        (**self).store_expired(event);
    }
    fn store_fault(&mut self, event: &StoreFaultObserved) {
        (**self).store_fault(event);
    }
    fn cluster_migrated(&mut self, event: &ClusterMigrated) {
        (**self).cluster_migrated(event);
    }
    fn cluster_rehomed(&mut self, event: &ClusterRehomed) {
        (**self).cluster_rehomed(event);
    }
    fn cluster_owner_restarted(&mut self, event: &ClusterOwnerRestarted) {
        (**self).cluster_owner_restarted(event);
    }
    fn span(&mut self, event: &SpanEvent) {
        (**self).span(event);
    }
}

/// Fan-out to two observers (nest pairs for more).
impl<A: Observer, B: Observer> Observer for (A, B) {
    const ENABLED: bool = A::ENABLED || B::ENABLED;

    fn phase_transition(&mut self, event: &PhaseTransition) {
        self.0.phase_transition(event);
        self.1.phase_transition(event);
    }
    fn cycle_start(&mut self, event: &CycleStart) {
        self.0.cycle_start(event);
        self.1.cycle_start(event);
    }
    fn cycle_end(&mut self, event: &CycleEnd) {
        self.0.cycle_end(event);
        self.1.cycle_end(event);
    }
    fn stream_detected(&mut self, event: &StreamDetected) {
        self.0.stream_detected(event);
        self.1.stream_detected(event);
    }
    fn dfsm_built(&mut self, event: &DfsmBuilt) {
        self.0.dfsm_built(event);
        self.1.dfsm_built(event);
    }
    fn prefetch_issued(&mut self, event: &PrefetchIssued) {
        self.0.prefetch_issued(event);
        self.1.prefetch_issued(event);
    }
    fn prefetch_outcome(&mut self, event: &PrefetchOutcome) {
        self.0.prefetch_outcome(event);
        self.1.prefetch_outcome(event);
    }
    fn deoptimize(&mut self, event: &Deoptimize) {
        self.0.deoptimize(event);
        self.1.deoptimize(event);
    }
    fn guard_tripped(&mut self, event: &GuardTripped) {
        self.0.guard_tripped(event);
        self.1.guard_tripped(event);
    }
    fn analysis_handoff(&mut self, event: &AnalysisHandoff) {
        self.0.analysis_handoff(event);
        self.1.analysis_handoff(event);
    }
    fn analysis_applied(&mut self, event: &AnalysisApplied) {
        self.0.analysis_applied(event);
        self.1.analysis_applied(event);
    }
    fn analysis_starved(&mut self, event: &AnalysisStarved) {
        self.0.analysis_starved(event);
        self.1.analysis_starved(event);
    }
    fn recovery_snapshot(&mut self, event: &RecoverySnapshot) {
        self.0.recovery_snapshot(event);
        self.1.recovery_snapshot(event);
    }
    fn recovery_replay(&mut self, event: &RecoveryReplay) {
        self.0.recovery_replay(event);
        self.1.recovery_replay(event);
    }
    fn recovery_restart(&mut self, event: &RecoveryRestart) {
        self.0.recovery_restart(event);
        self.1.recovery_restart(event);
    }
    fn recovery_gave_up(&mut self, event: &RecoveryGaveUp) {
        self.0.recovery_gave_up(event);
        self.1.recovery_gave_up(event);
    }
    fn serve_session_opened(&mut self, event: &ServeSessionOpened) {
        self.0.serve_session_opened(event);
        self.1.serve_session_opened(event);
    }
    fn serve_session_evicted(&mut self, event: &ServeSessionEvicted) {
        self.0.serve_session_evicted(event);
        self.1.serve_session_evicted(event);
    }
    fn serve_session_resumed(&mut self, event: &ServeSessionResumed) {
        self.0.serve_session_resumed(event);
        self.1.serve_session_resumed(event);
    }
    fn serve_shed(&mut self, event: &ServeShed) {
        self.0.serve_shed(event);
        self.1.serve_shed(event);
    }
    fn serve_busy(&mut self, event: &ServeBusy) {
        self.0.serve_busy(event);
        self.1.serve_busy(event);
    }
    fn serve_shard_pump(&mut self, event: &ServeShardPump) {
        self.0.serve_shard_pump(event);
        self.1.serve_shard_pump(event);
    }
    fn store_spilled(&mut self, event: &StoreSpilled) {
        self.0.store_spilled(event);
        self.1.store_spilled(event);
    }
    fn store_loaded(&mut self, event: &StoreLoaded) {
        self.0.store_loaded(event);
        self.1.store_loaded(event);
    }
    fn store_compacted(&mut self, event: &StoreCompacted) {
        self.0.store_compacted(event);
        self.1.store_compacted(event);
    }
    fn store_expired(&mut self, event: &StoreExpired) {
        self.0.store_expired(event);
        self.1.store_expired(event);
    }
    fn store_fault(&mut self, event: &StoreFaultObserved) {
        self.0.store_fault(event);
        self.1.store_fault(event);
    }
    fn cluster_migrated(&mut self, event: &ClusterMigrated) {
        self.0.cluster_migrated(event);
        self.1.cluster_migrated(event);
    }
    fn cluster_rehomed(&mut self, event: &ClusterRehomed) {
        self.0.cluster_rehomed(event);
        self.1.cluster_rehomed(event);
    }
    fn cluster_owner_restarted(&mut self, event: &ClusterOwnerRestarted) {
        self.0.cluster_owner_restarted(event);
        self.1.cluster_owner_restarted(event);
    }
    fn span(&mut self, event: &SpanEvent) {
        self.0.span(event);
        self.1.span(event);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct Counting {
        seen: usize,
        spans: usize,
    }

    impl Observer for Counting {
        fn cycle_end(&mut self, _event: &CycleEnd) {
            self.seen += 1;
        }
        fn span(&mut self, _event: &SpanEvent) {
            self.spans += 1;
        }
    }

    #[test]
    fn null_observer_is_disabled() {
        const {
            assert!(!NullObserver::ENABLED);
            assert!(!<(NullObserver, NullObserver) as Observer>::ENABLED);
            assert!(Counting::ENABLED);
            assert!(<(NullObserver, Counting) as Observer>::ENABLED);
        }
    }

    #[test]
    fn pair_fans_out() {
        use events::{SpanKind, SpanPhase};
        let mut pair = (Counting::default(), Counting::default());
        pair.cycle_end(&CycleEnd::default());
        pair.span(&SpanEvent {
            kind: SpanKind::Profile,
            phase: SpanPhase::Begin,
            at_cycle: 0,
            track: 0,
            a: 0,
            b: 0,
        });
        assert_eq!(pair.0.seen, 1);
        assert_eq!(pair.1.seen, 1);
        assert_eq!(pair.0.spans, 1);
        assert_eq!(pair.1.spans, 1);
    }

    #[test]
    fn mut_ref_forwards() {
        let mut c = Counting::default();
        {
            let obs = &mut c;
            obs.cycle_end(&CycleEnd::default());
        }
        assert_eq!(c.seen, 1);
        const { assert!(<&mut Counting as Observer>::ENABLED) };
    }
}
