//! The typed events the optimizer emits.
//!
//! Every struct is plain data with public fields: the emitting side
//! (`hds-core`) fills them from its run state, observers read them.
//! All of them derive the workspace `serde` Serialize so sinks can
//! export them without per-event glue.

use serde::{Deserialize, Serialize};

/// The bursty-tracing phase being entered.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PhaseKind {
    /// Profiling: bursts record references.
    Awake,
    /// Detuned counters: only check overhead (and, when optimized,
    /// prefetching) runs.
    Hibernating,
}

/// An awake/hibernate boundary was crossed.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct PhaseTransition {
    /// Simulated cycle count at the transition.
    pub at_cycle: u64,
    /// Dynamic checks executed so far.
    pub at_check: u64,
    /// The phase being entered.
    pub to: PhaseKind,
    /// Optimization cycles completed so far.
    pub opt_cycle: u64,
    /// Effective duty cycle so far: fraction of dynamic checks executed
    /// while awake.
    pub duty_cycle: f64,
}

/// A profile → analyze → optimize cycle began.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct CycleStart {
    /// Index of the cycle that is starting (0-based).
    pub opt_cycle: u64,
    /// Simulated cycle count at the start.
    pub at_cycle: u64,
}

/// A cycle's awake phase completed; the analysis statistics are final.
/// Mirrors `hds-core`'s per-cycle `CycleStats` (the paper's Table 2
/// row), plus position information.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct CycleEnd {
    /// Index of the cycle that ended (0-based).
    pub opt_cycle: u64,
    /// Simulated cycle count at the end of the awake phase.
    pub at_cycle: u64,
    /// References traced during the awake phase.
    pub traced_refs: u64,
    /// Hot data streams the analysis detected.
    pub hot_streams: usize,
    /// Streams handed to the DFSM after filtering.
    pub streams_used: usize,
    /// DFSM state count (0 if none was built).
    pub dfsm_states: usize,
    /// Distinct injected address checks.
    pub dfsm_checks: usize,
    /// Procedures modified by injection.
    pub procs_modified: usize,
    /// Grammar size the analysis ran over.
    pub grammar_size: usize,
}

/// A hot data stream was accepted for prefetching. The id matches the
/// DFSM's `StreamId` for the cycle, so later [`PrefetchIssued`] /
/// [`PrefetchOutcome`] events correlate back to it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct StreamDetected {
    /// Cycle the stream belongs to.
    pub opt_cycle: u64,
    /// Stream id within this cycle's DFSM.
    pub stream_id: u32,
    /// Stream length in references.
    pub len: usize,
    /// Prefix length that must match before the tail is prefetched.
    pub head_len: usize,
}

/// A prefix-matching DFSM was built and its checks injected.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct DfsmBuilt {
    /// Cycle the machine belongs to.
    pub opt_cycle: u64,
    /// DFSM state count.
    pub states: usize,
    /// Distinct injected address checks.
    pub address_checks: usize,
    /// Streams the machine matches.
    pub streams: usize,
    /// Procedures modified by the injection.
    pub procs_modified: usize,
}

/// A prefetch instruction was issued.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct PrefetchIssued {
    /// Stream that triggered the prefetch, or [`PROGRAM_STREAM`] for
    /// prefetch instructions belonging to the program itself.
    pub stream_id: u32,
    /// Prefetched address.
    pub addr: u64,
    /// Cache block number of the address (correlation key for
    /// [`PrefetchOutcome`]).
    pub block: u64,
    /// Simulated cycle count at issue.
    pub at_cycle: u64,
    /// Demand references executed so far (for lead-distance metrics).
    pub at_ref: u64,
}

/// Stream id used for prefetches not triggered by a detected stream
/// (the program's own software prefetch instructions).
pub const PROGRAM_STREAM: u32 = u32::MAX;

/// How an issued prefetch resolved.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum PrefetchFate {
    /// The block was demand-hit in L1 before eviction: a full hit.
    Useful,
    /// The demand access arrived while the block was still in flight:
    /// the miss was shortened but not hidden.
    Late,
    /// The block was evicted without ever being demand-used: pollution.
    Polluted,
}

impl PrefetchFate {
    /// Lower-case label (Prometheus/JSON friendly).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            PrefetchFate::Useful => "useful",
            PrefetchFate::Late => "late",
            PrefetchFate::Polluted => "polluted",
        }
    }
}

/// An issued prefetch resolved. Emitted by `hds-core` from the memory
/// simulator's attribution queue; each *tracked* prefetch resolves at
/// most once (redundant prefetches of already-resident blocks resolve
/// never).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct PrefetchOutcome {
    /// Stream that issued the prefetch (or [`PROGRAM_STREAM`]).
    pub stream_id: u32,
    /// Cache block number.
    pub block: u64,
    /// How it resolved.
    pub fate: PrefetchFate,
    /// Simulated cycle count at issue.
    pub issued_at_cycle: u64,
    /// Simulated cycle count at resolution.
    pub resolved_at_cycle: u64,
    /// Demand references executed when the outcome resolved.
    pub resolved_at_ref: u64,
}

impl PrefetchOutcome {
    /// Cycles between issue and resolution (the match-to-access
    /// latency for useful/late outcomes).
    #[must_use]
    pub fn latency_cycles(&self) -> u64 {
        self.resolved_at_cycle.saturating_sub(self.issued_at_cycle)
    }
}

/// The awake-phase trace was handed off to the background analysis
/// worker (concurrent-analysis mode only). From this point the
/// simulated program keeps executing hibernation references while the
/// worker runs grammar construction, hot-stream detection, and DFSM
/// build off the critical path.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct AnalysisHandoff {
    /// Index of the optimization cycle whose trace was handed off.
    pub opt_cycle: u64,
    /// Simulated cycle count at the handoff.
    pub at_cycle: u64,
    /// References in the handed-off trace.
    pub trace_len: u64,
}

/// A background analysis result came back in time and was installed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct AnalysisApplied {
    /// Index of the optimization cycle the result belongs to.
    pub opt_cycle: u64,
    /// Simulated cycle count at the original handoff.
    pub handoff_at_cycle: u64,
    /// Simulated cycle count at installation.
    pub at_cycle: u64,
    /// Simulated cycles the analysis overlapped execution
    /// (`at_cycle - handoff_at_cycle`): the worker-lag sample.
    pub lag_cycles: u64,
}

/// A background analysis result was discarded because the worker fell
/// too far behind: the hibernation span ended (or the run finished, or
/// the worker-lag guard tripped) before the result could be installed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct AnalysisStarved {
    /// Index of the optimization cycle whose result was discarded.
    pub opt_cycle: u64,
    /// Simulated cycle count at the original handoff.
    pub handoff_at_cycle: u64,
    /// Simulated cycle count at the discard.
    pub at_cycle: u64,
    /// Simulated cycles between handoff and discard.
    pub lag_cycles: u64,
}

/// A budget guard that can trip and degrade the optimize cycle.
///
/// Each variant names the resource whose cap was exceeded; the
/// degradation taken is the guard layer's (`hds-guard`) business — the
/// event only records that the budget was insufficient.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum GuardKind {
    /// Sequitur grammar rule count during an awake phase.
    GrammarRules,
    /// Projected simulated cycles of the end-of-awake analysis pass.
    AnalysisCycles,
    /// DFSM subset-construction state count.
    DfsmStates,
    /// Pending-prefetch queue depth under windowed scheduling.
    PrefetchQueue,
    /// Simulated cycles the background analysis worker lagged behind
    /// the handoff point (concurrent-analysis mode).
    WorkerLag,
}

impl GuardKind {
    /// Lower-case label (Prometheus/JSON friendly).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            GuardKind::GrammarRules => "grammar_rules",
            GuardKind::AnalysisCycles => "analysis_cycles",
            GuardKind::DfsmStates => "dfsm_states",
            GuardKind::PrefetchQueue => "prefetch_queue",
            GuardKind::WorkerLag => "worker_lag",
        }
    }

    /// Every guard kind, in rendering order.
    pub const ALL: [GuardKind; 5] = [
        GuardKind::GrammarRules,
        GuardKind::AnalysisCycles,
        GuardKind::DfsmStates,
        GuardKind::PrefetchQueue,
        GuardKind::WorkerLag,
    ];
}

/// A budget guard tripped: a resource exceeded its configured cap and
/// the current cycle was degraded (optimization skipped, queue
/// truncated, or code de-optimized) instead of panicking or running
/// unbounded. Emitted at most once per guard kind per optimization
/// cycle.
#[derive(Clone, Copy, Debug, PartialEq, Serialize)]
pub struct GuardTripped {
    /// Which budget tripped.
    pub guard: GuardKind,
    /// The configured cap.
    pub budget: u64,
    /// The observed value that exceeded it.
    pub observed: u64,
    /// Optimization cycles completed when the guard tripped.
    pub opt_cycle: u64,
    /// Simulated cycle count at the trip.
    pub at_cycle: u64,
}

/// Injected checks and prefetches were removed — fully (end of a
/// hibernation span under the dynamic strategy, or a guard forcing the
/// code out) or partially (one stream's checks surgically removed by
/// the accuracy guard while the rest keep prefetching).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct Deoptimize {
    /// Simulated cycle count at de-optimization.
    pub at_cycle: u64,
    /// Optimization cycles completed so far.
    pub opt_cycle: u64,
    /// `true` when only part of the injected code was removed; `false`
    /// for the all-or-nothing removal of §3.2.
    pub partial: bool,
    /// For a partial de-optimization, the id of the stream whose checks
    /// were removed (the id matches the cycle's earlier
    /// [`StreamDetected`] / [`PrefetchIssued`] events).
    pub stream_id: Option<u32>,
}

/// A crash-consistent checkpoint of the full optimizer state was
/// captured at a phase boundary. The sum of these events over a
/// supervised run's attempts reconciles exactly with the final
/// `RunReport`'s `snapshots` counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct RecoverySnapshot {
    /// Optimization cycles completed at capture.
    pub opt_cycle: u64,
    /// Simulated cycle count at capture.
    pub at_cycle: u64,
    /// Workload events fully consumed at capture — the resume point.
    pub events_consumed: u64,
    /// Encoded snapshot size in bytes (header + checksummed payload).
    pub bytes: u64,
}

/// Crash recovery inspected the write-ahead edit journal. When
/// `rolled_forward` is set, a commit torn by a mid-edit crash was
/// deterministically replayed to its committed image; otherwise the
/// journal was empty and the image was already consistent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct RecoveryReplay {
    /// Workload events consumed when the crash hit.
    pub events_consumed: u64,
    /// `true` when a pending journal entry was applied forward.
    pub rolled_forward: bool,
}

/// The supervisor restarted a crashed session from its last snapshot.
/// The sum of these events reconciles exactly with the final
/// `RunReport`'s `restarts` counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct RecoveryRestart {
    /// Restart attempt number (1-based: first restart is 1).
    pub attempt: u32,
    /// Workload events skipped to reach the resume point (the snapshot's
    /// `events_consumed`; 0 when restarting from scratch).
    pub resumed_at_event: u64,
    /// Modeled capped-exponential backoff charged before this restart,
    /// in simulated cycles.
    pub backoff_cycles: u64,
}

/// The supervisor's circuit breaker opened: the session crashed more
/// times than the restart cap allows, and the run was abandoned with
/// its last consistent state intact.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct RecoveryGaveUp {
    /// Restarts performed before giving up (the configured cap).
    pub restarts: u32,
    /// Total crashes observed across all attempts.
    pub crashes: u64,
}

/// A serving-layer admission budget (`hds-serve`): which resource cap
/// an over-budget request ran into. Parallel to [`GuardKind`], but for
/// the multi-tenant front-end rather than the per-session optimize
/// cycle.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ServeBudgetKind {
    /// Concurrently live tenant sessions across all shards.
    LiveSessions,
    /// Trace chunks queued for a single tenant between pumps.
    TenantQueue,
    /// Bytes of trace-chunk payload queued across all tenants.
    GlobalBytes,
    /// Duplicate (retransmitted) frames re-received for one tenant on
    /// a reliable connection — the cap that keeps a retry storm from
    /// monopolizing the control plane.
    RetryStorm,
    /// Storage faults observed while spilling/loading cold tenants
    /// through the durable store — the cap that stops the serve layer
    /// from hammering a sick disk and degrades it to in-memory
    /// hibernation instead.
    StoreFaults,
}

impl ServeBudgetKind {
    /// Lower-case label (Prometheus/JSON friendly).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ServeBudgetKind::LiveSessions => "live_sessions",
            ServeBudgetKind::TenantQueue => "tenant_queue",
            ServeBudgetKind::GlobalBytes => "global_bytes",
            ServeBudgetKind::RetryStorm => "retry_storm",
            ServeBudgetKind::StoreFaults => "store_faults",
        }
    }

    /// Every serve budget kind, in rendering order.
    pub const ALL: [ServeBudgetKind; 5] = [
        ServeBudgetKind::LiveSessions,
        ServeBudgetKind::TenantQueue,
        ServeBudgetKind::GlobalBytes,
        ServeBudgetKind::RetryStorm,
        ServeBudgetKind::StoreFaults,
    ];
}

/// A tenant session was admitted and opened on a shard. The sum of
/// these events reconciles exactly with `ServeReport::opened`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ServeSessionOpened {
    /// Stable 64-bit key of the tenant id (FNV-1a of the id string).
    pub tenant: u64,
    /// Shard the tenant consistently hashes onto.
    pub shard: u32,
    /// Wire code of the prefetch backend the tenant was assigned
    /// (0 = Dyn-pref, 1 = Pangloss, 2 = Triangel), whether requested
    /// in `Hello`, drawn from a seeded A/B split, or the serve
    /// default.
    pub backend: u8,
}

/// A cold tenant's live session was evicted: its state was captured as
/// a crash-consistent snapshot plus the replay tail of events consumed
/// since the last phase boundary.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ServeSessionEvicted {
    /// Stable 64-bit key of the tenant id.
    pub tenant: u64,
    /// Shard that owned the session.
    pub shard: u32,
    /// Encoded snapshot size in bytes (0 when the session had not yet
    /// crossed a phase boundary and the tail carries everything).
    pub snapshot_bytes: u64,
    /// Events in the replay tail beyond the snapshot's resume point.
    pub tail_events: u64,
}

/// An evicted tenant's next frame arrived and its session was
/// rehydrated — snapshot resumed, tail replayed — bit-identically to
/// the uninterrupted session.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ServeSessionResumed {
    /// Stable 64-bit key of the tenant id.
    pub tenant: u64,
    /// Shard that owns the session.
    pub shard: u32,
    /// Tail events replayed on top of the snapshot.
    pub replayed_events: u64,
}

/// A trace chunk was dropped by admission control: a serve budget was
/// exhausted and the tenant received a typed `Shed` frame instead of a
/// panic or an unbounded queue. The sum of these events reconciles
/// exactly with `ServeReport::shed`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct ServeShed {
    /// Stable 64-bit key of the tenant id.
    pub tenant: u64,
    /// Shard the chunk was bound for.
    pub shard: u32,
    /// Which budget was exhausted.
    pub kind: ServeBudgetKind,
    /// The configured cap.
    pub budget: u64,
    /// The observed value that exceeded it.
    pub observed: u64,
}

/// An `OpenSession` was refused outright: the live-session cap is
/// reached and LRU eviction is disabled, so the tenant received a typed
/// `Busy` frame and must retry later.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ServeBusy {
    /// Stable 64-bit key of the tenant id.
    pub tenant: u64,
    /// Shard the tenant would have hashed onto.
    pub shard: u32,
    /// The configured live-session cap.
    pub budget: u64,
    /// Live sessions at the refusal.
    pub observed: u64,
}

/// One shard finished draining its mailbox for a pump: the queue-depth
/// sample feeds the depth histogram, the drain counters feed per-shard
/// utilization.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ServeShardPump {
    /// Shard index.
    pub shard: u32,
    /// Frames queued in the mailbox when the pump began.
    pub queued: u64,
    /// Frames drained by this pump.
    pub frames: u64,
    /// Workload events fed into tenant sessions by this pump.
    pub events: u64,
}

/// What a span's timeline is attributed to in the flight-recorder /
/// Perfetto view. Every kind maps to a stable lower-case label and a
/// nesting *lane*: spans on the same lane of the same track must nest
/// like parentheses, while different lanes may overlap freely (the
/// background analysis worker overlaps the hibernation span by design).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpanKind {
    /// An awake (profiling) phase of one optimize cycle.
    Profile,
    /// A hibernation phase (detuned checks, prefetching if optimized).
    Hibernate,
    /// The end-of-awake inline analysis pass (grammar final pass, hot
    /// stream extraction, machine build, image edit).
    Analyze,
    /// DFSM subset construction for one cycle's accepted streams.
    DfsmBuild,
    /// The journaled code-image edit installing a cycle's checks.
    ImageEdit,
    /// A background analysis job, from handoff to install/starve.
    BgAnalysis,
    /// One serve frame handled on the control plane.
    ServeFrame,
    /// One serve shard draining its mailbox.
    ShardPump,
    /// Instant: a Sequitur append burst folded into the grammar.
    SequiturAppend,
    /// Instant: an injected fault killed the session at a crash point.
    Crash,
    /// Instant: a network-robustness event on the wire (`hds-net`):
    /// `a` is the [`NetEventKind`] discriminant, `b` the tenant key or
    /// backoff amount (per emission site).
    Net,
    /// Instant: a durable-store event (`hds-store`): `a` is the
    /// [`StoreEventKind`] discriminant, `b` the tenant key or byte
    /// count (per emission site).
    Store,
    /// Instant: a cross-process cluster event (`hds-cluster`): `a` is
    /// the [`ClusterEventKind`] discriminant, `b` the tenant key or
    /// owner id (per emission site).
    Cluster,
}

impl SpanKind {
    /// Lower-case label (Perfetto/JSON friendly).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpanKind::Profile => "profile",
            SpanKind::Hibernate => "hibernate",
            SpanKind::Analyze => "analyze",
            SpanKind::DfsmBuild => "dfsm_build",
            SpanKind::ImageEdit => "image_edit",
            SpanKind::BgAnalysis => "bg_analysis",
            SpanKind::ServeFrame => "serve_frame",
            SpanKind::ShardPump => "shard_pump",
            SpanKind::SequiturAppend => "sequitur_append",
            SpanKind::Crash => "crash",
            SpanKind::Net => "net",
            SpanKind::Store => "store",
            SpanKind::Cluster => "cluster",
        }
    }

    /// Nesting lane within a track. Spans sharing a `(track, lane)`
    /// pair must be well nested; distinct lanes may overlap. The
    /// background worker gets its own lane because its span begins
    /// before the awake phase ends and finishes mid-hibernation.
    #[must_use]
    pub fn lane(self) -> u32 {
        match self {
            SpanKind::BgAnalysis => 1,
            _ => 0,
        }
    }

    /// Every span kind, in rendering order.
    pub const ALL: [SpanKind; 13] = [
        SpanKind::Profile,
        SpanKind::Hibernate,
        SpanKind::Analyze,
        SpanKind::DfsmBuild,
        SpanKind::ImageEdit,
        SpanKind::BgAnalysis,
        SpanKind::ServeFrame,
        SpanKind::ShardPump,
        SpanKind::SequiturAppend,
        SpanKind::Crash,
        SpanKind::Net,
        SpanKind::Store,
        SpanKind::Cluster,
    ];
}

/// What a [`SpanKind::Net`] instant records (carried in the event's
/// `a` payload word). Emitted by the `hds-serve` client session and
/// manager on the wire's failure-recovery paths.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum NetEventKind {
    /// A frame timed out and was retransmitted (`b` = backoff steps).
    Retry,
    /// The client tore down a dead transport and reconnected
    /// (`b` = reconnect ordinal).
    Reconnect,
    /// A handshake failed authentication (`b` = 0).
    AuthFailure,
    /// A duplicate frame was received and deduplicated
    /// (`b` = tenant key).
    Duplicate,
    /// A sequence gap was detected and the sender told to rewind
    /// (`b` = tenant key).
    SequenceGap,
    /// A graceful drain (`Goodbye`) completed (`b` = tenants
    /// hibernated).
    Drain,
}

impl NetEventKind {
    /// Lower-case label (Perfetto/JSON friendly).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            NetEventKind::Retry => "retry",
            NetEventKind::Reconnect => "reconnect",
            NetEventKind::AuthFailure => "auth_failure",
            NetEventKind::Duplicate => "duplicate",
            NetEventKind::SequenceGap => "sequence_gap",
            NetEventKind::Drain => "drain",
        }
    }

    /// The event's wire discriminant (the span's `a` word).
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            NetEventKind::Retry => 0,
            NetEventKind::Reconnect => 1,
            NetEventKind::AuthFailure => 2,
            NetEventKind::Duplicate => 3,
            NetEventKind::SequenceGap => 4,
            NetEventKind::Drain => 5,
        }
    }
}

/// What a [`SpanKind::Store`] instant records (carried in the event's
/// `a` payload word). Emitted by the `hds-serve` manager on the
/// durable-store spill/load/compact paths, so the flight recorder's
/// black box says exactly what the store did (and what went wrong)
/// right before a crash.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum StoreEventKind {
    /// A hibernated tenant was durably spilled (`b` = tenant key).
    Spilled,
    /// A spilled tenant was loaded and rehydrated (`b` = tenant key).
    Loaded,
    /// A compaction pass rewrote the live set (`b` = records kept).
    Compacted,
    /// A dead tenant's record passed its TTL and was expired
    /// (`b` = tenant key).
    Expired,
    /// A storage fault was observed and degraded gracefully
    /// (`b` = tenant key, or 0 for a non-tenant op).
    Fault,
    /// A tenant whose spilled record was unreadable was restarted from
    /// scratch (`b` = tenant key) — the telemetry attribution the
    /// chaos sweep checks for.
    Restarted,
}

impl StoreEventKind {
    /// Lower-case label (Perfetto/JSON friendly).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            StoreEventKind::Spilled => "spilled",
            StoreEventKind::Loaded => "loaded",
            StoreEventKind::Compacted => "compacted",
            StoreEventKind::Expired => "expired",
            StoreEventKind::Fault => "fault",
            StoreEventKind::Restarted => "restarted",
        }
    }

    /// The event's wire discriminant (the span's `a` word).
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            StoreEventKind::Spilled => 0,
            StoreEventKind::Loaded => 1,
            StoreEventKind::Compacted => 2,
            StoreEventKind::Expired => 3,
            StoreEventKind::Fault => 4,
            StoreEventKind::Restarted => 5,
        }
    }
}

/// A hibernated tenant's cold state was durably written to the store
/// and dropped from server memory. The sum of these events reconciles
/// exactly with `ServeReport::spilled`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct StoreSpilled {
    /// Stable 64-bit key of the tenant id.
    pub tenant: u64,
    /// Bytes of the durable record payload (snapshot + tail).
    pub bytes: u64,
}

/// A spilled tenant's record was read back, checksum-verified, and its
/// session rehydrated. The sum of these events reconciles exactly with
/// `ServeReport::loaded`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct StoreLoaded {
    /// Stable 64-bit key of the tenant id.
    pub tenant: u64,
    /// Bytes of the verified record payload.
    pub bytes: u64,
}

/// A compaction pass folded the store's live records into a fresh
/// segment and dropped the dead ones. The sum of these events
/// reconciles exactly with `ServeReport::compactions`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct StoreCompacted {
    /// Live records carried into the fresh segment.
    pub kept: u64,
    /// Superseded/tombstoned/corrupt records left behind.
    pub dropped: u64,
    /// Dead segment files deleted.
    pub segments_dropped: u64,
}

/// A tenant's record outlived its TTL with no activity and was
/// expired by compaction. The sum of these events reconciles exactly
/// with `ServeReport::expired`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct StoreExpired {
    /// Stable 64-bit key of the tenant id.
    pub tenant: u64,
}

/// A storage operation failed (injected or real) and the serve layer
/// degraded gracefully instead of panicking. The sum of these events
/// reconciles exactly with `ServeReport::store_faults`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct StoreFaultObserved {
    /// Stable 64-bit key of the tenant id (0 for a non-tenant op such
    /// as a failed compaction).
    pub tenant: u64,
    /// What the serve layer did about it: 0 = kept the tenant in
    /// memory (spill failed), 1 = restarted the tenant from scratch
    /// (load failed), 2 = compaction abandoned (store left as-is).
    pub action: u8,
}

/// What a [`SpanKind::Cluster`] instant records (carried in the
/// event's `a` payload word). Emitted by the `hds-cluster` router on
/// membership changes, tenant handoffs, and owner-process recovery.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum ClusterEventKind {
    /// A tenant's durable record moved to another owner in a planned
    /// migration (`b` = tenant key).
    Migrated,
    /// A tenant was re-homed after its owner died, rebuilt from its
    /// last exported record plus the router's journal (`b` = tenant
    /// key).
    Rehomed,
    /// The router declared an owner process dead (`b` = owner id).
    OwnerDead,
    /// A dead owner was restarted in place and its tenants resumed on
    /// it (`b` = owner id).
    OwnerRestarted,
    /// A tenant's standing record copy was refreshed by a non-detach
    /// export (`b` = tenant key).
    RecordRefreshed,
    /// An owner joined the ring (`b` = owner id).
    OwnerJoined,
    /// An owner left the ring gracefully (`b` = owner id).
    OwnerLeft,
}

impl ClusterEventKind {
    /// Lower-case label (Perfetto/JSON friendly).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            ClusterEventKind::Migrated => "migrated",
            ClusterEventKind::Rehomed => "rehomed",
            ClusterEventKind::OwnerDead => "owner_dead",
            ClusterEventKind::OwnerRestarted => "owner_restarted",
            ClusterEventKind::RecordRefreshed => "record_refreshed",
            ClusterEventKind::OwnerJoined => "owner_joined",
            ClusterEventKind::OwnerLeft => "owner_left",
        }
    }

    /// The event's wire discriminant (the span's `a` word).
    #[must_use]
    pub fn code(self) -> u64 {
        match self {
            ClusterEventKind::Migrated => 0,
            ClusterEventKind::Rehomed => 1,
            ClusterEventKind::OwnerDead => 2,
            ClusterEventKind::OwnerRestarted => 3,
            ClusterEventKind::RecordRefreshed => 4,
            ClusterEventKind::OwnerJoined => 5,
            ClusterEventKind::OwnerLeft => 6,
        }
    }
}

/// A tenant's durable record was handed from one owner process to
/// another in a planned migration (join/leave rebalance): the source
/// exported-and-detached, the destination adopted the record, and the
/// router replayed the journaled chunks past the record's stamp.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ClusterMigrated {
    /// Stable 64-bit key of the tenant id.
    pub tenant: u64,
    /// Owner process the tenant left.
    pub from_owner: u32,
    /// Owner process the tenant now lives on.
    pub to_owner: u32,
    /// Journaled chunks replayed on the destination after the record.
    pub replayed_chunks: u64,
}

/// A tenant was re-homed after its owner process died: rebuilt on a
/// surviving (or restarted) owner from its last exported record plus
/// the router's chunk journal — the crash path of a migration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ClusterRehomed {
    /// Stable 64-bit key of the tenant id.
    pub tenant: u64,
    /// The dead owner.
    pub from_owner: u32,
    /// Owner process the tenant now lives on.
    pub to_owner: u32,
    /// Journaled chunks replayed to rebuild the tenant.
    pub replayed_chunks: u64,
}

/// The router restarted a dead owner process (supervise-at-process
/// granularity) and re-drove its tenants through the resume protocol.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize)]
pub struct ClusterOwnerRestarted {
    /// The owner that died and came back.
    pub owner: u32,
    /// Tenants that lived on it at the time of death.
    pub tenants: u64,
}

/// Whether a [`SpanEvent`] opens, closes, or is a point in time.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum SpanPhase {
    /// The span opened.
    Begin,
    /// The most recent open span of the same kind/track closed.
    End,
    /// A zero-duration marker.
    Instant,
}

impl SpanPhase {
    /// Chrome-trace phase letter (`B`/`E`/`i`).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            SpanPhase::Begin => "B",
            SpanPhase::End => "E",
            SpanPhase::Instant => "i",
        }
    }
}

/// A hierarchical span boundary or instant marker. Spans carry the
/// *simulated* clock only — they charge zero simulated cycles and must
/// never perturb a digest; wall-clock time is stamped by the recording
/// observer, not the emitter. The `a`/`b` payload words are
/// kind-specific (cycle index, grammar size, tenant key, …) and are
/// documented per emission site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct SpanEvent {
    /// What the span measures.
    pub kind: SpanKind,
    /// Begin, end, or instant.
    pub phase: SpanPhase,
    /// Simulated cycle count (serve layers use their frame clock).
    pub at_cycle: u64,
    /// Timeline track: 0 for the single-session core pipeline,
    /// `shard + 1` for serve shards; recorders may add an offset to
    /// keep multiple runs on separate tracks.
    pub track: u32,
    /// First kind-specific payload word.
    pub a: u64,
    /// Second kind-specific payload word.
    pub b: u64,
}

impl SpanEvent {
    /// A begin boundary on track 0 with empty payload.
    #[must_use]
    pub fn begin(kind: SpanKind, at_cycle: u64) -> Self {
        SpanEvent {
            kind,
            phase: SpanPhase::Begin,
            at_cycle,
            track: 0,
            a: 0,
            b: 0,
        }
    }

    /// An end boundary on track 0 with empty payload.
    #[must_use]
    pub fn end(kind: SpanKind, at_cycle: u64) -> Self {
        SpanEvent {
            kind,
            phase: SpanPhase::End,
            at_cycle,
            track: 0,
            a: 0,
            b: 0,
        }
    }

    /// An instant marker on track 0 with empty payload.
    #[must_use]
    pub fn instant(kind: SpanKind, at_cycle: u64) -> Self {
        SpanEvent {
            kind,
            phase: SpanPhase::Instant,
            at_cycle,
            track: 0,
            a: 0,
            b: 0,
        }
    }

    /// Same event with the payload words set.
    #[must_use]
    pub fn with_args(mut self, a: u64, b: u64) -> Self {
        self.a = a;
        self.b = b;
        self
    }

    /// Same event on another track.
    #[must_use]
    pub fn on_track(mut self, track: u32) -> Self {
        self.track = track;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fate_labels() {
        assert_eq!(PrefetchFate::Useful.label(), "useful");
        assert_eq!(PrefetchFate::Late.label(), "late");
        assert_eq!(PrefetchFate::Polluted.label(), "polluted");
    }

    #[test]
    fn guard_labels_are_distinct() {
        let labels: Vec<&str> = GuardKind::ALL.iter().map(|g| g.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert_eq!(GuardKind::GrammarRules.label(), "grammar_rules");
    }

    #[test]
    fn guard_tripped_serializes_to_object() {
        use serde::{Serialize, Value};
        let v = GuardTripped {
            guard: GuardKind::PrefetchQueue,
            budget: 128,
            observed: 129,
            opt_cycle: 2,
            at_cycle: 999,
        }
        .to_value();
        assert_eq!(v.get("budget"), Some(&Value::U64(128)));
        assert_eq!(v.get("observed"), Some(&Value::U64(129)));
    }

    #[test]
    fn deoptimize_defaults_to_full() {
        let d = Deoptimize::default();
        assert!(!d.partial);
        assert_eq!(d.stream_id, None);
    }

    #[test]
    fn latency_saturates() {
        let o = PrefetchOutcome {
            stream_id: 0,
            block: 0,
            fate: PrefetchFate::Useful,
            issued_at_cycle: 10,
            resolved_at_cycle: 4,
            resolved_at_ref: 0,
        };
        assert_eq!(o.latency_cycles(), 0);
    }

    #[test]
    fn recovery_events_serialize_to_objects() {
        use serde::{Serialize, Value};
        let v = RecoverySnapshot {
            opt_cycle: 2,
            at_cycle: 5000,
            events_consumed: 81,
            bytes: 1234,
        }
        .to_value();
        assert_eq!(v.get("events_consumed"), Some(&Value::U64(81)));
        assert_eq!(v.get("bytes"), Some(&Value::U64(1234)));
        let v = RecoveryRestart {
            attempt: 1,
            resumed_at_event: 81,
            backoff_cycles: 1000,
        }
        .to_value();
        assert_eq!(v.get("attempt"), Some(&Value::U64(1)));
        let v = RecoveryReplay {
            events_consumed: 81,
            rolled_forward: true,
        }
        .to_value();
        assert_eq!(v.get("rolled_forward"), Some(&Value::Bool(true)));
        let v = RecoveryGaveUp {
            restarts: 4,
            crashes: 5,
        }
        .to_value();
        assert_eq!(v.get("crashes"), Some(&Value::U64(5)));
    }

    #[test]
    fn serve_budget_labels_are_distinct() {
        let labels: Vec<&str> = ServeBudgetKind::ALL.iter().map(|k| k.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert_eq!(ServeBudgetKind::LiveSessions.label(), "live_sessions");
    }

    #[test]
    fn serve_events_serialize_to_objects() {
        use serde::{Serialize, Value};
        let v = ServeShed {
            tenant: 0xfeed,
            shard: 3,
            kind: ServeBudgetKind::GlobalBytes,
            budget: 4096,
            observed: 5000,
        }
        .to_value();
        assert_eq!(v.get("budget"), Some(&Value::U64(4096)));
        assert_eq!(v.get("observed"), Some(&Value::U64(5000)));
        let v = ServeSessionEvicted {
            tenant: 1,
            shard: 0,
            snapshot_bytes: 256,
            tail_events: 7,
        }
        .to_value();
        assert_eq!(v.get("tail_events"), Some(&Value::U64(7)));
        let v = ServeShardPump {
            shard: 2,
            queued: 5,
            frames: 5,
            events: 40,
        }
        .to_value();
        assert_eq!(v.get("queued"), Some(&Value::U64(5)));
    }

    #[test]
    fn span_labels_are_distinct() {
        let labels: Vec<&str> = SpanKind::ALL.iter().map(|k| k.label()).collect();
        let mut dedup = labels.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), labels.len());
        assert_eq!(SpanKind::DfsmBuild.label(), "dfsm_build");
        assert_eq!(SpanPhase::Begin.label(), "B");
        assert_eq!(SpanPhase::End.label(), "E");
        assert_eq!(SpanPhase::Instant.label(), "i");
    }

    #[test]
    fn bg_analysis_has_its_own_lane() {
        assert_eq!(SpanKind::BgAnalysis.lane(), 1);
        for k in SpanKind::ALL {
            if k != SpanKind::BgAnalysis {
                assert_eq!(k.lane(), 0, "{}", k.label());
            }
        }
    }

    #[test]
    fn span_event_builders_compose() {
        use serde::{Serialize, Value};
        let e = SpanEvent::begin(SpanKind::Analyze, 500)
            .with_args(7, 42)
            .on_track(3);
        assert_eq!(e.phase, SpanPhase::Begin);
        assert_eq!(e.track, 3);
        let v = e.to_value();
        assert_eq!(v.get("at_cycle"), Some(&Value::U64(500)));
        assert_eq!(v.get("a"), Some(&Value::U64(7)));
        assert_eq!(v.get("b"), Some(&Value::U64(42)));
        assert_eq!(SpanEvent::end(SpanKind::Analyze, 501).phase, SpanPhase::End);
        assert_eq!(
            SpanEvent::instant(SpanKind::Crash, 502).phase,
            SpanPhase::Instant
        );
    }

    #[test]
    fn events_serialize_to_objects() {
        use serde::{Serialize, Value};
        let v = CycleEnd {
            opt_cycle: 3,
            traced_refs: 7,
            ..CycleEnd::default()
        }
        .to_value();
        assert_eq!(v.get("opt_cycle"), Some(&Value::U64(3)));
        assert_eq!(v.get("traced_refs"), Some(&Value::U64(7)));
    }
}
