//! In-memory metrics: counters, log-scaled histograms, per-stream
//! prefetch quality, and a Prometheus text renderer.

use std::collections::{BTreeMap, HashMap};
use std::fmt::Write as _;

use crate::events::{
    AnalysisApplied, AnalysisHandoff, AnalysisStarved, ClusterMigrated, ClusterOwnerRestarted,
    ClusterRehomed, CycleEnd, CycleStart, Deoptimize, DfsmBuilt, GuardKind, GuardTripped,
    PhaseKind, PhaseTransition, PrefetchFate, PrefetchIssued, PrefetchOutcome, RecoveryGaveUp,
    RecoveryReplay, RecoveryRestart, RecoverySnapshot, ServeBudgetKind, ServeBusy,
    ServeSessionEvicted, ServeSessionOpened, ServeSessionResumed, ServeShardPump, ServeShed,
    StoreCompacted, StoreExpired, StoreFaultObserved, StoreLoaded, StoreSpilled, StreamDetected,
};
use crate::Observer;

/// A power-of-two-bucketed histogram of `u64` samples.
///
/// Bucket 0 holds the value 0; bucket `i > 0` holds values in
/// `[2^(i-1), 2^i - 1]`, i.e. the upper bound of bucket `i` is
/// `2^i - 1`. Log scaling keeps the histogram O(64) regardless of the
/// value range, which is what a hot-path recorder can afford.
#[derive(Clone, Debug)]
pub struct Histogram {
    buckets: [u64; 65],
    count: u64,
    sum: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; 65],
            count: 0,
            sum: 0,
        }
    }
}

impl Histogram {
    /// An empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Histogram::default()
    }

    /// Records one sample.
    pub fn record(&mut self, value: u64) {
        let idx = if value == 0 {
            0
        } else {
            64 - value.leading_zeros() as usize
        };
        self.buckets[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
    }

    /// Number of samples recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    #[must_use]
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Mean sample, or 0.0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.sum as f64 / self.count as f64
        }
    }

    /// `(upper_bound, cumulative_count)` pairs up to the highest
    /// occupied bucket — the shape Prometheus histogram series need.
    #[must_use]
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let top = match self.buckets.iter().rposition(|&c| c > 0) {
            Some(i) => i,
            None => return Vec::new(),
        };
        let mut acc = 0;
        (0..=top)
            .map(|i| {
                acc += self.buckets[i];
                let bound = match i {
                    0 => 0,
                    64 => u64::MAX,
                    _ => (1u64 << i) - 1,
                };
                (bound, acc)
            })
            .collect()
    }
}

/// Per-stream prefetch quality counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamMetrics {
    /// Prefetches issued on behalf of the stream.
    pub issued: u64,
    /// Resolved as full hits.
    pub useful: u64,
    /// Resolved late (demand access caught the block in flight).
    pub late: u64,
    /// Evicted unused.
    pub polluted: u64,
}

impl StreamMetrics {
    #[allow(clippy::cast_precision_loss)]
    fn ratio(num: u64, den: u64) -> f64 {
        if den == 0 {
            0.0
        } else {
            num as f64 / den as f64
        }
    }

    /// Fraction of issued prefetches that became full hits.
    #[must_use]
    pub fn accuracy(&self) -> f64 {
        Self::ratio(self.useful, self.issued)
    }

    /// Fraction of issued prefetches whose predicted access actually
    /// arrived (usefully or late) — how often the stream's prediction
    /// covered a real access.
    #[must_use]
    pub fn coverage(&self) -> f64 {
        Self::ratio(self.useful + self.late, self.issued)
    }

    /// Among prefetches whose access arrived, the fraction that landed
    /// in time to fully hide the miss.
    #[must_use]
    pub fn timeliness(&self) -> f64 {
        Self::ratio(self.useful, self.useful + self.late)
    }
}

/// The standard metrics observer: counts every event kind, histograms
/// the interesting magnitudes, and tracks per-stream prefetch quality.
///
/// Counters are exact mirrors of the run's behavior, so they reconcile
/// against the final `RunReport` (the `telemetry_demo` binary asserts
/// this).
#[derive(Clone, Debug, Default)]
pub struct MetricsRecorder {
    // Plain counters.
    phase_transitions_awake: u64,
    phase_transitions_hibernate: u64,
    cycles_started: u64,
    cycles_completed: u64,
    streams_detected: u64,
    dfsms_built: u64,
    prefetches_issued: u64,
    outcomes: [u64; 3], // indexed by fate
    deopts: u64,
    partial_deopts: u64,
    guard_trips: [u64; 5], // indexed by guard kind
    traced_refs_total: u64,
    last_duty_cycle: f64,
    analysis_handoffs: u64,
    analysis_applied: u64,
    analysis_starved: u64,
    recovery_snapshots: u64,
    recovery_replays: u64,
    recovery_rollforwards: u64,
    recovery_restarts: u64,
    recovery_gave_up: u64,
    recovery_backoff_cycles: u64,
    serve_opened: u64,
    serve_opened_by_backend: [u64; 3], // indexed by backend wire code
    serve_evicted: u64,
    serve_resumed: u64,
    serve_busy: u64,
    serve_shed: [u64; 5], // indexed by serve budget kind
    serve_replayed_events: u64,
    store_spilled: u64,
    store_spilled_bytes: u64,
    store_loaded: u64,
    store_loaded_bytes: u64,
    store_compactions: u64,
    store_expired: u64,
    store_faults: u64,
    cluster_migrations: u64,
    cluster_rehomes: u64,
    cluster_owner_restarts: u64,
    cluster_replayed_chunks: u64,
    // Histograms.
    stream_length: Histogram,
    dfsm_state_count: Histogram,
    match_to_access_cycles: Histogram,
    prefetch_lead_refs: Histogram,
    worker_lag_cycles: Histogram,
    serve_queue_depth: Histogram,
    // Correlation.
    per_stream: BTreeMap<u32, StreamMetrics>,
    /// Frames and events drained per serving shard (utilization).
    per_shard: BTreeMap<u32, (u64, u64)>,
    /// Issue bookkeeping per block, for lead-distance in references.
    pending_issue_ref: HashMap<u64, u64>,
}

impl MetricsRecorder {
    /// An empty recorder.
    #[must_use]
    pub fn new() -> Self {
        MetricsRecorder::default()
    }

    /// Prefetches issued.
    #[must_use]
    pub fn prefetches_issued(&self) -> u64 {
        self.prefetches_issued
    }

    /// Resolved outcomes with the given fate.
    #[must_use]
    pub fn outcomes(&self, fate: PrefetchFate) -> u64 {
        self.outcomes[fate as usize]
    }

    /// Completed optimization cycles observed.
    #[must_use]
    pub fn cycles_completed(&self) -> u64 {
        self.cycles_completed
    }

    /// Cycles started (completed cycles plus any still profiling).
    #[must_use]
    pub fn cycles_started(&self) -> u64 {
        self.cycles_started
    }

    /// DFSMs built and injected.
    #[must_use]
    pub fn dfsms_built(&self) -> u64 {
        self.dfsms_built
    }

    /// Awake/hibernate boundaries crossed, both directions summed.
    #[must_use]
    pub fn phase_transitions_total(&self) -> u64 {
        self.phase_transitions_awake + self.phase_transitions_hibernate
    }

    /// Sum of traced references over all completed cycles.
    #[must_use]
    pub fn traced_refs_total(&self) -> u64 {
        self.traced_refs_total
    }

    /// Streams accepted for prefetching, summed over cycles.
    #[must_use]
    pub fn streams_detected(&self) -> u64 {
        self.streams_detected
    }

    /// De-optimizations observed (full and partial).
    #[must_use]
    pub fn deopts(&self) -> u64 {
        self.deopts
    }

    /// Partial (single-stream) de-optimizations observed.
    #[must_use]
    pub fn partial_deopts(&self) -> u64 {
        self.partial_deopts
    }

    /// Guard trips observed for one guard kind.
    #[must_use]
    pub fn guard_trips(&self, guard: GuardKind) -> u64 {
        self.guard_trips[guard as usize]
    }

    /// Guard trips observed, all kinds summed.
    #[must_use]
    pub fn guard_trips_total(&self) -> u64 {
        self.guard_trips.iter().sum()
    }

    /// Effective duty cycle reported by the most recent phase
    /// transition.
    #[must_use]
    pub fn last_duty_cycle(&self) -> f64 {
        self.last_duty_cycle
    }

    /// Per-stream quality, keyed by stream id.
    #[must_use]
    pub fn per_stream(&self) -> &BTreeMap<u32, StreamMetrics> {
        &self.per_stream
    }

    /// The stream-length histogram.
    #[must_use]
    pub fn stream_length(&self) -> &Histogram {
        &self.stream_length
    }

    /// The DFSM state-count histogram (one sample per build).
    #[must_use]
    pub fn dfsm_state_count(&self) -> &Histogram {
        &self.dfsm_state_count
    }

    /// The match-to-access latency histogram (cycles from prefetch
    /// issue to the demand access, over useful and late outcomes).
    #[must_use]
    pub fn match_to_access_cycles(&self) -> &Histogram {
        &self.match_to_access_cycles
    }

    /// The prefetch lead-distance histogram (demand references between
    /// issue and resolution).
    #[must_use]
    pub fn prefetch_lead_refs(&self) -> &Histogram {
        &self.prefetch_lead_refs
    }

    /// Traces handed to the background analysis worker.
    #[must_use]
    pub fn analysis_handoffs(&self) -> u64 {
        self.analysis_handoffs
    }

    /// Background analysis results installed in time.
    #[must_use]
    pub fn analyses_applied(&self) -> u64 {
        self.analysis_applied
    }

    /// Background analysis results discarded (worker starved).
    #[must_use]
    pub fn analyses_starved(&self) -> u64 {
        self.analysis_starved
    }

    /// The worker-lag histogram: simulated cycles each background
    /// analysis overlapped execution, one sample per handoff that
    /// resolved (applied or starved).
    #[must_use]
    pub fn worker_lag_cycles(&self) -> &Histogram {
        &self.worker_lag_cycles
    }

    /// Crash-consistent checkpoints captured. Reconciles with the final
    /// `RunReport`'s `snapshots` counter on a supervised run.
    #[must_use]
    pub fn recovery_snapshots(&self) -> u64 {
        self.recovery_snapshots
    }

    /// Edit-journal inspections during crash recovery.
    #[must_use]
    pub fn recovery_replays(&self) -> u64 {
        self.recovery_replays
    }

    /// Journal inspections that actually rolled a torn commit forward.
    #[must_use]
    pub fn recovery_rollforwards(&self) -> u64 {
        self.recovery_rollforwards
    }

    /// Supervised restarts from a snapshot. Reconciles with the final
    /// `RunReport`'s `restarts` counter.
    #[must_use]
    pub fn recovery_restarts(&self) -> u64 {
        self.recovery_restarts
    }

    /// Times the supervisor's restart circuit breaker opened (0 or 1
    /// per supervised run).
    #[must_use]
    pub fn recovery_gave_ups(&self) -> u64 {
        self.recovery_gave_up
    }

    /// Total modeled backoff charged before restarts, in simulated
    /// cycles.
    #[must_use]
    pub fn recovery_backoff_cycles(&self) -> u64 {
        self.recovery_backoff_cycles
    }

    /// Tenant sessions the serving layer admitted and opened.
    /// Reconciles with `ServeReport::opened`.
    #[must_use]
    pub fn serve_sessions_opened(&self) -> u64 {
        self.serve_opened
    }

    /// Tenant sessions opened per prefetch backend, indexed by backend
    /// wire code (0 = Dyn-pref, 1 = Pangloss, 2 = Triangel).
    /// Reconciles with `ServeReport::opened_by_backend`; the entries
    /// sum to [`MetricsRecorder::serve_sessions_opened`].
    #[must_use]
    pub fn serve_sessions_opened_by_backend(&self) -> [u64; 3] {
        self.serve_opened_by_backend
    }

    /// Cold tenant sessions evicted to a snapshot plus replay tail.
    /// Reconciles with `ServeReport::evicted`.
    #[must_use]
    pub fn serve_sessions_evicted(&self) -> u64 {
        self.serve_evicted
    }

    /// Evicted tenant sessions rehydrated on a later frame.
    /// Reconciles with `ServeReport::resumed`.
    #[must_use]
    pub fn serve_sessions_resumed(&self) -> u64 {
        self.serve_resumed
    }

    /// `OpenSession` requests refused with a typed `Busy` frame.
    /// Reconciles with `ServeReport::busy`.
    #[must_use]
    pub fn serve_busy_total(&self) -> u64 {
        self.serve_busy
    }

    /// Trace chunks shed for one serve budget kind.
    #[must_use]
    pub fn serve_shed_by(&self, kind: ServeBudgetKind) -> u64 {
        self.serve_shed[kind as usize]
    }

    /// Trace chunks shed, all budget kinds summed. Reconciles with
    /// `ServeReport::shed`.
    #[must_use]
    pub fn serve_shed_total(&self) -> u64 {
        self.serve_shed.iter().sum()
    }

    /// Tail events replayed while rehydrating evicted sessions.
    #[must_use]
    pub fn serve_replayed_events(&self) -> u64 {
        self.serve_replayed_events
    }

    /// The shard mailbox queue-depth histogram (one sample per shard
    /// per pump).
    #[must_use]
    pub fn serve_queue_depth(&self) -> &Histogram {
        &self.serve_queue_depth
    }

    /// `(frames, events)` drained per serving shard — the per-shard
    /// utilization table.
    #[must_use]
    pub fn serve_per_shard(&self) -> &BTreeMap<u32, (u64, u64)> {
        &self.per_shard
    }

    /// Tenants durably spilled to the store (and dropped from memory).
    #[must_use]
    pub fn store_spilled(&self) -> u64 {
        self.store_spilled
    }

    /// Bytes of record payload durably spilled.
    #[must_use]
    pub fn store_spilled_bytes(&self) -> u64 {
        self.store_spilled_bytes
    }

    /// Spilled tenants loaded back from the store for rehydration.
    #[must_use]
    pub fn store_loaded(&self) -> u64 {
        self.store_loaded
    }

    /// Bytes of verified record payload loaded back.
    #[must_use]
    pub fn store_loaded_bytes(&self) -> u64 {
        self.store_loaded_bytes
    }

    /// Store compaction passes completed.
    #[must_use]
    pub fn store_compactions(&self) -> u64 {
        self.store_compactions
    }

    /// Dead tenants expired past their TTL.
    #[must_use]
    pub fn store_expired(&self) -> u64 {
        self.store_expired
    }

    /// Storage faults observed (every one degraded gracefully).
    #[must_use]
    pub fn store_faults(&self) -> u64 {
        self.store_faults
    }

    /// Planned tenant migrations completed by the cluster router.
    #[must_use]
    pub fn cluster_migrations(&self) -> u64 {
        self.cluster_migrations
    }

    /// Crash-driven tenant re-homes completed by the cluster router.
    #[must_use]
    pub fn cluster_rehomes(&self) -> u64 {
        self.cluster_rehomes
    }

    /// Dead owner processes restarted by the cluster supervisor.
    #[must_use]
    pub fn cluster_owner_restarts(&self) -> u64 {
        self.cluster_owner_restarts
    }

    /// Journaled chunks replayed during migrations and re-homes.
    #[must_use]
    pub fn cluster_replayed_chunks(&self) -> u64 {
        self.cluster_replayed_chunks
    }

    /// Renders everything in Prometheus text exposition format.
    #[must_use]
    #[allow(clippy::too_many_lines)]
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let counter = |out: &mut String, name: &str, help: &str, value: u64| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} counter");
            let _ = writeln!(out, "{name} {value}");
        };
        counter(
            &mut out,
            "hds_phase_transitions_total",
            "Awake/hibernate boundaries crossed (both directions).",
            self.phase_transitions_awake + self.phase_transitions_hibernate,
        );
        counter(
            &mut out,
            "hds_cycles_started_total",
            "Profile->analyze->optimize cycles started.",
            self.cycles_started,
        );
        counter(
            &mut out,
            "hds_cycles_completed_total",
            "Cycles whose awake phase (and analysis) completed.",
            self.cycles_completed,
        );
        counter(
            &mut out,
            "hds_traced_refs_total",
            "References traced across all completed cycles.",
            self.traced_refs_total,
        );
        counter(
            &mut out,
            "hds_streams_detected_total",
            "Hot data streams accepted for prefetching.",
            self.streams_detected,
        );
        counter(
            &mut out,
            "hds_dfsms_built_total",
            "Prefix-matching DFSMs built and injected.",
            self.dfsms_built,
        );
        counter(
            &mut out,
            "hds_prefetches_issued_total",
            "Prefetch instructions issued.",
            self.prefetches_issued,
        );
        counter(
            &mut out,
            "hds_deoptimizations_total",
            "Times injected code was removed (full and partial).",
            self.deopts,
        );
        counter(
            &mut out,
            "hds_partial_deoptimizations_total",
            "Times a single low-accuracy stream's checks were removed.",
            self.partial_deopts,
        );
        counter(
            &mut out,
            "hds_analysis_handoffs_total",
            "Traces handed to the background analysis worker.",
            self.analysis_handoffs,
        );
        counter(
            &mut out,
            "hds_analysis_applied_total",
            "Background analysis results installed in time.",
            self.analysis_applied,
        );
        counter(
            &mut out,
            "hds_analysis_starved_total",
            "Background analysis results discarded (worker starved).",
            self.analysis_starved,
        );
        counter(
            &mut out,
            "hds_recovery_snapshots_total",
            "Crash-consistent checkpoints captured at phase boundaries.",
            self.recovery_snapshots,
        );
        counter(
            &mut out,
            "hds_recovery_replays_total",
            "Edit-journal inspections during crash recovery.",
            self.recovery_replays,
        );
        counter(
            &mut out,
            "hds_recovery_rollforwards_total",
            "Torn edits rolled forward from the write-ahead journal.",
            self.recovery_rollforwards,
        );
        counter(
            &mut out,
            "hds_recovery_restarts_total",
            "Supervised restarts from a snapshot.",
            self.recovery_restarts,
        );
        counter(
            &mut out,
            "hds_recovery_gave_up_total",
            "Times the restart circuit breaker opened.",
            self.recovery_gave_up,
        );
        counter(
            &mut out,
            "hds_recovery_backoff_cycles_total",
            "Modeled backoff charged before restarts (simulated cycles).",
            self.recovery_backoff_cycles,
        );
        counter(
            &mut out,
            "hds_serve_sessions_opened_total",
            "Tenant sessions admitted and opened by the serving layer.",
            self.serve_opened,
        );
        let _ = writeln!(
            out,
            "# HELP hds_serve_sessions_opened_by_backend_total Tenant sessions opened per prefetch backend."
        );
        let _ = writeln!(
            out,
            "# TYPE hds_serve_sessions_opened_by_backend_total counter"
        );
        for (code, label) in [(0, "dyn-pref"), (1, "pangloss"), (2, "triangel")] {
            let _ = writeln!(
                out,
                "hds_serve_sessions_opened_by_backend_total{{backend=\"{}\"}} {}",
                label, self.serve_opened_by_backend[code]
            );
        }
        counter(
            &mut out,
            "hds_serve_sessions_evicted_total",
            "Cold tenant sessions evicted to snapshot plus replay tail.",
            self.serve_evicted,
        );
        counter(
            &mut out,
            "hds_serve_sessions_resumed_total",
            "Evicted tenant sessions rehydrated on a later frame.",
            self.serve_resumed,
        );
        counter(
            &mut out,
            "hds_serve_busy_total",
            "OpenSession requests refused with a typed Busy frame.",
            self.serve_busy,
        );
        counter(
            &mut out,
            "hds_serve_replayed_events_total",
            "Tail events replayed while rehydrating evicted sessions.",
            self.serve_replayed_events,
        );
        let _ = writeln!(
            out,
            "# HELP hds_serve_shed_total Trace chunks shed by serve budget kind."
        );
        let _ = writeln!(out, "# TYPE hds_serve_shed_total counter");
        for kind in ServeBudgetKind::ALL {
            let _ = writeln!(
                out,
                "hds_serve_shed_total{{budget=\"{}\"}} {}",
                kind.label(),
                self.serve_shed[kind as usize]
            );
        }
        counter(
            &mut out,
            "hds_store_spilled_total",
            "Tenants durably spilled to the cold-tenant store.",
            self.store_spilled,
        );
        counter(
            &mut out,
            "hds_store_spilled_bytes_total",
            "Bytes of record payload durably spilled.",
            self.store_spilled_bytes,
        );
        counter(
            &mut out,
            "hds_store_loaded_total",
            "Spilled tenants loaded back for rehydration.",
            self.store_loaded,
        );
        counter(
            &mut out,
            "hds_store_loaded_bytes_total",
            "Bytes of verified record payload loaded back.",
            self.store_loaded_bytes,
        );
        counter(
            &mut out,
            "hds_store_compactions_total",
            "Store compaction passes completed.",
            self.store_compactions,
        );
        counter(
            &mut out,
            "hds_store_expired_total",
            "Dead tenants expired past their TTL.",
            self.store_expired,
        );
        counter(
            &mut out,
            "hds_store_faults_total",
            "Storage faults observed (all degraded gracefully).",
            self.store_faults,
        );
        counter(
            &mut out,
            "hds_cluster_migrations_total",
            "Planned tenant migrations between owner processes.",
            self.cluster_migrations,
        );
        counter(
            &mut out,
            "hds_cluster_rehomes_total",
            "Crash-driven tenant re-homes onto surviving owners.",
            self.cluster_rehomes,
        );
        counter(
            &mut out,
            "hds_cluster_owner_restarts_total",
            "Dead owner processes restarted by the cluster supervisor.",
            self.cluster_owner_restarts,
        );
        counter(
            &mut out,
            "hds_cluster_replayed_chunks_total",
            "Journaled chunks replayed during migrations and re-homes.",
            self.cluster_replayed_chunks,
        );
        let _ = writeln!(
            out,
            "# HELP hds_guard_trips_total Budget-guard trips by guard kind."
        );
        let _ = writeln!(out, "# TYPE hds_guard_trips_total counter");
        for guard in GuardKind::ALL {
            let _ = writeln!(
                out,
                "hds_guard_trips_total{{guard=\"{}\"}} {}",
                guard.label(),
                self.guard_trips[guard as usize]
            );
        }
        let _ = writeln!(
            out,
            "# HELP hds_prefetch_outcomes_total Resolved prefetches by fate."
        );
        let _ = writeln!(out, "# TYPE hds_prefetch_outcomes_total counter");
        for fate in [
            PrefetchFate::Useful,
            PrefetchFate::Late,
            PrefetchFate::Polluted,
        ] {
            let _ = writeln!(
                out,
                "hds_prefetch_outcomes_total{{fate=\"{}\"}} {}",
                fate.label(),
                self.outcomes[fate as usize]
            );
        }
        let _ = writeln!(
            out,
            "# HELP hds_duty_cycle Effective awake fraction of dynamic checks."
        );
        let _ = writeln!(out, "# TYPE hds_duty_cycle gauge");
        let _ = writeln!(out, "hds_duty_cycle {}", self.last_duty_cycle);

        let histogram = |out: &mut String, name: &str, help: &str, h: &Histogram| {
            let _ = writeln!(out, "# HELP {name} {help}");
            let _ = writeln!(out, "# TYPE {name} histogram");
            for (bound, cumulative) in h.cumulative_buckets() {
                let _ = writeln!(out, "{name}_bucket{{le=\"{bound}\"}} {cumulative}");
            }
            let _ = writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", h.count());
            let _ = writeln!(out, "{name}_sum {}", h.sum());
            let _ = writeln!(out, "{name}_count {}", h.count());
        };
        histogram(
            &mut out,
            "hds_stream_length_refs",
            "Accepted hot-stream lengths in references.",
            &self.stream_length,
        );
        histogram(
            &mut out,
            "hds_dfsm_states",
            "DFSM state counts per built machine.",
            &self.dfsm_state_count,
        );
        histogram(
            &mut out,
            "hds_match_to_access_cycles",
            "Cycles from prefetch issue to the demand access.",
            &self.match_to_access_cycles,
        );
        histogram(
            &mut out,
            "hds_prefetch_lead_refs",
            "Demand references between prefetch issue and resolution.",
            &self.prefetch_lead_refs,
        );
        histogram(
            &mut out,
            "hds_worker_lag_cycles",
            "Simulated cycles background analyses overlapped execution.",
            &self.worker_lag_cycles,
        );
        histogram(
            &mut out,
            "hds_serve_queue_depth",
            "Shard mailbox depth at each pump.",
            &self.serve_queue_depth,
        );
        for (metric, help, pick) in [
            (
                "hds_serve_shard_frames_total",
                "Frames drained per serving shard.",
                0usize,
            ),
            (
                "hds_serve_shard_events_total",
                "Workload events fed per serving shard.",
                1usize,
            ),
        ] {
            let _ = writeln!(out, "# HELP {metric} {help}");
            let _ = writeln!(out, "# TYPE {metric} counter");
            for (shard, drained) in &self.per_shard {
                let value = if pick == 0 { drained.0 } else { drained.1 };
                let _ = writeln!(out, "{metric}{{shard=\"{shard}\"}} {value}");
            }
        }

        for (metric, help, f) in [
            (
                "hds_stream_prefetch_accuracy",
                "Per-stream fraction of issued prefetches that fully hit.",
                StreamMetrics::accuracy as fn(&StreamMetrics) -> f64,
            ),
            (
                "hds_stream_prefetch_coverage",
                "Per-stream fraction of issued prefetches whose access arrived.",
                StreamMetrics::coverage,
            ),
            (
                "hds_stream_prefetch_timeliness",
                "Per-stream fraction of arrived prefetches that were in time.",
                StreamMetrics::timeliness,
            ),
        ] {
            let _ = writeln!(out, "# HELP {metric} {help}");
            let _ = writeln!(out, "# TYPE {metric} gauge");
            for (id, s) in &self.per_stream {
                let _ = writeln!(out, "{metric}{{stream=\"{id}\"}} {}", f(s));
            }
        }
        let _ = writeln!(
            out,
            "# HELP hds_stream_prefetches_issued Per-stream prefetches issued."
        );
        let _ = writeln!(out, "# TYPE hds_stream_prefetches_issued gauge");
        for (id, s) in &self.per_stream {
            let _ = writeln!(
                out,
                "hds_stream_prefetches_issued{{stream=\"{id}\"}} {}",
                s.issued
            );
        }
        out
    }
}

impl Observer for MetricsRecorder {
    fn phase_transition(&mut self, event: &PhaseTransition) {
        match event.to {
            PhaseKind::Awake => self.phase_transitions_awake += 1,
            PhaseKind::Hibernating => self.phase_transitions_hibernate += 1,
        }
        self.last_duty_cycle = event.duty_cycle;
    }

    fn cycle_start(&mut self, _event: &CycleStart) {
        self.cycles_started += 1;
        // Stale correlation entries from a de-optimized cycle would
        // mis-attribute lead distances across cycles; drop them.
        self.pending_issue_ref.clear();
    }

    fn cycle_end(&mut self, event: &CycleEnd) {
        self.cycles_completed += 1;
        self.traced_refs_total += event.traced_refs;
    }

    fn stream_detected(&mut self, event: &StreamDetected) {
        self.streams_detected += 1;
        self.stream_length.record(event.len as u64);
    }

    fn dfsm_built(&mut self, event: &DfsmBuilt) {
        self.dfsms_built += 1;
        self.dfsm_state_count.record(event.states as u64);
    }

    fn prefetch_issued(&mut self, event: &PrefetchIssued) {
        self.prefetches_issued += 1;
        self.per_stream.entry(event.stream_id).or_default().issued += 1;
        self.pending_issue_ref
            .entry(event.block)
            .or_insert(event.at_ref);
    }

    fn prefetch_outcome(&mut self, event: &PrefetchOutcome) {
        self.outcomes[event.fate as usize] += 1;
        let s = self.per_stream.entry(event.stream_id).or_default();
        match event.fate {
            PrefetchFate::Useful => s.useful += 1,
            PrefetchFate::Late => s.late += 1,
            PrefetchFate::Polluted => s.polluted += 1,
        }
        if matches!(event.fate, PrefetchFate::Useful | PrefetchFate::Late) {
            self.match_to_access_cycles.record(event.latency_cycles());
        }
        if let Some(issue_ref) = self.pending_issue_ref.remove(&event.block) {
            if event.fate != PrefetchFate::Polluted {
                self.prefetch_lead_refs
                    .record(event.resolved_at_ref.saturating_sub(issue_ref));
            }
        }
    }

    fn deoptimize(&mut self, event: &Deoptimize) {
        self.deopts += 1;
        if event.partial {
            self.partial_deopts += 1;
        }
    }

    fn guard_tripped(&mut self, event: &GuardTripped) {
        self.guard_trips[event.guard as usize] += 1;
    }

    fn analysis_handoff(&mut self, _event: &AnalysisHandoff) {
        self.analysis_handoffs += 1;
    }

    fn analysis_applied(&mut self, event: &AnalysisApplied) {
        self.analysis_applied += 1;
        self.worker_lag_cycles.record(event.lag_cycles);
    }

    fn analysis_starved(&mut self, event: &AnalysisStarved) {
        self.analysis_starved += 1;
        self.worker_lag_cycles.record(event.lag_cycles);
    }

    fn recovery_snapshot(&mut self, _event: &RecoverySnapshot) {
        self.recovery_snapshots += 1;
    }

    fn recovery_replay(&mut self, event: &RecoveryReplay) {
        self.recovery_replays += 1;
        if event.rolled_forward {
            self.recovery_rollforwards += 1;
        }
    }

    fn recovery_restart(&mut self, event: &RecoveryRestart) {
        self.recovery_restarts += 1;
        self.recovery_backoff_cycles += event.backoff_cycles;
    }

    fn recovery_gave_up(&mut self, _event: &RecoveryGaveUp) {
        self.recovery_gave_up += 1;
    }

    fn serve_session_opened(&mut self, event: &ServeSessionOpened) {
        self.serve_opened += 1;
        if let Some(slot) = self.serve_opened_by_backend.get_mut(event.backend as usize) {
            *slot += 1;
        }
    }

    fn serve_session_evicted(&mut self, _event: &ServeSessionEvicted) {
        self.serve_evicted += 1;
    }

    fn serve_session_resumed(&mut self, event: &ServeSessionResumed) {
        self.serve_resumed += 1;
        self.serve_replayed_events += event.replayed_events;
    }

    fn serve_shed(&mut self, event: &ServeShed) {
        self.serve_shed[event.kind as usize] += 1;
    }

    fn serve_busy(&mut self, _event: &ServeBusy) {
        self.serve_busy += 1;
    }

    fn serve_shard_pump(&mut self, event: &ServeShardPump) {
        self.serve_queue_depth.record(event.queued);
        let shard = self.per_shard.entry(event.shard).or_default();
        shard.0 += event.frames;
        shard.1 += event.events;
    }

    fn store_spilled(&mut self, event: &StoreSpilled) {
        self.store_spilled += 1;
        self.store_spilled_bytes += event.bytes;
    }

    fn store_loaded(&mut self, event: &StoreLoaded) {
        self.store_loaded += 1;
        self.store_loaded_bytes += event.bytes;
    }

    fn store_compacted(&mut self, _event: &StoreCompacted) {
        self.store_compactions += 1;
    }

    fn store_expired(&mut self, _event: &StoreExpired) {
        self.store_expired += 1;
    }

    fn store_fault(&mut self, _event: &StoreFaultObserved) {
        self.store_faults += 1;
    }

    fn cluster_migrated(&mut self, event: &ClusterMigrated) {
        self.cluster_migrations += 1;
        self.cluster_replayed_chunks += event.replayed_chunks;
    }

    fn cluster_rehomed(&mut self, event: &ClusterRehomed) {
        self.cluster_rehomes += 1;
        self.cluster_replayed_chunks += event.replayed_chunks;
    }

    fn cluster_owner_restarted(&mut self, _event: &ClusterOwnerRestarted) {
        self.cluster_owner_restarts += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_are_log2() {
        let mut h = Histogram::new();
        for v in [0, 1, 2, 3, 4, 7, 8, 1000] {
            h.record(v);
        }
        assert_eq!(h.count(), 8);
        assert_eq!(h.sum(), 1025);
        let buckets = h.cumulative_buckets();
        // Value 0 -> bucket with bound 0 (1 sample); 1 -> bound 1;
        // 2,3 -> bound 3; 4,7 -> bound 7; 8 -> bound 15; 1000 -> bound 1023.
        assert_eq!(buckets[0], (0, 1));
        assert_eq!(buckets[1], (1, 2));
        assert_eq!(buckets[2], (3, 4));
        assert_eq!(buckets[3], (7, 6));
        assert_eq!(buckets[4], (15, 7));
        assert_eq!(*buckets.last().unwrap(), (1023, 8));
        assert!((h.mean() - 1025.0 / 8.0).abs() < 1e-9);
    }

    fn outcome(stream: u32, block: u64, fate: PrefetchFate) -> PrefetchOutcome {
        PrefetchOutcome {
            stream_id: stream,
            block,
            fate,
            issued_at_cycle: 100,
            resolved_at_cycle: 350,
            resolved_at_ref: 20,
        }
    }

    #[test]
    fn per_stream_quality_ratios() {
        let mut m = MetricsRecorder::new();
        for block in 0..4 {
            m.prefetch_issued(&PrefetchIssued {
                stream_id: 7,
                addr: block * 32,
                block,
                at_cycle: 100,
                at_ref: 10,
            });
        }
        m.prefetch_outcome(&outcome(7, 0, PrefetchFate::Useful));
        m.prefetch_outcome(&outcome(7, 1, PrefetchFate::Useful));
        m.prefetch_outcome(&outcome(7, 2, PrefetchFate::Late));
        m.prefetch_outcome(&outcome(7, 3, PrefetchFate::Polluted));
        let s = m.per_stream()[&7];
        assert_eq!(s.issued, 4);
        assert!((s.accuracy() - 0.5).abs() < 1e-9);
        assert!((s.coverage() - 0.75).abs() < 1e-9);
        assert!((s.timeliness() - 2.0 / 3.0).abs() < 1e-9);
        // Lead distance recorded for the three non-polluted outcomes.
        assert_eq!(m.prefetch_lead_refs().count(), 3);
        assert_eq!(m.match_to_access_cycles().count(), 3);
    }

    #[test]
    fn guard_trips_and_partial_deopts_are_counted() {
        let mut m = MetricsRecorder::new();
        m.guard_tripped(&GuardTripped {
            guard: GuardKind::GrammarRules,
            budget: 100,
            observed: 101,
            opt_cycle: 0,
            at_cycle: 50,
        });
        m.guard_tripped(&GuardTripped {
            guard: GuardKind::PrefetchQueue,
            budget: 8,
            observed: 12,
            opt_cycle: 1,
            at_cycle: 90,
        });
        m.deoptimize(&Deoptimize {
            at_cycle: 100,
            opt_cycle: 1,
            partial: true,
            stream_id: Some(3),
        });
        m.deoptimize(&Deoptimize::default());
        assert_eq!(m.guard_trips(GuardKind::GrammarRules), 1);
        assert_eq!(m.guard_trips(GuardKind::AnalysisCycles), 0);
        assert_eq!(m.guard_trips_total(), 2);
        assert_eq!(m.deopts(), 2);
        assert_eq!(m.partial_deopts(), 1);
        let text = m.render_prometheus();
        assert!(text.contains("hds_guard_trips_total{guard=\"grammar_rules\"} 1"));
        assert!(text.contains("hds_guard_trips_total{guard=\"dfsm_states\"} 0"));
        assert!(text.contains("hds_partial_deoptimizations_total 1"));
    }

    #[test]
    fn analysis_counters_and_worker_lag_histogram() {
        let mut m = MetricsRecorder::new();
        m.analysis_handoff(&AnalysisHandoff {
            opt_cycle: 0,
            at_cycle: 10,
            trace_len: 100,
        });
        m.analysis_applied(&AnalysisApplied {
            opt_cycle: 0,
            handoff_at_cycle: 10,
            at_cycle: 74,
            lag_cycles: 64,
        });
        m.analysis_handoff(&AnalysisHandoff {
            opt_cycle: 1,
            at_cycle: 200,
            trace_len: 100,
        });
        m.analysis_starved(&AnalysisStarved {
            opt_cycle: 1,
            handoff_at_cycle: 200,
            at_cycle: 1000,
            lag_cycles: 800,
        });
        assert_eq!(m.analysis_handoffs(), 2);
        assert_eq!(m.analyses_applied(), 1);
        assert_eq!(m.analyses_starved(), 1);
        assert_eq!(m.worker_lag_cycles().count(), 2);
        assert_eq!(m.worker_lag_cycles().sum(), 864);
        m.guard_tripped(&GuardTripped {
            guard: GuardKind::WorkerLag,
            budget: 500,
            observed: 800,
            opt_cycle: 1,
            at_cycle: 1000,
        });
        assert_eq!(m.guard_trips(GuardKind::WorkerLag), 1);
        let text = m.render_prometheus();
        assert!(text.contains("hds_analysis_handoffs_total 2"));
        assert!(text.contains("hds_analysis_starved_total 1"));
        assert!(text.contains("hds_guard_trips_total{guard=\"worker_lag\"} 1"));
        assert!(text.contains("hds_worker_lag_cycles_count 2"));
    }

    #[test]
    fn recovery_counters_accumulate() {
        let mut m = MetricsRecorder::new();
        m.recovery_snapshot(&RecoverySnapshot {
            opt_cycle: 0,
            at_cycle: 100,
            events_consumed: 10,
            bytes: 512,
        });
        m.recovery_snapshot(&RecoverySnapshot {
            opt_cycle: 1,
            at_cycle: 300,
            events_consumed: 30,
            bytes: 768,
        });
        m.recovery_replay(&RecoveryReplay {
            events_consumed: 35,
            rolled_forward: true,
        });
        m.recovery_replay(&RecoveryReplay {
            events_consumed: 40,
            rolled_forward: false,
        });
        m.recovery_restart(&RecoveryRestart {
            attempt: 1,
            resumed_at_event: 30,
            backoff_cycles: 1000,
        });
        m.recovery_restart(&RecoveryRestart {
            attempt: 2,
            resumed_at_event: 30,
            backoff_cycles: 2000,
        });
        m.recovery_gave_up(&RecoveryGaveUp {
            restarts: 2,
            crashes: 3,
        });
        assert_eq!(m.recovery_snapshots(), 2);
        assert_eq!(m.recovery_replays(), 2);
        assert_eq!(m.recovery_rollforwards(), 1);
        assert_eq!(m.recovery_restarts(), 2);
        assert_eq!(m.recovery_gave_ups(), 1);
        assert_eq!(m.recovery_backoff_cycles(), 3000);
        let text = m.render_prometheus();
        assert!(text.contains("hds_recovery_snapshots_total 2"));
        assert!(text.contains("hds_recovery_rollforwards_total 1"));
        assert!(text.contains("hds_recovery_restarts_total 2"));
        assert!(text.contains("hds_recovery_backoff_cycles_total 3000"));
    }

    #[test]
    fn serve_counters_histograms_and_labels() {
        let mut m = MetricsRecorder::new();
        m.serve_session_opened(&ServeSessionOpened {
            tenant: 1,
            shard: 0,
            backend: 0,
        });
        m.serve_session_opened(&ServeSessionOpened {
            tenant: 2,
            shard: 1,
            backend: 1,
        });
        m.serve_session_evicted(&ServeSessionEvicted {
            tenant: 1,
            shard: 0,
            snapshot_bytes: 512,
            tail_events: 3,
        });
        m.serve_session_resumed(&ServeSessionResumed {
            tenant: 1,
            shard: 0,
            replayed_events: 3,
        });
        m.serve_shed(&ServeShed {
            tenant: 2,
            shard: 1,
            kind: ServeBudgetKind::TenantQueue,
            budget: 4,
            observed: 5,
        });
        m.serve_shed(&ServeShed {
            tenant: 2,
            shard: 1,
            kind: ServeBudgetKind::GlobalBytes,
            budget: 1024,
            observed: 2048,
        });
        m.serve_busy(&ServeBusy {
            tenant: 3,
            shard: 1,
            budget: 2,
            observed: 2,
        });
        m.serve_shard_pump(&ServeShardPump {
            shard: 0,
            queued: 4,
            frames: 4,
            events: 37,
        });
        m.serve_shard_pump(&ServeShardPump {
            shard: 1,
            queued: 0,
            frames: 0,
            events: 0,
        });
        assert_eq!(m.serve_sessions_opened(), 2);
        assert_eq!(m.serve_sessions_opened_by_backend(), [1, 1, 0]);
        assert_eq!(m.serve_sessions_evicted(), 1);
        assert_eq!(m.serve_sessions_resumed(), 1);
        assert_eq!(m.serve_replayed_events(), 3);
        assert_eq!(m.serve_busy_total(), 1);
        assert_eq!(m.serve_shed_by(ServeBudgetKind::TenantQueue), 1);
        assert_eq!(m.serve_shed_by(ServeBudgetKind::LiveSessions), 0);
        assert_eq!(m.serve_shed_total(), 2);
        assert_eq!(m.serve_queue_depth().count(), 2);
        assert_eq!(m.serve_queue_depth().sum(), 4);
        assert_eq!(m.serve_per_shard()[&0], (4, 37));
        let text = m.render_prometheus();
        assert!(text.contains("hds_serve_sessions_opened_total 2"));
        assert!(text.contains("hds_serve_sessions_opened_by_backend_total{backend=\"pangloss\"} 1"));
        assert!(text.contains("hds_serve_shed_total{budget=\"tenant_queue\"} 1"));
        assert!(text.contains("hds_serve_shed_total{budget=\"live_sessions\"} 0"));
        assert!(text.contains("hds_serve_busy_total 1"));
        assert!(text.contains("hds_serve_queue_depth_count 2"));
        assert!(text.contains("hds_serve_shard_frames_total{shard=\"0\"} 4"));
        assert!(text.contains("hds_serve_shard_events_total{shard=\"1\"} 0"));
    }

    #[test]
    fn empty_ratios_are_zero() {
        let s = StreamMetrics::default();
        assert_eq!(s.accuracy(), 0.0);
        assert_eq!(s.coverage(), 0.0);
        assert_eq!(s.timeliness(), 0.0);
    }

    #[test]
    fn prometheus_render_is_well_formed() {
        let mut m = MetricsRecorder::new();
        m.prefetch_issued(&PrefetchIssued {
            stream_id: 1,
            addr: 64,
            block: 2,
            at_cycle: 5,
            at_ref: 1,
        });
        m.prefetch_outcome(&outcome(1, 2, PrefetchFate::Useful));
        m.stream_detected(&StreamDetected {
            opt_cycle: 0,
            stream_id: 1,
            len: 12,
            head_len: 2,
        });
        let text = m.render_prometheus();
        for line in text.lines() {
            if line.starts_with('#') {
                assert!(
                    line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                    "bad comment line: {line}"
                );
                continue;
            }
            // metric[{labels}] value
            let (name_part, value) = line.rsplit_once(' ').expect("name and value");
            assert!(value.parse::<f64>().is_ok(), "bad value in: {line}");
            let name = name_part.split('{').next().unwrap();
            assert!(
                name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
                "bad metric name in: {line}"
            );
        }
        assert!(text.contains("hds_prefetches_issued_total 1"));
        assert!(text.contains("hds_stream_prefetch_accuracy{stream=\"1\"} 1"));
        assert!(text.contains("hds_stream_length_refs_bucket{le=\"+Inf\"} 1"));
    }
}
