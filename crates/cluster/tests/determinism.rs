//! The cluster's contract: a tenant served through the router and a
//! fleet of owner processes produces the *byte-identical* report and
//! image digest of an uninterrupted standalone session — at 2, 4, and
//! 8 owners; with owners killed mid-chunk and restarted; with owners
//! killed and their tenants re-homed; across planned join/leave
//! migrations; and with the kill landing mid-handoff.

use hds_cluster::{run_cluster_session, Cluster, KillPolicy, RouterConfig};
use hds_core::{OptimizerConfig, PrefetchPolicy, RunMode};
use hds_serve::client::ClientConfig;
use hds_serve::load::{generate, standalone_reference, LoadConfig, TenantLoad};
use hds_serve::ServeConfig;

fn tiny_config() -> OptimizerConfig {
    let mut c = OptimizerConfig::test_scale();
    c.bursty = hds_bursty::BurstyConfig::new(8, 8, 2, 3);
    c.analysis.min_length = 4;
    c.analysis.min_unique_refs = 2;
    c
}

fn mode() -> RunMode {
    RunMode::Optimize(PrefetchPolicy::StreamTail)
}

fn serve_config() -> ServeConfig {
    ServeConfig::new(tiny_config(), mode())
        .with_shards(2)
        .with_auth_token("hunter2")
}

fn router_config(refresh_every: u64) -> RouterConfig {
    let mut cfg = RouterConfig::default();
    cfg.link.token = "hunter2".into();
    cfg.link.window = 4;
    cfg.auth_token = Some("hunter2".into());
    cfg.refresh_every = refresh_every;
    cfg
}

fn client_config() -> ClientConfig {
    ClientConfig {
        token: "hunter2".into(),
        window: 4,
        ..ClientConfig::default()
    }
}

fn load(seed: u64) -> Vec<TenantLoad> {
    generate(&LoadConfig {
        tenants: 5,
        chunks_per_tenant: 6,
        events_per_chunk: 60,
        seed,
    })
    .expect("valid load config")
}

fn owner_ids(n: u32) -> Vec<u32> {
    (0..n).collect()
}

/// Runs the cluster session under `script` and asserts every report
/// and digest is byte-identical to the crash-free standalone twin.
fn assert_cluster_matches_standalone(
    owners: u32,
    refresh_every: u64,
    seed: u64,
    script: impl FnMut(u64, &mut Cluster),
) -> Cluster {
    let loads = load(seed);
    let mut cluster = Cluster::new(
        serve_config(),
        router_config(refresh_every),
        &owner_ids(owners),
    )
    .expect("valid serve config");
    let outcome = run_cluster_session(&mut cluster, client_config(), &loads, 50_000, script)
        .expect("cluster session must converge");
    assert_eq!(outcome.reports.len(), loads.len(), "missing reports");
    for (l, got) in loads.iter().zip(&outcome.reports) {
        let (expected, digest) = standalone_reference(&tiny_config(), mode(), l);
        assert_eq!(got.tenant, l.name);
        assert_eq!(
            got.report_json,
            serde_json::to_string(&expected).expect("report serializes"),
            "report diverged for {} ({owners} owners, seed {seed})",
            l.name
        );
        assert_eq!(
            got.image_digest, digest,
            "digest diverged for {} ({owners} owners, seed {seed})",
            l.name
        );
    }
    assert!(cluster.router().all_flushed());
    cluster
}

#[test]
fn crash_free_cluster_matches_standalone_at_2_4_8_owners() {
    for owners in [2, 4, 8] {
        assert_cluster_matches_standalone(owners, 0, 42, |_, _| {});
    }
}

#[test]
fn record_refreshes_do_not_perturb_reports() {
    for owners in [2, 4] {
        let cluster = assert_cluster_matches_standalone(owners, 2, 43, |_, _| {});
        assert!(
            cluster.router().tally().refreshes > 0,
            "refresh_every=2 must actually refresh"
        );
    }
}

/// The owner currently serving a mid-stream tenant, if any — killing
/// it guarantees the rebuild path actually runs.
fn live_owner(cluster: &Cluster) -> Option<u32> {
    let tenant = cluster.router().unfinished_tenants().into_iter().next()?;
    cluster.router().owner_of(&tenant)
}

#[test]
fn owner_killed_mid_chunk_and_restarted_matches_crash_free_twin() {
    for owners in [2, 4, 8] {
        for kill_at in [5u64, 11, 19] {
            let mut killed = false;
            let cluster = assert_cluster_matches_standalone(owners, 0, 44, |poll, cluster| {
                if poll >= kill_at && !killed {
                    if let Some(victim) = live_owner(cluster) {
                        cluster
                            .kill_owner(victim, KillPolicy::Restart)
                            .expect("restart boots");
                        killed = true;
                    }
                }
            });
            assert_eq!(cluster.router().tally().owner_restarts, 1);
        }
    }
}

#[test]
fn owner_killed_mid_chunk_and_rehomed_matches_crash_free_twin() {
    for kill_at in [5u64, 11, 19] {
        let mut killed = None;
        let cluster = assert_cluster_matches_standalone(4, 0, 45, |poll, cluster| {
            if poll >= kill_at && killed.is_none() {
                if let Some(victim) = live_owner(cluster) {
                    cluster
                        .kill_owner(victim, KillPolicy::Rehome)
                        .expect("rehome never restarts");
                    killed = Some(victim);
                }
            }
        });
        let victim = killed.expect("a live owner was killed");
        assert!(!cluster.owner_ids().contains(&victim));
        assert!(!cluster.router().ring().contains(victim));
        assert!(
            cluster.router().tally().rehomes >= 1,
            "the kill must have re-homed a live tenant (kill_at {kill_at})"
        );
    }
}

#[test]
fn kills_under_active_refreshes_stay_identical() {
    // Refreshing journals truncate at export marks; a kill must still
    // rebuild losslessly from record + remaining journal.
    for (owners, kill_at) in [(2u32, 6u64), (4, 12), (4, 20)] {
        let victim = kill_at as u32 % owners;
        assert_cluster_matches_standalone(owners, 2, 46, move |poll, cluster| {
            if poll == kill_at {
                cluster
                    .kill_owner(victim, KillPolicy::Restart)
                    .expect("restart boots");
            }
        });
    }
}

#[test]
fn join_and_leave_migrate_live_tenants_identically() {
    let mut left = None;
    let cluster = assert_cluster_matches_standalone(2, 0, 47, |poll, cluster| {
        if poll == 6 {
            cluster.join_owner(7).expect("join boots");
        }
        if poll >= 12 && left.is_none() {
            // Drain whichever owner is serving a live tenant, so the
            // departure forces an actual mid-stream handoff.
            if let Some(owner) = live_owner(cluster) {
                cluster.leave_owner(owner);
                left = Some(owner);
            }
        }
        if let Some(owner) = left {
            cluster.finish_leave(owner);
        }
    });
    // The departed owner may even be the newly joined one — the live
    // tenant can land on owner 7 and then be drained right back off.
    let owner = left.expect("an owner departed");
    assert!(
        !cluster.router().ring().contains(owner),
        "departed the ring"
    );
    assert!(
        !cluster.owner_ids().contains(&owner),
        "the departed owner's process was dropped after draining"
    );
    assert!(
        cluster.router().tally().migrations >= 1,
        "the departure must have migrated a live tenant"
    );
}

#[test]
fn a_kill_landing_mid_handoff_still_matches() {
    // Join triggers planned migrations; killing the *destination* two
    // polls later lands inside the export/replay window for whatever
    // tenant was moving.
    let cluster = assert_cluster_matches_standalone(2, 0, 48, |poll, cluster| {
        if poll == 6 {
            cluster.join_owner(7).expect("join boots");
        }
        if poll == 8 {
            cluster
                .kill_owner(7, KillPolicy::Restart)
                .expect("restart boots");
        }
    });
    assert!(cluster.router().ring().contains(7));
}

#[test]
fn killing_the_export_source_mid_handoff_still_matches() {
    assert_cluster_matches_standalone(2, 0, 49, |poll, cluster| {
        if poll == 6 {
            cluster.join_owner(7).expect("join boots");
        }
        if poll == 7 {
            // Whichever of 0/1 currently owns a migrating tenant, the
            // source side of some handoff dies here.
            cluster
                .kill_owner(0, KillPolicy::Restart)
                .expect("restart boots");
        }
    });
}
