//! Review repro: kill every owner (rehome), then join a fresh owner.
//! The router's comment says the routes "wait for a join", so this
//! should converge.

use hds_cluster::{run_cluster_session, Cluster, KillPolicy, RouterConfig};
use hds_core::{OptimizerConfig, PrefetchPolicy, RunMode};
use hds_serve::client::ClientConfig;
use hds_serve::load::{generate, LoadConfig};
use hds_serve::ServeConfig;

#[test]
fn losing_every_owner_then_joining_recovers() {
    let serve_cfg = ServeConfig::new(
        OptimizerConfig::test_scale(),
        RunMode::Optimize(PrefetchPolicy::StreamTail),
    );
    let mut cluster = Cluster::new(serve_cfg, RouterConfig::default(), &[0, 1]).unwrap();
    let loads = generate(&LoadConfig {
        tenants: 2,
        chunks_per_tenant: 4,
        events_per_chunk: 40,
        seed: 5,
    })
    .unwrap();
    let outcome = run_cluster_session(
        &mut cluster,
        ClientConfig::default(),
        &loads,
        50_000,
        |poll, cluster| {
            if poll == 30 {
                cluster.kill_owner(0, KillPolicy::Rehome).unwrap();
                cluster.kill_owner(1, KillPolicy::Rehome).unwrap();
            }
            if poll == 60 {
                cluster.join_owner(5).unwrap();
            }
        },
    )
    .expect("session must converge after the fleet is rebuilt");
    assert_eq!(outcome.reports.len(), 2);
}
