//! Cross-process shard distribution for the hot-data-stream serving
//! tier: a router process in front, shard-owner processes behind, one
//! `HDSW` wire protocol everywhere.
//!
//! The single-process front-end (`hds-serve`) already splits tenants
//! across in-memory shards with a consistent-hash ring. This crate
//! lifts that ring across *process boundaries*:
//!
//! * [`OwnerRing`] — the owner-level consistent-hash ring. Membership
//!   changes move only the tenants whose arc changed hands.
//! * [`OwnerProcess`] — one shard-owner: a whole `hds-serve`
//!   [`SessionManager`](hds_serve::SessionManager) reachable only
//!   through wire frames, with `SIGKILL`-faithful crash semantics.
//! * [`Router`] — the tier in the middle. Clients speak `HDSW` to it
//!   exactly as they would to a single server; it journals every
//!   admitted chunk and forwards it to the tenant's owner over a
//!   reliable [`ClientSession`](hds_serve::ClientSession) link.
//!   Tenant handoff (owner join, leave, crash-restart, crash-rehome)
//!   rides the durable [`TenantRecord`](hds_store::TenantRecord)
//!   snapshot format, so a moved tenant is bit-identical to one that
//!   never moved — the property the determinism suite proves at 2, 4,
//!   and 8 owners, with and without mid-chunk kills.
//! * [`Cluster`] / [`run_cluster_session`] — an in-process harness
//!   wiring a client, the router, and a fleet of owners together with
//!   scripted membership changes and kills.
//!
//! The cluster's admission tier reuses `hds-guard`'s
//! [`RouterBudgets`](hds_guard::RouterBudgets), and every migration,
//! re-home, and owner restart is observable through `hds-telemetry`'s
//! cluster events and `Cluster`-kind span instants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod harness;
mod owner;
mod ring;
mod router;

pub use harness::{run_cluster_session, Cluster, ClusterError, ClusterOutcome, KillPolicy};
pub use owner::OwnerProcess;
pub use ring::{OwnerRing, VNODES_PER_OWNER};
pub use router::{Router, RouterConfig, RouterTally, RouterTick};
