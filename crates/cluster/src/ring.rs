//! The owner-level consistent-hash ring.
//!
//! Same discipline as the shard ring inside `hds-serve`'s manager, one
//! level up: each owner process contributes [`VNODES_PER_OWNER`]
//! virtual points, a tenant key maps to the first point at or after it
//! (wrapping), and adding or removing an owner therefore moves only
//! the tenants whose arc changed hands — the property the live-handoff
//! machinery depends on to keep membership changes cheap.

/// Virtual points each owner contributes to the ring.
pub const VNODES_PER_OWNER: u32 = 64;

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// FNV-1a's last byte gets only one multiply, so hashes of short
/// structured names ("tenant-007", "owner-3-vnode-12") cluster badly
/// on the ring. A splitmix64 finalizer gives both the points and the
/// looked-up keys full avalanche.
fn mix(mut x: u64) -> u64 {
    x ^= x >> 30;
    x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x ^= x >> 27;
    x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^= x >> 31;
    x
}

/// A consistent-hash ring over owner process ids.
#[derive(Clone, Debug, Default)]
pub struct OwnerRing {
    /// Sorted `(point, owner)` pairs.
    points: Vec<(u64, u32)>,
    owners: Vec<u32>,
}

impl OwnerRing {
    /// An empty ring.
    #[must_use]
    pub fn new() -> Self {
        OwnerRing::default()
    }

    /// Adds an owner's virtual points. Idempotent.
    pub fn add(&mut self, owner: u32) {
        if self.owners.contains(&owner) {
            return;
        }
        self.owners.push(owner);
        self.owners.sort_unstable();
        for v in 0..VNODES_PER_OWNER {
            let point = mix(fnv1a64(format!("owner-{owner}-vnode-{v}").as_bytes()));
            self.points.push((point, owner));
        }
        self.points.sort_unstable();
    }

    /// Removes an owner's virtual points. Idempotent.
    pub fn remove(&mut self, owner: u32) {
        self.owners.retain(|&o| o != owner);
        self.points.retain(|&(_, o)| o != owner);
    }

    /// Whether the owner is a member.
    #[must_use]
    pub fn contains(&self, owner: u32) -> bool {
        self.owners.contains(&owner)
    }

    /// Current members, ascending.
    #[must_use]
    pub fn owners(&self) -> &[u32] {
        &self.owners
    }

    /// The owner responsible for a tenant key, or `None` on an empty
    /// ring.
    #[must_use]
    pub fn owner_for(&self, key: u64) -> Option<u32> {
        if self.points.is_empty() {
            return None;
        }
        let key = mix(key);
        let idx = self.points.partition_point(|&(p, _)| p < key);
        let (_, owner) = self.points[idx % self.points.len()];
        Some(owner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hds_serve::tenant_key;

    fn keys(n: u64) -> Vec<u64> {
        (0..n)
            .map(|i| tenant_key(&format!("tenant-{i:03}")))
            .collect()
    }

    #[test]
    fn assignment_is_deterministic_and_total() {
        let mut a = OwnerRing::new();
        let mut b = OwnerRing::new();
        for id in [3, 1, 2] {
            a.add(id);
        }
        for id in [1, 2, 3] {
            b.add(id);
        }
        for key in keys(200) {
            assert_eq!(a.owner_for(key), b.owner_for(key));
            assert!(a.owner_for(key).is_some());
        }
        assert_eq!(a.owners(), &[1, 2, 3]);
    }

    #[test]
    fn empty_ring_routes_nowhere() {
        let ring = OwnerRing::new();
        assert_eq!(ring.owner_for(42), None);
        assert!(!ring.contains(0));
    }

    #[test]
    fn removing_an_owner_moves_only_its_tenants() {
        let mut ring = OwnerRing::new();
        for id in 0..4 {
            ring.add(id);
        }
        let before: Vec<(u64, u32)> = keys(500)
            .into_iter()
            .map(|k| (k, ring.owner_for(k).unwrap()))
            .collect();
        ring.remove(2);
        for (key, owner) in before {
            let now = ring.owner_for(key).unwrap();
            if owner != 2 {
                assert_eq!(now, owner, "key {key:#x} moved though its owner survived");
            } else {
                assert_ne!(now, 2);
            }
        }
    }

    #[test]
    fn add_and_remove_are_idempotent() {
        let mut ring = OwnerRing::new();
        ring.add(7);
        ring.add(7);
        assert_eq!(ring.owners(), &[7]);
        ring.remove(7);
        ring.remove(7);
        assert_eq!(ring.owner_for(1), None);
    }

    #[test]
    fn load_spreads_across_owners() {
        let mut ring = OwnerRing::new();
        for id in 0..8 {
            ring.add(id);
        }
        let mut counts = [0u32; 8];
        for key in keys(800) {
            counts[ring.owner_for(key).unwrap() as usize] += 1;
        }
        for (id, &c) in counts.iter().enumerate() {
            assert!(c > 0, "owner {id} got no tenants out of 800");
        }
    }
}
