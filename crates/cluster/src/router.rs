//! The router tier: speaks `HDSW` to the client on the front, speaks
//! `HDSW` to every shard-owner process on the back, and carries each
//! tenant across owner crashes and membership changes without the
//! client ever noticing.
//!
//! # Store-and-forward with a replay journal
//!
//! The router acknowledges a client chunk as soon as it is journaled,
//! then delivers it to the tenant's owner through a reliable
//! [`ClientSession`] link (retry, backoff, dedup — the same machinery
//! a direct client uses). Every admitted chunk stays in the tenant's
//! journal until a *record refresh* proves the owner has durably
//! absorbed it: the router periodically asks the owner to `Export` the
//! tenant's [`TenantRecord`] (without detaching), installs the record
//! as the new rebuild basis, and truncates the journal to the chunks
//! admitted after the refresh. The invariant at every instant:
//!
//! > basis record (possibly `None`) + journal = everything the client
//! > has been acknowledged for.
//!
//! # Crash recovery and live handoff
//!
//! When an owner dies, each of its tenants is rebuilt — on a restarted
//! owner or re-homed onto a surviving ring member — by replaying the
//! basis record through `Migrate` (the same durable bytes a store
//! rehydration uses, so the rebuilt session is bit-identical by
//! construction) and re-delivering the journal. Planned migrations
//! (owner join/leave) do the same dance through a detaching `Export`:
//! the departing owner hands over a record that already covers every
//! delivered chunk, and only the chunks the router held back during
//! the handoff replay at the destination.

use std::collections::BTreeMap;

use hds_guard::{RouterBudgets, RouterGuard};
use hds_serve::client::{ClientConfig, ClientSession, ClientStatus};
use hds_serve::transport::LoopbackTransport;
use hds_serve::wire::{Frame, RejectCode, FEATURE_RELIABLE, WIRE_VERSION};
use hds_serve::{chunk_cost, tenant_key};
use hds_store::TenantRecord;
use hds_telemetry::events as tev;
use hds_telemetry::{NullObserver, Observer};
use hds_vulcan::{Event, Procedure};

/// Router behaviour knobs.
#[derive(Clone, Debug)]
pub struct RouterConfig {
    /// Per-owner link configuration (reliable delivery knobs). The
    /// router forces `goodbye` off — links live as long as the owner.
    pub link: ClientConfig,
    /// Admission budgets for the router tier.
    pub budgets: RouterBudgets,
    /// Admitted chunks per tenant between record refreshes; `0` never
    /// refreshes (the journal then holds the tenant's whole stream,
    /// which is correct but unbounded).
    pub refresh_every: u64,
    /// Client-facing shared-secret token; `None` accepts any.
    pub auth_token: Option<String>,
}

impl Default for RouterConfig {
    fn default() -> Self {
        RouterConfig {
            link: ClientConfig {
                goodbye: false,
                ..ClientConfig::default()
            },
            budgets: RouterBudgets::disabled(),
            refresh_every: 0,
            auth_token: None,
        }
    }
}

/// Aggregate router counters, for benches and assertions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterTally {
    /// Planned tenant migrations completed (join/leave handoffs).
    pub migrations: u64,
    /// Crash-driven re-homes completed.
    pub rehomes: u64,
    /// Owner processes rebuilt after a restart.
    pub owner_restarts: u64,
    /// Journaled chunks replayed across every rebuild.
    pub replayed_chunks: u64,
    /// Record refreshes installed.
    pub refreshes: u64,
    /// Client chunks admitted (journaled and acknowledged).
    pub chunks_admitted: u64,
}

/// An in-flight export and what to do with the record when it lands.
#[derive(Clone, Copy, Debug)]
struct ExportIntent {
    /// Planned-migration destination; `None` is a refresh (or a
    /// client-requested export).
    dest: Option<u32>,
    /// Journal entries `[..mark]` are covered by the record the owner
    /// will hand back; entries at and past it were held back.
    mark: usize,
    /// A client asked for this export (and whether it detaches); the
    /// record is forwarded to the client when it lands.
    client_detach: Option<bool>,
}

/// One tenant's route: where it lives and what it would take to
/// rebuild it.
struct Route {
    owner: u32,
    procedures: Vec<Procedure>,
    /// Highest chunk sequence acknowledged to the *client*.
    last_seq: u64,
    /// Rebuild basis: the last exported durable record.
    record: Option<TenantRecord>,
    /// Chunks admitted since the basis, in order.
    journal: Vec<Vec<Event>>,
    journal_bytes: u64,
    /// Journal entries already delivered to the current owner link.
    forwarded: usize,
    export: Option<ExportIntent>,
    chunks_since_refresh: u64,
    flush_requested: bool,
    /// Cached final report (duplicate `Flush` resends it).
    report: Option<(String, u64)>,
}

impl Route {
    fn finished(&self) -> bool {
        self.report.is_some()
    }
}

/// What one router tick produced.
#[derive(Debug, Default)]
pub struct RouterTick {
    /// Frames to deliver to the client (reports, exports).
    pub client_frames: Vec<Frame>,
    /// Owners whose link lost its connection; the supervisor answers
    /// with [`Router::attach_owner`] (alive), [`Router::owner_restarted`]
    /// (restarted), or [`Router::rehome_owner`] (gone).
    pub needs_attach: Vec<u32>,
}

/// See the module docs. `O` receives cluster events and span instants.
pub struct Router<O: Observer = NullObserver> {
    cfg: RouterConfig,
    obs: O,
    ring: crate::OwnerRing,
    links: BTreeMap<u32, ClientSession<LoopbackTransport>>,
    routes: BTreeMap<String, Route>,
    guard: RouterGuard,
    tally: RouterTally,
    clock: u64,
    hello_done: bool,
    reliable: bool,
    draining: bool,
}

impl Router<NullObserver> {
    /// A router with no observer.
    #[must_use]
    pub fn new(cfg: RouterConfig) -> Self {
        Router::with_observer(cfg, NullObserver)
    }
}

impl<O: Observer> Router<O> {
    /// A router emitting cluster telemetry into `obs`.
    #[must_use]
    pub fn with_observer(mut cfg: RouterConfig, obs: O) -> Self {
        cfg.link.goodbye = false;
        let guard = RouterGuard::new(cfg.budgets);
        Router {
            cfg,
            obs,
            ring: crate::OwnerRing::new(),
            links: BTreeMap::new(),
            routes: BTreeMap::new(),
            guard,
            tally: RouterTally::default(),
            clock: 0,
            hello_done: false,
            reliable: false,
            draining: false,
        }
    }

    /// Router counters.
    #[must_use]
    pub fn tally(&self) -> &RouterTally {
        &self.tally
    }

    /// The admission guard's ledger.
    #[must_use]
    pub fn guard(&self) -> &RouterGuard {
        &self.guard
    }

    /// The membership ring.
    #[must_use]
    pub fn ring(&self) -> &crate::OwnerRing {
        &self.ring
    }

    /// The observer, for reading recorded telemetry back.
    #[must_use]
    pub fn observer(&self) -> &O {
        &self.obs
    }

    /// Consumes the router and returns its observer.
    #[must_use]
    pub fn into_observer(self) -> O {
        self.obs
    }

    /// Tenants currently routed (finished ones included).
    #[must_use]
    pub fn tenants(&self) -> u64 {
        self.routes.len() as u64
    }

    /// Whether every routed tenant has its report.
    #[must_use]
    pub fn all_flushed(&self) -> bool {
        self.routes.values().all(Route::finished)
    }

    /// The owner a tenant currently routes to.
    #[must_use]
    pub fn owner_of(&self, tenant: &str) -> Option<u32> {
        self.routes.get(tenant).map(|r| r.owner)
    }

    /// Tenants still mid-stream (no final report yet), ascending.
    #[must_use]
    pub fn unfinished_tenants(&self) -> Vec<String> {
        self.routes
            .iter()
            .filter(|(_, r)| !r.finished())
            .map(|(name, _)| name.clone())
            .collect()
    }

    fn cluster_instant(&mut self, kind: tev::ClusterEventKind, b: u64) {
        if O::ENABLED {
            self.obs.span(
                &tev::SpanEvent::instant(tev::SpanKind::Cluster, self.clock)
                    .with_args(kind.code(), b),
            );
        }
    }

    fn fresh_link(&self, transport: LoopbackTransport) -> ClientSession<LoopbackTransport> {
        let mut link = ClientSession::new(self.cfg.link.clone());
        link.connect(transport);
        link
    }

    // ----- membership -------------------------------------------------

    /// Admits a new owner: its link attaches, it joins the ring, and
    /// every tenant whose arc it took over starts a planned migration.
    pub fn join_owner(&mut self, owner: u32, transport: LoopbackTransport) {
        self.clock += 1;
        self.ring.add(owner);
        self.links.insert(owner, self.fresh_link(transport));
        self.cluster_instant(tev::ClusterEventKind::OwnerJoined, u64::from(owner));
        self.plan_ring_migrations();
    }

    /// Begins a planned departure: the owner leaves the ring and every
    /// tenant it held starts migrating to its new ring owner. The
    /// process itself should stay up until [`Router::owner_drained`],
    /// then be detached with [`Router::detach_owner`].
    pub fn leave_owner(&mut self, owner: u32) {
        self.clock += 1;
        self.ring.remove(owner);
        self.cluster_instant(tev::ClusterEventKind::OwnerLeft, u64::from(owner));
        self.plan_ring_migrations();
    }

    /// Whether nothing routes to (or is still migrating off) the owner.
    #[must_use]
    pub fn owner_drained(&self, owner: u32) -> bool {
        self.routes.values().all(|r| {
            (r.owner != owner || r.finished()) && r.export.is_none_or(|e| e.dest != Some(owner))
        })
    }

    /// Drops a departed owner's link. Call once drained.
    pub fn detach_owner(&mut self, owner: u32) {
        self.links.remove(&owner);
    }

    /// Starts a migration for every unfinished tenant whose ring owner
    /// disagrees with its current owner (after a join or leave).
    fn plan_ring_migrations(&mut self) {
        let moves: Vec<(String, u32)> = self
            .routes
            .iter()
            .filter(|(_, r)| !r.finished() && r.export.is_none())
            .filter_map(|(name, r)| {
                let home = self.ring.owner_for(tenant_key(name))?;
                (home != r.owner).then(|| (name.clone(), home))
            })
            .collect();
        for (name, dest) in moves {
            let route = self.routes.get_mut(&name).expect("filtered above");
            let mark = route.forwarded;
            route.export = Some(ExportIntent {
                dest: Some(dest),
                mark,
                client_detach: None,
            });
            if let Some(link) = self.links.get_mut(&route.owner) {
                link.request_export(&name, true);
            }
        }
    }

    // ----- crash handling ---------------------------------------------

    /// Re-attaches a live owner whose connection dropped: the existing
    /// link resumes on the fresh transport (re-`Hello`, re-open,
    /// rewind to the server's resume points).
    pub fn attach_owner(&mut self, owner: u32, transport: LoopbackTransport) {
        if let Some(link) = self.links.get_mut(&owner) {
            link.on_reconnected(transport);
        } else {
            self.links.insert(owner, self.fresh_link(transport));
        }
    }

    /// Rebuilds a *restarted* owner: the old link (whose server-side
    /// state died with the process) is discarded, and every tenant
    /// routed to the owner is rebuilt from its basis record plus
    /// journal on a fresh link.
    pub fn owner_restarted(&mut self, owner: u32, transport: LoopbackTransport) {
        self.clock += 1;
        self.cluster_instant(tev::ClusterEventKind::OwnerDead, u64::from(owner));
        self.links.insert(owner, self.fresh_link(transport));
        let victims: Vec<String> = self
            .routes
            .iter()
            .filter(|(_, r)| r.owner == owner && !r.finished())
            .map(|(name, _)| name.clone())
            .collect();
        let tenants = victims.len() as u64;
        for name in victims {
            self.rebuild_route(&name, owner);
        }
        self.tally.owner_restarts += 1;
        self.cluster_instant(tev::ClusterEventKind::OwnerRestarted, u64::from(owner));
        if O::ENABLED {
            self.obs
                .cluster_owner_restarted(&tev::ClusterOwnerRestarted { owner, tenants });
        }
        // Tenants that were migrating *to* the dead owner re-resolve
        // when their export lands (the dest link was just replaced, so
        // the handoff proceeds onto the fresh process).
    }

    /// Re-homes a *dead* owner's tenants onto the surviving ring: the
    /// owner leaves the ring, its link is dropped, and every tenant it
    /// held is rebuilt on its new ring owner.
    pub fn rehome_owner(&mut self, owner: u32) {
        self.clock += 1;
        self.cluster_instant(tev::ClusterEventKind::OwnerDead, u64::from(owner));
        self.ring.remove(owner);
        self.links.remove(&owner);
        let victims: Vec<String> = self
            .routes
            .iter()
            .filter(|(_, r)| r.owner == owner)
            .map(|(name, _)| name.clone())
            .collect();
        for name in victims {
            let key = tenant_key(&name);
            let Some(dest) = self.ring.owner_for(key) else {
                continue; // No survivors; the routes wait for a join.
            };
            if self.routes[&name].finished() {
                self.routes.get_mut(&name).expect("present").owner = dest;
                continue;
            }
            let replayed = self.rebuild_route(&name, dest);
            self.tally.rehomes += 1;
            self.cluster_instant(tev::ClusterEventKind::Rehomed, key);
            if O::ENABLED {
                self.obs.cluster_rehomed(&tev::ClusterRehomed {
                    tenant: key,
                    from_owner: owner,
                    to_owner: dest,
                    replayed_chunks: replayed,
                });
            }
        }
        // Migrations that were headed *to* the dead owner re-target
        // their ring owner; a re-target onto the tenant's current
        // owner degrades into a plain refresh.
        let retargets: Vec<String> = self
            .routes
            .iter()
            .filter(|(_, r)| r.export.is_some_and(|e| e.dest == Some(owner)))
            .map(|(name, _)| name.clone())
            .collect();
        for name in retargets {
            let home = self.ring.owner_for(tenant_key(&name));
            let route = self.routes.get_mut(&name).expect("present");
            let intent = route.export.as_mut().expect("filtered above");
            intent.dest = match home {
                Some(h) if h != route.owner => Some(h),
                _ => None,
            };
        }
    }

    /// Rebuilds one tenant's session on `dest` from its basis record
    /// plus journal replay, resetting delivery state to the fresh
    /// link. Returns the journal chunks replayed.
    fn rebuild_route(&mut self, name: &str, dest: u32) -> u64 {
        let route = self.routes.get_mut(name).expect("route exists");
        let from = route.owner;
        route.owner = dest;
        // An in-flight export died with the connection; a client-
        // requested one is re-issued below, internal ones re-trigger
        // naturally.
        let client_detach = route.export.take().and_then(|e| e.client_detach);
        route.forwarded = 0;
        route.chunks_since_refresh = 0;
        let link = self.links.get_mut(&dest).expect("dest link attached");
        match &route.record {
            Some(record) => link.add_tenant_from_record(record.clone()),
            None => link.add_tenant_streaming(name, route.procedures.clone()),
        }
        for chunk in &route.journal {
            link.push_chunk(name, chunk.clone());
        }
        route.forwarded = route.journal.len();
        let replayed = route.journal.len() as u64;
        self.tally.replayed_chunks += replayed;
        if route.flush_requested && route.report.is_none() {
            link.request_flush(name);
        }
        if let Some(detach) = client_detach {
            let mark = route.forwarded;
            route.export = Some(ExportIntent {
                dest: None,
                mark,
                client_detach: Some(detach),
            });
            link.request_export(name, detach);
        }
        let _ = from;
        replayed
    }

    // ----- client-facing wire ----------------------------------------

    fn reject(code: RejectCode, detail: impl Into<String>) -> Vec<Frame> {
        vec![Frame::Reject {
            code,
            detail: detail.into(),
        }]
    }

    /// Handles one client frame, mirroring the single-process
    /// manager's semantics (idempotent re-open, duplicate re-ack,
    /// sequence-gap reject) so a reliable [`ClientSession`] cannot
    /// tell a router from a direct server.
    pub fn handle(&mut self, frame: Frame) -> Vec<Frame> {
        self.clock += 1;
        match frame {
            Frame::Hello {
                token, features, ..
            } => {
                if let Some(secret) = &self.cfg.auth_token {
                    if &token != secret {
                        return Self::reject(RejectCode::AuthFailed, "bad auth token");
                    }
                }
                self.hello_done = true;
                self.reliable = features & FEATURE_RELIABLE != 0;
                // Per-tenant backend resolution is the owners' shared
                // fleet policy; a per-connection hint is not forwarded.
                vec![Frame::HelloAck {
                    version: WIRE_VERSION,
                    backend: None,
                }]
            }
            _ if !self.hello_done => {
                Self::reject(RejectCode::HandshakeRequired, "handshake required")
            }
            Frame::Goodbye => {
                let drained = self.routes.values().filter(|r| !r.finished()).count() as u64;
                self.draining = true;
                vec![Frame::GoodbyeAck { drained }]
            }
            _ if self.draining => Self::reject(RejectCode::Draining, "router is draining"),
            Frame::OpenSession { tenant, procedures } => self.open_session(tenant, procedures),
            Frame::TraceChunk {
                tenant,
                seq,
                events,
            } => self.trace_chunk(&tenant, seq, events),
            Frame::Flush { tenant } => self.flush(&tenant),
            Frame::Migrate { record } => self.migrate_in(record),
            Frame::Export { tenant, detach } => self.export(&tenant, detach),
            Frame::Ping { nonce } => vec![Frame::Pong { nonce }],
            Frame::Pong { .. } | Frame::Evict { .. } | Frame::Resume { .. } => Vec::new(),
            Frame::Introspect { tenant } => self.introspect(&tenant),
            Frame::HelloAck { .. }
            | Frame::Report { .. }
            | Frame::Busy { .. }
            | Frame::Shed { .. }
            | Frame::Reject { .. }
            | Frame::Stats { .. }
            | Frame::Ack { .. }
            | Frame::GoodbyeAck { .. }
            | Frame::Exported { .. } => Self::reject(
                RejectCode::ClientSentServerFrame,
                "server-to-client frame from client",
            ),
        }
    }

    fn open_session(&mut self, tenant: String, procedures: Vec<Procedure>) -> Vec<Frame> {
        if let Some(route) = self.routes.get(&tenant) {
            // Idempotent re-open on a reliable connection: answer the
            // resume point.
            if self.reliable {
                return vec![Frame::Ack {
                    tenant,
                    seq: route.last_seq,
                }];
            }
            return Self::reject(RejectCode::TenantAlreadyOpen, tenant);
        }
        if let Err(trip) = self.guard.admit_tenant(self.routes.len() as u64) {
            return vec![Frame::Busy {
                tenant,
                budget: trip.budget,
                observed: trip.observed,
            }];
        }
        let Some(owner) = self.ring.owner_for(tenant_key(&tenant)) else {
            return Self::reject(RejectCode::Draining, "no owners in the ring");
        };
        let link = self.links.get_mut(&owner).expect("ring member has a link");
        link.add_tenant_streaming(&tenant, procedures.clone());
        self.routes.insert(
            tenant.clone(),
            Route {
                owner,
                procedures,
                last_seq: 0,
                record: None,
                journal: Vec::new(),
                journal_bytes: 0,
                forwarded: 0,
                export: None,
                chunks_since_refresh: 0,
                flush_requested: false,
                report: None,
            },
        );
        vec![Frame::Ack { tenant, seq: 0 }]
    }

    fn migrate_in(&mut self, record: TenantRecord) -> Vec<Frame> {
        let tenant = record.tenant.clone();
        if let Some(route) = self.routes.get(&tenant) {
            if self.reliable {
                return vec![Frame::Ack {
                    tenant,
                    seq: route.last_seq,
                }];
            }
            return Self::reject(RejectCode::TenantAlreadyOpen, tenant);
        }
        if let Err(trip) = self.guard.admit_tenant(self.routes.len() as u64) {
            return vec![Frame::Busy {
                tenant,
                budget: trip.budget,
                observed: trip.observed,
            }];
        }
        let Some(owner) = self.ring.owner_for(tenant_key(&tenant)) else {
            return Self::reject(RejectCode::Draining, "no owners in the ring");
        };
        let link = self.links.get_mut(&owner).expect("ring member has a link");
        link.add_tenant_from_record(record.clone());
        self.routes.insert(
            tenant.clone(),
            Route {
                owner,
                procedures: record.procedures.clone(),
                last_seq: 0,
                record: Some(record),
                journal: Vec::new(),
                journal_bytes: 0,
                forwarded: 0,
                export: None,
                chunks_since_refresh: 0,
                flush_requested: false,
                report: None,
            },
        );
        vec![Frame::Ack { tenant, seq: 0 }]
    }

    fn trace_chunk(&mut self, tenant: &str, seq: u64, events: Vec<Event>) -> Vec<Frame> {
        let Some(route) = self.routes.get(tenant) else {
            return Self::reject(RejectCode::UnknownTenant, tenant);
        };
        if route.finished() {
            return Self::reject(RejectCode::TenantFlushed, tenant);
        }
        if seq <= route.last_seq {
            // Duplicate: re-acknowledge for free.
            return vec![Frame::Ack {
                tenant: tenant.to_string(),
                seq: route.last_seq,
            }];
        }
        if seq > route.last_seq + 1 {
            return Self::reject(
                RejectCode::BadSequence,
                format!("{tenant} {}", route.last_seq),
            );
        }
        // A client-requested detaching export is in flight: the record
        // being cut must stay the last word, so refuse (not drop) the
        // chunk — `Busy` is retry-safe.
        if route.export.is_some_and(|e| e.client_detach == Some(true)) {
            return vec![Frame::Busy {
                tenant: tenant.to_string(),
                budget: 0,
                observed: seq,
            }];
        }
        let cost = chunk_cost(&events);
        let total: u64 = self.routes.values().map(|r| r.journal_bytes).sum();
        if let Err(trip) = self.guard.admit_journal_bytes(total + cost) {
            return vec![Frame::Shed {
                tenant: tenant.to_string(),
                kind: tev::ServeBudgetKind::GlobalBytes,
                budget: trip.budget,
                observed: trip.observed,
            }];
        }
        let route = self.routes.get_mut(tenant).expect("checked above");
        route.journal.push(events);
        route.journal_bytes += cost;
        route.last_seq = seq;
        route.chunks_since_refresh += 1;
        self.tally.chunks_admitted += 1;
        if route.export.is_none() {
            // Forward immediately; during a handoff the chunk is held
            // and replayed at the destination instead.
            let chunk = route.journal[route.forwarded].clone();
            route.forwarded += 1;
            let owner = route.owner;
            self.links
                .get_mut(&owner)
                .expect("routed owner has a link")
                .push_chunk(tenant, chunk);
            self.maybe_refresh(tenant);
        }
        vec![Frame::Ack {
            tenant: tenant.to_string(),
            seq,
        }]
    }

    /// Starts a record refresh when the journal grew past the
    /// configured interval and nothing else is in flight.
    fn maybe_refresh(&mut self, tenant: &str) {
        if self.cfg.refresh_every == 0 {
            return;
        }
        let route = self.routes.get_mut(tenant).expect("caller checked");
        if route.export.is_some()
            || route.flush_requested
            || route.chunks_since_refresh < self.cfg.refresh_every
        {
            return;
        }
        route.chunks_since_refresh = 0;
        let mark = route.forwarded;
        route.export = Some(ExportIntent {
            dest: None,
            mark,
            client_detach: None,
        });
        let owner = route.owner;
        self.links
            .get_mut(&owner)
            .expect("routed owner has a link")
            .request_export(tenant, false);
    }

    fn flush(&mut self, tenant: &str) -> Vec<Frame> {
        let Some(route) = self.routes.get_mut(tenant) else {
            return Self::reject(RejectCode::UnknownTenant, tenant);
        };
        if let Some((report_json, image_digest)) = &route.report {
            // Duplicate flush: resend the cached report.
            return vec![Frame::Report {
                tenant: tenant.to_string(),
                report_json: report_json.clone(),
                image_digest: *image_digest,
            }];
        }
        if !route.flush_requested {
            route.flush_requested = true;
            if route.export.is_none() {
                let owner = route.owner;
                self.links
                    .get_mut(&owner)
                    .expect("routed owner has a link")
                    .request_flush(tenant);
            }
            // With an export in flight the flush is deferred until the
            // record lands.
        }
        Vec::new()
    }

    fn export(&mut self, tenant: &str, detach: bool) -> Vec<Frame> {
        let Some(route) = self.routes.get_mut(tenant) else {
            return Self::reject(RejectCode::UnknownTenant, tenant);
        };
        if route.finished() {
            return Self::reject(RejectCode::TenantFlushed, tenant);
        }
        if route.export.is_some() {
            // One export at a time; retry-safe refusal.
            return vec![Frame::Busy {
                tenant: tenant.to_string(),
                budget: 1,
                observed: 1,
            }];
        }
        let mark = route.forwarded;
        route.export = Some(ExportIntent {
            dest: None,
            mark,
            client_detach: Some(detach),
        });
        let owner = route.owner;
        self.links
            .get_mut(&owner)
            .expect("routed owner has a link")
            .request_export(tenant, detach);
        Vec::new()
    }

    fn introspect(&mut self, filter: &str) -> Vec<Frame> {
        if !filter.is_empty() && !self.routes.contains_key(filter) {
            return Self::reject(RejectCode::UnknownTenant, filter);
        }
        let tenants = self
            .routes
            .iter()
            .filter(|(name, _)| filter.is_empty() || name.as_str() == filter)
            .map(|(name, route)| hds_serve::wire::TenantStats {
                tenant: name.clone(),
                shard: route.owner,
                live: !route.finished(),
                finished: route.finished(),
                queued_chunks: (route.journal.len() - route.forwarded) as u64,
                events_consumed: 0,
                snapshots: 0,
                tail_events: 0,
            })
            .collect();
        vec![Frame::Stats {
            clock: self.clock,
            queued_bytes: self.routes.values().map(|r| r.journal_bytes).sum(),
            tenants,
            shards: Vec::new(),
        }]
    }

    // ----- the pump ---------------------------------------------------

    /// One router tick: step every owner link, harvest reports and
    /// exported records, complete handoffs. Returns frames for the
    /// client and links that lost their connection.
    pub fn tick(&mut self) -> RouterTick {
        self.clock += 1;
        let mut out = RouterTick::default();
        let owners: Vec<u32> = self.links.keys().copied().collect();
        for owner in owners {
            let link = self.links.get_mut(&owner).expect("iterating keys");
            match link.step() {
                Ok(ClientStatus::NeedReconnect) => out.needs_attach.push(owner),
                Ok(_) => {}
                // A wedged link (retries exhausted against a silent
                // peer) is indistinguishable from a dead owner; the
                // supervisor decides restart vs re-home.
                Err(_) => out.needs_attach.push(owner),
            }
        }
        self.harvest(&mut out);
        out
    }

    /// Collects finished reports and landed exports from the links.
    fn harvest(&mut self, out: &mut RouterTick) {
        let names: Vec<String> = self.routes.keys().cloned().collect();
        for name in names {
            let route = self.routes.get(&name).expect("iterating keys");
            let owner = route.owner;
            let Some(link) = self.links.get_mut(&owner) else {
                continue;
            };
            if !route.finished() {
                // Read, don't take: taking would revert the link flow
                // to "flush pending" and it would re-request forever.
                // Latest flow wins — a tenant can revisit a link.
                let report = link
                    .reports()
                    .into_iter()
                    .rev()
                    .find(|r| r.tenant == name)
                    .cloned();
                if let Some(report) = report {
                    let route = self.routes.get_mut(&name).expect("present");
                    route.report = Some((report.report_json.clone(), report.image_digest));
                    // The rebuild basis is dead weight once the report
                    // is cached at the router.
                    route.journal.clear();
                    route.journal_bytes = 0;
                    route.forwarded = 0;
                    route.record = None;
                    route.export = None;
                    out.client_frames.push(Frame::Report {
                        tenant: report.tenant,
                        report_json: report.report_json,
                        image_digest: report.image_digest,
                    });
                    continue;
                }
            }
            // Owner stats pushes are link-local chatter; drain them so
            // they do not accumulate.
            let _ = link.take_stats();
            if let Some(record) = link.take_export(&name) {
                self.complete_export(&name, record, out);
            }
        }
    }

    /// An export landed: install the record as the new basis, truncate
    /// the covered journal prefix, and route the held tail to wherever
    /// the intent points.
    fn complete_export(&mut self, name: &str, record: TenantRecord, out: &mut RouterTick) {
        let route = self.routes.get_mut(name).expect("caller checked");
        let Some(intent) = route.export.take() else {
            return; // Stale duplicate; already applied.
        };
        let from = route.owner;
        route.journal.drain(..intent.mark.min(route.journal.len()));
        route.journal_bytes = route.journal.iter().map(|c| chunk_cost(c)).sum();
        route.forwarded = 0;
        route.record = Some(record.clone());
        if let Some(detach) = intent.client_detach {
            out.client_frames.push(Frame::Exported {
                record: record.clone(),
            });
            if detach {
                self.routes.remove(name);
                return;
            }
        }
        let key = tenant_key(name);
        // A refresh that completed *after* a membership change doubles
        // as the handoff export: if the ring re-homed the tenant while
        // the export was in flight, seat the fresh record at the new
        // home instead of resuming on the old owner.
        let dest = match intent.dest {
            Some(d) => Some(d),
            None if intent.client_detach.is_none() => match self.ring.owner_for(key) {
                Some(home) if home != from && self.links.contains_key(&home) => Some(home),
                _ => None,
            },
            None => None,
        };
        if let Some(to) = dest {
            // Planned migration: seat the record at the destination
            // and replay the held tail there.
            route.owner = to;
            let link = self.links.get_mut(&to).expect("dest link attached");
            link.add_tenant_from_record(record);
            for chunk in &route.journal {
                link.push_chunk(name, chunk.clone());
            }
            route.forwarded = route.journal.len();
            let replayed = route.journal.len() as u64;
            if route.flush_requested && route.report.is_none() {
                link.request_flush(name);
            }
            self.tally.migrations += 1;
            self.tally.replayed_chunks += replayed;
            self.cluster_instant(tev::ClusterEventKind::Migrated, key);
            if O::ENABLED {
                self.obs.cluster_migrated(&tev::ClusterMigrated {
                    tenant: key,
                    from_owner: from,
                    to_owner: to,
                    replayed_chunks: replayed,
                });
            }
        } else {
            // Refresh: same owner, resume forwarding the held tail.
            let link = self.links.get_mut(&from).expect("routed owner has a link");
            for chunk in &route.journal {
                link.push_chunk(name, chunk.clone());
            }
            route.forwarded = route.journal.len();
            if route.flush_requested && route.report.is_none() {
                link.request_flush(name);
            }
            self.tally.refreshes += 1;
            self.cluster_instant(tev::ClusterEventKind::RecordRefreshed, key);
        }
    }
}
