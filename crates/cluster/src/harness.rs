//! An in-process cluster: one router, a fleet of owner processes, and
//! a poll-driven session loop with scripted kills and membership
//! changes — the cross-process twin of `hds-serve`'s chaos harness.
//!
//! Everything is deterministic: the same loads, script, and owner set
//! produce the same frame interleaving poll for poll, which is what
//! lets the determinism suite demand *byte-identical* reports between
//! a clustered run and the single-process reference.

use std::collections::BTreeMap;

use hds_serve::client::{ClientConfig, ClientError, ClientSession, ClientStatus, TenantReport};
use hds_serve::load::TenantLoad;
use hds_serve::manager::ServeConfigError;
use hds_serve::transport::{loopback, LoopbackTransport, Transport, TransportError};
use hds_serve::wire::Frame;
use hds_serve::{ServeConfig, SessionManager};
use hds_telemetry::{NullObserver, Observer};

use crate::owner::OwnerProcess;
use crate::router::{Router, RouterConfig};

/// What to do with a killed owner.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum KillPolicy {
    /// Restart the process (empty) and rebuild its tenants on it —
    /// process-granular `supervise()` semantics.
    Restart,
    /// Remove it from the fleet and re-home its tenants onto the
    /// survivors.
    Rehome,
}

/// A router plus its owner fleet, wired over loopback transports.
pub struct Cluster<O: Observer = NullObserver> {
    serve_cfg: ServeConfig,
    router: Router<O>,
    owners: BTreeMap<u32, OwnerProcess>,
}

impl Cluster<NullObserver> {
    /// Boots `owner_ids` owner processes around a router, all owners
    /// sharing `serve_cfg`.
    ///
    /// # Errors
    ///
    /// [`ServeConfigError`] for a degenerate serve config.
    pub fn new(
        serve_cfg: ServeConfig,
        router_cfg: RouterConfig,
        owner_ids: &[u32],
    ) -> Result<Self, ServeConfigError> {
        Cluster::with_observer(serve_cfg, router_cfg, owner_ids, NullObserver)
    }
}

impl<O: Observer> Cluster<O> {
    /// [`Cluster::new`] with a telemetry observer on the router.
    ///
    /// # Errors
    ///
    /// [`ServeConfigError`] for a degenerate serve config.
    pub fn with_observer(
        serve_cfg: ServeConfig,
        router_cfg: RouterConfig,
        owner_ids: &[u32],
        obs: O,
    ) -> Result<Self, ServeConfigError> {
        // Surface config errors before any owner boots.
        drop(SessionManager::new(serve_cfg.clone())?);
        let mut cluster = Cluster {
            serve_cfg,
            router: Router::with_observer(router_cfg, obs),
            owners: BTreeMap::new(),
        };
        for &id in owner_ids {
            cluster.join_owner(id)?;
        }
        Ok(cluster)
    }

    /// The router, for assertions and direct frame handling.
    #[must_use]
    pub fn router(&self) -> &Router<O> {
        &self.router
    }

    /// Live owner ids, ascending.
    #[must_use]
    pub fn owner_ids(&self) -> Vec<u32> {
        self.owners.keys().copied().collect()
    }

    /// Handles one client frame at the router.
    pub fn handle(&mut self, frame: Frame) -> Vec<Frame> {
        self.router.handle(frame)
    }

    /// One cluster tick: the router steps its owner links (re-attaching
    /// any that dropped on a live owner), then every owner process
    /// ticks. Returns the frames the router produced for the client.
    pub fn tick(&mut self) -> Vec<Frame> {
        let out = self.router.tick();
        for id in out.needs_attach {
            if let Some(owner) = self.owners.get_mut(&id) {
                if !owner.is_dead() {
                    self.router.attach_owner(id, owner.connect());
                }
                // A dead owner stays unattached until the script
                // decides restart vs re-home via `kill_owner`.
            }
        }
        for owner in self.owners.values_mut() {
            owner.tick();
        }
        out.client_frames
    }

    /// Boots a new owner process and admits it to the ring; tenants on
    /// its arc start migrating immediately.
    ///
    /// # Errors
    ///
    /// [`ServeConfigError`] — cannot happen for a config that already
    /// booted owners, but the constructor's contract is preserved.
    pub fn join_owner(&mut self, id: u32) -> Result<(), ServeConfigError> {
        let mut owner = OwnerProcess::new(id, self.serve_cfg.clone())?;
        self.router.join_owner(id, owner.connect());
        self.owners.insert(id, owner);
        Ok(())
    }

    /// Starts a planned departure: the owner leaves the ring and its
    /// tenants begin migrating off. The process stays up to serve the
    /// handoff exports; poll [`Cluster::finish_leave`] to complete.
    pub fn leave_owner(&mut self, id: u32) {
        self.router.leave_owner(id);
    }

    /// Completes a planned departure once the owner has drained:
    /// detaches the link and drops the process. `false` while tenants
    /// are still migrating.
    pub fn finish_leave(&mut self, id: u32) -> bool {
        if !self.router.owner_drained(id) {
            return false;
        }
        self.router.detach_owner(id);
        self.owners.remove(&id);
        true
    }

    /// Kills an owner process mid-flight — `SIGKILL` semantics, all
    /// in-memory state lost — and recovers per `policy`.
    ///
    /// # Errors
    ///
    /// [`ServeConfigError`] from the restart — cannot happen for a
    /// config that already booted.
    pub fn kill_owner(&mut self, id: u32, policy: KillPolicy) -> Result<(), ServeConfigError> {
        let Some(owner) = self.owners.get_mut(&id) else {
            return Ok(());
        };
        owner.kill();
        match policy {
            KillPolicy::Restart => {
                owner.restart()?;
                let transport = owner.connect();
                self.router.owner_restarted(id, transport);
            }
            KillPolicy::Rehome => {
                self.owners.remove(&id);
                self.router.rehome_owner(id);
            }
        }
        Ok(())
    }
}

/// How a cluster session ended.
#[derive(Debug)]
pub enum ClusterError {
    /// The front client gave up (fatal reject or retries exhausted).
    Client(ClientError),
    /// The client never finished within the poll budget.
    Stalled {
        /// Polls consumed before giving up.
        polls: u64,
    },
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::Client(err) => write!(f, "cluster client failed: {err}"),
            ClusterError::Stalled { polls } => {
                write!(f, "cluster session stalled after {polls} polls")
            }
        }
    }
}

impl std::error::Error for ClusterError {}

/// A finished cluster session.
#[derive(Debug)]
pub struct ClusterOutcome {
    /// Every tenant's final report, in load order.
    pub reports: Vec<TenantReport>,
    /// Polls the session took.
    pub polls: u64,
}

/// Drives one client session against the cluster to completion.
///
/// Each poll: `script(poll, cluster)` runs first (kills and membership
/// changes land at deterministic points in the stream), then the client
/// steps, then its frames flow through the router, then the cluster
/// ticks and router responses flow back.
///
/// # Errors
///
/// [`ClusterError::Client`] if the front client fails fatally;
/// [`ClusterError::Stalled`] if the session outlives `max_polls`.
pub fn run_cluster_session<O: Observer>(
    cluster: &mut Cluster<O>,
    client_cfg: ClientConfig,
    loads: &[TenantLoad],
    max_polls: u64,
    mut script: impl FnMut(u64, &mut Cluster<O>),
) -> Result<ClusterOutcome, ClusterError> {
    let mut client: ClientSession<LoopbackTransport> = ClientSession::new(client_cfg);
    for load in loads {
        client.add_tenant(&load.name, load.procedures.clone(), load.chunks.clone());
    }
    let (client_end, mut server_end) = loopback();
    client.connect(client_end);
    for poll in 0..max_polls {
        script(poll, cluster);
        match client.step().map_err(ClusterError::Client)? {
            ClientStatus::Done => {
                let reports = loads
                    .iter()
                    .filter_map(|load| client.take_report(&load.name))
                    .collect();
                return Ok(ClusterOutcome {
                    reports,
                    polls: poll,
                });
            }
            ClientStatus::NeedReconnect => {
                let (fresh_client, fresh_server) = loopback();
                server_end = fresh_server;
                client.on_reconnected(fresh_client);
            }
            ClientStatus::Working => {}
        }
        loop {
            match server_end.recv() {
                Ok(Some(frame)) => {
                    for response in cluster.handle(frame) {
                        let _ = server_end.send(&response);
                    }
                }
                Ok(None) => break,
                Err(TransportError::Frame(_)) => {}
                Err(_) => break,
            }
        }
        for frame in cluster.tick() {
            let _ = server_end.send(&frame);
        }
    }
    Err(ClusterError::Stalled { polls: max_polls })
}

#[cfg(test)]
mod tests {
    use super::*;
    use hds_core::{OptimizerConfig, PrefetchPolicy, RunMode};
    use hds_serve::load::{generate, LoadConfig};

    fn serve_cfg() -> ServeConfig {
        ServeConfig::new(
            OptimizerConfig::test_scale(),
            RunMode::Optimize(PrefetchPolicy::StreamTail),
        )
    }

    fn loads(tenants: u32, seed: u64) -> Vec<TenantLoad> {
        generate(&LoadConfig {
            tenants,
            chunks_per_tenant: 4,
            events_per_chunk: 50,
            seed,
        })
        .unwrap()
    }

    #[test]
    fn a_session_completes_against_two_owners() {
        let mut cluster = Cluster::new(serve_cfg(), RouterConfig::default(), &[0, 1]).unwrap();
        let loads = loads(3, 7);
        let outcome = run_cluster_session(
            &mut cluster,
            ClientConfig::default(),
            &loads,
            50_000,
            |_, _| {},
        )
        .unwrap();
        assert_eq!(outcome.reports.len(), 3);
        for report in &outcome.reports {
            assert!(!report.report_json.is_empty());
        }
        assert!(cluster.router().all_flushed());
    }

    #[test]
    fn killing_an_owner_with_restart_still_finishes() {
        let mut cluster = Cluster::new(serve_cfg(), RouterConfig::default(), &[0, 1]).unwrap();
        let loads = loads(3, 7);
        let outcome = run_cluster_session(
            &mut cluster,
            ClientConfig::default(),
            &loads,
            50_000,
            |poll, cluster| {
                if poll == 40 {
                    cluster.kill_owner(0, KillPolicy::Restart).unwrap();
                }
            },
        )
        .unwrap();
        assert_eq!(outcome.reports.len(), 3);
    }
}
