//! One shard-owner process: a whole `hds-serve` [`SessionManager`]
//! reachable *only* through `HDSW` frames over a transport, plus the
//! crash/restart lifecycle the cluster supervisor drives.
//!
//! The process boundary is modeled faithfully: the router holds no
//! reference into an owner's memory — every byte crosses the wire —
//! and [`OwnerProcess::kill`] drops the manager and its connection
//! outright, exactly the state loss a real `SIGKILL` inflicts. A
//! restarted owner starts from an empty manager; whatever its tenants
//! need to survive must come back over the wire (the router's
//! record-plus-journal rebuild).

use hds_serve::manager::ServeConfigError;
use hds_serve::transport::TransportError;
use hds_serve::{loopback, LoopbackTransport, ServeConfig, ServeReport, SessionManager, Transport};
use hds_telemetry::NullObserver;

/// A shard-owner process for the cluster: config, manager, connection.
pub struct OwnerProcess {
    id: u32,
    cfg: ServeConfig,
    manager: Option<SessionManager<NullObserver>>,
    server_end: Option<LoopbackTransport>,
    restarts: u32,
}

impl OwnerProcess {
    /// Boots an owner process from the fleet-shared serve config.
    ///
    /// # Errors
    ///
    /// [`ServeConfigError`] for a degenerate config.
    pub fn new(id: u32, cfg: ServeConfig) -> Result<Self, ServeConfigError> {
        let manager = SessionManager::new(cfg.clone())?;
        Ok(OwnerProcess {
            id,
            cfg,
            manager: Some(manager),
            server_end: None,
            restarts: 0,
        })
    }

    /// This owner's id.
    #[must_use]
    pub fn id(&self) -> u32 {
        self.id
    }

    /// Times the process was restarted after a kill.
    #[must_use]
    pub fn restarts(&self) -> u32 {
        self.restarts
    }

    /// Accepts a fresh connection: builds a loopback pair, keeps the
    /// server end, returns the client end for the router's link.
    #[must_use]
    pub fn connect(&mut self) -> LoopbackTransport {
        let (client_end, server_end) = loopback();
        self.server_end = Some(server_end);
        client_end
    }

    /// Kills the process: manager and connection drop, all in-memory
    /// state is lost. What a `SIGKILL` does.
    pub fn kill(&mut self) {
        self.manager = None;
        self.server_end = None;
    }

    /// Whether the process is dead (killed and not yet restarted).
    #[must_use]
    pub fn is_dead(&self) -> bool {
        self.manager.is_none()
    }

    /// Boots a fresh, empty manager from the same config. The caller
    /// re-[`OwnerProcess::connect`]s afterwards.
    ///
    /// # Errors
    ///
    /// [`ServeConfigError`] — only if the shared config became invalid,
    /// which it cannot, but the constructor's contract is preserved.
    pub fn restart(&mut self) -> Result<(), ServeConfigError> {
        self.manager = Some(SessionManager::new(self.cfg.clone())?);
        self.restarts += 1;
        Ok(())
    }

    /// One server tick: drain every frame the router put on the wire,
    /// answer each immediately, then pump the shards so reports and
    /// exports flow back. Dead processes (and unconnected ones) tick
    /// as nothing.
    pub fn tick(&mut self) {
        let (Some(manager), Some(server_end)) = (self.manager.as_mut(), self.server_end.as_mut())
        else {
            return;
        };
        loop {
            match server_end.recv() {
                Ok(Some(frame)) => {
                    for response in manager.handle(frame) {
                        // A failed send means the router's end is gone;
                        // it will reconnect and the resume protocol
                        // re-delivers.
                        let _ = server_end.send(&response);
                    }
                }
                Ok(None) => break,
                // A damaged frame was consumed and the stream is still
                // framed: the link's retry re-delivers it.
                Err(TransportError::Frame(_)) => {}
                Err(_) => break,
            }
        }
        for response in manager.pump() {
            let _ = server_end.send(&response);
        }
    }

    /// The live manager's aggregate report, for assertions. `None`
    /// while dead.
    #[must_use]
    pub fn report(&self) -> Option<ServeReport> {
        self.manager.as_ref().map(SessionManager::report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hds_core::{OptimizerConfig, PrefetchPolicy, RunMode};
    use hds_serve::wire::Frame;
    use hds_serve::{ClientConfig, ClientSession, ClientStatus};

    fn cfg() -> ServeConfig {
        ServeConfig::new(
            OptimizerConfig::test_scale(),
            RunMode::Optimize(PrefetchPolicy::StreamTail),
        )
    }

    #[test]
    fn kill_loses_all_state_and_restart_boots_empty() {
        let mut owner = OwnerProcess::new(0, cfg()).unwrap();
        assert!(!owner.is_dead());
        let transport = owner.connect();
        drop(transport);
        owner.kill();
        assert!(owner.is_dead());
        assert!(owner.report().is_none());
        owner.restart().unwrap();
        assert!(!owner.is_dead());
        assert_eq!(owner.restarts(), 1);
        assert_eq!(owner.report().unwrap().opened, 0);
    }

    #[test]
    fn a_client_session_completes_against_an_owner() {
        use hds_serve::load::{generate, LoadConfig};
        let mut owner = OwnerProcess::new(0, cfg()).unwrap();
        let loads = generate(&LoadConfig {
            tenants: 1,
            chunks_per_tenant: 3,
            events_per_chunk: 40,
            seed: 11,
        })
        .unwrap();
        let mut client: ClientSession<LoopbackTransport> = ClientSession::new(ClientConfig {
            goodbye: false,
            ..ClientConfig::default()
        });
        client.add_tenant(
            &loads[0].name,
            loads[0].procedures.clone(),
            loads[0].chunks.clone(),
        );
        client.connect(owner.connect());
        for _ in 0..10_000 {
            match client.step().unwrap() {
                ClientStatus::Done => break,
                ClientStatus::NeedReconnect => panic!("loopback never dies"),
                ClientStatus::Working => {}
            }
            owner.tick();
        }
        let report = client.take_report(&loads[0].name).expect("report arrived");
        assert!(!report.report_json.is_empty());
        // The owner is reachable only through frames: a dead one
        // answers nothing.
        owner.kill();
        owner.tick();
        let _ = Frame::Goodbye; // wire types in scope — owners speak only HDSW
    }
}
