//! Synthetic benchmark models of the paper's evaluation programs.
//!
//! The paper evaluates on "several of the memory-performance-limited
//! SPECint2000 benchmarks, and `boxsim`, a graphics application that
//! simulates spheres bouncing in a box" (§4.1), run with their largest
//! (ref) inputs. Those binaries and inputs are not reproducible here, so
//! this crate models each benchmark's *memory behaviour* — the only thing
//! the prefetching scheme can see — as a deterministic event-stream
//! generator:
//!
//! * [`SyntheticWorkload`] — a parameterised pointer-program model:
//!   a set of heap-allocated *hot traversals* (linked structures whose
//!   walk emits a fixed `(pc, addr)` sequence — the hot data streams),
//!   mixed with noise accesses over a large working set, interleaved
//!   compute, procedure call/loop structure, and optional phase shifts.
//! * [`BoxSim`] — an actual little physics simulation of spheres bouncing
//!   in a gridded box (cell lists walked each step), the paper's sixth
//!   benchmark with its stated 1000 spheres.
//! * [`suite`] — the six configured benchmarks with per-benchmark
//!   parameters chosen to match each program's published memory character
//!   (e.g. `parser`'s hot streams are *sequentially allocated*, which is
//!   why Seq-pref helps it and only it, §4.3).
//!
//! Everything is seeded and deterministic: "executions of deterministic
//! benchmarks are repeatable, which helps testing" (§2.2).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod boxsim;
mod suite;
mod synthetic;

pub use boxsim::{BoxSim, BoxSimConfig};
pub use suite::{benchmark, suite, Benchmark, Scale};
pub use synthetic::{SyntheticConfig, SyntheticWorkload};

use hds_vulcan::{Procedure, ProgramSource};

/// A benchmark program: an event source plus the static procedure list
/// needed to build its editable [`hds_vulcan::Image`].
pub trait Workload: ProgramSource {
    /// The procedures of the simulated binary.
    fn procedures(&self) -> Vec<Procedure>;

    /// Total data references this workload will emit (for progress and
    /// experiment budgeting).
    fn planned_refs(&self) -> u64;
}
