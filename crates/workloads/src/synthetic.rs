//! The parameterised pointer-program model.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hds_trace::{AccessKind, Addr, DataRef, Pc};
use hds_vulcan::{Event, ProcId, Procedure, ProgramSource};

use crate::Workload;

/// Cache block size the address generators align to (the paper machine's
/// 32 bytes).
const BLOCK: u64 = 32;

/// Parameters of a [`SyntheticWorkload`].
///
/// The defaults model a generic pointer-chasing program; the
/// [`suite`](crate::suite) functions override them per benchmark.
#[derive(Clone, Debug, PartialEq)]
pub struct SyntheticConfig {
    /// Benchmark name for reports.
    pub name: String,
    /// RNG seed for the program's *structure* (stream lengths, pc
    /// layout, weights) — same seed, same "program".
    pub seed: u64,
    /// RNG seed for the program's *data* (heap addresses, traversal
    /// order, noise) — a different `data_seed` with the same `seed`
    /// models running the same program on a different input, as in the
    /// paper's stability study \[10\]. Defaults to `seed`.
    pub data_seed: Option<u64>,
    /// Total data references to emit.
    pub total_refs: u64,
    /// Total number of traversals (structures) the program walks. Only
    /// a fraction of them are hot enough to cross the 1%-of-trace heat
    /// threshold; the rest form the long tail that (together with noise)
    /// creates cache pressure, like the thousands of minor streams real
    /// programs have.
    pub stream_count: usize,
    /// Number of *core* traversals with high pick weight — the streams
    /// that should end up above the heat threshold (Table 2 reports
    /// 14–41 detected streams per cycle).
    pub hot_core: usize,
    /// Pick weight of core traversals relative to tail traversals
    /// (weight 1). Higher values concentrate traffic on the detectable
    /// streams — programs like vpr have very high hot-stream coverage.
    pub core_weight: u32,
    /// Stream length range in references (the paper: "15–20 object
    /// references on average").
    pub stream_len: (usize, usize),
    /// Fraction of iterations that walk a hot traversal (the rest are
    /// noise); prior work attributes ~90% of references to hot streams.
    pub hot_fraction: f64,
    /// Noise working-set size in cache blocks (sized well beyond L2 so
    /// noise misses).
    pub noise_blocks: u64,
    /// Length range of one noise scan, in references. Longer scans put
    /// more eviction pressure on the caches between hot walks.
    pub noise_run: (usize, usize),
    /// Are the hot traversals' nodes allocated at sequential addresses
    /// (parser) or scattered across the heap (everything else)?
    pub sequential_alloc: bool,
    /// Plain instructions between consecutive references (min, max) —
    /// sets how memory-bound the program is.
    pub work_per_ref: (u32, u32),
    /// Number of procedures the traversal code is spread over (Table 2
    /// reports 6–12 procedures modified).
    pub proc_count: usize,
    /// Distinct load/store pcs per hot traversal: each traversal is its
    /// own loop nest with its own instructions, so streams do not share
    /// pcs (which keeps injected check chains short, as in real code
    /// where the two head pcs are specific instructions).
    pub pcs_per_stream: usize,
    /// References between consecutive check sites (loop back-edges) —
    /// sets the dynamic-check density and hence the Figure 11 "Base"
    /// overhead.
    pub refs_per_check: u32,
    /// Do traversals of the same procedure share their *first* reference
    /// (loading the container's head object from a common pc)? This is
    /// how real structure walks begin, and it is what makes one-element
    /// prefixes ambiguous: with `headLen = 1` the matcher fires on the
    /// shared entry reference and must prefetch the union of every
    /// continuation's tail (§4.3's "prefix that is too short may hurt
    /// prefetching accuracy").
    pub shared_entry: bool,
    /// If set, every `period` references the hot-traversal *selection*
    /// rotates to a different subset — program phase behaviour, which is
    /// what makes a dynamic (re-profiling) scheme worthwhile.
    pub phase_period: Option<u64>,
    /// Number of distinct phase groups when `phase_period` is set.
    pub phase_groups: usize,
}

impl Default for SyntheticConfig {
    fn default() -> Self {
        SyntheticConfig {
            name: "synthetic".to_string(),
            seed: 0x5EED,
            data_seed: None,
            total_refs: 200_000,
            stream_count: 96,
            hot_core: 24,
            core_weight: 10,
            stream_len: (14, 22),
            hot_fraction: 0.85,
            noise_blocks: 1 << 17, // 4 MB
            noise_run: (3, 10),
            sequential_alloc: false,
            work_per_ref: (2, 6),
            proc_count: 8,
            pcs_per_stream: 10,
            refs_per_check: 8,
            shared_entry: true,
            phase_period: None,
            phase_groups: 2,
        }
    }
}

/// One hot traversal: the fixed reference sequence its walk emits.
#[derive(Clone, Debug)]
struct Traversal {
    refs: Vec<DataRef>,
    /// Procedure whose loop walks this structure.
    proc: ProcId,
    /// Relative pick weight (some structures are much hotter).
    weight: u32,
    /// Phase group this traversal belongs to.
    group: usize,
}

/// The parameterised pointer-program model. See [`SyntheticConfig`].
///
/// # Examples
///
/// ```
/// use hds_vulcan::ProgramSource;
/// use hds_workloads::{SyntheticConfig, SyntheticWorkload, Workload};
///
/// let mut w = SyntheticWorkload::new(SyntheticConfig {
///     total_refs: 1000,
///     ..SyntheticConfig::default()
/// });
/// assert!(!w.procedures().is_empty());
/// let mut refs = 0;
/// while let Some(e) = w.next_event() {
///     if matches!(e, hds_vulcan::Event::Access(..)) {
///         refs += 1;
///     }
/// }
/// // The source finishes the iteration in progress, so it may overshoot
/// // the target slightly.
/// assert!(refs >= 1000);
/// ```
#[derive(Clone, Debug)]
pub struct SyntheticWorkload {
    config: SyntheticConfig,
    rng: SmallRng,
    procs: Vec<Procedure>,
    traversals: Vec<Traversal>,
    noise_base: u64,
    noise_pcs: Vec<Pc>,
    noise_proc: ProcId,
    /// References emitted so far.
    emitted: u64,
    /// References until the next BackEdge check site.
    until_check: u32,
    /// Queue of pending events for the current iteration.
    pending: std::collections::VecDeque<Event>,
    /// Current phase group.
    phase: usize,
    finished: bool,
}

impl SyntheticWorkload {
    /// Builds the heap layout and procedures for a configuration.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (no streams, zero-length
    /// streams, `hot_fraction` outside `[0,1]`).
    #[must_use]
    pub fn new(config: SyntheticConfig) -> Self {
        assert!(config.stream_count > 0, "need at least one stream");
        assert!(
            config.hot_core >= 1 && config.hot_core <= config.stream_count,
            "hot_core must be within 1..=stream_count"
        );
        assert!(
            config.stream_len.0 >= 3,
            "streams must have at least 3 refs"
        );
        assert!(
            config.stream_len.0 <= config.stream_len.1,
            "bad stream_len range"
        );
        assert!(
            (0.0..=1.0).contains(&config.hot_fraction),
            "hot_fraction must be in [0,1]"
        );
        assert!(config.proc_count >= 1 && config.pcs_per_stream >= 2);
        // Structure (lengths, weights, pc shapes) comes from `seed`; the
        // heap layout and runtime dynamics come from `data_seed`.
        let mut structure_rng = SmallRng::seed_from_u64(config.seed);
        let mut rng = SmallRng::seed_from_u64(config.data_seed.unwrap_or(config.seed));

        // Heap layout. Streams first, then the noise region.
        let mut next_block: u64 = 64; // leave low memory unused
        let hot_arena_base = next_block;
        // Scattered allocations draw from a dedicated arena 4x the hot
        // footprint so nodes are spread out but stable.
        let hot_refs_estimate: u64 = (config.stream_count * config.stream_len.1) as u64;
        let scatter_span = (hot_refs_estimate * 8).max(1024);
        let mut taken = std::collections::HashSet::new();
        let mut traversals = Vec::with_capacity(config.stream_count);
        // One shared "container head" reference per procedure: walks of
        // any structure owned by that procedure begin by loading it.
        let entry_blocks: Vec<u64> = (0..config.proc_count as u64).map(|i| 8 + i).collect();
        for s in 0..config.stream_count {
            let len = structure_rng.gen_range(config.stream_len.0..=config.stream_len.1);
            let proc = ProcId((s % config.proc_count) as u32);
            // Each traversal gets its own pc range inside its procedure:
            // proc i owns pcs i*100_000 + slot*400 + ...
            let slot = s / config.proc_count;
            let pcs: Vec<Pc> = (0..config.pcs_per_stream)
                .map(|j| Pc((proc.index() * 100_000 + 16 + slot * 400 + j * 4) as u32))
                .collect();
            let mut refs = Vec::with_capacity(len);
            if config.shared_entry {
                let entry_pc = Pc((proc.index() * 100_000 + 8) as u32);
                refs.push(DataRef::new(
                    entry_pc,
                    Addr(entry_blocks[proc.index()] * BLOCK),
                ));
            }
            let body_len = if config.shared_entry { len - 1 } else { len };
            for k in 0..body_len {
                let block = if config.sequential_alloc {
                    let b = next_block;
                    next_block += 1;
                    b
                } else {
                    // Scattered: a fresh random block in the arena.
                    loop {
                        let b = hot_arena_base + rng.gen_range(0..scatter_span);
                        if taken.insert(b) {
                            break b;
                        }
                    }
                };
                // Traversal loops reuse their own handful of load pcs,
                // like real list/tree walks.
                let pc = pcs[k % pcs.len()];
                refs.push(DataRef::new(pc, Addr(block * BLOCK)));
            }
            // Core traversals dominate the traffic (and cross the heat
            // threshold); the tail shares the rest.
            let weight = if s < config.hot_core {
                config.core_weight
            } else {
                1
            };
            traversals.push(Traversal {
                refs,
                proc,
                weight,
                // Pair-blocked assignment so phase groups do not
                // correlate with the round-robin procedure assignment.
                group: (s / 2) % config.phase_groups.max(1),
            });
        }
        if !config.sequential_alloc {
            next_block = hot_arena_base + scatter_span;
        }
        let noise_base = next_block;

        // Procedures: proc i owns the pcs of the traversals assigned to
        // it; the last procedure is the noise procedure.
        let mut procs = Vec::with_capacity(config.proc_count + 1);
        for i in 0..config.proc_count {
            let mut pcs: Vec<Pc> = traversals
                .iter()
                .filter(|t: &&Traversal| t.proc.index() == i)
                .flat_map(|t| t.refs.iter().map(|r| r.pc))
                .collect();
            pcs.sort_unstable();
            pcs.dedup();
            procs.push(Procedure::new(format!("traverse_{i}"), pcs));
        }
        let noise_proc = ProcId(config.proc_count as u32);
        let noise_pcs: Vec<Pc> = (0..6)
            .map(|j| Pc((config.proc_count * 100_000 + 16 + j * 4) as u32))
            .collect();
        procs.push(Procedure::new("noise_scan", noise_pcs.clone()));

        SyntheticWorkload {
            until_check: config.refs_per_check,
            rng,
            procs,
            traversals,
            noise_base,
            noise_pcs,
            noise_proc,
            emitted: 0,
            pending: std::collections::VecDeque::new(),
            phase: 0,
            finished: false,
            config,
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &SyntheticConfig {
        &self.config
    }

    /// The exact reference sequences of the hot traversals (ground truth
    /// for tests: the analysis should rediscover these).
    #[must_use]
    pub fn hot_traversals(&self) -> Vec<Vec<DataRef>> {
        self.traversals.iter().map(|t| t.refs.clone()).collect()
    }

    /// Schedules one program iteration (a procedure activation walking a
    /// hot structure, or a noise scan) into the pending queue.
    fn schedule_iteration(&mut self) {
        // Phase rotation.
        if let Some(period) = self.config.phase_period {
            let phase = (self.emitted / period) as usize % self.config.phase_groups.max(1);
            self.phase = phase;
        }
        let hot = self.rng.gen_bool(self.config.hot_fraction);
        if hot {
            // Weighted pick among the traversals of the current group
            // (all groups if no phasing).
            let candidates: Vec<usize> = self
                .traversals
                .iter()
                .enumerate()
                .filter(|(_, t)| self.config.phase_period.is_none() || t.group == self.phase)
                .map(|(i, _)| i)
                .collect();
            let total_weight: u32 = candidates.iter().map(|&i| self.traversals[i].weight).sum();
            let mut pick = self.rng.gen_range(0..total_weight.max(1));
            let mut chosen = candidates[0];
            for &i in &candidates {
                let w = self.traversals[i].weight;
                if pick < w {
                    chosen = i;
                    break;
                }
                pick -= w;
            }
            let proc = self.traversals[chosen].proc;
            let refs = self.traversals[chosen].refs.clone();
            self.pending.push_back(Event::Enter(proc));
            for (k, &r) in refs.iter().enumerate() {
                self.push_work();
                self.push_ref(
                    r,
                    if k % 7 == 6 {
                        AccessKind::Store
                    } else {
                        AccessKind::Load
                    },
                );
            }
            self.pending.push_back(Event::Exit(proc));
        } else {
            // Noise: a short scan of random blocks in the big region.
            let (lo, hi) = self.config.noise_run;
            let n = self.rng.gen_range(lo..=hi);
            self.pending.push_back(Event::Enter(self.noise_proc));
            for _ in 0..n {
                self.push_work();
                let block = self.noise_base + self.rng.gen_range(0..self.config.noise_blocks);
                let pc = self.noise_pcs[self.rng.gen_range(0..self.noise_pcs.len())];
                self.push_ref(DataRef::new(pc, Addr(block * BLOCK)), AccessKind::Load);
            }
            self.pending.push_back(Event::Exit(self.noise_proc));
        }
    }

    fn push_work(&mut self) {
        let (lo, hi) = self.config.work_per_ref;
        let n = self.rng.gen_range(lo..=hi);
        if n > 0 {
            self.pending.push_back(Event::Work(n));
        }
    }

    fn push_ref(&mut self, r: DataRef, kind: AccessKind) {
        // Interleave loop back-edge check sites at the configured density.
        if self.until_check == 0 {
            // The back-edge belongs to whichever procedure is on top; the
            // executor tracks that, we just tag the owning proc of the pc.
            self.pending
                .push_back(Event::BackEdge(self.proc_of_pc(r.pc)));
            self.until_check = self.config.refs_per_check;
        }
        self.until_check -= 1;
        self.pending.push_back(Event::Access(r, kind));
    }

    fn proc_of_pc(&self, pc: Pc) -> ProcId {
        ProcId(pc.0 / 100_000)
    }
}

impl ProgramSource for SyntheticWorkload {
    fn next_event(&mut self) -> Option<Event> {
        loop {
            if let Some(e) = self.pending.pop_front() {
                if matches!(e, Event::Access(..)) {
                    self.emitted += 1;
                }
                return Some(e);
            }
            if self.finished || self.emitted >= self.config.total_refs {
                self.finished = true;
                return None;
            }
            self.schedule_iteration();
        }
    }

    fn name(&self) -> &str {
        &self.config.name
    }
}

impl Workload for SyntheticWorkload {
    fn procedures(&self) -> Vec<Procedure> {
        self.procs.clone()
    }

    fn planned_refs(&self) -> u64 {
        self.config.total_refs
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn drain(w: &mut SyntheticWorkload) -> Vec<Event> {
        let mut events = Vec::new();
        while let Some(e) = w.next_event() {
            events.push(e);
        }
        events
    }

    fn config(total: u64) -> SyntheticConfig {
        SyntheticConfig {
            total_refs: total,
            ..SyntheticConfig::default()
        }
    }

    #[test]
    fn emits_exactly_total_refs() {
        let mut w = SyntheticWorkload::new(config(5_000));
        let events = drain(&mut w);
        let refs = events
            .iter()
            .filter(|e| matches!(e, Event::Access(..)))
            .count();
        assert!(refs >= 5_000);
        // At most one extra iteration's worth of overshoot.
        assert!(refs < 5_000 + 40);
        // Exhausted source stays exhausted.
        assert_eq!(w.next_event(), None);
    }

    #[test]
    fn deterministic_streams() {
        let a = drain(&mut SyntheticWorkload::new(config(3_000)));
        let b = drain(&mut SyntheticWorkload::new(config(3_000)));
        assert_eq!(a, b);
        // Different seed: different stream.
        let mut c2 = config(3_000);
        c2.seed = 42;
        let c = drain(&mut SyntheticWorkload::new(c2));
        assert_ne!(a, c);
    }

    #[test]
    fn enters_and_exits_balance() {
        let mut w = SyntheticWorkload::new(config(4_000));
        let mut depth = 0i64;
        while let Some(e) = w.next_event() {
            match e {
                Event::Enter(_) => depth += 1,
                Event::Exit(_) => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
    }

    #[test]
    fn accesses_only_inside_procedures() {
        let mut w = SyntheticWorkload::new(config(2_000));
        let mut depth = 0i64;
        while let Some(e) = w.next_event() {
            match e {
                Event::Enter(_) => depth += 1,
                Event::Exit(_) => depth -= 1,
                Event::Access(..) | Event::BackEdge(_) => assert!(depth > 0, "{e:?} outside proc"),
                Event::Work(_) | Event::Prefetch(_) | Event::Thread(_) => {}
            }
        }
    }

    #[test]
    fn hot_traversals_repeat_verbatim() {
        let mut w = SyntheticWorkload::new(config(20_000));
        let hot = w.hot_traversals();
        let events = drain(&mut w);
        let refs: Vec<DataRef> = events
            .iter()
            .filter_map(|e| match e {
                Event::Access(r, _) => Some(*r),
                _ => None,
            })
            .collect();
        // The hottest traversal occurs many times as a contiguous
        // subsequence.
        let needle = &hot[0];
        let mut count = 0;
        let mut i = 0;
        while i + needle.len() <= refs.len() {
            if refs[i..i + needle.len()] == needle[..] {
                count += 1;
                i += needle.len();
            } else {
                i += 1;
            }
        }
        assert!(count >= 3, "hot traversal repeated only {count} times");
    }

    #[test]
    fn sequential_alloc_produces_adjacent_blocks() {
        let mut c = config(1_000);
        c.sequential_alloc = true;
        let w = SyntheticWorkload::new(c);
        for t in w.hot_traversals() {
            // The first reference is the shared container head; the
            // structure body after it is block-adjacent.
            for pair in t[1..].windows(2) {
                let b0 = pair[0].addr.block(BLOCK);
                let b1 = pair[1].addr.block(BLOCK);
                assert_eq!(b1, b0 + 1, "sequential alloc must be block-adjacent");
            }
        }
    }

    #[test]
    fn shared_entry_is_common_within_a_procedure() {
        let w = SyntheticWorkload::new(config(1_000));
        let hot = w.hot_traversals();
        // Streams 0 and proc_count share a procedure, hence an entry ref.
        let pc = w.config().proc_count;
        assert_eq!(hot[0][0], hot[pc][0], "same-proc streams share their entry");
        assert_ne!(hot[0][1], hot[pc][1], "but diverge immediately after");
        // Different procedures have different entries.
        assert_ne!(hot[0][0], hot[1][0]);
    }

    #[test]
    fn data_seed_changes_addresses_but_not_structure() {
        let base = SyntheticWorkload::new(config(1_000));
        let mut other_cfg = config(1_000);
        other_cfg.data_seed = Some(0xD1FF);
        let other = SyntheticWorkload::new(other_cfg);
        let (a, b) = (base.hot_traversals(), other.hot_traversals());
        assert_eq!(a.len(), b.len());
        let mut addr_diffs = 0;
        for (ta, tb) in a.iter().zip(&b) {
            // Same structure: same length and same pc sequence.
            assert_eq!(ta.len(), tb.len(), "structure changed with data seed");
            let pcs_a: Vec<_> = ta.iter().map(|r| r.pc).collect();
            let pcs_b: Vec<_> = tb.iter().map(|r| r.pc).collect();
            assert_eq!(pcs_a, pcs_b, "pc layout changed with data seed");
            // Different input: (mostly) different heap addresses.
            addr_diffs += ta
                .iter()
                .zip(tb)
                .filter(|(ra, rb)| ra.addr != rb.addr)
                .count();
        }
        assert!(addr_diffs > 0, "data seed had no effect on addresses");
    }

    #[test]
    fn shared_entry_can_be_disabled() {
        let mut c = config(1_000);
        c.shared_entry = false;
        let w = SyntheticWorkload::new(c);
        let hot = w.hot_traversals();
        let pc = w.config().proc_count;
        assert_ne!(hot[0][0], hot[pc][0]);
    }

    #[test]
    fn scattered_alloc_is_not_sequential() {
        let w = SyntheticWorkload::new(config(1_000));
        let mut adjacent = 0;
        let mut total = 0;
        for t in w.hot_traversals() {
            for pair in t.windows(2) {
                total += 1;
                if pair[1].addr.block(BLOCK) == pair[0].addr.block(BLOCK) + 1 {
                    adjacent += 1;
                }
            }
        }
        assert!(
            (adjacent as f64) < (total as f64) * 0.1,
            "scattered layout looks sequential: {adjacent}/{total}"
        );
    }

    #[test]
    fn stream_addresses_are_distinct_blocks() {
        let w = SyntheticWorkload::new(config(100));
        let mut blocks = HashSet::new();
        for t in w.hot_traversals() {
            // Skip the shared per-procedure entry reference.
            for r in &t[1..] {
                assert!(
                    blocks.insert(r.addr.block(BLOCK)),
                    "block reused across stream nodes"
                );
            }
        }
    }

    #[test]
    fn check_sites_at_configured_density() {
        let mut c = config(8_000);
        c.refs_per_check = 4;
        let mut w = SyntheticWorkload::new(c);
        let events = drain(&mut w);
        let refs = events
            .iter()
            .filter(|e| matches!(e, Event::Access(..)))
            .count();
        let checks = events
            .iter()
            .filter(|e| matches!(e, Event::BackEdge(_) | Event::Enter(_)))
            .count();
        // BackEdges alone give refs/4; Enters add more.
        assert!(checks >= refs / 4, "checks {checks} for {refs} refs");
        assert!(checks <= refs, "implausibly many checks");
    }

    #[test]
    fn phase_rotation_changes_active_streams() {
        let mut c = config(40_000);
        c.phase_period = Some(10_000);
        c.phase_groups = 2;
        c.hot_fraction = 1.0;
        let mut w = SyntheticWorkload::new(c);
        let groups: Vec<usize> = w.traversals.iter().map(|t| t.group).collect();
        let hot = w.hot_traversals();
        let events = drain(&mut w);
        let refs: Vec<DataRef> = events
            .iter()
            .filter_map(|e| match e {
                Event::Access(r, _) => Some(*r),
                _ => None,
            })
            .collect();
        // First-phase refs come only from group-0 traversals.
        let early = &refs[..2_000];
        let g1_first: HashSet<DataRef> = hot
            .iter()
            .zip(&groups)
            .filter(|(_, &g)| g == 1)
            .flat_map(|(t, _)| t.iter().copied())
            .collect();
        let leaked = early.iter().filter(|r| g1_first.contains(r)).count();
        assert_eq!(leaked, 0, "group-1 streams active during phase 0");
    }

    #[test]
    #[should_panic(expected = "hot_fraction")]
    fn invalid_hot_fraction_rejected() {
        let mut c = config(10);
        c.hot_fraction = 1.5;
        let _ = SyntheticWorkload::new(c);
    }

    #[test]
    fn procedures_cover_all_pcs() {
        let w = SyntheticWorkload::new(config(100));
        let procs = w.procedures();
        let all_pcs: HashSet<Pc> = procs.iter().flat_map(|p| p.pcs().iter().copied()).collect();
        for t in w.hot_traversals() {
            for r in &t {
                assert!(all_pcs.contains(&r.pc), "{} not owned by any proc", r.pc);
            }
        }
        assert_eq!(procs.len(), w.config().proc_count + 1);
    }
}
