//! The six configured benchmarks of the paper's evaluation.
//!
//! Per-benchmark parameters are chosen to match each program's published
//! memory character and the paper's Table 2 (hot stream counts,
//! procedures touched) and §4.3 commentary (parser's sequentially
//! allocated streams). Absolute run lengths are scaled to simulation
//! budgets — `Scale` picks how far; the *relative* lengths preserve the
//! ordering of Table 2's optimization-cycle counts
//! (twolf > mcf > vpr ≈ boxsim > parser > vortex).

use crate::boxsim::{BoxSim, BoxSimConfig};
use crate::synthetic::{SyntheticConfig, SyntheticWorkload};
use crate::Workload;

/// The benchmarks of the evaluation (§4.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Benchmark {
    /// SPECint2000 175.vpr: FPGA placement and routing — graph/netlist
    /// traversals with long, highly regular hot streams. The paper's
    /// biggest winner (19%).
    Vpr,
    /// SPECint2000 181.mcf: network simplex — relentless pointer chasing
    /// over arc/node lists, large working set.
    Mcf,
    /// SPECint2000 300.twolf: standard-cell placement — many smaller
    /// streams, frequent phase changes (most optimization cycles in
    /// Table 2).
    Twolf,
    /// SPECint2000 197.parser: link grammar parser — dictionary linked
    /// lists that happen to be *sequentially allocated*, the one program
    /// Seq-pref helps (§4.3).
    Parser,
    /// SPECint2000 255.vortex: OO database — modest stream coverage, the
    /// paper's smallest win (5%).
    Vortex,
    /// boxsim: 1000 spheres bouncing in a box (§4.1).
    Boxsim,
}

impl Benchmark {
    /// All six, in the paper's presentation order.
    pub const ALL: [Benchmark; 6] = [
        Benchmark::Vpr,
        Benchmark::Mcf,
        Benchmark::Twolf,
        Benchmark::Parser,
        Benchmark::Vortex,
        Benchmark::Boxsim,
    ];

    /// The benchmark's display name.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Vpr => "vpr",
            Benchmark::Mcf => "mcf",
            Benchmark::Twolf => "twolf",
            Benchmark::Parser => "parser",
            Benchmark::Vortex => "vortex",
            Benchmark::Boxsim => "boxsim",
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How big to make the runs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// Tiny runs for unit/integration tests (tens of thousands of refs).
    Test,
    /// The experiment scale used by the figure/table binaries (millions
    /// of refs; several optimization cycles per benchmark).
    Paper,
}

impl Scale {
    /// Multiplier applied to the per-benchmark base length (in units of
    /// 100k references).
    fn refs(self, base_100k: u64) -> u64 {
        match self {
            Scale::Test => 60_000,
            Scale::Paper => base_100k * 100_000,
        }
    }
}

/// Builds one configured benchmark.
#[must_use]
pub fn benchmark(which: Benchmark, scale: Scale) -> Box<dyn Workload> {
    match which {
        // vpr: few large procedures, long regular streams, very high hot
        // coverage -> the largest prefetching win.
        Benchmark::Vpr => Box::new(SyntheticWorkload::new(SyntheticConfig {
            name: "vpr".into(),
            seed: 0x7001,
            data_seed: None,
            total_refs: scale.refs(48),
            stream_count: 150,
            hot_core: 44,
            core_weight: 10,
            stream_len: (16, 26),
            hot_fraction: 0.92,
            noise_blocks: 1 << 17,
            noise_run: (3, 10),
            sequential_alloc: false,
            work_per_ref: (2, 5),
            proc_count: 7,
            pcs_per_stream: 10,
            refs_per_check: 10,
            shared_entry: true,
            phase_period: Some(2_400_000),
            phase_groups: 2,
        })),
        // mcf: pointer chasing over a big network; heavy misses, strong
        // but slightly noisier streams; long run (many cycles).
        Benchmark::Mcf => Box::new(SyntheticWorkload::new(SyntheticConfig {
            name: "mcf".into(),
            seed: 0x7002,
            data_seed: None,
            total_refs: scale.refs(96),
            stream_count: 160,
            hot_core: 40,
            core_weight: 12,
            stream_len: (14, 22),
            hot_fraction: 0.9,
            noise_blocks: 1 << 18, // 8 MB: the benchmark's huge arena
            noise_run: (4, 10),
            sequential_alloc: false,
            work_per_ref: (1, 4), // extremely memory-bound
            proc_count: 6,
            pcs_per_stream: 9,
            refs_per_check: 12,
            shared_entry: true,
            phase_period: Some(2_000_000),
            phase_groups: 2,
        })),
        // twolf: many small streams, frequent phase changes, smallest
        // procedures (densest checks -> highest Base overhead).
        Benchmark::Twolf => Box::new(SyntheticWorkload::new(SyntheticConfig {
            name: "twolf".into(),
            seed: 0x7003,
            data_seed: None,
            total_refs: scale.refs(144),
            stream_count: 140,
            hot_core: 27,
            core_weight: 8,
            stream_len: (12, 18),
            hot_fraction: 0.9,
            noise_blocks: 1 << 16,
            noise_run: (4, 10),
            sequential_alloc: false,
            work_per_ref: (2, 6),
            proc_count: 11,
            pcs_per_stream: 8,
            refs_per_check: 6,
            shared_entry: true,
            phase_period: None,
            phase_groups: 1,
        })),
        // parser: dictionary lists allocated in order -> sequential hot
        // streams; small run (few cycles in Table 2); dense checks
        // (parser has the highest check overhead in Figure 11).
        Benchmark::Parser => Box::new(SyntheticWorkload::new(SyntheticConfig {
            name: "parser".into(),
            seed: 0x7004,
            data_seed: None,
            total_refs: scale.refs(24),
            stream_count: 130,
            hot_core: 22,
            core_weight: 7,
            stream_len: (12, 20),
            hot_fraction: 0.88,
            noise_blocks: 1 << 16,
            noise_run: (4, 12),
            sequential_alloc: true,
            work_per_ref: (2, 6),
            proc_count: 9,
            pcs_per_stream: 8,
            refs_per_check: 5,
            shared_entry: true,
            phase_period: None,
            phase_groups: 1,
        })),
        // vortex: OO database; lowest stream coverage and count -> the
        // smallest win.
        Benchmark::Vortex => Box::new(SyntheticWorkload::new(SyntheticConfig {
            name: "vortex".into(),
            seed: 0x7005,
            data_seed: None,
            total_refs: scale.refs(18),
            stream_count: 110,
            hot_core: 15,
            core_weight: 6,
            stream_len: (12, 18),
            hot_fraction: 0.62,
            noise_blocks: 1 << 17,
            noise_run: (4, 12),
            sequential_alloc: false,
            work_per_ref: (4, 9), // more compute per reference
            proc_count: 12,
            pcs_per_stream: 8,
            refs_per_check: 9,
            shared_entry: true,
            phase_period: None,
            phase_groups: 1,
        })),
        Benchmark::Boxsim => Box::new(BoxSim::new(BoxSimConfig {
            spheres: 1000,
            grid_side: 8,
            total_refs: match scale {
                Scale::Test => 60_000,
                Scale::Paper => 8_500_000,
            },
            seed: 0x7006,
            refs_per_check: 25,
        })),
    }
}

/// The full six-benchmark suite.
#[must_use]
pub fn suite(scale: Scale) -> Vec<Box<dyn Workload>> {
    Benchmark::ALL
        .iter()
        .map(|&b| benchmark(b, scale))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hds_vulcan::Event;

    #[test]
    fn suite_has_six_named_benchmarks() {
        let s = suite(Scale::Test);
        let names: Vec<&str> = s.iter().map(|w| w.name()).collect();
        assert_eq!(
            names,
            vec!["vpr", "mcf", "twolf", "parser", "vortex", "boxsim"]
        );
    }

    #[test]
    fn every_benchmark_emits_events_and_procedures() {
        for mut w in suite(Scale::Test) {
            let procs = w.procedures();
            assert!(!procs.is_empty(), "{} has no procedures", w.name());
            assert!(w.planned_refs() > 0);
            let mut refs = 0u64;
            let mut checks = 0u64;
            while let Some(e) = w.next_event() {
                match e {
                    Event::Access(..) => refs += 1,
                    Event::Enter(_) | Event::BackEdge(_) => checks += 1,
                    _ => {}
                }
            }
            assert!(
                refs >= w.planned_refs(),
                "{} emitted too few refs",
                w.name()
            );
            assert!(checks > 0, "{} has no check sites", w.name());
        }
    }

    #[test]
    fn paper_scale_lengths_preserve_table2_ordering() {
        // Run lengths drive the optimization-cycle counts; Table 2 orders
        // them twolf (55) > mcf (36) > boxsim (19) > vpr (17) >
        // parser (4) > vortex (3).
        let len = |b| benchmark(b, Scale::Paper).planned_refs();
        assert!(len(Benchmark::Twolf) > len(Benchmark::Mcf));
        assert!(len(Benchmark::Mcf) > len(Benchmark::Boxsim));
        assert!(len(Benchmark::Boxsim) >= len(Benchmark::Vpr));
        assert!(len(Benchmark::Vpr) > len(Benchmark::Parser));
        assert!(len(Benchmark::Parser) > len(Benchmark::Vortex));
    }

    #[test]
    fn benchmark_display_names() {
        assert_eq!(Benchmark::Vpr.to_string(), "vpr");
        assert_eq!(Benchmark::ALL.len(), 6);
    }
}
