//! `boxsim`: spheres bouncing in a box — an actual (small, integer-exact)
//! simulation, not a trace generator.
//!
//! The paper uses "boxsim … to simulate 1000 bouncing spheres" (§4.1).
//! This model keeps the essential memory behaviour of such a code:
//!
//! * spheres live in heap records (two cache blocks each: position data
//!   and velocity data);
//! * a uniform grid partitions the box; each cell keeps a linked list of
//!   its spheres, and each simulation step walks every cell's list —
//!   producing per-cell reference sequences that repeat step after step
//!   (the hot data streams) until spheres migrate between cells;
//! * migrations (bounces and crossings) slowly reshuffle the lists,
//!   giving the program genuine phase drift that a dynamic prefetcher
//!   must track.
//!
//! All physics is integer fixed-point, so the simulation is bit-exact
//! deterministic.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use hds_trace::{AccessKind, Addr, DataRef, Pc};
use hds_vulcan::{Event, ProcId, Procedure, ProgramSource};

use crate::Workload;

const BLOCK: u64 = 32;
/// Fixed-point scale (16.16).
const FP: i64 = 1 << 16;

/// Configuration for [`BoxSim`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BoxSimConfig {
    /// Number of spheres (the paper simulates 1000).
    pub spheres: usize,
    /// Grid cells per side (cells = side^2; 2-D box keeps lists long).
    pub grid_side: usize,
    /// Total data references to emit.
    pub total_refs: u64,
    /// RNG seed for initial positions/velocities.
    pub seed: u64,
    /// References between loop back-edge check sites.
    pub refs_per_check: u32,
}

impl Default for BoxSimConfig {
    fn default() -> Self {
        BoxSimConfig {
            spheres: 1000,
            grid_side: 8,
            total_refs: 2_000_000,
            seed: 0xB0C5,
            refs_per_check: 8,
        }
    }
}

#[derive(Clone, Copy, Debug)]
struct Sphere {
    /// Position in fixed-point box coordinates.
    x: i64,
    y: i64,
    /// Velocity.
    vx: i64,
    vy: i64,
    /// Heap block of the sphere's position record; velocity record is the
    /// next block.
    pos_block: u64,
}

/// The bouncing-spheres simulation. See the module docs.
#[derive(Clone, Debug)]
pub struct BoxSim {
    config: BoxSimConfig,
    spheres: Vec<Sphere>,
    /// Per-cell sphere index lists.
    cells: Vec<Vec<usize>>,
    /// Heap block of each cell's header.
    cell_blocks: Vec<u64>,
    procs: Vec<Procedure>,
    pc_cell_header: Pc,
    pc_sphere_pos: [Pc; 4],
    pc_sphere_vel: [Pc; 4],
    pc_sphere_store: [Pc; 4],
    emitted: u64,
    until_check: u32,
    pending: std::collections::VecDeque<Event>,
    /// Next cell to simulate within the current step.
    next_cell: usize,
    finished: bool,
}

impl BoxSim {
    /// Initialises the box with randomly placed spheres.
    ///
    /// # Panics
    ///
    /// Panics on a degenerate configuration (no spheres or cells).
    #[must_use]
    pub fn new(config: BoxSimConfig) -> Self {
        assert!(config.spheres > 0, "need at least one sphere");
        assert!(config.grid_side > 0, "need at least one cell");
        let mut rng = SmallRng::seed_from_u64(config.seed);
        let side = config.grid_side as i64;
        let box_size = side * FP;
        let cell_count = config.grid_side * config.grid_side;

        // Heap layout: cell headers first, then sphere records (2 blocks
        // each), deliberately shuffled so traversal order is non-
        // sequential in memory (this is why Seq-pref pollutes on boxsim).
        let mut sphere_blocks: Vec<u64> = (0..config.spheres as u64)
            .map(|i| 128 + cell_count as u64 + i * 2)
            .collect();
        for i in (1..sphere_blocks.len()).rev() {
            let j = rng.gen_range(0..=i);
            sphere_blocks.swap(i, j);
        }

        let mut spheres = Vec::with_capacity(config.spheres);
        for &pos_block in sphere_blocks.iter() {
            spheres.push(Sphere {
                x: rng.gen_range(0..box_size),
                y: rng.gen_range(0..box_size),
                vx: rng.gen_range(-FP / 768..FP / 768),
                vy: rng.gen_range(-FP / 768..FP / 768),
                pos_block,
            });
        }
        let cell_blocks: Vec<u64> = (0..cell_count as u64).map(|i| 128 + i).collect();
        let mut cells = vec![Vec::new(); cell_count];
        for (i, s) in spheres.iter().enumerate() {
            cells[Self::cell_of(s, side)].push(i);
        }

        // One procedure per activity; the integration loop is 4x
        // unrolled, as a compiler would emit it, so each activity has
        // four pc variants selected by loop position.
        let pc_cell_header = Pc(1016);
        let pc_sphere_pos = [Pc(1020), Pc(1032), Pc(1044), Pc(1056)];
        let pc_sphere_vel = [Pc(1024), Pc(1036), Pc(1048), Pc(1060)];
        let pc_sphere_store = [Pc(1028), Pc(1040), Pc(1052), Pc(1064)];
        let mut integrate_pcs = Vec::new();
        for k in 0..4 {
            integrate_pcs.push(pc_sphere_pos[k]);
            integrate_pcs.push(pc_sphere_vel[k]);
            integrate_pcs.push(pc_sphere_store[k]);
        }
        let procs = vec![
            Procedure::new("step_cells", vec![pc_cell_header]),
            Procedure::new("integrate_sphere", integrate_pcs),
        ];

        BoxSim {
            until_check: config.refs_per_check,
            config,
            spheres,
            cells,
            cell_blocks,
            procs,
            pc_cell_header,
            pc_sphere_pos,
            pc_sphere_vel,
            pc_sphere_store,
            emitted: 0,
            pending: std::collections::VecDeque::new(),
            next_cell: 0,
            finished: false,
        }
    }

    fn cell_of(s: &Sphere, side: i64) -> usize {
        let cx = (s.x / FP).clamp(0, side - 1);
        let cy = (s.y / FP).clamp(0, side - 1);
        (cy * side + cx) as usize
    }

    /// Current cell occupancy (diagnostics / tests).
    #[must_use]
    pub fn cell_sizes(&self) -> Vec<usize> {
        self.cells.iter().map(Vec::len).collect()
    }

    fn push_ref(&mut self, pc: Pc, block: u64, kind: AccessKind) {
        if self.until_check == 0 {
            let proc = if pc == self.pc_cell_header {
                ProcId(0)
            } else {
                ProcId(1)
            };
            self.pending.push_back(Event::BackEdge(proc));
            self.until_check = self.config.refs_per_check;
        }
        self.until_check -= 1;
        self.pending
            .push_back(Event::Access(DataRef::new(pc, Addr(block * BLOCK)), kind));
    }

    /// Simulates one cell: walk its list, integrate each sphere, handle
    /// wall bounces, and migrate crossers.
    fn simulate_cell(&mut self, cell: usize) {
        let side = self.config.grid_side as i64;
        let box_size = side * FP;
        self.pending.push_back(Event::Enter(ProcId(0)));
        self.push_ref(
            self.pc_cell_header,
            self.cell_blocks[cell],
            AccessKind::Load,
        );
        let members = self.cells[cell].clone();
        self.pending.push_back(Event::Enter(ProcId(1)));
        let mut migrated: Vec<(usize, usize)> = Vec::new();
        for (k, &i) in members.iter().enumerate() {
            // Load position and velocity records, store updated position.
            // The pc variant follows the unrolled loop position.
            let v = k % 4;
            let pos_block = self.spheres[i].pos_block;
            self.push_ref(self.pc_sphere_pos[v], pos_block, AccessKind::Load);
            self.pending.push_back(Event::Work(4));
            self.push_ref(self.pc_sphere_vel[v], pos_block + 1, AccessKind::Load);
            self.pending.push_back(Event::Work(6));
            self.push_ref(self.pc_sphere_store[v], pos_block, AccessKind::Store);

            let s = &mut self.spheres[i];
            s.x += s.vx;
            s.y += s.vy;
            // Bounce off the walls.
            if s.x < 0 {
                s.x = -s.x;
                s.vx = -s.vx;
            }
            if s.x >= box_size {
                s.x = 2 * (box_size - 1) - s.x;
                s.vx = -s.vx;
            }
            if s.y < 0 {
                s.y = -s.y;
                s.vy = -s.vy;
            }
            if s.y >= box_size {
                s.y = 2 * (box_size - 1) - s.y;
                s.vy = -s.vy;
            }
            let new_cell = Self::cell_of(s, side);
            if new_cell != cell {
                migrated.push((i, new_cell));
            }
        }
        self.pending.push_back(Event::Exit(ProcId(1)));
        // Apply migrations (list removals/appends — the phase drift).
        for (i, new_cell) in migrated {
            if let Some(pos) = self.cells[cell].iter().position(|&x| x == i) {
                self.cells[cell].remove(pos);
            }
            self.cells[new_cell].push(i);
        }
        self.pending.push_back(Event::Exit(ProcId(0)));
    }
}

impl ProgramSource for BoxSim {
    fn next_event(&mut self) -> Option<Event> {
        loop {
            if let Some(e) = self.pending.pop_front() {
                if matches!(e, Event::Access(..)) {
                    self.emitted += 1;
                }
                return Some(e);
            }
            if self.finished || self.emitted >= self.config.total_refs {
                self.finished = true;
                return None;
            }
            let cell = self.next_cell;
            self.next_cell = (self.next_cell + 1) % self.cells.len();
            self.simulate_cell(cell);
        }
    }

    fn name(&self) -> &str {
        "boxsim"
    }
}

impl Workload for BoxSim {
    fn procedures(&self) -> Vec<Procedure> {
        self.procs.clone()
    }

    fn planned_refs(&self) -> u64 {
        self.config.total_refs
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> BoxSimConfig {
        BoxSimConfig {
            spheres: 60,
            grid_side: 4,
            total_refs: 20_000,
            ..BoxSimConfig::default()
        }
    }

    #[test]
    fn deterministic() {
        let drain = |mut b: BoxSim| {
            let mut v = Vec::new();
            while let Some(e) = b.next_event() {
                v.push(e);
            }
            v
        };
        assert_eq!(drain(BoxSim::new(small())), drain(BoxSim::new(small())));
    }

    #[test]
    fn spheres_conserved_across_migrations() {
        let mut b = BoxSim::new(small());
        for _ in 0..50_000 {
            if b.next_event().is_none() {
                break;
            }
        }
        let total: usize = b.cell_sizes().iter().sum();
        assert_eq!(total, 60, "spheres lost or duplicated by migration");
    }

    #[test]
    fn cell_walks_repeat_as_streams() {
        // With few migrations early on, consecutive steps access each
        // cell's spheres in the same order: repeated (pc, addr) sequences.
        let mut b = BoxSim::new(small());
        let mut refs = Vec::new();
        while refs.len() < 12_000 {
            match b.next_event() {
                Some(Event::Access(r, _)) => refs.push(r),
                Some(_) => {}
                None => break,
            }
        }
        // Find a per-sphere triple (pos, vel, store) and count its
        // repetitions.
        let needle = &refs[1..4];
        let count = refs.windows(3).filter(|w| w == &needle).count();
        assert!(count >= 3, "cell-walk sequences repeat only {count} times");
    }

    #[test]
    fn events_well_formed() {
        let mut b = BoxSim::new(small());
        let mut depth = 0i64;
        let mut refs = 0u64;
        while let Some(e) = b.next_event() {
            match e {
                Event::Enter(_) => depth += 1,
                Event::Exit(_) => depth -= 1,
                Event::Access(..) => {
                    refs += 1;
                    assert!(depth > 0);
                }
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(refs >= 20_000);
    }

    #[test]
    fn sphere_layout_is_shuffled() {
        let b = BoxSim::new(BoxSimConfig {
            spheres: 100,
            ..small()
        });
        let mut ascending = 0;
        for pair in b.spheres.windows(2) {
            if pair[1].pos_block > pair[0].pos_block {
                ascending += 1;
            }
        }
        // A shuffled layout is nowhere near sorted.
        assert!(
            ascending < 75,
            "layout suspiciously sequential: {ascending}/99"
        );
    }

    #[test]
    fn positions_stay_in_box() {
        let mut b = BoxSim::new(small());
        for _ in 0..100_000 {
            if b.next_event().is_none() {
                break;
            }
        }
        let box_size = 4 * FP;
        for s in &b.spheres {
            assert!(s.x >= 0 && s.x < box_size, "x out of box: {}", s.x);
            assert!(s.y >= 0 && s.y < box_size, "y out of box: {}", s.y);
        }
    }

    #[test]
    #[should_panic(expected = "at least one sphere")]
    fn zero_spheres_rejected() {
        let _ = BoxSim::new(BoxSimConfig {
            spheres: 0,
            ..BoxSimConfig::default()
        });
    }
}
