//! FNV-1a — the one deterministic, dependency-free hash the whole
//! workspace shares.
//!
//! One implementation, used everywhere a stable checksum or index hash
//! is needed: prefetch-backend table indexing (`hds-backend`), the
//! serve-layer tenant key / consistent-hash ring / A/B arm draw, the
//! `HDSW` wire-frame checksum, and the durable-store record CRC
//! (`hds-store`). Consolidating the previously copy-pasted constants
//! here means a typo in one call site can no longer silently fork the
//! hash function (which would corrupt ring placement or reject every
//! frame), and the constants are pinned by tests below.

/// FNV-1a offset basis (64-bit).
pub const FNV64_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
pub const FNV64_PRIME: u64 = 0x0000_0100_0000_01b3;
/// FNV-1a offset basis (32-bit).
pub const FNV32_OFFSET: u32 = 0x811c_9dc5;
/// FNV-1a prime (32-bit).
pub const FNV32_PRIME: u32 = 0x0100_0193;

/// FNV-1a 64-bit hash over a byte slice.
#[must_use]
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV64_OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV64_PRIME);
    }
    h
}

/// FNV-1a 32-bit hash over a byte slice — the `HDSW` wire checksum.
#[must_use]
pub fn fnv1a32(bytes: &[u8]) -> u32 {
    let mut h = FNV32_OFFSET;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(FNV32_PRIME);
    }
    h
}

/// Incremental FNV-1a 64-bit hasher, for call sites that hash
/// structured data (byte runs interleaved with word-sized separators)
/// without materialising a buffer.
#[derive(Clone, Copy, Debug)]
pub struct Fnv64(u64);

impl Default for Fnv64 {
    fn default() -> Self {
        Self::new()
    }
}

impl Fnv64 {
    /// Starts from the FNV-1a offset basis.
    #[must_use]
    pub fn new() -> Self {
        Fnv64(FNV64_OFFSET)
    }

    /// Mixes one full 64-bit word (one absorb/multiply round). Feeding
    /// a value ≥ 256 is therefore distinct from any byte sequence,
    /// which is what makes word-sized separators unambiguous.
    pub fn write_u64(&mut self, v: u64) {
        self.0 ^= v;
        self.0 = self.0.wrapping_mul(FNV64_PRIME);
    }

    /// Mixes a byte run, byte-wise — equivalent to [`fnv1a64`] when
    /// the hasher is fresh.
    pub fn write_bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.write_u64(u64::from(b));
        }
    }

    /// The accumulated hash.
    #[must_use]
    pub fn finish(&self) -> u64 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The reference implementations every pre-consolidation copy of
    /// the hash inlined, constants spelled out verbatim so a botched
    /// refactor of the shared module cannot hide.
    fn reference_fnv1a64(bytes: &[u8]) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in bytes {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        h
    }

    fn reference_fnv1a32(bytes: &[u8]) -> u32 {
        let mut h: u32 = 0x811c_9dc5;
        for &b in bytes {
            h ^= u32::from(b);
            h = h.wrapping_mul(0x0100_0193);
        }
        h
    }

    fn samples() -> Vec<Vec<u8>> {
        let mut out = vec![
            Vec::new(),
            b"a".to_vec(),
            b"tenant-0".to_vec(),
            b"hds".to_vec(),
            (0u8..=255).collect(),
        ];
        // A few pseudo-random runs of varying length.
        let mut x = 0x9e37_79b9_7f4a_7c15u64;
        for len in [3usize, 17, 64, 257, 1024] {
            let mut v = Vec::with_capacity(len);
            for _ in 0..len {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                v.push((x >> 32) as u8);
            }
            out.push(v);
        }
        out
    }

    #[test]
    fn fnv1a64_matches_reference() {
        for s in samples() {
            assert_eq!(fnv1a64(&s), reference_fnv1a64(&s));
        }
    }

    #[test]
    fn fnv1a32_matches_reference() {
        for s in samples() {
            assert_eq!(fnv1a32(&s), reference_fnv1a32(&s));
        }
    }

    #[test]
    fn known_vectors_pin_the_constants() {
        // Published FNV-1a test vectors: a change to either constant
        // breaks these even if reference and impl drift together.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
        assert_eq!(fnv1a32(b""), 0x811c_9dc5);
        assert_eq!(fnv1a32(b"a"), 0xe40c_292c);
        assert_eq!(fnv1a32(b"foobar"), 0xbf9c_f968);
    }

    #[test]
    fn incremental_bytes_equal_one_shot() {
        for s in samples() {
            let mut h = Fnv64::new();
            h.write_bytes(&s);
            assert_eq!(h.finish(), fnv1a64(&s));
            // Split at every boundary: incremental hashing is
            // insensitive to chunking.
            if s.len() > 1 {
                let mid = s.len() / 2;
                let mut h2 = Fnv64::new();
                h2.write_bytes(&s[..mid]);
                h2.write_bytes(&s[mid..]);
                assert_eq!(h2.finish(), fnv1a64(&s));
            }
        }
    }

    #[test]
    fn word_separators_are_not_byte_sequences() {
        // A separator word cannot collide with any single byte, so
        // `"ab" | sep | "c"` hashes differently from `"abc"` under the
        // structured hasher.
        let mut with_sep = Fnv64::new();
        with_sep.write_bytes(b"ab");
        with_sep.write_u64(u64::MAX);
        with_sep.write_bytes(b"c");
        let mut plain = Fnv64::new();
        plain.write_bytes(b"abc");
        assert_ne!(with_sep.finish(), plain.finish());
    }
}
