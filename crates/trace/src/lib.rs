//! Core data-reference types for the hot-data-stream prefetching system.
//!
//! This crate defines the vocabulary shared by every other crate in the
//! workspace, mirroring Section 2 of Chilimbi & Hirzel, *Dynamic Hot Data
//! Stream Prefetching for General-Purpose Programs* (PLDI 2002):
//!
//! > "A data reference `r` is a load or store of a particular address,
//! > represented as a pair `(r.pc, r.addr)`. The sequence of all data
//! > references during execution is the data reference trace."
//!
//! The central types are:
//!
//! * [`Pc`] — the program counter of a load/store site,
//! * [`Addr`] — the data address it touches,
//! * [`DataRef`] — the `(pc, addr)` pair,
//! * [`Symbol`] and [`SymbolTable`] — dense interning of distinct data
//!   references, so that the Sequitur compressor and the hot-data-stream
//!   analysis can work over small integer alphabets,
//! * [`TraceBuffer`] — an append-only buffer of sampled reference bursts,
//!   the "temporal data reference profile" the profiling phase collects.
//!
//! # Examples
//!
//! ```
//! use hds_trace::{Addr, DataRef, Pc, SymbolTable};
//!
//! let mut table = SymbolTable::new();
//! let a = table.intern(DataRef::new(Pc(0x10), Addr(0x1000)));
//! let b = table.intern(DataRef::new(Pc(0x14), Addr(0x2000)));
//! // Interning the same reference yields the same symbol.
//! assert_eq!(a, table.intern(DataRef::new(Pc(0x10), Addr(0x1000))));
//! assert_ne!(a, b);
//! assert_eq!(table.resolve(a).addr, Addr(0x1000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod buffer;
pub mod codec;
pub mod hash;
mod symbol;
mod types;

pub use buffer::{Burst, TraceBuffer};
pub use symbol::{Symbol, SymbolTable};
pub use types::{AccessKind, Addr, DataRef, Pc};
