//! Compact binary serialisation of temporal profiles.
//!
//! Sampled profiles are the system's only persistent artifact: an
//! off-line static prefetching scheme (paper §1, \[10\]) needs profiles
//! saved from a training run, and tooling wants to move them between
//! processes. The format is deliberately simple and fully versioned:
//!
//! ```text
//! magic "HDSP" | format version u8 | burst count (varint)
//! per burst: reference count (varint)
//! per reference: pc delta (zigzag varint) | addr delta (zigzag varint)
//! ```
//!
//! Consecutive references are delta-encoded (streams revisit nearby
//! addresses, so deltas are small); each burst restarts the predictor so
//! bursts stay independently decodable in sequence.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::buffer::TraceBuffer;
use crate::types::{Addr, DataRef, Pc};

/// Magic bytes identifying a profile blob.
const MAGIC: &[u8; 4] = b"HDSP";
/// Current format version.
const VERSION: u8 = 1;

/// Errors from [`decode_profile`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CodecError {
    /// The blob does not start with the `HDSP` magic.
    BadMagic,
    /// The format version is newer than this library understands.
    UnsupportedVersion(
        /// The version found in the blob.
        u8,
    ),
    /// The blob ended in the middle of a field.
    Truncated,
    /// A varint ran past its maximum width.
    Overlong,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadMagic => f.write_str("not an HDSP profile (bad magic)"),
            CodecError::UnsupportedVersion(v) => write!(f, "unsupported profile version {v}"),
            CodecError::Truncated => f.write_str("profile truncated"),
            CodecError::Overlong => f.write_str("overlong varint in profile"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends an LEB128-style varint (7 data bits per byte, high bit =
/// continuation). Public so higher layers — e.g. the `hds-serve` wire
/// protocol — frame their payloads with the exact same primitives the
/// profile codec uses.
pub fn put_varint(out: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.put_u8(byte);
            return;
        }
        out.put_u8(byte | 0x80);
    }
}

/// Reads a varint written by [`put_varint`].
///
/// # Errors
///
/// [`CodecError::Truncated`] when the buffer ends mid-varint,
/// [`CodecError::Overlong`] when the encoding exceeds ten bytes.
pub fn get_varint(buf: &mut Bytes) -> Result<u64, CodecError> {
    let mut v = 0u64;
    for shift in (0..64).step_by(7) {
        if !buf.has_remaining() {
            return Err(CodecError::Truncated);
        }
        let byte = buf.get_u8();
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
    }
    Err(CodecError::Overlong)
}

/// Zigzag encoding maps small signed deltas to small unsigned varints.
#[allow(clippy::cast_sign_loss)]
#[must_use]
pub fn zigzag(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// Inverse of [`zigzag`].
#[must_use]
pub fn unzigzag(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Serialises a profile to the `HDSP` format.
///
/// # Examples
///
/// ```
/// use hds_trace::{codec, Addr, DataRef, Pc, TraceBuffer};
///
/// let mut buf = TraceBuffer::new();
/// buf.begin_burst();
/// buf.record(DataRef::new(Pc(0x10), Addr(0x1000)));
/// buf.end_burst();
/// let blob = codec::encode_profile(&buf);
/// let back = codec::decode_profile(&blob)?;
/// assert_eq!(back.refs(), buf.refs());
/// # Ok::<(), hds_trace::codec::CodecError>(())
/// ```
#[must_use]
pub fn encode_profile(buffer: &TraceBuffer) -> Bytes {
    let mut out = BytesMut::with_capacity(16 + buffer.len() * 3);
    out.put_slice(MAGIC);
    out.put_u8(VERSION);
    put_varint(&mut out, buffer.bursts().count() as u64);
    for burst in buffer.bursts() {
        let refs = buffer.burst_refs(burst);
        put_varint(&mut out, refs.len() as u64);
        let mut prev_pc: i64 = 0;
        let mut prev_addr: i64 = 0;
        for r in refs {
            let pc = i64::from(r.pc.0);
            #[allow(clippy::cast_possible_wrap)]
            let addr = r.addr.0 as i64;
            // Wrapping deltas: reversible under wrapping addition even
            // for extreme addresses (top-bit-set u64 values wrap i64).
            put_varint(&mut out, zigzag(pc.wrapping_sub(prev_pc)));
            put_varint(&mut out, zigzag(addr.wrapping_sub(prev_addr)));
            prev_pc = pc;
            prev_addr = addr;
        }
    }
    out.freeze()
}

/// Parses an `HDSP` blob back into a [`TraceBuffer`].
///
/// # Errors
///
/// Returns a [`CodecError`] for malformed input; trailing bytes after
/// the declared bursts are tolerated (future extension space).
pub fn decode_profile(blob: &[u8]) -> Result<TraceBuffer, CodecError> {
    let mut buf = Bytes::copy_from_slice(blob);
    if buf.remaining() < MAGIC.len() + 1 {
        return Err(CodecError::Truncated);
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(CodecError::BadMagic);
    }
    let version = buf.get_u8();
    if version != VERSION {
        return Err(CodecError::UnsupportedVersion(version));
    }
    let bursts = get_varint(&mut buf)?;
    let mut out = TraceBuffer::new();
    for _ in 0..bursts {
        let n = get_varint(&mut buf)?;
        out.begin_burst();
        let mut prev_pc: i64 = 0;
        let mut prev_addr: i64 = 0;
        for _ in 0..n {
            let pc = prev_pc.wrapping_add(unzigzag(get_varint(&mut buf)?));
            let addr = prev_addr.wrapping_add(unzigzag(get_varint(&mut buf)?));
            prev_pc = pc;
            prev_addr = addr;
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            out.record(DataRef::new(Pc(pc as u32), Addr(addr as u64)));
        }
        out.end_burst();
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_buffer() -> TraceBuffer {
        let mut buf = TraceBuffer::new();
        buf.begin_burst();
        for i in 0..10u64 {
            buf.record(DataRef::new(
                Pc(16 + (i as u32 % 4) * 4),
                Addr(0x1000 + i * 32),
            ));
        }
        buf.end_burst();
        buf.begin_burst();
        buf.end_burst(); // an empty burst survives round-trips
        buf.begin_burst();
        buf.record(DataRef::new(Pc(u32::MAX), Addr(u64::MAX / 2)));
        buf.record(DataRef::new(Pc(0), Addr(0)));
        buf.end_burst();
        buf
    }

    #[test]
    fn round_trip_preserves_everything() {
        let original = sample_buffer();
        let blob = encode_profile(&original);
        let back = decode_profile(&blob).unwrap();
        assert_eq!(back.refs(), original.refs());
        assert_eq!(back.bursts().count(), original.bursts().count());
        for (a, b) in back.bursts().zip(original.bursts()) {
            assert_eq!(back.burst_refs(a), original.burst_refs(b));
        }
    }

    #[test]
    fn empty_profile_round_trips() {
        let empty = TraceBuffer::new();
        let blob = encode_profile(&empty);
        let back = decode_profile(&blob).unwrap();
        assert!(back.is_empty());
        assert_eq!(back.bursts().count(), 0);
    }

    #[test]
    fn delta_encoding_is_compact_on_stream_shaped_data() {
        // Sequential addresses compress to ~2-3 bytes per reference,
        // versus 12 bytes raw.
        let mut buf = TraceBuffer::new();
        buf.begin_burst();
        for i in 0..1000u64 {
            buf.record(DataRef::new(Pc(0x40), Addr(0x10_0000 + i * 32)));
        }
        buf.end_burst();
        let blob = encode_profile(&buf);
        assert!(
            blob.len() < 1000 * 4,
            "profile too large: {} bytes for 1000 refs",
            blob.len()
        );
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(decode_profile(b"nope").unwrap_err(), CodecError::Truncated);
        assert_eq!(
            decode_profile(b"XXXX\x01").unwrap_err(),
            CodecError::BadMagic
        );
        assert_eq!(
            decode_profile(b"HDSP\x63").unwrap_err(),
            CodecError::UnsupportedVersion(0x63)
        );
        // Declared burst, missing body.
        assert_eq!(
            decode_profile(b"HDSP\x01\x01").unwrap_err(),
            CodecError::Truncated
        );
    }

    #[test]
    fn rejects_overlong_varints() {
        let mut blob = b"HDSP\x01".to_vec();
        blob.extend_from_slice(&[0xff; 11]); // > 10-byte varint
        assert_eq!(decode_profile(&blob).unwrap_err(), CodecError::Overlong);
    }

    #[test]
    fn zigzag_round_trips() {
        for v in [0i64, 1, -1, 63, -64, i64::MAX, i64::MIN, 12345, -98765] {
            assert_eq!(unzigzag(zigzag(v)), v, "zigzag broken for {v}");
        }
    }

    #[test]
    fn varint_round_trips() {
        for v in [0u64, 1, 127, 128, 300, u64::from(u32::MAX), u64::MAX] {
            let mut out = BytesMut::new();
            put_varint(&mut out, v);
            let mut buf = out.freeze();
            assert_eq!(get_varint(&mut buf), Ok(v), "varint broken for {v}");
            assert!(!buf.has_remaining());
        }
        let mut empty = Bytes::copy_from_slice(&[]);
        assert_eq!(get_varint(&mut empty), Err(CodecError::Truncated));
    }

    #[test]
    fn error_display() {
        assert!(CodecError::BadMagic.to_string().contains("magic"));
        assert!(CodecError::UnsupportedVersion(9).to_string().contains('9'));
    }
}
