//! Dense interning of distinct data references.
//!
//! The Sequitur compressor and the hot-data-stream analysis treat each
//! distinct observed data reference as a symbol of a finite alphabet
//! ("Each observed data reference can be viewed as a symbol, and the
//! concatenation of the profiled bursts as a string *w* of symbols",
//! paper §2.3). [`SymbolTable`] maps `(pc, addr)` pairs to dense `u32`
//! ids and back.

use std::collections::HashMap;
use std::fmt;

use crate::types::DataRef;

/// A dense id standing for one distinct [`DataRef`].
///
/// Symbols are only meaningful relative to the [`SymbolTable`] that issued
/// them. They are `Copy`, cheap to hash, and contiguous from zero, which
/// lets downstream analyses use them as vector indices.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(pub u32);

impl Symbol {
    /// Returns the symbol as a `usize` index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// An interning table mapping distinct data references to dense [`Symbol`]s.
///
/// # Examples
///
/// ```
/// use hds_trace::{Addr, DataRef, Pc, SymbolTable};
///
/// let mut table = SymbolTable::new();
/// let r = DataRef::new(Pc(4), Addr(0x100));
/// let s = table.intern(r);
/// assert_eq!(table.resolve(s), r);
/// assert_eq!(table.len(), 1);
/// assert_eq!(table.lookup(r), Some(s));
/// ```
#[derive(Clone, Debug, Default)]
pub struct SymbolTable {
    by_ref: HashMap<DataRef, Symbol>,
    by_symbol: Vec<DataRef>,
}

impl SymbolTable {
    /// Creates an empty symbol table.
    #[must_use]
    pub fn new() -> Self {
        SymbolTable::default()
    }

    /// Interns a data reference, returning its symbol. Repeated interning
    /// of the same reference returns the same symbol.
    pub fn intern(&mut self, r: DataRef) -> Symbol {
        if let Some(&s) = self.by_ref.get(&r) {
            return s;
        }
        let s = Symbol(
            u32::try_from(self.by_symbol.len()).expect("symbol table overflowed u32 symbols"),
        );
        self.by_ref.insert(r, s);
        self.by_symbol.push(r);
        s
    }

    /// Looks up the symbol previously interned for `r`, if any.
    #[must_use]
    pub fn lookup(&self, r: DataRef) -> Option<Symbol> {
        self.by_ref.get(&r).copied()
    }

    /// Returns the data reference a symbol stands for.
    ///
    /// # Panics
    ///
    /// Panics if `s` was not issued by this table.
    #[must_use]
    pub fn resolve(&self, s: Symbol) -> DataRef {
        self.by_symbol[s.index()]
    }

    /// Returns the number of distinct references interned so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.by_symbol.len()
    }

    /// Returns `true` if no references have been interned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.by_symbol.is_empty()
    }

    /// Iterates over `(symbol, data reference)` pairs in symbol order.
    pub fn iter(&self) -> impl Iterator<Item = (Symbol, DataRef)> + '_ {
        self.by_symbol
            .iter()
            .enumerate()
            .map(|(i, &r)| (Symbol(i as u32), r))
    }

    /// Interns every reference of a slice, returning the symbol sequence.
    pub fn intern_all(&mut self, refs: &[DataRef]) -> Vec<Symbol> {
        refs.iter().map(|&r| self.intern(r)).collect()
    }

    /// Resolves a slice of symbols back to data references.
    ///
    /// # Panics
    ///
    /// Panics if any symbol was not issued by this table.
    #[must_use]
    pub fn resolve_all(&self, symbols: &[Symbol]) -> Vec<DataRef> {
        symbols.iter().map(|&s| self.resolve(s)).collect()
    }
}

impl FromIterator<DataRef> for SymbolTable {
    fn from_iter<I: IntoIterator<Item = DataRef>>(iter: I) -> Self {
        let mut table = SymbolTable::new();
        for r in iter {
            table.intern(r);
        }
        table
    }
}

impl Extend<DataRef> for SymbolTable {
    fn extend<I: IntoIterator<Item = DataRef>>(&mut self, iter: I) {
        for r in iter {
            self.intern(r);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Addr, Pc};

    fn r(pc: u32, addr: u64) -> DataRef {
        DataRef::new(Pc(pc), Addr(addr))
    }

    #[test]
    fn interning_is_idempotent() {
        let mut t = SymbolTable::new();
        let s1 = t.intern(r(1, 10));
        let s2 = t.intern(r(1, 10));
        assert_eq!(s1, s2);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn symbols_are_dense_from_zero() {
        let mut t = SymbolTable::new();
        let symbols: Vec<_> = (0..100).map(|i| t.intern(r(i, u64::from(i) * 8))).collect();
        for (i, s) in symbols.iter().enumerate() {
            assert_eq!(s.index(), i);
        }
    }

    #[test]
    fn resolve_round_trips() {
        let mut t = SymbolTable::new();
        let refs: Vec<_> = (0..50).map(|i| r(i % 7, u64::from(i))).collect();
        let symbols = t.intern_all(&refs);
        assert_eq!(t.resolve_all(&symbols), refs);
    }

    #[test]
    fn lookup_misses_return_none() {
        let mut t = SymbolTable::new();
        t.intern(r(1, 1));
        assert_eq!(t.lookup(r(2, 2)), None);
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut t: SymbolTable = vec![r(1, 1), r(2, 2), r(1, 1)].into_iter().collect();
        assert_eq!(t.len(), 2);
        t.extend(vec![r(3, 3), r(2, 2)]);
        assert_eq!(t.len(), 3);
    }

    #[test]
    fn iter_yields_symbol_order() {
        let mut t = SymbolTable::new();
        t.intern(r(9, 9));
        t.intern(r(8, 8));
        let pairs: Vec<_> = t.iter().collect();
        assert_eq!(pairs[0], (Symbol(0), r(9, 9)));
        assert_eq!(pairs[1], (Symbol(1), r(8, 8)));
    }

    #[test]
    fn empty_table_reports_empty() {
        let t = SymbolTable::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.iter().count(), 0);
    }
}
