//! The temporal data reference profile: an append-only buffer of sampled
//! reference bursts.
//!
//! Bursty tracing (paper §2.1) does not record the complete reference
//! trace; it records *bursts* — short subsequences of consecutive data
//! references. The concatenation of the bursts is the string fed to
//! Sequitur. [`TraceBuffer`] stores the references together with the burst
//! boundaries, because downstream consumers occasionally need to know
//! where one burst ends and the next begins (e.g. to avoid treating a
//! burst seam as a real temporal adjacency when validating matches).

use std::fmt;
use std::ops::Range;

use crate::types::DataRef;

/// One profiled burst: a contiguous range of indices into the buffer's
/// reference vector.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct Burst {
    range: Range<usize>,
}

impl Burst {
    /// The half-open index range of this burst within the owning buffer.
    #[must_use]
    pub fn range(&self) -> Range<usize> {
        self.range.clone()
    }

    /// Number of references in this burst.
    #[must_use]
    pub fn len(&self) -> usize {
        self.range.len()
    }

    /// Returns `true` if the burst recorded no references.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.range.is_empty()
    }
}

/// An append-only buffer of sampled data-reference bursts — the temporal
/// data reference profile of paper §2.
///
/// # Examples
///
/// ```
/// use hds_trace::{Addr, DataRef, Pc, TraceBuffer};
///
/// let mut buf = TraceBuffer::new();
/// buf.begin_burst();
/// buf.record(DataRef::new(Pc(1), Addr(0x10)));
/// buf.record(DataRef::new(Pc(2), Addr(0x20)));
/// buf.end_burst();
/// assert_eq!(buf.len(), 2);
/// assert_eq!(buf.bursts().count(), 1);
/// ```
#[derive(Clone, Debug, Default)]
pub struct TraceBuffer {
    refs: Vec<DataRef>,
    bursts: Vec<Burst>,
    /// Start index of the burst currently being recorded, if any.
    open: Option<usize>,
}

impl TraceBuffer {
    /// Creates an empty trace buffer.
    #[must_use]
    pub fn new() -> Self {
        TraceBuffer::default()
    }

    /// Creates an empty buffer with capacity for `n` references.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        TraceBuffer {
            refs: Vec::with_capacity(n),
            bursts: Vec::new(),
            open: None,
        }
    }

    /// Marks the start of a new profiling burst.
    ///
    /// # Panics
    ///
    /// Panics if a burst is already open; bursts do not nest.
    pub fn begin_burst(&mut self) {
        assert!(self.open.is_none(), "begin_burst while a burst is open");
        self.open = Some(self.refs.len());
    }

    /// Appends a reference to the currently open burst.
    ///
    /// # Panics
    ///
    /// Panics if no burst is open — the profiler must only record while the
    /// instrumented code version is executing.
    pub fn record(&mut self, r: DataRef) {
        assert!(self.open.is_some(), "record outside of a burst");
        self.refs.push(r);
    }

    /// Closes the currently open burst. Empty bursts are kept (they still
    /// mark a sampling event) unless `discard_empty` policy is desired by
    /// the caller, in which case use [`TraceBuffer::end_burst_discard_empty`].
    ///
    /// # Panics
    ///
    /// Panics if no burst is open.
    pub fn end_burst(&mut self) {
        let start = self.open.take().expect("end_burst without begin_burst");
        self.bursts.push(Burst {
            range: start..self.refs.len(),
        });
    }

    /// Closes the currently open burst, dropping it if it recorded nothing.
    ///
    /// # Panics
    ///
    /// Panics if no burst is open.
    pub fn end_burst_discard_empty(&mut self) {
        let start = self.open.take().expect("end_burst without begin_burst");
        if start < self.refs.len() {
            self.bursts.push(Burst {
                range: start..self.refs.len(),
            });
        }
    }

    /// Total number of recorded references across all bursts.
    #[must_use]
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Returns `true` if nothing has been recorded.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// All recorded references, bursts concatenated in recording order.
    /// This concatenation is the string `w` handed to Sequitur (§2.3).
    #[must_use]
    pub fn refs(&self) -> &[DataRef] {
        &self.refs
    }

    /// Iterates over the completed bursts.
    pub fn bursts(&self) -> impl ExactSizeIterator<Item = &Burst> + '_ {
        self.bursts.iter()
    }

    /// The references of one burst.
    #[must_use]
    pub fn burst_refs(&self, burst: &Burst) -> &[DataRef] {
        &self.refs[burst.range()]
    }

    /// Discards all recorded data, keeping allocations. Called when the
    /// optimizer finishes an analyze/optimize step and returns to
    /// profiling afresh (trace from the previous cycle must not
    /// contaminate the next one, §2.4).
    pub fn clear(&mut self) {
        self.refs.clear();
        self.bursts.clear();
        self.open = None;
    }

    /// Returns `true` if a burst is currently being recorded.
    #[must_use]
    pub fn in_burst(&self) -> bool {
        self.open.is_some()
    }
}

impl fmt::Display for TraceBuffer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace buffer: {} refs in {} bursts",
            self.refs.len(),
            self.bursts.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::{Addr, Pc};

    fn r(pc: u32, addr: u64) -> DataRef {
        DataRef::new(Pc(pc), Addr(addr))
    }

    #[test]
    fn bursts_partition_refs() {
        let mut buf = TraceBuffer::new();
        buf.begin_burst();
        buf.record(r(1, 1));
        buf.record(r(2, 2));
        buf.end_burst();
        buf.begin_burst();
        buf.record(r(3, 3));
        buf.end_burst();

        assert_eq!(buf.len(), 3);
        let bursts: Vec<_> = buf.bursts().collect();
        assert_eq!(bursts.len(), 2);
        assert_eq!(buf.burst_refs(bursts[0]), &[r(1, 1), r(2, 2)]);
        assert_eq!(buf.burst_refs(bursts[1]), &[r(3, 3)]);
        // Concatenation preserves order.
        assert_eq!(buf.refs(), &[r(1, 1), r(2, 2), r(3, 3)]);
    }

    #[test]
    fn empty_burst_kept_by_default_discarded_on_request() {
        let mut buf = TraceBuffer::new();
        buf.begin_burst();
        buf.end_burst();
        assert_eq!(buf.bursts().count(), 1);
        assert!(buf.bursts().next().unwrap().is_empty());

        buf.begin_burst();
        buf.end_burst_discard_empty();
        assert_eq!(buf.bursts().count(), 1);
    }

    #[test]
    #[should_panic(expected = "record outside of a burst")]
    fn record_requires_open_burst() {
        let mut buf = TraceBuffer::new();
        buf.record(r(1, 1));
    }

    #[test]
    #[should_panic(expected = "begin_burst while a burst is open")]
    fn bursts_do_not_nest() {
        let mut buf = TraceBuffer::new();
        buf.begin_burst();
        buf.begin_burst();
    }

    #[test]
    #[should_panic(expected = "end_burst without begin_burst")]
    fn end_requires_begin() {
        let mut buf = TraceBuffer::new();
        buf.end_burst();
    }

    #[test]
    fn clear_resets_everything() {
        let mut buf = TraceBuffer::with_capacity(16);
        buf.begin_burst();
        buf.record(r(1, 1));
        buf.end_burst();
        buf.begin_burst(); // leave a burst open
        buf.clear();
        assert!(buf.is_empty());
        assert!(!buf.in_burst());
        assert_eq!(buf.bursts().count(), 0);
        // Usable again after clear.
        buf.begin_burst();
        buf.record(r(2, 2));
        buf.end_burst();
        assert_eq!(buf.len(), 1);
    }

    #[test]
    fn display_summarises() {
        let mut buf = TraceBuffer::new();
        buf.begin_burst();
        buf.record(r(1, 1));
        buf.end_burst();
        assert_eq!(buf.to_string(), "trace buffer: 1 refs in 1 bursts");
    }
}
