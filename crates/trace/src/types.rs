//! Plain value types: program counters, addresses, and data references.

use std::fmt;

/// The program counter (instruction address) of a load or store site.
///
/// In the paper's system this is a real x86 instruction address; in this
/// reproduction it identifies an instruction within a simulated
/// [`hds-vulcan`](https://example.com) program image. `Pc` values are only
/// compared for equality and ordering — no arithmetic is performed on them
/// outside the image that owns them.
///
/// # Examples
///
/// ```
/// use hds_trace::Pc;
/// let pc = Pc(0x401_000);
/// assert_eq!(format!("{pc}"), "pc:0x401000");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Pc(pub u32);

impl fmt::Display for Pc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "pc:{:#x}", self.0)
    }
}

impl From<u32> for Pc {
    fn from(raw: u32) -> Self {
        Pc(raw)
    }
}

/// A data (memory) address touched by a load or store.
///
/// Addresses are byte-granular; cache-block granularity is imposed by the
/// memory simulator, not here.
///
/// # Examples
///
/// ```
/// use hds_trace::Addr;
/// let addr = Addr(0x1000);
/// assert_eq!(addr.block(32), 0x80);
/// assert_eq!(format!("{addr}"), "addr:0x1000");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Addr(pub u64);

impl Addr {
    /// Returns the cache-block number of this address for the given block
    /// size in bytes.
    ///
    /// # Panics
    ///
    /// Panics if `block_size` is zero or not a power of two.
    #[must_use]
    pub fn block(self, block_size: u64) -> u64 {
        assert!(
            block_size.is_power_of_two(),
            "block size must be a nonzero power of two, got {block_size}"
        );
        self.0 / block_size
    }

    /// Returns the address offset by `delta` bytes (wrapping).
    ///
    /// Used by the sequential and stride prefetch baselines, which target
    /// addresses relative to an observed miss.
    #[must_use]
    pub fn offset(self, delta: i64) -> Addr {
        Addr(self.0.wrapping_add_signed(delta))
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "addr:{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

/// Whether a data reference is a load or a store.
///
/// The prefetching scheme treats loads and stores uniformly (both miss the
/// cache and both appear in hot data streams); the distinction is kept for
/// the cache simulator's write-allocate policy and for workload realism.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AccessKind {
    /// A load (read) of the address.
    #[default]
    Load,
    /// A store (write) to the address.
    Store,
}

impl fmt::Display for AccessKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccessKind::Load => f.write_str("load"),
            AccessKind::Store => f.write_str("store"),
        }
    }
}

/// A data reference: a load or store of a particular address at a
/// particular instruction, represented as the pair `(pc, addr)`.
///
/// This is the unit the entire system operates on — traces are sequences of
/// `DataRef`s, hot data streams are subsequences of `DataRef`s that repeat,
/// and the injected detection code compares the running program's accesses
/// against the `(pc, addr)` pairs of stream heads.
///
/// # Examples
///
/// ```
/// use hds_trace::{Addr, DataRef, Pc};
/// let r = DataRef::new(Pc(0x10), Addr(0xbeef));
/// assert_eq!(r.pc, Pc(0x10));
/// assert_eq!(r.addr, Addr(0xbeef));
/// assert_eq!(format!("{r}"), "(pc:0x10, addr:0xbeef)");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DataRef {
    /// The instruction performing the access.
    pub pc: Pc,
    /// The data address accessed.
    pub addr: Addr,
}

impl DataRef {
    /// Creates a data reference from its program counter and address.
    #[must_use]
    pub fn new(pc: Pc, addr: Addr) -> Self {
        DataRef { pc, addr }
    }
}

impl fmt::Display for DataRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "({}, {})", self.pc, self.addr)
    }
}

impl From<(Pc, Addr)> for DataRef {
    fn from((pc, addr): (Pc, Addr)) -> Self {
        DataRef { pc, addr }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pc_display_and_order() {
        assert_eq!(Pc(0x10).to_string(), "pc:0x10");
        assert!(Pc(1) < Pc(2));
        assert_eq!(Pc::from(7u32), Pc(7));
    }

    #[test]
    fn addr_block_arithmetic() {
        assert_eq!(Addr(0).block(32), 0);
        assert_eq!(Addr(31).block(32), 0);
        assert_eq!(Addr(32).block(32), 1);
        assert_eq!(Addr(1024).block(64), 16);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn addr_block_rejects_non_power_of_two() {
        let _ = Addr(0).block(48);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn addr_block_rejects_zero() {
        let _ = Addr(0).block(0);
    }

    #[test]
    fn addr_offset_wraps() {
        assert_eq!(Addr(100).offset(32), Addr(132));
        assert_eq!(Addr(100).offset(-100), Addr(0));
        assert_eq!(Addr(0).offset(-1), Addr(u64::MAX));
    }

    #[test]
    fn dataref_equality_is_pairwise() {
        let a = DataRef::new(Pc(1), Addr(2));
        let b = DataRef::from((Pc(1), Addr(2)));
        assert_eq!(a, b);
        assert_ne!(a, DataRef::new(Pc(1), Addr(3)));
        assert_ne!(a, DataRef::new(Pc(2), Addr(2)));
    }

    #[test]
    fn access_kind_default_is_load() {
        assert_eq!(AccessKind::default(), AccessKind::Load);
        assert_eq!(AccessKind::Store.to_string(), "store");
    }
}
