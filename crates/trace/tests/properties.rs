//! Property tests for the trace substrate: the profile codec round-trips
//! arbitrary buffers, and decoding never panics on arbitrary bytes.

use hds_trace::{codec, Addr, DataRef, Pc, TraceBuffer};
use proptest::prelude::*;

fn buffer_strategy() -> impl Strategy<Value = TraceBuffer> {
    proptest::collection::vec(
        proptest::collection::vec((any::<u32>(), any::<u64>()), 0..40),
        0..12,
    )
    .prop_map(|bursts| {
        let mut buf = TraceBuffer::new();
        for burst in bursts {
            buf.begin_burst();
            for (pc, addr) in burst {
                buf.record(DataRef::new(Pc(pc), Addr(addr)));
            }
            buf.end_burst();
        }
        buf
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Encode/decode is the identity on buffers, including burst
    /// boundaries and extreme pc/addr values.
    #[test]
    fn codec_round_trips(buf in buffer_strategy()) {
        let blob = codec::encode_profile(&buf);
        let back = codec::decode_profile(&blob).unwrap();
        prop_assert_eq!(back.refs(), buf.refs());
        prop_assert_eq!(back.bursts().count(), buf.bursts().count());
        for (a, b) in back.bursts().zip(buf.bursts()) {
            prop_assert_eq!(back.burst_refs(a), buf.burst_refs(b));
        }
    }

    /// Decoding arbitrary bytes either fails cleanly or yields a
    /// well-formed buffer — it never panics.
    #[test]
    fn decode_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        if let Ok(buf) = codec::decode_profile(&bytes) {
            // A successful parse must be internally consistent.
            let total: usize = buf.bursts().map(|b| buf.burst_refs(b).len()).sum();
            prop_assert_eq!(total, buf.len());
        }
    }

    /// Truncating a valid blob anywhere inside the payload fails with
    /// Truncated (never panics, never misparses silently into a longer
    /// buffer).
    #[test]
    fn truncation_is_detected(buf in buffer_strategy(), cut_fraction in 0.0f64..1.0) {
        let blob = codec::encode_profile(&buf);
        if blob.len() <= 5 {
            return Ok(()); // header-only: nothing to truncate meaningfully
        }
        #[allow(clippy::cast_precision_loss, clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let cut = 5 + ((blob.len() - 5) as f64 * cut_fraction) as usize;
        if cut >= blob.len() {
            return Ok(());
        }
        match codec::decode_profile(&blob[..cut]) {
            Ok(parsed) => {
                // Only acceptable if the remaining bytes happened to form
                // a complete prefix of bursts... which cannot happen
                // because the burst count is fixed in the header.
                prop_assert!(parsed.len() <= buf.len());
                prop_assert!(false, "truncated blob parsed successfully");
            }
            Err(e) => prop_assert_eq!(e, codec::CodecError::Truncated),
        }
    }
}
