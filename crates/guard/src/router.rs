//! Admission-control budgets for the cluster router tier.
//!
//! `hds-cluster`'s router journals every admitted chunk until the next
//! record refresh, so an unbounded tenant population (or a tenant whose
//! owner is down for a long re-home) could grow router memory without
//! limit. These budgets apply the same graceful-degradation discipline
//! as [`crate::ServeBudgets`] one tier up: a breached cap answers the
//! client with a typed `Busy`/`Shed` frame instead of growing the
//! journal, and every refusal is counted for exact reconciliation.

/// The two load axes the router tier can blow up on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouterBudgetKind {
    /// Concurrently routed tenants across all owners.
    Tenants = 0,
    /// Bytes of journaled replay payload held across all tenants.
    JournalBytes = 1,
}

impl RouterBudgetKind {
    /// Every kind, in discriminant order.
    pub const ALL: [RouterBudgetKind; 2] =
        [RouterBudgetKind::Tenants, RouterBudgetKind::JournalBytes];

    /// Stable lower-case label for export.
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            RouterBudgetKind::Tenants => "tenants",
            RouterBudgetKind::JournalBytes => "journal_bytes",
        }
    }
}

/// Optional caps on the router tier. `None` means unlimited.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RouterBudgets {
    max_tenants: Option<u64>,
    max_journal_bytes: Option<u64>,
}

impl RouterBudgets {
    /// Every budget unlimited (admission control never fires).
    #[must_use]
    pub const fn disabled() -> Self {
        RouterBudgets {
            max_tenants: None,
            max_journal_bytes: None,
        }
    }

    /// Caps concurrently routed tenants. At the cap a new `OpenSession`
    /// receives `Busy` instead of a route.
    #[must_use]
    pub const fn with_max_tenants(mut self, cap: u64) -> Self {
        self.max_tenants = Some(cap);
        self
    }

    /// Caps bytes of journaled replay payload across all tenants.
    /// Chunks past the cap are shed before they are journaled or
    /// forwarded, so the client's retransmit (not router memory)
    /// carries the overload.
    #[must_use]
    pub const fn with_max_journal_bytes(mut self, cap: u64) -> Self {
        self.max_journal_bytes = Some(cap);
        self
    }

    /// Whether any budget is set at all.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.max_tenants.is_some() || self.max_journal_bytes.is_some()
    }

    /// The configured cap for one budget kind.
    #[must_use]
    pub fn budget(&self, kind: RouterBudgetKind) -> Option<u64> {
        match kind {
            RouterBudgetKind::Tenants => self.max_tenants,
            RouterBudgetKind::JournalBytes => self.max_journal_bytes,
        }
    }
}

/// One router admission refusal: which budget, its cap, and the
/// observed value that breached it. Mirrors [`crate::ServeTrip`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RouterTrip {
    /// Which budget was breached.
    pub kind: RouterBudgetKind,
    /// The configured cap.
    pub budget: u64,
    /// The observed value that breached it.
    pub observed: u64,
}

/// The runtime ledger for [`RouterBudgets`]: answers admission
/// questions and counts every refusal.
#[derive(Clone, Debug)]
pub struct RouterGuard {
    config: RouterBudgets,
    shed: [u64; 2], // indexed by RouterBudgetKind
    busy: u64,
}

impl RouterGuard {
    /// A guard enforcing `config`.
    #[must_use]
    pub fn new(config: RouterBudgets) -> Self {
        RouterGuard {
            config,
            shed: [0; 2],
            busy: 0,
        }
    }

    /// The enforced budgets.
    #[must_use]
    pub fn config(&self) -> &RouterBudgets {
        &self.config
    }

    /// Admits or refuses one more routed tenant on top of `routed`
    /// already-routed tenants. A breach is counted as a `Busy` refusal.
    ///
    /// # Errors
    ///
    /// The [`RouterTrip`] naming the tenant budget.
    pub fn admit_tenant(&mut self, routed: u64) -> Result<(), RouterTrip> {
        if let Some(budget) = self.config.max_tenants {
            if routed >= budget {
                self.busy += 1;
                return Err(RouterTrip {
                    kind: RouterBudgetKind::Tenants,
                    budget,
                    observed: routed,
                });
            }
        }
        Ok(())
    }

    /// Admits or sheds one chunk whose admission would grow the total
    /// journal to `journal_bytes`. A breach is counted as a
    /// [`RouterBudgetKind::JournalBytes`] shed.
    ///
    /// # Errors
    ///
    /// The [`RouterTrip`] naming the journal budget.
    pub fn admit_journal_bytes(&mut self, journal_bytes: u64) -> Result<(), RouterTrip> {
        if let Some(budget) = self.config.max_journal_bytes {
            if journal_bytes > budget {
                let trip = RouterTrip {
                    kind: RouterBudgetKind::JournalBytes,
                    budget,
                    observed: journal_bytes,
                };
                self.shed[trip.kind as usize] += 1;
                return Err(trip);
            }
        }
        Ok(())
    }

    /// Chunks shed for one budget kind.
    #[must_use]
    pub fn shed(&self, kind: RouterBudgetKind) -> u64 {
        self.shed[kind as usize]
    }

    /// Chunks shed, all budget kinds summed.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().sum()
    }

    /// `Busy` refusals counted.
    #[must_use]
    pub fn busy(&self) -> u64 {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_budgets_admit_everything() {
        let mut guard = RouterGuard::new(RouterBudgets::disabled());
        assert!(!guard.config().is_enabled());
        assert_eq!(guard.admit_tenant(u64::MAX), Ok(()));
        assert_eq!(guard.admit_journal_bytes(u64::MAX), Ok(()));
        assert_eq!(guard.shed_total(), 0);
        assert_eq!(guard.busy(), 0);
    }

    #[test]
    fn tenant_cap_trips_at_the_boundary() {
        let mut guard = RouterGuard::new(RouterBudgets::disabled().with_max_tenants(2));
        assert_eq!(guard.admit_tenant(1), Ok(()));
        let trip = guard.admit_tenant(2).unwrap_err();
        assert_eq!(trip.kind, RouterBudgetKind::Tenants);
        assert_eq!(trip.budget, 2);
        assert_eq!(trip.observed, 2);
        assert_eq!(guard.busy(), 1);
        assert_eq!(guard.shed_total(), 0);
    }

    #[test]
    fn journal_cap_sheds_past_the_boundary() {
        let mut guard = RouterGuard::new(RouterBudgets::disabled().with_max_journal_bytes(1024));
        // At the cap is still admitted; the prospective total must
        // exceed it to shed.
        assert_eq!(guard.admit_journal_bytes(1024), Ok(()));
        let trip = guard.admit_journal_bytes(1025).unwrap_err();
        assert_eq!(trip.kind, RouterBudgetKind::JournalBytes);
        assert_eq!(trip.budget, 1024);
        assert_eq!(trip.observed, 1025);
        assert_eq!(guard.shed(RouterBudgetKind::JournalBytes), 1);
        assert_eq!(guard.shed(RouterBudgetKind::Tenants), 0);
    }

    #[test]
    fn budget_lookup_matches_builders() {
        let budgets = RouterBudgets::disabled()
            .with_max_tenants(8)
            .with_max_journal_bytes(4096);
        assert!(budgets.is_enabled());
        assert_eq!(budgets.budget(RouterBudgetKind::Tenants), Some(8));
        assert_eq!(budgets.budget(RouterBudgetKind::JournalBytes), Some(4096));
        assert_eq!(
            RouterBudgets::disabled().budget(RouterBudgetKind::Tenants),
            None
        );
        for (i, kind) in RouterBudgetKind::ALL.into_iter().enumerate() {
            assert_eq!(kind as usize, i);
            assert!(!kind.label().is_empty());
        }
    }
}
