//! Admission-control budgets for the multi-tenant serving layer.
//!
//! `hds-serve` accepts many tenants' trace streams at once; these
//! budgets are what keeps that front-end from melting down under load.
//! Exactly like [`crate::GuardConfig`] for the per-session optimize
//! cycle, every cap is optional, a breached cap degrades service
//! gracefully — a typed `Busy`/`Shed` response instead of a panic or an
//! unbounded queue — and every decision is counted so the final
//! `ServeReport` reconciles against emitted telemetry.

use hds_telemetry::events::ServeBudgetKind;

/// Optional caps on the serving layer's three load axes. `None` means
/// unlimited.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeBudgets {
    max_live_sessions: Option<u64>,
    max_queued_chunks: Option<u64>,
    max_global_bytes: Option<u64>,
    max_duplicate_frames: Option<u64>,
    max_store_faults: Option<u64>,
}

impl ServeBudgets {
    /// Every budget unlimited (admission control never fires).
    #[must_use]
    pub const fn disabled() -> Self {
        ServeBudgets {
            max_live_sessions: None,
            max_queued_chunks: None,
            max_global_bytes: None,
            max_duplicate_frames: None,
            max_store_faults: None,
        }
    }

    /// Caps concurrently live tenant sessions across all shards. At the
    /// cap, a new tenant either evicts the least-recently-used live
    /// session (eviction enabled) or receives `Busy` (disabled).
    #[must_use]
    pub const fn with_max_live_sessions(mut self, cap: u64) -> Self {
        self.max_live_sessions = Some(cap);
        self
    }

    /// Caps trace chunks queued for a single tenant between pumps;
    /// chunks past the cap are shed.
    #[must_use]
    pub const fn with_max_queued_chunks(mut self, cap: u64) -> Self {
        self.max_queued_chunks = Some(cap);
        self
    }

    /// Caps bytes of chunk payload queued across all tenants; chunks
    /// past the cap are shed.
    #[must_use]
    pub const fn with_max_global_bytes(mut self, cap: u64) -> Self {
        self.max_global_bytes = Some(cap);
        self
    }

    /// Caps duplicate (retransmitted) frames re-received per tenant on
    /// a reliable connection. Retransmissions below the cap are
    /// re-acknowledged for free; a client stuck in a retry storm past
    /// it starts receiving typed `Shed` frames so the control plane is
    /// not monopolized by replays.
    #[must_use]
    pub const fn with_max_duplicate_frames(mut self, cap: u64) -> Self {
        self.max_duplicate_frames = Some(cap);
        self
    }

    /// Caps storage faults tolerated while spilling/loading cold
    /// tenants through the durable store. Past the cap the manager
    /// stops talking to the sick store entirely — tenants hibernate
    /// in memory instead — so a failing disk degrades service to the
    /// pre-store behavior rather than stalling every pump on it.
    #[must_use]
    pub const fn with_max_store_faults(mut self, cap: u64) -> Self {
        self.max_store_faults = Some(cap);
        self
    }

    /// Whether any budget is set at all.
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.max_live_sessions.is_some()
            || self.max_queued_chunks.is_some()
            || self.max_global_bytes.is_some()
            || self.max_duplicate_frames.is_some()
            || self.max_store_faults.is_some()
    }

    /// The configured cap for one budget kind.
    #[must_use]
    pub fn budget(&self, kind: ServeBudgetKind) -> Option<u64> {
        match kind {
            ServeBudgetKind::LiveSessions => self.max_live_sessions,
            ServeBudgetKind::TenantQueue => self.max_queued_chunks,
            ServeBudgetKind::GlobalBytes => self.max_global_bytes,
            ServeBudgetKind::RetryStorm => self.max_duplicate_frames,
            ServeBudgetKind::StoreFaults => self.max_store_faults,
        }
    }
}

/// One admission-control refusal: which budget, its cap, and the
/// observed value that breached it. Mirrors [`crate::Trip`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ServeTrip {
    /// Which budget was breached.
    pub kind: ServeBudgetKind,
    /// The configured cap.
    pub budget: u64,
    /// The observed value that breached it.
    pub observed: u64,
}

/// The runtime ledger for [`ServeBudgets`]: answers admission questions
/// and counts every refusal, so `ServeReport` totals reconcile exactly
/// with the `Shed`/`Busy` telemetry the manager emits.
#[derive(Clone, Debug)]
pub struct ServeGuard {
    config: ServeBudgets,
    shed: [u64; 5], // indexed by ServeBudgetKind
    busy: u64,
}

impl ServeGuard {
    /// A guard enforcing `config`.
    #[must_use]
    pub fn new(config: ServeBudgets) -> Self {
        ServeGuard {
            config,
            shed: [0; 5],
            busy: 0,
        }
    }

    /// The enforced budgets.
    #[must_use]
    pub fn config(&self) -> &ServeBudgets {
        &self.config
    }

    /// Whether admitting one more live session on top of `live` would
    /// breach the cap. Does not count anything: the caller decides
    /// whether the breach becomes an LRU eviction or a counted `Busy`.
    #[must_use]
    pub fn session_over_budget(&self, live: u64) -> Option<ServeTrip> {
        let budget = self.config.max_live_sessions?;
        if live >= budget {
            return Some(ServeTrip {
                kind: ServeBudgetKind::LiveSessions,
                budget,
                observed: live,
            });
        }
        None
    }

    /// Records one `Busy` refusal (session cap breached, eviction
    /// disabled).
    pub fn count_busy(&mut self) {
        self.busy += 1;
    }

    /// Admits or sheds one queued trace chunk. `tenant_queued` and
    /// `global_bytes` are the *prospective* values if the chunk were
    /// accepted (current count plus this chunk). A breach sheds the
    /// chunk: the refusal is counted and returned as a typed trip.
    ///
    /// # Errors
    ///
    /// The [`ServeTrip`] naming the breached budget; the per-tenant
    /// queue cap is checked before the global byte cap.
    pub fn admit_chunk(&mut self, tenant_queued: u64, global_bytes: u64) -> Result<(), ServeTrip> {
        if let Some(budget) = self.config.max_queued_chunks {
            if tenant_queued > budget {
                let trip = ServeTrip {
                    kind: ServeBudgetKind::TenantQueue,
                    budget,
                    observed: tenant_queued,
                };
                self.shed[trip.kind as usize] += 1;
                return Err(trip);
            }
        }
        if let Some(budget) = self.config.max_global_bytes {
            if global_bytes > budget {
                let trip = ServeTrip {
                    kind: ServeBudgetKind::GlobalBytes,
                    budget,
                    observed: global_bytes,
                };
                self.shed[trip.kind as usize] += 1;
                return Err(trip);
            }
        }
        Ok(())
    }

    /// Admits or sheds one *duplicate* (retransmitted) frame.
    /// `tenant_duplicates` is the prospective per-tenant duplicate
    /// count if this one were tolerated. Below the cap a duplicate is
    /// harmless (it is deduplicated, not re-applied); past it the
    /// refusal is counted as a [`ServeBudgetKind::RetryStorm`] shed.
    ///
    /// # Errors
    ///
    /// The [`ServeTrip`] naming the retry-storm budget.
    pub fn admit_duplicate(&mut self, tenant_duplicates: u64) -> Result<(), ServeTrip> {
        if let Some(budget) = self.config.max_duplicate_frames {
            if tenant_duplicates > budget {
                let trip = ServeTrip {
                    kind: ServeBudgetKind::RetryStorm,
                    budget,
                    observed: tenant_duplicates,
                };
                self.shed[trip.kind as usize] += 1;
                return Err(trip);
            }
        }
        Ok(())
    }

    /// Admits or refuses one more durable-store operation after
    /// `store_faults` faults have been observed (including the one
    /// that just happened). At or below the cap the store stays in
    /// service; past it the refusal is counted as a
    /// [`ServeBudgetKind::StoreFaults`] shed and the caller should
    /// stop spilling — hibernated tenants stay in memory, which is
    /// degraded but correct.
    ///
    /// # Errors
    ///
    /// The [`ServeTrip`] naming the store-fault budget.
    pub fn admit_store_fault(&mut self, store_faults: u64) -> Result<(), ServeTrip> {
        if let Some(budget) = self.config.max_store_faults {
            if store_faults > budget {
                let trip = ServeTrip {
                    kind: ServeBudgetKind::StoreFaults,
                    budget,
                    observed: store_faults,
                };
                self.shed[trip.kind as usize] += 1;
                return Err(trip);
            }
        }
        Ok(())
    }

    /// Chunks shed for one budget kind.
    #[must_use]
    pub fn shed(&self, kind: ServeBudgetKind) -> u64 {
        self.shed[kind as usize]
    }

    /// Chunks shed, all budget kinds summed.
    #[must_use]
    pub fn shed_total(&self) -> u64 {
        self.shed.iter().sum()
    }

    /// `Busy` refusals counted.
    #[must_use]
    pub fn busy(&self) -> u64 {
        self.busy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_budgets_admit_everything() {
        let mut guard = ServeGuard::new(ServeBudgets::disabled());
        assert!(!guard.config().is_enabled());
        assert!(guard.session_over_budget(u64::MAX).is_none());
        assert_eq!(guard.admit_chunk(u64::MAX, u64::MAX), Ok(()));
        assert_eq!(guard.shed_total(), 0);
        assert_eq!(guard.busy(), 0);
    }

    #[test]
    fn session_cap_trips_at_the_boundary() {
        let guard = ServeGuard::new(ServeBudgets::disabled().with_max_live_sessions(2));
        assert!(guard.session_over_budget(1).is_none());
        let trip = guard.session_over_budget(2).expect("at cap");
        assert_eq!(trip.kind, ServeBudgetKind::LiveSessions);
        assert_eq!(trip.budget, 2);
        assert_eq!(trip.observed, 2);
    }

    #[test]
    fn chunk_admission_checks_queue_then_bytes() {
        let budgets = ServeBudgets::disabled()
            .with_max_queued_chunks(4)
            .with_max_global_bytes(1024);
        let mut guard = ServeGuard::new(budgets);
        assert_eq!(guard.admit_chunk(4, 1024), Ok(()));
        // Both over budget: the tenant queue is named first.
        let trip = guard.admit_chunk(5, 2048).unwrap_err();
        assert_eq!(trip.kind, ServeBudgetKind::TenantQueue);
        let trip = guard.admit_chunk(3, 2048).unwrap_err();
        assert_eq!(trip.kind, ServeBudgetKind::GlobalBytes);
        assert_eq!(trip.budget, 1024);
        assert_eq!(trip.observed, 2048);
        assert_eq!(guard.shed(ServeBudgetKind::TenantQueue), 1);
        assert_eq!(guard.shed(ServeBudgetKind::GlobalBytes), 1);
        assert_eq!(guard.shed(ServeBudgetKind::LiveSessions), 0);
        assert_eq!(guard.shed_total(), 2);
    }

    #[test]
    fn duplicate_storms_trip_the_retry_budget() {
        let mut guard = ServeGuard::new(ServeBudgets::disabled().with_max_duplicate_frames(2));
        // Replays up to the cap are absorbed for free — a lossy
        // network legitimately causes a few.
        assert_eq!(guard.admit_duplicate(1), Ok(()));
        assert_eq!(guard.admit_duplicate(2), Ok(()));
        let trip = guard.admit_duplicate(3).unwrap_err();
        assert_eq!(trip.kind, ServeBudgetKind::RetryStorm);
        assert_eq!(trip.budget, 2);
        assert_eq!(trip.observed, 3);
        assert_eq!(guard.shed(ServeBudgetKind::RetryStorm), 1);
        // Disabled budgets absorb any storm.
        let mut open = ServeGuard::new(ServeBudgets::disabled());
        assert_eq!(open.admit_duplicate(u64::MAX), Ok(()));
        assert_eq!(open.shed_total(), 0);
    }

    #[test]
    fn store_faults_trip_their_own_budget() {
        let mut guard = ServeGuard::new(ServeBudgets::disabled().with_max_store_faults(2));
        // A couple of faults are tolerated — transient I/O happens.
        assert_eq!(guard.admit_store_fault(1), Ok(()));
        assert_eq!(guard.admit_store_fault(2), Ok(()));
        let trip = guard.admit_store_fault(3).unwrap_err();
        assert_eq!(trip.kind, ServeBudgetKind::StoreFaults);
        assert_eq!(trip.budget, 2);
        assert_eq!(trip.observed, 3);
        assert_eq!(guard.shed(ServeBudgetKind::StoreFaults), 1);
        // No cap: a flaky store never trips.
        let mut open = ServeGuard::new(ServeBudgets::disabled());
        assert_eq!(open.admit_store_fault(u64::MAX), Ok(()));
        assert_eq!(open.shed_total(), 0);
    }

    #[test]
    fn busy_refusals_are_counted_separately() {
        let mut guard = ServeGuard::new(ServeBudgets::disabled().with_max_live_sessions(0));
        assert!(guard.session_over_budget(0).is_some());
        guard.count_busy();
        guard.count_busy();
        assert_eq!(guard.busy(), 2);
        assert_eq!(guard.shed_total(), 0);
    }

    #[test]
    fn budget_lookup_matches_builders() {
        let budgets = ServeBudgets::disabled()
            .with_max_live_sessions(8)
            .with_max_queued_chunks(16)
            .with_max_global_bytes(4096);
        assert!(budgets.is_enabled());
        assert_eq!(budgets.budget(ServeBudgetKind::LiveSessions), Some(8));
        assert_eq!(budgets.budget(ServeBudgetKind::TenantQueue), Some(16));
        assert_eq!(budgets.budget(ServeBudgetKind::GlobalBytes), Some(4096));
        assert_eq!(
            ServeBudgets::disabled().budget(ServeBudgetKind::LiveSessions),
            None
        );
    }
}
