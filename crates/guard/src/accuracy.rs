//! Per-stream prefetch-accuracy tracking and the partial-deoptimization
//! policy.
//!
//! The paper de-optimizes all-or-nothing at the end of a hibernation
//! span (§3.2). This module refines that: each installed stream's
//! prefetch outcomes (Useful / Late / Polluted, attributed by the
//! memory simulator) are accumulated per evaluation window; a stream
//! whose accuracy stays below threshold for K consecutive windows is
//! flagged for *surgical* removal while its well-predicting siblings
//! keep prefetching.

use std::collections::{HashMap, HashSet};

use hds_telemetry::events::PrefetchFate;

/// Policy for accuracy-driven partial de-optimization.
#[derive(Clone, Debug, PartialEq)]
pub struct AccuracyConfig {
    /// A window is *bad* when `useful / resolved` falls below this.
    pub min_accuracy: f64,
    /// Consecutive bad windows before a stream is flagged for removal.
    pub bad_windows: u32,
    /// Windows with fewer resolved outcomes than this are inconclusive:
    /// they neither extend nor reset the streak.
    pub min_samples: u64,
}

impl AccuracyConfig {
    /// A moderate default: below 50% accuracy for 2 consecutive windows
    /// of at least 4 resolved outcomes.
    #[must_use]
    pub const fn new() -> Self {
        AccuracyConfig {
            min_accuracy: 0.5,
            bad_windows: 2,
            min_samples: 4,
        }
    }
}

impl Default for AccuracyConfig {
    fn default() -> Self {
        AccuracyConfig::new()
    }
}

/// A stream flagged for partial de-optimization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BadStream {
    /// The stream's id in the current DFSM installation.
    pub stream_id: u32,
    /// Accuracy over the window that completed the streak.
    pub accuracy: f64,
    /// Length of the bad-window streak.
    pub windows: u32,
}

#[derive(Clone, Debug, Default)]
struct StreamStats {
    hash: u64,
    useful: u64,
    late: u64,
    polluted: u64,
    streak: u32,
}

impl StreamStats {
    fn resolved(&self) -> u64 {
        self.useful + self.late + self.polluted
    }

    #[allow(clippy::cast_precision_loss)]
    fn accuracy(&self) -> f64 {
        let resolved = self.resolved();
        if resolved == 0 {
            0.0
        } else {
            self.useful as f64 / resolved as f64
        }
    }
}

/// Serializable state of one tracked stream inside an [`AccuracyState`].
///
/// Plain data for checkpointing: field order mirrors the private
/// per-stream accumulator.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct StreamAccuracyState {
    pub stream_id: u32,
    pub hash: u64,
    pub useful: u64,
    pub late: u64,
    pub polluted: u64,
    pub streak: u32,
}

/// Serializable snapshot of an [`AccuracyTracker`]: per-stream window
/// accumulators (sorted by stream id) plus the cross-installation
/// denylist (sorted). The config is not included — it is part of the
/// session configuration, which a checkpoint validates separately.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct AccuracyState {
    pub streams: Vec<StreamAccuracyState>,
    pub denylist: Vec<u64>,
}

/// Tracks per-stream outcomes across evaluation windows and maintains
/// the cross-installation denylist of content hashes.
#[derive(Clone, Debug)]
pub struct AccuracyTracker {
    config: AccuracyConfig,
    streams: HashMap<u32, StreamStats>,
    denylist: HashSet<u64>,
}

impl AccuracyTracker {
    pub(crate) fn new(config: AccuracyConfig) -> Self {
        AccuracyTracker {
            config,
            streams: HashMap::new(),
            denylist: HashSet::new(),
        }
    }

    pub(crate) fn begin_install(&mut self, streams: impl IntoIterator<Item = (u32, u64)>) {
        self.streams = streams
            .into_iter()
            .map(|(id, hash)| {
                (
                    id,
                    StreamStats {
                        hash,
                        ..StreamStats::default()
                    },
                )
            })
            .collect();
    }

    pub(crate) fn record(&mut self, stream_id: u32, fate: PrefetchFate) {
        // Outcomes can resolve after their stream was dropped (prefetches
        // in flight at removal time); those are ignored.
        let Some(stats) = self.streams.get_mut(&stream_id) else {
            return;
        };
        match fate {
            PrefetchFate::Useful => stats.useful += 1,
            PrefetchFate::Late => stats.late += 1,
            PrefetchFate::Polluted => stats.polluted += 1,
        }
    }

    pub(crate) fn evaluate_window(&mut self) -> Vec<BadStream> {
        let mut flagged = Vec::new();
        for (&id, stats) in &mut self.streams {
            if stats.resolved() < self.config.min_samples {
                continue; // inconclusive window: streak unchanged
            }
            let accuracy = stats.accuracy();
            if accuracy < self.config.min_accuracy {
                stats.streak += 1;
                if stats.streak >= self.config.bad_windows {
                    flagged.push(BadStream {
                        stream_id: id,
                        accuracy,
                        windows: stats.streak,
                    });
                }
            } else {
                stats.streak = 0;
            }
            stats.useful = 0;
            stats.late = 0;
            stats.polluted = 0;
        }
        // Worst accuracy first; id tiebreak for determinism.
        flagged.sort_by(|a, b| {
            a.accuracy
                .partial_cmp(&b.accuracy)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.stream_id.cmp(&b.stream_id))
        });
        flagged
    }

    pub(crate) fn drop_stream(&mut self, stream_id: u32) {
        if let Some(stats) = self.streams.remove(&stream_id) {
            self.denylist.insert(stats.hash);
        }
    }

    pub(crate) fn is_denylisted(&self, hash: u64) -> bool {
        self.denylist.contains(&hash)
    }

    pub(crate) fn denylist_len(&self) -> usize {
        self.denylist.len()
    }

    pub(crate) fn denylist_hashes(&self) -> Vec<u64> {
        let mut hashes: Vec<u64> = self.denylist.iter().copied().collect();
        hashes.sort_unstable();
        hashes
    }

    /// Canonical (sorted) snapshot of the tracker for checkpointing.
    pub(crate) fn export_state(&self) -> AccuracyState {
        let mut streams: Vec<StreamAccuracyState> = self
            .streams
            .iter()
            .map(|(&id, s)| StreamAccuracyState {
                stream_id: id,
                hash: s.hash,
                useful: s.useful,
                late: s.late,
                polluted: s.polluted,
                streak: s.streak,
            })
            .collect();
        streams.sort_unstable_by_key(|s| s.stream_id);
        AccuracyState {
            streams,
            denylist: self.denylist_hashes(),
        }
    }

    /// Overwrites per-stream accumulators and the denylist from a
    /// snapshot. The config is left as constructed.
    pub(crate) fn restore_state(&mut self, state: &AccuracyState) {
        self.streams = state
            .streams
            .iter()
            .map(|s| {
                (
                    s.stream_id,
                    StreamStats {
                        hash: s.hash,
                        useful: s.useful,
                        late: s.late,
                        polluted: s.polluted,
                        streak: s.streak,
                    },
                )
            })
            .collect();
        self.denylist = state.denylist.iter().copied().collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tracker() -> AccuracyTracker {
        let mut t = AccuracyTracker::new(AccuracyConfig {
            min_accuracy: 0.5,
            bad_windows: 2,
            min_samples: 2,
        });
        t.begin_install([(0, 0xAAAA), (1, 0xBBBB)]);
        t
    }

    fn feed(t: &mut AccuracyTracker, id: u32, useful: u64, polluted: u64) {
        for _ in 0..useful {
            t.record(id, PrefetchFate::Useful);
        }
        for _ in 0..polluted {
            t.record(id, PrefetchFate::Polluted);
        }
    }

    #[test]
    fn needs_k_consecutive_bad_windows() {
        let mut t = tracker();
        feed(&mut t, 0, 0, 4); // bad window 1
        assert!(t.evaluate_window().is_empty());
        feed(&mut t, 0, 0, 4); // bad window 2 → flagged
        let bad = t.evaluate_window();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].stream_id, 0);
        assert_eq!(bad[0].windows, 2);
        assert_eq!(bad[0].accuracy, 0.0);
    }

    #[test]
    fn good_window_resets_the_streak() {
        let mut t = tracker();
        feed(&mut t, 0, 0, 4);
        t.evaluate_window();
        feed(&mut t, 0, 4, 0); // good window resets
        t.evaluate_window();
        feed(&mut t, 0, 0, 4); // bad again, streak restarts at 1
        assert!(t.evaluate_window().is_empty());
    }

    #[test]
    fn sparse_windows_are_inconclusive() {
        let mut t = tracker();
        feed(&mut t, 0, 0, 4);
        t.evaluate_window();
        feed(&mut t, 0, 0, 1); // below min_samples: no verdict either way
        assert!(t.evaluate_window().is_empty());
        feed(&mut t, 0, 0, 4); // streak resumes at 2 → flagged
        assert_eq!(t.evaluate_window().len(), 1);
    }

    #[test]
    fn only_the_bad_stream_is_flagged_and_denylisted() {
        let mut t = tracker();
        for _ in 0..2 {
            feed(&mut t, 0, 0, 4); // stream 0: 0% accuracy
            feed(&mut t, 1, 4, 0); // stream 1: 100% accuracy
        }
        t.evaluate_window();
        feed(&mut t, 0, 0, 4);
        feed(&mut t, 1, 4, 0);
        let bad = t.evaluate_window();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].stream_id, 0);

        t.drop_stream(0);
        assert!(t.is_denylisted(0xAAAA));
        assert!(!t.is_denylisted(0xBBBB));
        assert_eq!(t.denylist_len(), 1);
        // Outcomes for the dropped stream are ignored, not a panic.
        t.record(0, PrefetchFate::Useful);
    }

    #[test]
    fn export_restore_round_trips_mid_streak() {
        let mut t = tracker();
        feed(&mut t, 0, 0, 4); // streak 1 after evaluation
        feed(&mut t, 1, 4, 0);
        t.evaluate_window();
        feed(&mut t, 0, 1, 2); // partial window in flight
        t.drop_stream(1);

        let state = t.export_state();
        assert_eq!(state.streams.len(), 1);
        assert_eq!(state.streams[0].stream_id, 0);
        assert_eq!(state.streams[0].streak, 1);
        assert_eq!(state.denylist, vec![0xBBBB]);

        let mut restored = AccuracyTracker::new(t.config.clone());
        restored.restore_state(&state);
        assert_eq!(restored.export_state(), state);
        // Both finish the window identically: one more polluted outcome
        // completes the bad streak and flags stream 0.
        for tr in [&mut t, &mut restored] {
            feed(tr, 0, 0, 1);
            let bad = tr.evaluate_window();
            assert_eq!(bad.len(), 1);
            assert_eq!(bad[0].stream_id, 0);
            assert_eq!(bad[0].windows, 2);
        }
        assert!(restored.is_denylisted(0xBBBB));
    }

    #[test]
    fn flagged_streams_sort_worst_first() {
        let mut t = AccuracyTracker::new(AccuracyConfig {
            min_accuracy: 0.9,
            bad_windows: 1,
            min_samples: 1,
        });
        t.begin_install([(0, 1), (1, 2)]);
        feed(&mut t, 0, 1, 1); // 50%
        feed(&mut t, 1, 0, 2); // 0%
        let bad = t.evaluate_window();
        assert_eq!(bad.len(), 2);
        assert_eq!(bad[0].stream_id, 1);
        assert_eq!(bad[1].stream_id, 0);
    }
}
