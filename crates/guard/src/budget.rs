//! Budget guards: caps on the resources the optimize cycle consumes.

use hds_telemetry::events::{GuardKind, PrefetchFate};

use crate::accuracy::{AccuracyConfig, AccuracyState, AccuracyTracker, BadStream};

/// Configured budgets for the optimize cycle. `None` disables a guard.
///
/// The default configuration ([`GuardConfig::disabled`]) has every guard
/// off, which makes the guard layer behaviorally inert: the executor's
/// reported cycle costs are identical to a build without the layer.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GuardConfig {
    /// Cap on Sequitur grammar rule count during an awake phase. A trip
    /// mutes further grammar growth for the rest of the phase and skips
    /// the end-of-awake optimization (the profile is untrustworthy).
    pub max_grammar_rules: Option<u64>,
    /// Cap on the *projected* simulated cycles of the end-of-awake
    /// analysis pass. A trip skips analysis and optimization for the
    /// cycle; profiling resumes next cycle.
    pub max_analysis_cycles: Option<u64>,
    /// Cap on DFSM subset-construction states, applied on top of the
    /// DFSM crate's own configured limit. A trip skips injection.
    pub max_dfsm_states: Option<u64>,
    /// Cap on the pending-prefetch queue depth. A trip truncates the
    /// queue to the cap (oldest prefetches win: they are closest to
    /// their use point).
    pub max_prefetch_queue: Option<u64>,
    /// Cap on the simulated cycles a background analysis may lag behind
    /// its handoff point (concurrent-analysis mode). A trip discards
    /// the late result instead of installing stale streams; profiling
    /// resumes next cycle.
    pub max_worker_lag: Option<u64>,
    /// Accuracy-driven partial de-optimization policy; `None` disables
    /// outcome tracking entirely.
    pub accuracy: Option<AccuracyConfig>,
}

impl GuardConfig {
    /// Every guard off: the layer is behaviorally inert.
    #[must_use]
    pub const fn disabled() -> Self {
        GuardConfig {
            max_grammar_rules: None,
            max_analysis_cycles: None,
            max_dfsm_states: None,
            max_prefetch_queue: None,
            max_worker_lag: None,
            accuracy: None,
        }
    }

    /// Is any guard or the accuracy policy enabled?
    #[must_use]
    pub fn is_enabled(&self) -> bool {
        self.max_grammar_rules.is_some()
            || self.max_analysis_cycles.is_some()
            || self.max_dfsm_states.is_some()
            || self.max_prefetch_queue.is_some()
            || self.max_worker_lag.is_some()
            || self.accuracy.is_some()
    }

    /// The budget configured for `kind`, if any.
    #[must_use]
    pub fn budget(&self, kind: GuardKind) -> Option<u64> {
        match kind {
            GuardKind::GrammarRules => self.max_grammar_rules,
            GuardKind::AnalysisCycles => self.max_analysis_cycles,
            GuardKind::DfsmStates => self.max_dfsm_states,
            GuardKind::PrefetchQueue => self.max_prefetch_queue,
            GuardKind::WorkerLag => self.max_worker_lag,
        }
    }

    /// With a grammar-rule cap.
    #[must_use]
    pub const fn with_max_grammar_rules(mut self, cap: u64) -> Self {
        self.max_grammar_rules = Some(cap);
        self
    }

    /// With an analysis-cycle cap.
    #[must_use]
    pub const fn with_max_analysis_cycles(mut self, cap: u64) -> Self {
        self.max_analysis_cycles = Some(cap);
        self
    }

    /// With a DFSM state cap.
    #[must_use]
    pub const fn with_max_dfsm_states(mut self, cap: u64) -> Self {
        self.max_dfsm_states = Some(cap);
        self
    }

    /// With a pending-prefetch queue cap.
    #[must_use]
    pub const fn with_max_prefetch_queue(mut self, cap: u64) -> Self {
        self.max_prefetch_queue = Some(cap);
        self
    }

    /// With a background-worker lag cap (simulated cycles).
    #[must_use]
    pub const fn with_max_worker_lag(mut self, cap: u64) -> Self {
        self.max_worker_lag = Some(cap);
        self
    }

    /// With an accuracy-driven partial-deoptimization policy.
    #[must_use]
    pub fn with_accuracy(mut self, policy: AccuracyConfig) -> Self {
        self.accuracy = Some(policy);
        self
    }
}

/// A budget violation observed by [`GuardRuntime::observe`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Trip {
    /// Which budget tripped.
    pub guard: GuardKind,
    /// The configured cap.
    pub budget: u64,
    /// The observed value exceeding it.
    pub observed: u64,
    /// `true` the first time this guard trips in the current cycle —
    /// the one occurrence that should emit a `GuardTripped` event.
    pub first_in_cycle: bool,
}

/// Serializable snapshot of a [`GuardRuntime`]: per-cycle trip latches,
/// lifetime trip counts, and the accuracy tracker's state (if the
/// accuracy policy is enabled). The config itself is not captured — a
/// checkpoint validates configuration compatibility separately.
#[derive(Clone, Debug, Default, PartialEq)]
#[allow(missing_docs)]
pub struct GuardState {
    pub tripped: [bool; 5],
    pub trips: [u64; 5],
    pub accuracy: Option<AccuracyState>,
}

/// Runtime state of the guard layer for one optimizer session: per-cycle
/// trip latches, lifetime trip counts, and the per-stream accuracy
/// tracker.
#[derive(Clone, Debug)]
pub struct GuardRuntime {
    config: GuardConfig,
    tripped: [bool; 5],
    trips: [u64; 5],
    accuracy: Option<AccuracyTracker>,
}

impl GuardRuntime {
    /// A runtime for `config`.
    #[must_use]
    pub fn new(config: GuardConfig) -> Self {
        let accuracy = config.accuracy.clone().map(AccuracyTracker::new);
        GuardRuntime {
            config,
            tripped: [false; 5],
            trips: [0; 5],
            accuracy,
        }
    }

    /// The configuration this runtime enforces.
    #[must_use]
    pub fn config(&self) -> &GuardConfig {
        &self.config
    }

    /// Resets the per-cycle trip latches (call at each `CycleStart`).
    pub fn begin_cycle(&mut self) {
        self.tripped = [false; 5];
    }

    /// Checks `observed` against `kind`'s budget. Returns `None` while
    /// within budget (or when the guard is off); otherwise a [`Trip`]
    /// whose `first_in_cycle` flag is set exactly once per kind per
    /// cycle (the occurrence that should emit telemetry). Only first
    /// occurrences count toward [`GuardRuntime::trips`], so the count
    /// reconciles exactly with emitted `GuardTripped` events.
    pub fn observe(&mut self, kind: GuardKind, observed: u64) -> Option<Trip> {
        let budget = self.config.budget(kind)?;
        if observed <= budget {
            return None;
        }
        let slot = kind as usize;
        let first_in_cycle = !self.tripped[slot];
        if first_in_cycle {
            self.tripped[slot] = true;
            self.trips[slot] += 1;
        }
        Some(Trip {
            guard: kind,
            budget,
            observed,
            first_in_cycle,
        })
    }

    /// Has `kind` already tripped in the current cycle?
    #[must_use]
    pub fn is_tripped(&self, kind: GuardKind) -> bool {
        self.tripped[kind as usize]
    }

    /// Lifetime first-in-cycle trips of `kind`.
    #[must_use]
    pub fn trips(&self, kind: GuardKind) -> u64 {
        self.trips[kind as usize]
    }

    /// Lifetime first-in-cycle trips across every guard.
    #[must_use]
    pub fn trips_total(&self) -> u64 {
        self.trips.iter().sum()
    }

    // ---- accuracy policy passthroughs ----

    /// Does this runtime need per-stream prefetch outcomes? When `true`
    /// the executor must tag prefetches for attribution even without an
    /// enabled observer.
    #[must_use]
    pub fn tracks_accuracy(&self) -> bool {
        self.accuracy.is_some()
    }

    /// Registers the streams of a fresh DFSM installation: `(stream id,
    /// content hash)` pairs. Clears the previous installation's stats.
    pub fn begin_install(&mut self, streams: impl IntoIterator<Item = (u32, u64)>) {
        if let Some(acc) = &mut self.accuracy {
            acc.begin_install(streams);
        }
    }

    /// Accumulates one resolved prefetch outcome for `stream_id`.
    pub fn record_outcome(&mut self, stream_id: u32, fate: PrefetchFate) {
        if let Some(acc) = &mut self.accuracy {
            acc.record(stream_id, fate);
        }
    }

    /// Closes the current evaluation window: updates every tracked
    /// stream's low-accuracy streak and returns the streams whose streak
    /// reached the configured limit — the partial-deoptimization
    /// candidates, worst accuracy first.
    pub fn evaluate_window(&mut self) -> Vec<BadStream> {
        self.accuracy
            .as_mut()
            .map(AccuracyTracker::evaluate_window)
            .unwrap_or_default()
    }

    /// Drops `stream_id` from tracking after its checks were removed,
    /// adding its content hash to the cross-installation denylist.
    pub fn drop_stream(&mut self, stream_id: u32) {
        if let Some(acc) = &mut self.accuracy {
            acc.drop_stream(stream_id);
        }
    }

    /// Is a stream with this content hash denylisted from
    /// re-installation?
    #[must_use]
    pub fn is_denylisted(&self, hash: u64) -> bool {
        self.accuracy
            .as_ref()
            .is_some_and(|acc| acc.is_denylisted(hash))
    }

    /// Number of denylisted stream hashes.
    #[must_use]
    pub fn denylist_len(&self) -> usize {
        self.accuracy
            .as_ref()
            .map_or(0, AccuracyTracker::denylist_len)
    }

    /// Snapshot of the denylisted content hashes, sorted for
    /// determinism. Used to hand the denylist to a background analysis
    /// worker that cannot borrow the tracker across threads.
    #[must_use]
    pub fn denylist_hashes(&self) -> Vec<u64> {
        self.accuracy
            .as_ref()
            .map_or_else(Vec::new, AccuracyTracker::denylist_hashes)
    }

    // ---- checkpointing ----

    /// Canonical snapshot of the runtime's mutable state for
    /// checkpointing.
    #[must_use]
    pub fn export_state(&self) -> GuardState {
        GuardState {
            tripped: self.tripped,
            trips: self.trips,
            accuracy: self.accuracy.as_ref().map(AccuracyTracker::export_state),
        }
    }

    /// Overwrites the runtime's mutable state from a snapshot. The
    /// snapshot's accuracy state is applied only when this runtime's
    /// config has the accuracy policy enabled (checkpoint config
    /// validation makes a mismatch unreachable in practice).
    pub fn restore_state(&mut self, state: &GuardState) {
        self.tripped = state.tripped;
        self.trips = state.trips;
        if let (Some(acc), Some(s)) = (&mut self.accuracy, &state.accuracy) {
            acc.restore_state(s);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_config_observes_nothing() {
        let mut guard = GuardRuntime::new(GuardConfig::disabled());
        assert!(!guard.config().is_enabled());
        for kind in GuardKind::ALL {
            assert!(guard.observe(kind, u64::MAX).is_none());
        }
        assert_eq!(guard.trips_total(), 0);
    }

    #[test]
    fn trips_latch_per_cycle_and_count_once() {
        let cfg = GuardConfig::disabled()
            .with_max_grammar_rules(10)
            .with_max_prefetch_queue(4);
        assert!(cfg.is_enabled());
        let mut guard = GuardRuntime::new(cfg);

        guard.begin_cycle();
        assert!(guard.observe(GuardKind::GrammarRules, 10).is_none());
        let t = guard.observe(GuardKind::GrammarRules, 11).unwrap();
        assert!(t.first_in_cycle);
        assert_eq!(t.budget, 10);
        assert!(guard.is_tripped(GuardKind::GrammarRules));
        assert!(
            !guard
                .observe(GuardKind::GrammarRules, 12)
                .unwrap()
                .first_in_cycle
        );
        // Independent guard, independent latch.
        assert!(
            guard
                .observe(GuardKind::PrefetchQueue, 5)
                .unwrap()
                .first_in_cycle
        );

        guard.begin_cycle();
        assert!(!guard.is_tripped(GuardKind::GrammarRules));
        assert!(
            guard
                .observe(GuardKind::GrammarRules, 99)
                .unwrap()
                .first_in_cycle
        );

        assert_eq!(guard.trips(GuardKind::GrammarRules), 2);
        assert_eq!(guard.trips(GuardKind::PrefetchQueue), 1);
        assert_eq!(guard.trips_total(), 3);
    }

    #[test]
    fn budget_lookup_matches_fields() {
        let cfg = GuardConfig::disabled()
            .with_max_grammar_rules(1)
            .with_max_analysis_cycles(2)
            .with_max_dfsm_states(3)
            .with_max_prefetch_queue(4)
            .with_max_worker_lag(5);
        assert_eq!(cfg.budget(GuardKind::GrammarRules), Some(1));
        assert_eq!(cfg.budget(GuardKind::AnalysisCycles), Some(2));
        assert_eq!(cfg.budget(GuardKind::DfsmStates), Some(3));
        assert_eq!(cfg.budget(GuardKind::PrefetchQueue), Some(4));
        assert_eq!(cfg.budget(GuardKind::WorkerLag), Some(5));
    }

    #[test]
    fn worker_lag_trips_like_any_budget() {
        let mut guard = GuardRuntime::new(GuardConfig::disabled().with_max_worker_lag(100));
        guard.begin_cycle();
        assert!(guard.observe(GuardKind::WorkerLag, 100).is_none());
        let t = guard.observe(GuardKind::WorkerLag, 101).unwrap();
        assert!(t.first_in_cycle);
        assert_eq!(t.budget, 100);
        assert_eq!(guard.trips(GuardKind::WorkerLag), 1);
    }

    #[test]
    fn accuracy_is_off_by_default() {
        let guard = GuardRuntime::new(GuardConfig::disabled());
        assert!(!guard.tracks_accuracy());
        assert_eq!(guard.denylist_len(), 0);
    }

    #[test]
    fn export_restore_round_trips_runtime_state() {
        use hds_telemetry::events::PrefetchFate;

        let cfg = GuardConfig::disabled()
            .with_max_grammar_rules(10)
            .with_accuracy(AccuracyConfig::new());
        let mut guard = GuardRuntime::new(cfg.clone());
        guard.begin_cycle();
        guard.observe(GuardKind::GrammarRules, 50);
        guard.begin_install([(0, 0xCAFE), (1, 0xF00D)]);
        for _ in 0..4 {
            guard.record_outcome(0, PrefetchFate::Polluted);
            guard.record_outcome(1, PrefetchFate::Useful);
        }
        guard.evaluate_window();
        guard.drop_stream(1);

        let state = guard.export_state();
        assert!(state.tripped[GuardKind::GrammarRules as usize]);
        assert_eq!(state.trips[GuardKind::GrammarRules as usize], 1);
        let acc = state.accuracy.as_ref().unwrap();
        assert_eq!(acc.denylist, vec![0xF00D]);

        let mut restored = GuardRuntime::new(cfg);
        restored.restore_state(&state);
        assert_eq!(restored.export_state(), state);
        assert!(restored.is_tripped(GuardKind::GrammarRules));
        assert_eq!(restored.trips_total(), 1);
        assert!(restored.is_denylisted(0xF00D));
        // The latch survived the round trip: a repeat observation in the
        // same cycle is not first_in_cycle.
        assert!(
            !restored
                .observe(GuardKind::GrammarRules, 60)
                .unwrap()
                .first_in_cycle
        );
    }
}
