//! Deterministic, seeded fault injection for the optimize cycle.
//!
//! The executor is generic over a [`FaultInjector`], exactly as it is
//! generic over `hds-telemetry`'s `Observer`: the default [`NoFaults`]
//! sets [`FaultInjector::ENABLED`] to `false`, so every injection site
//! monomorphizes to nothing in production builds. [`FaultPlan`] is the
//! chaos-testing implementation: a seeded xorshift generator drives
//! per-site fault probabilities, so a failing schedule replays exactly
//! from its seed.

use std::fmt;

use hds_trace::{Addr, DataRef};
use hds_vulcan::EditError;

/// Where a crash fault can kill the optimizer process (simulated: the
/// session stops consuming events and must be restarted from its last
/// snapshot by a supervisor).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CrashPoint {
    /// At an awake/hibernate phase boundary, after the boundary's
    /// snapshot was captured.
    PhaseBoundary,
    /// Inside a stop-the-world edit, after the write-ahead journal was
    /// written but before every patch landed (a torn image).
    MidEdit,
    /// During the handoff of a trace to the background analysis worker.
    MidHandoff,
    /// Midway through feeding a tenant's trace chunk into its session
    /// (the serving layer's shard worker dies between two events of one
    /// wire frame). Consulted once per chunk by `hds-serve`, never by
    /// the single-process executor.
    MidFrame,
}

impl CrashPoint {
    /// Every kill-point class, for coverage assertions.
    pub const ALL: [CrashPoint; 4] = [
        CrashPoint::PhaseBoundary,
        CrashPoint::MidEdit,
        CrashPoint::MidHandoff,
        CrashPoint::MidFrame,
    ];
}

impl fmt::Display for CrashPoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            CrashPoint::PhaseBoundary => "phase-boundary",
            CrashPoint::MidEdit => "mid-edit",
            CrashPoint::MidHandoff => "mid-handoff",
            CrashPoint::MidFrame => "mid-frame",
        };
        f.write_str(s)
    }
}

/// Injection points the executor exposes. Every hook has a benign
/// default, so implementations override only the faults they model.
pub trait FaultInjector {
    /// Whether this injector can fire at all. `false` only for
    /// [`NoFaults`] (and references to it): injection sites compile to
    /// nothing when this is `false`.
    const ENABLED: bool = true;

    /// May corrupt a data reference before it is traced (a torn read of
    /// the profiling buffer). The reference actually *executed* is
    /// unchanged — only the profile sees the corruption.
    fn corrupt_ref(&mut self, r: DataRef) -> DataRef {
        r
    }

    /// When `true`, the current trace burst is truncated: the buffer's
    /// contents so far are dropped (a profiling-buffer overflow).
    fn truncate_trace(&mut self) -> bool {
        false
    }

    /// May force the binary editor to fail at `pc` mid-edit. The
    /// executor poisons the edit session with the returned error; the
    /// session then rolls back atomically.
    fn fail_edit(&mut self, pc: hds_trace::Pc) -> Option<EditError> {
        let _ = pc;
        None
    }

    /// May inject a thread switch *during* a stop-the-world edit: the
    /// returned thread (index into `0..threads`) performs a procedure
    /// entry immediately after the edit commits, exercising the
    /// stale-activation epoch discipline.
    fn edit_thread_switch(&mut self, threads: u32) -> Option<u32> {
        let _ = threads;
        None
    }

    /// When `true`, the end-of-awake analysis is starved of its budget:
    /// the executor must skip analysis and optimization for this cycle
    /// as if the analysis-cycle guard had tripped.
    fn starve_analysis(&mut self) -> bool {
        false
    }

    /// Extra simulated cycles the background analysis worker is stalled
    /// beyond its modeled latency of `base_cycles` (a slow or preempted
    /// worker in concurrent-analysis mode). The delay pushes the
    /// result's ready point later in simulated time, so a large stall
    /// deterministically drives the starvation / worker-lag guard path.
    fn stall_worker(&mut self, base_cycles: u64) -> u64 {
        let _ = base_cycles;
        0
    }

    /// When `true`, the process dies at this kill point: the session
    /// stops consuming events and a supervisor must restart it from its
    /// last snapshot. Crash decisions must come from a *separate* random
    /// stream than the in-simulation faults, so a restarted segment
    /// re-draws its in-simulation faults identically without re-drawing
    /// the crash that killed it.
    fn crash(&mut self, point: CrashPoint) -> bool {
        let _ = point;
        false
    }

    /// The injector's in-simulation random state, for inclusion in a
    /// snapshot ([`FaultInjector::restore_state`] is its inverse). The
    /// crash stream and fault counters are *not* part of this state —
    /// they belong to the supervisor's lifetime, not the segment's.
    fn snapshot_state(&self) -> u64 {
        0
    }

    /// Restores the in-simulation random state captured by
    /// [`FaultInjector::snapshot_state`], so a re-executed segment
    /// re-draws exactly the faults the original execution drew.
    fn restore_state(&mut self, state: u64) {
        let _ = state;
    }
}

/// The no-fault injector: every hook is benign and
/// [`FaultInjector::ENABLED`] is `false`, so faultable code
/// monomorphizes to exactly the unfaulted code.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    const ENABLED: bool = false;
}

/// Forwarding through a mutable reference, so a plan can stay owned by
/// the test harness while a session borrows it.
impl<F: FaultInjector> FaultInjector for &mut F {
    const ENABLED: bool = F::ENABLED;

    fn corrupt_ref(&mut self, r: DataRef) -> DataRef {
        (**self).corrupt_ref(r)
    }
    fn truncate_trace(&mut self) -> bool {
        (**self).truncate_trace()
    }
    fn fail_edit(&mut self, pc: hds_trace::Pc) -> Option<EditError> {
        (**self).fail_edit(pc)
    }
    fn edit_thread_switch(&mut self, threads: u32) -> Option<u32> {
        (**self).edit_thread_switch(threads)
    }
    fn starve_analysis(&mut self) -> bool {
        (**self).starve_analysis()
    }
    fn stall_worker(&mut self, base_cycles: u64) -> u64 {
        (**self).stall_worker(base_cycles)
    }
    fn crash(&mut self, point: CrashPoint) -> bool {
        (**self).crash(point)
    }
    fn snapshot_state(&self) -> u64 {
        (**self).snapshot_state()
    }
    fn restore_state(&mut self, state: u64) {
        (**self).restore_state(state);
    }
}

/// Per-site fault probabilities in permille (0–1000).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultRates {
    /// Chance a traced reference's address is corrupted.
    pub corrupt_ref: u16,
    /// Chance a burst's trace buffer is truncated.
    pub truncate_trace: u16,
    /// Chance an individual injection fails mid-edit.
    pub fail_edit: u16,
    /// Chance a thread switch is injected around a stop-the-world edit.
    pub thread_switch: u16,
    /// Chance the analysis budget is starved for a cycle.
    pub starve_analysis: u16,
    /// Chance the background analysis worker is stalled for a handoff
    /// (concurrent-analysis mode).
    pub stall_worker: u16,
    /// Chance the process dies at a phase boundary (after the boundary
    /// snapshot was captured).
    pub crash_phase_boundary: u16,
    /// Chance the process dies mid-edit, tearing the journaled commit.
    pub crash_mid_edit: u16,
    /// Chance the process dies during a background-analysis handoff.
    pub crash_mid_handoff: u16,
    /// Chance a serving-layer shard worker dies midway through feeding
    /// one tenant's trace chunk.
    pub crash_mid_frame: u16,
}

impl FaultRates {
    /// Every rate zero: the plan never fires (useful to prove the plan
    /// itself is transparent).
    #[must_use]
    pub const fn quiet() -> Self {
        FaultRates {
            corrupt_ref: 0,
            truncate_trace: 0,
            fail_edit: 0,
            thread_switch: 0,
            starve_analysis: 0,
            stall_worker: 0,
            crash_phase_boundary: 0,
            crash_mid_edit: 0,
            crash_mid_handoff: 0,
            crash_mid_frame: 0,
        }
    }
}

/// How often each fault actually fired (for post-run reconciliation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// References whose profiled address was corrupted.
    pub corrupted_refs: u64,
    /// Trace bursts truncated.
    pub truncated_traces: u64,
    /// Edits forced to fail.
    pub failed_edits: u64,
    /// Thread switches injected around edits.
    pub injected_switches: u64,
    /// Analysis passes starved.
    pub starved_analyses: u64,
    /// Background analysis workers stalled.
    pub stalled_workers: u64,
    /// Crash faults fired (process kills; lifetime across restarts).
    pub crashes: u64,
}

impl FaultCounts {
    /// Total faults fired across every site.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.corrupted_refs
            + self.truncated_traces
            + self.failed_edits
            + self.injected_switches
            + self.starved_analyses
            + self.stalled_workers
            + self.crashes
    }
}

/// A deterministic fault schedule: a seeded xorshift64* generator drives
/// per-site probabilities, so every decision replays exactly from
/// `(seed, rates)`.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    state: u64,
    /// Separate stream for crash decisions: never part of a snapshot, so
    /// a restarted segment re-draws its in-simulation faults without
    /// re-drawing the crash that killed it.
    crash_state: u64,
    rates: FaultRates,
    counts: FaultCounts,
    /// Lifetime cap on crash faults (the chaos harness's termination
    /// guarantee: after the budget is spent, the run completes).
    max_crashes: u32,
    crashes_fired: u32,
}

impl FaultPlan {
    /// A plan with rates derived from the seed itself: each site gets a
    /// small random probability, so a population of seeds covers many
    /// fault mixes. Used by the chaos harness.
    ///
    /// The per-site ranges are scaled to how often each hook fires:
    /// `corrupt_ref` and `truncate_trace` are consulted once per traced
    /// reference (hundreds of times per burst) and `fail_edit` once per
    /// injection in an all-or-nothing edit session (tens per install),
    /// so their rates stay in the low permille — high enough to corrupt
    /// profiles and roll back sessions regularly, low enough that some
    /// bursts and commits survive intact and the optimizer still
    /// reaches its install/deoptimize paths under fault.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut plan = FaultPlan::with_rates(seed, FaultRates::quiet());
        #[allow(clippy::cast_possible_truncation)]
        let rates = FaultRates {
            corrupt_ref: (plan.next() % 8) as u16,
            truncate_trace: (plan.next() % 3) as u16,
            fail_edit: (plan.next() % 40) as u16,
            thread_switch: (plan.next() % 200) as u16,
            starve_analysis: (plan.next() % 80) as u16,
            stall_worker: (plan.next() % 150) as u16,
            ..FaultRates::quiet() // crash rates stay zero: from_seed plans never kill
        };
        plan.rates = rates;
        plan
    }

    /// A plan with explicit rates.
    #[must_use]
    pub fn with_rates(seed: u64, rates: FaultRates) -> Self {
        // Scramble the seed into a nonzero xorshift state; the crash
        // stream gets an independent scramble of the same seed.
        let state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x2545_F491_4F6C_DD1D;
        let crash_state = seed.wrapping_mul(0xBF58_476D_1CE4_E5B9) ^ 0x94D0_49BB_1331_11EB;
        FaultPlan {
            state: if state == 0 {
                0x2545_F491_4F6C_DD1D
            } else {
                state
            },
            crash_state: if crash_state == 0 {
                0x94D0_49BB_1331_11EB
            } else {
                crash_state
            },
            rates,
            counts: FaultCounts::default(),
            max_crashes: u32::MAX,
            crashes_fired: 0,
        }
    }

    /// A chaos-crash plan: in-simulation fault rates as
    /// [`FaultPlan::from_seed`], plus seed-derived kill probabilities at
    /// every [`CrashPoint`] class, capped at `max_crashes` lifetime
    /// kills so every schedule terminates. One plan supervises a whole
    /// restart lineage: the crash stream and budget persist across
    /// restarts while the in-simulation stream is snapshot-restored.
    #[must_use]
    pub fn crashy(seed: u64, max_crashes: u32) -> Self {
        let mut plan = FaultPlan::from_seed(seed);
        // Kill points are rare (a handful of boundaries and installs per
        // run), so the rates are high enough that most schedules crash
        // at least once.
        #[allow(clippy::cast_possible_truncation)]
        {
            plan.rates.crash_phase_boundary = 150 + (plan.next_crash() % 500) as u16;
            plan.rates.crash_mid_edit = 200 + (plan.next_crash() % 600) as u16;
            plan.rates.crash_mid_handoff = 200 + (plan.next_crash() % 600) as u16;
            // Chunk feeds are frequent (one draw per wire frame), so the
            // mid-frame rate stays lower than the rare kill points.
            plan.rates.crash_mid_frame = 50 + (plan.next_crash() % 250) as u16;
        }
        plan.max_crashes = max_crashes;
        plan
    }

    /// Caps the lifetime crash budget (how many kills this plan may
    /// deal across a whole restart lineage). Lets hand-rated plans —
    /// e.g. "every edit fails *and* every install crashes" — terminate
    /// under supervision the way [`FaultPlan::crashy`] schedules do.
    #[must_use]
    pub fn with_max_crashes(mut self, max_crashes: u32) -> Self {
        self.max_crashes = max_crashes;
        self
    }

    /// A plan that fails *every* edit and nothing else: the optimizer
    /// can never install code, so the run must match the unoptimized
    /// baseline exactly.
    #[must_use]
    pub fn edits_always_fail(seed: u64) -> Self {
        FaultPlan::with_rates(
            seed,
            FaultRates {
                fail_edit: 1000,
                ..FaultRates::quiet()
            },
        )
    }

    /// The configured rates.
    #[must_use]
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// How often each fault fired so far.
    #[must_use]
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// Crash faults fired so far (against the lifetime budget).
    #[must_use]
    pub fn crashes_fired(&self) -> u32 {
        self.crashes_fired
    }

    /// The lifetime crash budget.
    #[must_use]
    pub fn max_crashes(&self) -> u32 {
        self.max_crashes
    }

    /// xorshift64* step.
    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// xorshift64* step of the independent crash stream.
    fn next_crash(&mut self) -> u64 {
        let mut x = self.crash_state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.crash_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn chance(&mut self, permille: u16) -> bool {
        if permille == 0 {
            return false;
        }
        if permille >= 1000 {
            return true;
        }
        self.next() % 1000 < u64::from(permille)
    }
}

impl FaultInjector for FaultPlan {
    fn corrupt_ref(&mut self, r: DataRef) -> DataRef {
        if !self.chance(self.rates.corrupt_ref) {
            return r;
        }
        self.counts.corrupted_refs += 1;
        // Flip a few address bits — enough to fall into another cache
        // block so the corruption is observable downstream.
        let noise = (self.next() | 0x40) & 0xFFFF;
        DataRef {
            pc: r.pc,
            addr: Addr(r.addr.0 ^ noise),
        }
    }

    fn truncate_trace(&mut self) -> bool {
        let fire = self.chance(self.rates.truncate_trace);
        if fire {
            self.counts.truncated_traces += 1;
        }
        fire
    }

    fn fail_edit(&mut self, pc: hds_trace::Pc) -> Option<EditError> {
        if !self.chance(self.rates.fail_edit) {
            return None;
        }
        self.counts.failed_edits += 1;
        Some(EditError::Induced(pc))
    }

    fn edit_thread_switch(&mut self, threads: u32) -> Option<u32> {
        if threads == 0 || !self.chance(self.rates.thread_switch) {
            return None;
        }
        self.counts.injected_switches += 1;
        #[allow(clippy::cast_possible_truncation)]
        Some((self.next() % u64::from(threads)) as u32)
    }

    fn starve_analysis(&mut self) -> bool {
        let fire = self.chance(self.rates.starve_analysis);
        if fire {
            self.counts.starved_analyses += 1;
        }
        fire
    }

    fn stall_worker(&mut self, base_cycles: u64) -> u64 {
        if !self.chance(self.rates.stall_worker) {
            return 0;
        }
        self.counts.stalled_workers += 1;
        // 1x–8x the modeled latency: long enough that a large multiple
        // routinely overruns the hibernation span and starves the apply.
        base_cycles.saturating_mul(1 + self.next() % 8)
    }

    fn crash(&mut self, point: CrashPoint) -> bool {
        let permille = match point {
            CrashPoint::PhaseBoundary => self.rates.crash_phase_boundary,
            CrashPoint::MidEdit => self.rates.crash_mid_edit,
            CrashPoint::MidHandoff => self.rates.crash_mid_handoff,
            CrashPoint::MidFrame => self.rates.crash_mid_frame,
        };
        if permille == 0 || self.crashes_fired >= self.max_crashes {
            return false; // no draw: crash-free plans stay bit-identical
        }
        let fire = permille >= 1000 || self.next_crash() % 1000 < u64::from(permille);
        if fire {
            self.crashes_fired += 1;
            self.counts.crashes += 1;
        }
        fire
    }

    fn snapshot_state(&self) -> u64 {
        self.state
    }

    fn restore_state(&mut self, state: u64) {
        // A zero xorshift state is absorbing; no valid snapshot carries
        // one, but defend anyway.
        self.state = if state == 0 {
            0x2545_F491_4F6C_DD1D
        } else {
            state
        };
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hds_trace::Pc;

    #[test]
    fn enabled_flags() {
        const {
            assert!(!NoFaults::ENABLED);
            assert!(FaultPlan::ENABLED);
            assert!(<&mut FaultPlan as FaultInjector>::ENABLED);
        }
    }

    fn drive(plan: &mut FaultPlan, steps: u32) -> Vec<u64> {
        let mut log = Vec::new();
        for i in 0..steps {
            let r = DataRef::new(Pc(i), hds_trace::Addr(u64::from(i) * 64));
            log.push(plan.corrupt_ref(r).addr.0);
            log.push(u64::from(plan.truncate_trace()));
            log.push(plan.fail_edit(Pc(i)).is_some().into());
            log.push(u64::from(plan.edit_thread_switch(4).unwrap_or(99)));
            log.push(u64::from(plan.starve_analysis()));
            log.push(plan.stall_worker(1000));
        }
        log
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultPlan::from_seed(42);
        let mut b = FaultPlan::from_seed(42);
        assert_eq!(a.rates(), b.rates());
        assert_eq!(drive(&mut a, 500), drive(&mut b, 500));
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultPlan::from_seed(1);
        let mut b = FaultPlan::from_seed(2);
        assert_ne!(drive(&mut a, 500), drive(&mut b, 500));
    }

    #[test]
    fn quiet_rates_never_fire() {
        let mut plan = FaultPlan::with_rates(7, FaultRates::quiet());
        let r = DataRef::new(Pc(1), hds_trace::Addr(0x40));
        for _ in 0..200 {
            assert_eq!(plan.corrupt_ref(r), r);
            assert!(!plan.truncate_trace());
            assert!(plan.fail_edit(Pc(1)).is_none());
            assert!(plan.edit_thread_switch(8).is_none());
            assert!(!plan.starve_analysis());
            assert_eq!(plan.stall_worker(1000), 0);
        }
        assert_eq!(plan.counts().total(), 0);
    }

    #[test]
    fn stalls_scale_with_the_modeled_latency() {
        let mut plan = FaultPlan::with_rates(
            13,
            FaultRates {
                stall_worker: 1000,
                ..FaultRates::quiet()
            },
        );
        for _ in 0..50 {
            let extra = plan.stall_worker(1000);
            assert!(extra >= 1000, "a fired stall delays at least 1x the base");
            assert!(extra <= 8000);
        }
        assert_eq!(plan.counts().stalled_workers, 50);
    }

    #[test]
    fn edits_always_fail_fails_every_edit() {
        let mut plan = FaultPlan::edits_always_fail(3);
        for i in 0..50 {
            assert_eq!(plan.fail_edit(Pc(i)), Some(EditError::Induced(Pc(i))));
        }
        assert_eq!(plan.counts().failed_edits, 50);
        assert_eq!(plan.counts().corrupted_refs, 0);
    }

    #[test]
    fn corruption_changes_the_block_not_the_pc() {
        let mut plan = FaultPlan::with_rates(
            9,
            FaultRates {
                corrupt_ref: 1000,
                ..FaultRates::quiet()
            },
        );
        let r = DataRef::new(Pc(0x10), hds_trace::Addr(0x1000));
        let c = plan.corrupt_ref(r);
        assert_eq!(c.pc, r.pc);
        assert_ne!(c.addr.block(64), r.addr.block(64));
    }

    #[test]
    fn seed_zero_is_usable() {
        let mut plan = FaultPlan::from_seed(0);
        // Must not get stuck at a zero xorshift state.
        let a = plan.next();
        let b = plan.next();
        assert_ne!(a, b);
    }

    /// The crash stream is independent of the in-simulation stream: a
    /// plan that is also asked for crash decisions draws exactly the
    /// same in-simulation faults as one that is not.
    #[test]
    fn crash_stream_does_not_perturb_simulation_faults() {
        let mut plain = FaultPlan::crashy(17, 1000);
        let mut crashing = FaultPlan::crashy(17, 1000);
        let mut crashes = 0u32;
        let mut a = Vec::new();
        let mut b = Vec::new();
        for i in 0..300 {
            a.extend(drive(&mut plain, 1));
            for point in CrashPoint::ALL {
                if crashing.crash(point) {
                    crashes += 1;
                }
            }
            b.extend(drive(&mut crashing, 1));
            let _ = i;
        }
        assert!(crashes > 0, "crashy plan never crashed");
        assert_eq!(a, b, "crash draws leaked into the simulation stream");
    }

    #[test]
    fn crash_budget_caps_lifetime_kills() {
        let mut plan = FaultPlan::crashy(5, 3);
        let mut fired = 0;
        for _ in 0..10_000 {
            if plan.crash(CrashPoint::PhaseBoundary) {
                fired += 1;
            }
        }
        assert_eq!(fired, 3);
        assert_eq!(plan.crashes_fired(), 3);
        assert_eq!(plan.counts().crashes, 3);
        assert_eq!(plan.max_crashes(), 3);
    }

    #[test]
    fn from_seed_and_quiet_plans_never_crash() {
        let mut plan = FaultPlan::from_seed(23);
        let mut quiet = FaultPlan::with_rates(23, FaultRates::quiet());
        for point in CrashPoint::ALL {
            for _ in 0..500 {
                assert!(!plan.crash(point));
                assert!(!quiet.crash(point));
            }
        }
        assert_eq!(plan.counts().crashes, 0);
    }

    /// Snapshot/restore of the in-simulation stream: a plan restored to
    /// a captured state re-draws exactly the faults the original drew
    /// from that point, even if crash decisions intervened.
    #[test]
    fn snapshot_restore_replays_simulation_stream() {
        let mut plan = FaultPlan::crashy(31, 1000);
        let _ = drive(&mut plan, 50);
        let saved = plan.snapshot_state();
        let replay_a = drive(&mut plan, 100);
        for point in CrashPoint::ALL {
            let _ = plan.crash(point); // crash draws must not matter
        }
        plan.restore_state(saved);
        let replay_b = drive(&mut plan, 100);
        assert_eq!(replay_a, replay_b);
        plan.restore_state(0); // degenerate state is made usable
        assert_ne!(plan.snapshot_state(), 0);
    }

    #[test]
    fn crash_point_display_and_all() {
        assert_eq!(CrashPoint::ALL.len(), 4);
        assert_eq!(CrashPoint::PhaseBoundary.to_string(), "phase-boundary");
        assert_eq!(CrashPoint::MidEdit.to_string(), "mid-edit");
        assert_eq!(CrashPoint::MidHandoff.to_string(), "mid-handoff");
        assert_eq!(CrashPoint::MidFrame.to_string(), "mid-frame");
    }

    #[test]
    fn thread_switch_stays_in_range() {
        let mut plan = FaultPlan::with_rates(
            11,
            FaultRates {
                thread_switch: 1000,
                ..FaultRates::quiet()
            },
        );
        for _ in 0..100 {
            let t = plan.edit_thread_switch(3).unwrap();
            assert!(t < 3);
        }
        assert!(plan.edit_thread_switch(0).is_none());
    }
}
