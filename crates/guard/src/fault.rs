//! Deterministic, seeded fault injection for the optimize cycle.
//!
//! The executor is generic over a [`FaultInjector`], exactly as it is
//! generic over `hds-telemetry`'s `Observer`: the default [`NoFaults`]
//! sets [`FaultInjector::ENABLED`] to `false`, so every injection site
//! monomorphizes to nothing in production builds. [`FaultPlan`] is the
//! chaos-testing implementation: a seeded xorshift generator drives
//! per-site fault probabilities, so a failing schedule replays exactly
//! from its seed.

use hds_trace::{Addr, DataRef};
use hds_vulcan::EditError;

/// Injection points the executor exposes. Every hook has a benign
/// default, so implementations override only the faults they model.
pub trait FaultInjector {
    /// Whether this injector can fire at all. `false` only for
    /// [`NoFaults`] (and references to it): injection sites compile to
    /// nothing when this is `false`.
    const ENABLED: bool = true;

    /// May corrupt a data reference before it is traced (a torn read of
    /// the profiling buffer). The reference actually *executed* is
    /// unchanged — only the profile sees the corruption.
    fn corrupt_ref(&mut self, r: DataRef) -> DataRef {
        r
    }

    /// When `true`, the current trace burst is truncated: the buffer's
    /// contents so far are dropped (a profiling-buffer overflow).
    fn truncate_trace(&mut self) -> bool {
        false
    }

    /// May force the binary editor to fail at `pc` mid-edit. The
    /// executor poisons the edit session with the returned error; the
    /// session then rolls back atomically.
    fn fail_edit(&mut self, pc: hds_trace::Pc) -> Option<EditError> {
        let _ = pc;
        None
    }

    /// May inject a thread switch *during* a stop-the-world edit: the
    /// returned thread (index into `0..threads`) performs a procedure
    /// entry immediately after the edit commits, exercising the
    /// stale-activation epoch discipline.
    fn edit_thread_switch(&mut self, threads: u32) -> Option<u32> {
        let _ = threads;
        None
    }

    /// When `true`, the end-of-awake analysis is starved of its budget:
    /// the executor must skip analysis and optimization for this cycle
    /// as if the analysis-cycle guard had tripped.
    fn starve_analysis(&mut self) -> bool {
        false
    }

    /// Extra simulated cycles the background analysis worker is stalled
    /// beyond its modeled latency of `base_cycles` (a slow or preempted
    /// worker in concurrent-analysis mode). The delay pushes the
    /// result's ready point later in simulated time, so a large stall
    /// deterministically drives the starvation / worker-lag guard path.
    fn stall_worker(&mut self, base_cycles: u64) -> u64 {
        let _ = base_cycles;
        0
    }
}

/// The no-fault injector: every hook is benign and
/// [`FaultInjector::ENABLED`] is `false`, so faultable code
/// monomorphizes to exactly the unfaulted code.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NoFaults;

impl FaultInjector for NoFaults {
    const ENABLED: bool = false;
}

/// Forwarding through a mutable reference, so a plan can stay owned by
/// the test harness while a session borrows it.
impl<F: FaultInjector> FaultInjector for &mut F {
    const ENABLED: bool = F::ENABLED;

    fn corrupt_ref(&mut self, r: DataRef) -> DataRef {
        (**self).corrupt_ref(r)
    }
    fn truncate_trace(&mut self) -> bool {
        (**self).truncate_trace()
    }
    fn fail_edit(&mut self, pc: hds_trace::Pc) -> Option<EditError> {
        (**self).fail_edit(pc)
    }
    fn edit_thread_switch(&mut self, threads: u32) -> Option<u32> {
        (**self).edit_thread_switch(threads)
    }
    fn starve_analysis(&mut self) -> bool {
        (**self).starve_analysis()
    }
    fn stall_worker(&mut self, base_cycles: u64) -> u64 {
        (**self).stall_worker(base_cycles)
    }
}

/// Per-site fault probabilities in permille (0–1000).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultRates {
    /// Chance a traced reference's address is corrupted.
    pub corrupt_ref: u16,
    /// Chance a burst's trace buffer is truncated.
    pub truncate_trace: u16,
    /// Chance an individual injection fails mid-edit.
    pub fail_edit: u16,
    /// Chance a thread switch is injected around a stop-the-world edit.
    pub thread_switch: u16,
    /// Chance the analysis budget is starved for a cycle.
    pub starve_analysis: u16,
    /// Chance the background analysis worker is stalled for a handoff
    /// (concurrent-analysis mode).
    pub stall_worker: u16,
}

impl FaultRates {
    /// Every rate zero: the plan never fires (useful to prove the plan
    /// itself is transparent).
    #[must_use]
    pub const fn quiet() -> Self {
        FaultRates {
            corrupt_ref: 0,
            truncate_trace: 0,
            fail_edit: 0,
            thread_switch: 0,
            starve_analysis: 0,
            stall_worker: 0,
        }
    }
}

/// How often each fault actually fired (for post-run reconciliation).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultCounts {
    /// References whose profiled address was corrupted.
    pub corrupted_refs: u64,
    /// Trace bursts truncated.
    pub truncated_traces: u64,
    /// Edits forced to fail.
    pub failed_edits: u64,
    /// Thread switches injected around edits.
    pub injected_switches: u64,
    /// Analysis passes starved.
    pub starved_analyses: u64,
    /// Background analysis workers stalled.
    pub stalled_workers: u64,
}

impl FaultCounts {
    /// Total faults fired across every site.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.corrupted_refs
            + self.truncated_traces
            + self.failed_edits
            + self.injected_switches
            + self.starved_analyses
            + self.stalled_workers
    }
}

/// A deterministic fault schedule: a seeded xorshift64* generator drives
/// per-site probabilities, so every decision replays exactly from
/// `(seed, rates)`.
#[derive(Clone, Debug)]
pub struct FaultPlan {
    state: u64,
    rates: FaultRates,
    counts: FaultCounts,
}

impl FaultPlan {
    /// A plan with rates derived from the seed itself: each site gets a
    /// small random probability, so a population of seeds covers many
    /// fault mixes. Used by the chaos harness.
    ///
    /// The per-site ranges are scaled to how often each hook fires:
    /// `corrupt_ref` and `truncate_trace` are consulted once per traced
    /// reference (hundreds of times per burst) and `fail_edit` once per
    /// injection in an all-or-nothing edit session (tens per install),
    /// so their rates stay in the low permille — high enough to corrupt
    /// profiles and roll back sessions regularly, low enough that some
    /// bursts and commits survive intact and the optimizer still
    /// reaches its install/deoptimize paths under fault.
    #[must_use]
    pub fn from_seed(seed: u64) -> Self {
        let mut plan = FaultPlan::with_rates(seed, FaultRates::quiet());
        #[allow(clippy::cast_possible_truncation)]
        let rates = FaultRates {
            corrupt_ref: (plan.next() % 8) as u16,
            truncate_trace: (plan.next() % 3) as u16,
            fail_edit: (plan.next() % 40) as u16,
            thread_switch: (plan.next() % 200) as u16,
            starve_analysis: (plan.next() % 80) as u16,
            stall_worker: (plan.next() % 150) as u16,
        };
        plan.rates = rates;
        plan
    }

    /// A plan with explicit rates.
    #[must_use]
    pub fn with_rates(seed: u64, rates: FaultRates) -> Self {
        // Scramble the seed into a nonzero xorshift state.
        let state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0x2545_F491_4F6C_DD1D;
        FaultPlan {
            state: if state == 0 { 0x2545_F491_4F6C_DD1D } else { state },
            rates,
            counts: FaultCounts::default(),
        }
    }

    /// A plan that fails *every* edit and nothing else: the optimizer
    /// can never install code, so the run must match the unoptimized
    /// baseline exactly.
    #[must_use]
    pub fn edits_always_fail(seed: u64) -> Self {
        FaultPlan::with_rates(
            seed,
            FaultRates {
                fail_edit: 1000,
                ..FaultRates::quiet()
            },
        )
    }

    /// The configured rates.
    #[must_use]
    pub fn rates(&self) -> FaultRates {
        self.rates
    }

    /// How often each fault fired so far.
    #[must_use]
    pub fn counts(&self) -> FaultCounts {
        self.counts
    }

    /// xorshift64* step.
    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn chance(&mut self, permille: u16) -> bool {
        if permille == 0 {
            return false;
        }
        if permille >= 1000 {
            return true;
        }
        self.next() % 1000 < u64::from(permille)
    }
}

impl FaultInjector for FaultPlan {
    fn corrupt_ref(&mut self, r: DataRef) -> DataRef {
        if !self.chance(self.rates.corrupt_ref) {
            return r;
        }
        self.counts.corrupted_refs += 1;
        // Flip a few address bits — enough to fall into another cache
        // block so the corruption is observable downstream.
        let noise = (self.next() | 0x40) & 0xFFFF;
        DataRef {
            pc: r.pc,
            addr: Addr(r.addr.0 ^ noise),
        }
    }

    fn truncate_trace(&mut self) -> bool {
        let fire = self.chance(self.rates.truncate_trace);
        if fire {
            self.counts.truncated_traces += 1;
        }
        fire
    }

    fn fail_edit(&mut self, pc: hds_trace::Pc) -> Option<EditError> {
        if !self.chance(self.rates.fail_edit) {
            return None;
        }
        self.counts.failed_edits += 1;
        Some(EditError::Induced(pc))
    }

    fn edit_thread_switch(&mut self, threads: u32) -> Option<u32> {
        if threads == 0 || !self.chance(self.rates.thread_switch) {
            return None;
        }
        self.counts.injected_switches += 1;
        #[allow(clippy::cast_possible_truncation)]
        Some((self.next() % u64::from(threads)) as u32)
    }

    fn starve_analysis(&mut self) -> bool {
        let fire = self.chance(self.rates.starve_analysis);
        if fire {
            self.counts.starved_analyses += 1;
        }
        fire
    }

    fn stall_worker(&mut self, base_cycles: u64) -> u64 {
        if !self.chance(self.rates.stall_worker) {
            return 0;
        }
        self.counts.stalled_workers += 1;
        // 1x–8x the modeled latency: long enough that a large multiple
        // routinely overruns the hibernation span and starves the apply.
        base_cycles.saturating_mul(1 + self.next() % 8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hds_trace::Pc;

    #[test]
    fn enabled_flags() {
        const {
            assert!(!NoFaults::ENABLED);
            assert!(FaultPlan::ENABLED);
            assert!(<&mut FaultPlan as FaultInjector>::ENABLED);
        }
    }

    fn drive(plan: &mut FaultPlan, steps: u32) -> Vec<u64> {
        let mut log = Vec::new();
        for i in 0..steps {
            let r = DataRef::new(Pc(i), hds_trace::Addr(u64::from(i) * 64));
            log.push(plan.corrupt_ref(r).addr.0);
            log.push(u64::from(plan.truncate_trace()));
            log.push(plan.fail_edit(Pc(i)).is_some().into());
            log.push(u64::from(plan.edit_thread_switch(4).unwrap_or(99)));
            log.push(u64::from(plan.starve_analysis()));
            log.push(plan.stall_worker(1000));
        }
        log
    }

    #[test]
    fn same_seed_same_schedule() {
        let mut a = FaultPlan::from_seed(42);
        let mut b = FaultPlan::from_seed(42);
        assert_eq!(a.rates(), b.rates());
        assert_eq!(drive(&mut a, 500), drive(&mut b, 500));
        assert_eq!(a.counts(), b.counts());
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultPlan::from_seed(1);
        let mut b = FaultPlan::from_seed(2);
        assert_ne!(drive(&mut a, 500), drive(&mut b, 500));
    }

    #[test]
    fn quiet_rates_never_fire() {
        let mut plan = FaultPlan::with_rates(7, FaultRates::quiet());
        let r = DataRef::new(Pc(1), hds_trace::Addr(0x40));
        for _ in 0..200 {
            assert_eq!(plan.corrupt_ref(r), r);
            assert!(!plan.truncate_trace());
            assert!(plan.fail_edit(Pc(1)).is_none());
            assert!(plan.edit_thread_switch(8).is_none());
            assert!(!plan.starve_analysis());
            assert_eq!(plan.stall_worker(1000), 0);
        }
        assert_eq!(plan.counts().total(), 0);
    }

    #[test]
    fn stalls_scale_with_the_modeled_latency() {
        let mut plan = FaultPlan::with_rates(
            13,
            FaultRates {
                stall_worker: 1000,
                ..FaultRates::quiet()
            },
        );
        for _ in 0..50 {
            let extra = plan.stall_worker(1000);
            assert!(extra >= 1000, "a fired stall delays at least 1x the base");
            assert!(extra <= 8000);
        }
        assert_eq!(plan.counts().stalled_workers, 50);
    }

    #[test]
    fn edits_always_fail_fails_every_edit() {
        let mut plan = FaultPlan::edits_always_fail(3);
        for i in 0..50 {
            assert_eq!(plan.fail_edit(Pc(i)), Some(EditError::Induced(Pc(i))));
        }
        assert_eq!(plan.counts().failed_edits, 50);
        assert_eq!(plan.counts().corrupted_refs, 0);
    }

    #[test]
    fn corruption_changes_the_block_not_the_pc() {
        let mut plan = FaultPlan::with_rates(
            9,
            FaultRates {
                corrupt_ref: 1000,
                ..FaultRates::quiet()
            },
        );
        let r = DataRef::new(Pc(0x10), hds_trace::Addr(0x1000));
        let c = plan.corrupt_ref(r);
        assert_eq!(c.pc, r.pc);
        assert_ne!(c.addr.block(64), r.addr.block(64));
    }

    #[test]
    fn seed_zero_is_usable() {
        let mut plan = FaultPlan::from_seed(0);
        // Must not get stuck at a zero xorshift state.
        let a = plan.next();
        let b = plan.next();
        assert_ne!(a, b);
    }

    #[test]
    fn thread_switch_stays_in_range() {
        let mut plan = FaultPlan::with_rates(
            11,
            FaultRates {
                thread_switch: 1000,
                ..FaultRates::quiet()
            },
        );
        for _ in 0..100 {
            let t = plan.edit_thread_switch(3).unwrap();
            assert!(t < 3);
        }
        assert!(plan.edit_thread_switch(0).is_none());
    }
}
