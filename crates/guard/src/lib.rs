//! Robustness layer for the profile → analyze → optimize cycle: budget
//! guards, accuracy-driven de-optimization policy, and deterministic
//! fault injection.
//!
//! The paper's system (§3.2, §5) assumes the analysis and injection
//! machinery is cheap enough to run inline with the program. This crate
//! makes that assumption *enforceable* instead of hoped-for:
//!
//! * [`GuardConfig`] / [`GuardRuntime`] — configurable caps on the four
//!   resources the cycle can blow up on (Sequitur grammar rules,
//!   end-of-awake analysis cycles, DFSM subset-construction states,
//!   pending-prefetch queue depth). A tripped budget degrades the cycle
//!   gracefully — skip the optimization, truncate the queue, carry
//!   profiling over — instead of panicking or running unbounded.
//! * [`AccuracyConfig`] / the accuracy tracker inside [`GuardRuntime`] —
//!   consumes per-stream Useful / Late / Polluted prefetch outcomes and
//!   flags streams whose accuracy stays below a threshold for K
//!   consecutive evaluation windows. The optimizer then *surgically*
//!   de-optimizes just those streams' checks (via
//!   `Image::edit_partial`), while well-predicting streams keep
//!   prefetching — a finer-grained instance of §3.2's "remove those
//!   jumps" de-optimization.
//! * [`FaultInjector`] / [`FaultPlan`] — a deterministic, seeded fault
//!   layer threaded through the executor behind a zero-cost-when-off
//!   generic (same discipline as `hds-telemetry`'s `Observer`):
//!   corrupt trace references, truncate trace buffers, force
//!   [`EditError`]s mid-edit, inject thread switches during
//!   stop-the-world edits, and starve the analysis budget. [`NoFaults`]
//!   monomorphizes every injection site away. [`CrashPoint`] extends
//!   the plan with process-kill faults at phase boundaries, mid-edit,
//!   and mid-background-handoff, drawn from a *separate* RNG stream so
//!   crash schedules never perturb in-simulation fault draws — and so a
//!   restarted session re-draws the same in-simulation faults from a
//!   restored state without re-triggering the same crash forever.
//! * [`ServeBudgets`] / [`ServeGuard`] — the same graceful-degradation
//!   discipline for the multi-tenant serving front-end (`hds-serve`):
//!   optional caps on live sessions, per-tenant queued chunks, and
//!   global queued bytes, breached caps answered with typed
//!   `Busy`/`Shed` responses and counted for exact reconciliation.
//! * [`RouterBudgets`] / [`RouterGuard`] — the same discipline one tier
//!   up, for the cluster router (`hds-cluster`): caps on routed tenants
//!   and journaled replay bytes.
//! * [`GuardState`] / [`AccuracyState`] — canonical serializable
//!   snapshots of the runtime's mutable state, consumed by the core
//!   crate's crash-consistent checkpoints.
//!
//! # Examples
//!
//! ```
//! use hds_guard::{GuardConfig, GuardRuntime};
//! use hds_telemetry::events::GuardKind;
//!
//! let mut guard = GuardRuntime::new(GuardConfig::disabled().with_max_dfsm_states(64));
//! guard.begin_cycle();
//! assert!(guard.observe(GuardKind::DfsmStates, 64).is_none());
//! let trip = guard.observe(GuardKind::DfsmStates, 65).expect("over budget");
//! assert!(trip.first_in_cycle);
//! // Second trip in the same cycle is recorded but not `first`.
//! assert!(!guard.observe(GuardKind::DfsmStates, 66).unwrap().first_in_cycle);
//! assert_eq!(guard.trips(GuardKind::DfsmStates), 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod accuracy;
mod budget;
mod fault;
mod router;
mod serve;

pub use accuracy::{AccuracyConfig, AccuracyState, BadStream, StreamAccuracyState};
pub use budget::{GuardConfig, GuardRuntime, GuardState, Trip};
pub use fault::{CrashPoint, FaultCounts, FaultInjector, FaultPlan, FaultRates, NoFaults};
pub use router::{RouterBudgetKind, RouterBudgets, RouterGuard, RouterTrip};
pub use serve::{ServeBudgets, ServeGuard, ServeTrip};

// Re-export the error type faults induce, so callers need not depend on
// hds-vulcan directly for matching.
pub use hds_vulcan::EditError;
