//! Two-level set-associative cache simulator with a cycle cost model and
//! baseline prefetchers.
//!
//! This crate is the reproduction's stand-in for the paper's hardware: a
//! 550 MHz Pentium III with "256 KB, 8-way L2, and 16 KB, 4-way L1 data
//! cache, both with 32 byte cache blocks" (§4.1), and the `prefetcht0`
//! instruction, which fills *both* levels of the hierarchy. Everything
//! the prefetching scheme is measured on — hits, misses, pollution,
//! prefetch timeliness, cycle counts — is modelled here, deterministically.
//!
//! Contents:
//!
//! * [`CacheConfig`], [`Cache`] — one set-associative LRU level;
//! * [`MemorySystem`], [`HierarchyConfig`] — the two-level hierarchy with
//!   an in-flight prefetch queue (a prefetch issued too late still
//!   stalls; §1's timeliness requirement is a first-class concept);
//! * [`CostModel`] — cycle charges for work instructions, cache levels,
//!   dynamic checks, and prefetch issue;
//! * [`prefetcher`] — the related-work baselines: next-block sequential,
//!   stride \[7\], and Markov/correlation digram \[16\] prefetchers.
//!
//! # Examples
//!
//! ```
//! use hds_memsim::{AccessOutcome, HierarchyConfig, MemorySystem};
//! use hds_trace::{AccessKind, Addr};
//!
//! let mut mem = MemorySystem::new(HierarchyConfig::pentium_iii());
//! // A cold access goes to memory...
//! let first = mem.access(Addr(0x1000), AccessKind::Load);
//! assert_eq!(first.outcome, AccessOutcome::Memory);
//! // ...and the block is then L1-resident.
//! let second = mem.access(Addr(0x1010), AccessKind::Load);
//! assert_eq!(second.outcome, AccessOutcome::L1Hit);
//! assert!(second.cycles < first.cycles);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cache;
mod cost;
mod hierarchy;
pub mod prefetcher;
mod stream_buffer;

pub use cache::{Cache, CacheConfig, CacheState, LineState};
pub use cost::CostModel;
pub use hierarchy::{
    AccessOutcome, AccessResult, HierarchyConfig, MemState, MemStats, MemorySystem, PrefetchFate,
    PrefetchResolution,
};
pub use stream_buffer::{StreamBufferMemory, StreamBufferStats};
