//! One set-associative LRU cache level.

use std::fmt;

use hds_trace::Addr;

/// Geometry of one cache level.
///
/// # Examples
///
/// ```
/// use hds_memsim::CacheConfig;
///
/// // The paper's L1: 16 KB, 4-way, 32-byte blocks.
/// let l1 = CacheConfig::new(16 * 1024, 4, 32);
/// assert_eq!(l1.num_sets(), 128);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    /// Total capacity in bytes.
    pub size_bytes: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
    /// Block (line) size in bytes.
    pub block_size: u64,
}

impl CacheConfig {
    /// Creates and validates a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `block_size` and the implied set count are nonzero
    /// powers of two and the capacity is an exact multiple of
    /// `assoc * block_size`.
    #[must_use]
    pub fn new(size_bytes: u64, assoc: u32, block_size: u64) -> Self {
        assert!(
            block_size.is_power_of_two(),
            "block size must be a power of two"
        );
        assert!(assoc > 0, "associativity must be nonzero");
        let way_bytes = u64::from(assoc) * block_size;
        assert!(
            size_bytes.is_multiple_of(way_bytes),
            "capacity {size_bytes} not a multiple of assoc*block ({way_bytes})"
        );
        let sets = size_bytes / way_bytes;
        assert!(
            sets.is_power_of_two(),
            "set count {sets} must be a power of two"
        );
        CacheConfig {
            size_bytes,
            assoc,
            block_size,
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn num_sets(&self) -> u64 {
        self.size_bytes / (u64::from(self.assoc) * self.block_size)
    }

    /// Number of blocks the cache can hold.
    #[must_use]
    pub fn num_blocks(&self) -> u64 {
        self.size_bytes / self.block_size
    }
}

impl fmt::Display for CacheConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} KB {}-way, {} B blocks",
            self.size_bytes / 1024,
            self.assoc,
            self.block_size
        )
    }
}

/// One cached block: its block number, LRU stamp, and whether it arrived
/// by prefetch and has not been demand-used yet (for pollution
/// accounting).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
struct Line {
    block: u64,
    lru: u64,
    prefetched_unused: bool,
    /// The fill that brought this line in was a prefetch. Unlike
    /// `prefetched_unused` this never clears on use, so hits can be
    /// attributed to prefetched vs. demand-fetched lines.
    origin_prefetched: bool,
    /// Written since fill (write-back accounting).
    dirty: bool,
}

/// What happened to a prefetched block when it left (or was used in) the
/// cache — returned so the hierarchy can account usefulness/pollution
/// and write-backs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) struct Evicted {
    pub kind: EvictedKind,
    /// Was the victim dirty (a write-back)?
    pub dirty: bool,
    /// Block number of the victim (meaningful unless `kind` is
    /// [`EvictedKind::None`]).
    pub block: u64,
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum EvictedKind {
    /// Nothing was evicted (free way available).
    None,
    /// A demand-fetched (or already-used) block was evicted.
    Demand,
    /// A prefetched block was evicted without ever being used.
    UnusedPrefetch,
}

/// A set-associative LRU cache over block numbers.
///
/// Addresses are mapped to blocks with the configured block size; the
/// cache itself stores no data, only presence (this is a performance
/// model, not a functional simulator).
///
/// # Examples
///
/// ```
/// use hds_memsim::{Cache, CacheConfig};
/// use hds_trace::Addr;
///
/// let mut cache = Cache::new(CacheConfig::new(1024, 2, 32));
/// assert!(!cache.access(Addr(0)));      // cold miss
/// cache.fill(Addr(0), false);
/// assert!(cache.access(Addr(31)));      // same block: hit
/// assert!(!cache.access(Addr(32)));     // next block: miss
/// ```
#[derive(Clone, Debug)]
pub struct Cache {
    config: CacheConfig,
    sets: Vec<Vec<Line>>,
    tick: u64,
}

impl Cache {
    /// Creates an empty cache with the given geometry.
    #[must_use]
    pub fn new(config: CacheConfig) -> Self {
        let sets = vec![Vec::with_capacity(config.assoc as usize); config.num_sets() as usize];
        Cache {
            config,
            sets,
            tick: 0,
        }
    }

    /// The geometry.
    #[must_use]
    pub fn config(&self) -> &CacheConfig {
        &self.config
    }

    fn set_of(&self, block: u64) -> usize {
        (block & (self.config.num_sets() - 1)) as usize
    }

    /// Probes and touches the block containing `addr`. Returns `true` on
    /// hit (updating LRU and clearing the prefetched-unused mark),
    /// `false` on miss (no fill — the hierarchy decides what to fill).
    pub fn access(&mut self, addr: Addr) -> bool {
        self.access_kind(addr, false)
    }

    /// Like [`Cache::access`], marking the line dirty when `write`.
    pub fn access_kind(&mut self, addr: Addr, write: bool) -> bool {
        let block = addr.block(self.config.block_size);
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(block);
        for line in &mut self.sets[set] {
            if line.block == block {
                line.lru = tick;
                line.prefetched_unused = false;
                line.dirty |= write;
                return true;
            }
        }
        false
    }

    /// Is the block containing `addr` resident *and* still marked as an
    /// unused prefetch? (No LRU update; used for usefulness accounting.)
    pub(crate) fn line_is_unused_prefetch(&self, addr: Addr) -> bool {
        let block = addr.block(self.config.block_size);
        let set = self.set_of(block);
        self.sets[set]
            .iter()
            .any(|l| l.block == block && l.prefetched_unused)
    }

    /// Was the resident line containing `addr` originally filled by a
    /// prefetch? (No LRU update; persists across demand uses.)
    pub(crate) fn line_origin_prefetched(&self, addr: Addr) -> bool {
        let block = addr.block(self.config.block_size);
        let set = self.set_of(block);
        self.sets[set]
            .iter()
            .any(|l| l.block == block && l.origin_prefetched)
    }

    /// Is the block containing `addr` resident? (No LRU update.)
    #[must_use]
    pub fn contains(&self, addr: Addr) -> bool {
        let block = addr.block(self.config.block_size);
        let set = self.set_of(block);
        self.sets[set].iter().any(|l| l.block == block)
    }

    /// Inserts the block containing `addr`, evicting the LRU line of its
    /// set if full. `prefetched` marks the line for pollution accounting.
    /// Returns what was evicted.
    pub(crate) fn fill_tracked(&mut self, addr: Addr, prefetched: bool) -> Evicted {
        let block = addr.block(self.config.block_size);
        self.tick += 1;
        let tick = self.tick;
        let set_idx = self.set_of(block);
        let assoc = self.config.assoc as usize;
        let set = &mut self.sets[set_idx];
        if let Some(line) = set.iter_mut().find(|l| l.block == block) {
            // Already resident: refresh (a prefetch of a resident block
            // must not reset its used flag).
            line.lru = tick;
            return Evicted {
                kind: EvictedKind::None,
                dirty: false,
                block,
            };
        }
        let new_line = Line {
            block,
            lru: tick,
            prefetched_unused: prefetched,
            origin_prefetched: prefetched,
            dirty: false,
        };
        if set.len() < assoc {
            set.push(new_line);
            return Evicted {
                kind: EvictedKind::None,
                dirty: false,
                block,
            };
        }
        let victim = set
            .iter_mut()
            .min_by_key(|l| l.lru)
            .expect("nonempty full set");
        let evicted = Evicted {
            kind: if victim.prefetched_unused {
                EvictedKind::UnusedPrefetch
            } else {
                EvictedKind::Demand
            },
            dirty: victim.dirty,
            block: victim.block,
        };
        *victim = new_line;
        evicted
    }

    /// Inserts the block containing `addr` (public convenience; pollution
    /// accounting is discarded).
    pub fn fill(&mut self, addr: Addr, prefetched: bool) {
        let _ = self.fill_tracked(addr, prefetched);
    }

    /// Empties the cache (used between experiment runs).
    pub fn clear(&mut self) {
        for set in &mut self.sets {
            set.clear();
        }
        self.tick = 0;
    }

    /// Number of resident blocks.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(Vec::len).sum()
    }

    /// Exports the cache's complete state (per-set lines in residency
    /// order plus the LRU tick) — the checkpointing primitive.
    #[must_use]
    pub fn export_state(&self) -> CacheState {
        CacheState {
            tick: self.tick,
            sets: self
                .sets
                .iter()
                .map(|set| {
                    set.iter()
                        .map(|l| LineState {
                            block: l.block,
                            lru: l.lru,
                            prefetched_unused: l.prefetched_unused,
                            origin_prefetched: l.origin_prefetched,
                            dirty: l.dirty,
                        })
                        .collect()
                })
                .collect(),
        }
    }

    /// Restores state exported by [`Cache::export_state`].
    ///
    /// # Panics
    ///
    /// Panics if the state's set count disagrees with this cache's
    /// geometry (the state was exported from a different configuration).
    pub fn restore_state(&mut self, state: &CacheState) {
        assert_eq!(
            state.sets.len(),
            self.sets.len(),
            "cache state set count mismatch"
        );
        self.tick = state.tick;
        for (set, lines) in self.sets.iter_mut().zip(&state.sets) {
            set.clear();
            set.extend(lines.iter().map(|l| Line {
                block: l.block,
                lru: l.lru,
                prefetched_unused: l.prefetched_unused,
                origin_prefetched: l.origin_prefetched,
                dirty: l.dirty,
            }));
        }
    }
}

/// One cached line's state, as exported by [`Cache::export_state`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[allow(missing_docs)]
pub struct LineState {
    pub block: u64,
    pub lru: u64,
    pub prefetched_unused: bool,
    pub origin_prefetched: bool,
    pub dirty: bool,
}

/// A [`Cache`]'s complete mutable state: the LRU tick and, per set (in
/// set order), the resident lines in residency order.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct CacheState {
    /// The LRU clock.
    pub tick: u64,
    /// Lines per set, outer index = set index.
    pub sets: Vec<Vec<LineState>>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dirty_lines_report_writebacks_on_eviction() {
        let mut c = small();
        c.fill(Addr(0), false);
        assert!(c.access_kind(Addr(0), true)); // store: dirty
        c.fill(Addr(64), false);
        // Evicting block 0 (LRU after block 64's fill? block 0 touched
        // later) — touch 64 to make 0 the victim... fill order: 0 then
        // 64; access made 0 most recent; touch 64 now.
        assert!(c.access(Addr(64)));
        let evicted = c.fill_tracked(Addr(128), false);
        assert_eq!(evicted.kind, EvictedKind::Demand);
        assert!(evicted.dirty, "dirty victim must report a write-back");
        // Clean evictions do not.
        c.clear();
        c.fill(Addr(0), false);
        c.fill(Addr(64), false);
        assert!(c.access(Addr(64)));
        let evicted = c.fill_tracked(Addr(128), false);
        assert!(!evicted.dirty);
    }

    fn small() -> Cache {
        // 2 sets x 2 ways x 32-byte blocks = 128 bytes.
        Cache::new(CacheConfig::new(128, 2, 32))
    }

    #[test]
    fn geometry_paper_l1_l2() {
        let l1 = CacheConfig::new(16 * 1024, 4, 32);
        assert_eq!(l1.num_sets(), 128);
        assert_eq!(l1.num_blocks(), 512);
        let l2 = CacheConfig::new(256 * 1024, 8, 32);
        assert_eq!(l2.num_sets(), 1024);
        assert_eq!(l2.num_blocks(), 8192);
        assert_eq!(l1.to_string(), "16 KB 4-way, 32 B blocks");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn rejects_odd_block() {
        let _ = CacheConfig::new(128, 2, 33);
    }

    #[test]
    #[should_panic(expected = "multiple")]
    fn rejects_misaligned_capacity() {
        let _ = CacheConfig::new(100, 2, 32);
    }

    #[test]
    fn same_block_hits_after_fill() {
        let mut c = small();
        assert!(!c.access(Addr(0)));
        c.fill(Addr(0), false);
        assert!(c.access(Addr(0)));
        assert!(c.access(Addr(31)));
        assert!(!c.access(Addr(32)));
    }

    #[test]
    fn lru_eviction_within_set() {
        let mut c = small();
        // Blocks 0, 2, 4 all map to set 0 (even block numbers).
        c.fill(Addr(0), false); // block 0
        c.fill(Addr(64), false); // block 2
        assert!(c.contains(Addr(0)));
        // Touch block 0 so block 2 is LRU.
        assert!(c.access(Addr(0)));
        c.fill(Addr(128), false); // block 4 evicts block 2
        assert!(c.contains(Addr(0)));
        assert!(!c.contains(Addr(64)));
        assert!(c.contains(Addr(128)));
    }

    #[test]
    fn sets_are_independent() {
        let mut c = small();
        c.fill(Addr(0), false); // set 0
        c.fill(Addr(32), false); // set 1
        c.fill(Addr(64), false); // set 0
        c.fill(Addr(96), false); // set 1
        assert_eq!(c.occupancy(), 4);
        // Filling more even blocks never evicts odd ones.
        c.fill(Addr(128), false);
        c.fill(Addr(192), false);
        assert!(c.contains(Addr(32)));
        assert!(c.contains(Addr(96)));
    }

    #[test]
    fn pollution_tracking() {
        let mut c = small();
        c.fill(Addr(0), true);
        c.fill(Addr(64), true);
        // Evicting an unused prefetched line reports it.
        assert_eq!(
            c.fill_tracked(Addr(128), false).kind,
            EvictedKind::UnusedPrefetch
        );
        // A used prefetched line counts as demand on eviction.
        c.clear();
        c.fill(Addr(0), true);
        assert!(c.access(Addr(0))); // use it
        c.fill(Addr(64), false);
        assert_eq!(c.fill_tracked(Addr(128), false).kind, EvictedKind::Demand);
    }

    #[test]
    fn refill_of_resident_block_keeps_used_flag() {
        let mut c = small();
        c.fill(Addr(0), false); // demand
        c.fill(Addr(0), true); // redundant prefetch must not mark unused
        c.fill(Addr(64), false);
        assert_eq!(c.fill_tracked(Addr(128), false).kind, EvictedKind::Demand);
    }

    #[test]
    fn clear_empties() {
        let mut c = small();
        c.fill(Addr(0), false);
        c.clear();
        assert_eq!(c.occupancy(), 0);
        assert!(!c.contains(Addr(0)));
    }
}
