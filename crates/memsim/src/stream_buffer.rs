//! Jouppi-style stream buffers \[17\] — the hardware prefetching baseline
//! that "can fetch linear sequences of data and avoid polluting the
//! processor cache by buffering the data" (paper §5.1).
//!
//! [`StreamBufferMemory`] wraps a [`MemorySystem`] with `n` FIFO buffers.
//! On an L1 miss, the buffer heads are checked: a hit pops the block into
//! L1 (no pollution occurred while it waited) and the buffer requests the
//! next sequential block; a miss in every buffer allocates the
//! least-recently-used buffer afresh, starting at the block after the
//! miss. Buffer fills take a full memory latency, so a head that has not
//! arrived yet stalls for the remainder, exactly like a late prefetch.

use std::collections::VecDeque;

use hds_trace::{AccessKind, Addr};

use crate::hierarchy::{AccessOutcome, AccessResult, HierarchyConfig, MemorySystem};

/// One stream buffer: a FIFO of sequential blocks with their fill times.
#[derive(Clone, Debug)]
struct Buffer {
    /// Queued (block number, ready time) pairs, oldest first.
    fifo: VecDeque<(u64, u64)>,
    /// The next block number to request when the FIFO has room.
    next_block: u64,
    /// LRU stamp.
    last_used: u64,
}

/// Counters for the stream-buffer subsystem.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StreamBufferStats {
    /// L1 misses served from a buffer head.
    pub buffer_hits: u64,
    /// Buffer hits that had to stall for the in-flight fill.
    pub buffer_hits_late: u64,
    /// Buffers (re)allocated on misses.
    pub allocations: u64,
    /// Blocks requested from memory by the buffers.
    pub blocks_fetched: u64,
}

/// A [`MemorySystem`] fronted by `n` stream buffers of depth `d`.
///
/// # Examples
///
/// ```
/// use hds_memsim::{HierarchyConfig, StreamBufferMemory};
/// use hds_trace::{AccessKind, Addr};
///
/// let mut mem = StreamBufferMemory::new(HierarchyConfig::pentium_iii(), 4, 4);
/// // A sequential scan: the first miss allocates a buffer, later blocks
/// // hit the buffer heads instead of missing to memory.
/// let mut now = 0;
/// for i in 0..64u64 {
///     now += 200;
///     mem.access_at(Addr(i * 32), AccessKind::Load, now);
/// }
/// assert!(mem.buffer_stats().buffer_hits > 32);
/// ```
#[derive(Clone, Debug)]
pub struct StreamBufferMemory {
    inner: MemorySystem,
    buffers: Vec<Buffer>,
    depth: usize,
    tick: u64,
    stats: StreamBufferStats,
    block_size: u64,
    memory_cycles: u64,
}

impl StreamBufferMemory {
    /// Creates the hierarchy with `n` buffers of `depth` blocks each.
    ///
    /// # Panics
    ///
    /// Panics if `n` or `depth` is zero.
    #[must_use]
    pub fn new(config: HierarchyConfig, n: usize, depth: usize) -> Self {
        assert!(n > 0 && depth > 0, "need at least one buffer of depth one");
        let block_size = config.l1.block_size;
        let memory_cycles = config.cost.memory_cycles;
        StreamBufferMemory {
            inner: MemorySystem::new(config),
            buffers: vec![
                Buffer {
                    fifo: VecDeque::new(),
                    next_block: u64::MAX,
                    last_used: 0,
                };
                n
            ],
            depth,
            tick: 0,
            stats: StreamBufferStats::default(),
            block_size,
            memory_cycles,
        }
    }

    /// The wrapped memory system's statistics.
    #[must_use]
    pub fn mem_stats(&self) -> &crate::hierarchy::MemStats {
        self.inner.stats()
    }

    /// The buffer subsystem's statistics.
    #[must_use]
    pub fn buffer_stats(&self) -> &StreamBufferStats {
        &self.stats
    }

    /// Tops up a buffer's FIFO with requests for its next sequential
    /// blocks.
    fn refill(&mut self, idx: usize, now: u64) {
        let depth = self.depth;
        let latency = self.memory_cycles;
        let buffer = &mut self.buffers[idx];
        while buffer.fifo.len() < depth && buffer.next_block != u64::MAX {
            buffer.fifo.push_back((buffer.next_block, now + latency));
            buffer.next_block += 1;
            self.stats.blocks_fetched += 1;
        }
    }

    /// A demand access at simulated time `now`.
    pub fn access_at(&mut self, addr: Addr, kind: AccessKind, now: u64) -> AccessResult {
        self.tick += 1;
        let tick = self.tick;
        // L1 hits bypass the buffers entirely.
        if self.inner.l1_contains(addr) {
            return self.inner.access_at(addr, kind, now);
        }
        let block = addr.block(self.block_size);
        // Probe the buffer heads.
        let hit = self
            .buffers
            .iter()
            .position(|b| b.fifo.front().is_some_and(|&(head, _)| head == block));
        if let Some(idx) = hit {
            let (_, ready) = self.buffers[idx].fifo.pop_front().expect("probed nonempty");
            self.buffers[idx].last_used = tick;
            self.refill(idx, now);
            // Move the block into L1 without disturbing L2 (the defining
            // non-polluting property of stream buffers).
            self.inner.install_l1(addr);
            self.stats.buffer_hits += 1;
            let cost = self.inner.config().cost;
            let (outcome, cycles) = if ready > now {
                self.stats.buffer_hits_late += 1;
                (
                    AccessOutcome::LatePrefetch,
                    cost.l1_hit_cycles + (ready - now),
                )
            } else {
                // An arrived buffer head is SRAM beside the L1: a hit
                // there costs barely more than an L1 hit (Jouppi's
                // design point).
                (AccessOutcome::L2Hit, cost.l1_hit_cycles + 1)
            };
            // Touch L1 so LRU and stats see the demand use.
            let _ = self.inner.access_at(addr, kind, now);
            return AccessResult { outcome, cycles };
        }
        // Full miss: let the hierarchy handle it and (re)allocate the LRU
        // buffer to chase the sequential successors of this miss.
        let result = self.inner.access_at(addr, kind, now);
        if result.outcome != AccessOutcome::L1Hit {
            let lru = self
                .buffers
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.last_used)
                .map(|(i, _)| i)
                .expect("at least one buffer");
            self.buffers[lru].fifo.clear();
            self.buffers[lru].next_block = block + 1;
            self.buffers[lru].last_used = tick;
            self.stats.allocations += 1;
            self.refill(lru, now);
        }
        result
    }

    /// Untimed access (all fills complete).
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessResult {
        self.access_at(addr, kind, u64::MAX / 2)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> StreamBufferMemory {
        StreamBufferMemory::new(HierarchyConfig::tiny(), 2, 4)
    }

    #[test]
    fn sequential_scan_hits_buffers() {
        let mut m = mem();
        let mut now = 0u64;
        let mut buffer_served = 0;
        for i in 0..32u64 {
            now += 500; // ample time for fills
            let r = m.access_at(Addr(i * 32), AccessKind::Load, now);
            if r.outcome == AccessOutcome::L2Hit && i > 0 {
                buffer_served += 1;
            }
        }
        assert!(
            m.buffer_stats().buffer_hits >= 28,
            "buffer hits: {:?}",
            m.buffer_stats()
        );
        assert!(buffer_served >= 28);
    }

    #[test]
    fn back_to_back_scan_pays_partial_latency() {
        let mut m = mem();
        let mut now = 0u64;
        m.access_at(Addr(0), AccessKind::Load, now);
        now += 5; // far sooner than the 90-cycle fill
        let r = m.access_at(Addr(32), AccessKind::Load, now);
        assert_eq!(r.outcome, AccessOutcome::LatePrefetch);
        assert!(r.cycles > 2 && r.cycles < 95, "cycles {}", r.cycles);
        assert_eq!(m.buffer_stats().buffer_hits_late, 1);
    }

    #[test]
    fn random_accesses_thrash_buffers_without_polluting_cache() {
        let mut m = mem();
        let mut now = 0u64;
        // Scattered accesses: every miss reallocates, heads never match.
        for i in 0..40u64 {
            now += 300;
            m.access_at(Addr(i * 4096 * 7), AccessKind::Load, now);
        }
        assert_eq!(m.buffer_stats().buffer_hits, 0);
        assert_eq!(m.buffer_stats().allocations, 40);
        // The cache saw only the demand blocks — zero prefetch pollution
        // by construction.
        assert_eq!(m.mem_stats().prefetches_issued, 0);
    }

    #[test]
    fn l1_hits_bypass_buffers() {
        let mut m = mem();
        m.access(Addr(0x40), AccessKind::Load);
        let before = *m.buffer_stats();
        let r = m.access(Addr(0x40), AccessKind::Load);
        assert_eq!(r.outcome, AccessOutcome::L1Hit);
        assert_eq!(m.buffer_stats().allocations, before.allocations);
    }

    #[test]
    fn two_interleaved_streams_keep_two_buffers() {
        let mut m = mem();
        let mut now = 0u64;
        let mut late_or_hit = 0;
        for i in 0..16u64 {
            now += 500;
            let a = m.access_at(Addr(0x10000 + i * 32), AccessKind::Load, now);
            now += 500;
            let b = m.access_at(Addr(0x90000 + i * 32), AccessKind::Load, now);
            for r in [a, b] {
                if matches!(
                    r.outcome,
                    AccessOutcome::L2Hit | AccessOutcome::LatePrefetch
                ) {
                    late_or_hit += 1;
                }
            }
        }
        // Both streams are served by their own buffer after the first
        // misses.
        assert!(late_or_hit >= 26, "served {late_or_hit} of 32");
        assert_eq!(m.buffer_stats().allocations, 2);
    }
}
