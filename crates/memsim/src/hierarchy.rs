//! The two-level memory hierarchy with in-flight prefetches.

use std::collections::HashMap;
use std::fmt;

use hds_trace::{AccessKind, Addr};

use crate::cache::{Cache, CacheConfig, EvictedKind};
use crate::cost::CostModel;

/// Geometry and timing of the full hierarchy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HierarchyConfig {
    /// First-level data cache.
    pub l1: CacheConfig,
    /// Second-level unified cache.
    pub l2: CacheConfig,
    /// Cycle charges.
    pub cost: CostModel,
}

impl HierarchyConfig {
    /// The paper's measurement machine (§4.1): 16 KB 4-way L1, 256 KB
    /// 8-way L2, both with 32-byte blocks.
    #[must_use]
    pub fn pentium_iii() -> Self {
        HierarchyConfig {
            l1: CacheConfig::new(16 * 1024, 4, 32),
            l2: CacheConfig::new(256 * 1024, 8, 32),
            cost: CostModel::default(),
        }
    }

    /// A tiny hierarchy for unit tests (512 B / 4 KB).
    #[must_use]
    pub fn tiny() -> Self {
        HierarchyConfig {
            l1: CacheConfig::new(512, 2, 32),
            l2: CacheConfig::new(4096, 4, 32),
            cost: CostModel::default(),
        }
    }
}

impl Default for HierarchyConfig {
    fn default() -> Self {
        HierarchyConfig::pentium_iii()
    }
}

/// Which level served a demand access.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessOutcome {
    /// Served by the first-level cache.
    L1Hit,
    /// L1 missed, L2 hit.
    L2Hit,
    /// Both levels missed; the block came from memory.
    Memory,
    /// The block was in flight from an earlier prefetch; the access
    /// stalled only for the remaining latency (a *late* prefetch).
    LatePrefetch,
}

/// The result of one demand access: which level served it and the cycles
/// it cost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct AccessResult {
    /// Serving level.
    pub outcome: AccessOutcome,
    /// Total cycles charged for the access.
    pub cycles: u64,
}

/// How a *tracked* prefetch ultimately resolved (see
/// [`MemorySystem::prefetch_tagged_at`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PrefetchFate {
    /// The block was demand-hit in L1 before eviction.
    Useful,
    /// The demand access arrived while the block was still in flight.
    Late,
    /// The block was evicted without ever being demand-used.
    Polluted,
}

/// The resolution record of one tracked prefetch. Queued internally and
/// drained with [`MemorySystem::take_outcomes`], so attribution stays
/// decoupled from whoever consumes it (the telemetry layer).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrefetchResolution {
    /// The tag the issuer attached (stream id, by convention).
    pub tag: u32,
    /// Cache block number.
    pub block: u64,
    /// How the prefetch resolved.
    pub fate: PrefetchFate,
    /// Simulated time the prefetch was issued.
    pub issued_at: u64,
    /// Simulated time of the resolution.
    pub resolved_at: u64,
}

/// Issue bookkeeping for one tracked prefetched block.
#[derive(Clone, Copy, Debug)]
struct PendingPrefetch {
    tag: u32,
    issued_at: u64,
}

/// Counters the evaluation reports on.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MemStats {
    /// Demand accesses served by L1.
    pub l1_hits: u64,
    /// Of the L1 hits, those served by a line originally filled by a
    /// prefetch (hits on demand-fetched lines are the difference). This
    /// attributes *all* hits on such lines, not just the first — the
    /// prefetched-vs-demand split of where hits come from.
    pub l1_hits_on_prefetched: u64,
    /// Demand accesses that missed L1.
    pub l1_misses: u64,
    /// Demand accesses served by L2.
    pub l2_hits: u64,
    /// Demand accesses that missed both levels.
    pub l2_misses: u64,
    /// Prefetches issued.
    pub prefetches_issued: u64,
    /// Prefetched blocks that were demand-hit in L1 while still marked
    /// unused (a useful prefetch).
    pub prefetches_useful: u64,
    /// Demand accesses that caught their block still in flight.
    pub prefetches_late: u64,
    /// Prefetched blocks evicted from L1 without ever being used
    /// (pollution).
    pub prefetches_polluting: u64,
    /// Dirty L1 lines evicted (write-backs to L2). Counted for
    /// bandwidth accounting; the cost model does not charge time for
    /// them (write-backs overlap execution on the modelled machine).
    pub writebacks: u64,
    /// Total demand-access cycles.
    pub demand_cycles: u64,
}

impl MemStats {
    /// Demand miss rate of the L1 (misses / accesses).
    #[must_use]
    pub fn l1_miss_rate(&self) -> f64 {
        let total = self.l1_hits + self.l1_misses;
        if total == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.l1_misses as f64 / total as f64
        }
    }

    /// Fraction of issued prefetches that proved useful.
    #[must_use]
    pub fn prefetch_accuracy(&self) -> f64 {
        if self.prefetches_issued == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.prefetches_useful as f64 / self.prefetches_issued as f64
        }
    }
}

impl fmt::Display for MemStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "L1 {}/{} miss, L2 {}/{} miss, {} prefetches ({} useful, {} late, {} polluting)",
            self.l1_misses,
            self.l1_hits + self.l1_misses,
            self.l2_misses,
            self.l2_hits + self.l2_misses,
            self.prefetches_issued,
            self.prefetches_useful,
            self.prefetches_late,
            self.prefetches_polluting,
        )
    }
}

/// The two-level memory system.
///
/// Time is external: the caller advances a cycle counter and passes it to
/// [`MemorySystem::access`] / [`MemorySystem::prefetch`] so prefetch
/// timeliness can be modelled. Prefetches complete `memory_cycles` after
/// issue (unless the block was already cached); an access that arrives
/// before completion stalls for the remainder and counts as
/// [`AccessOutcome::LatePrefetch`].
#[derive(Clone, Debug)]
pub struct MemorySystem {
    config: HierarchyConfig,
    l1: Cache,
    l2: Cache,
    /// Blocks in flight from prefetches: block number -> completion time.
    in_flight: HashMap<u64, u64>,
    /// Tracked (tagged) prefetched blocks awaiting resolution.
    pending: HashMap<u64, PendingPrefetch>,
    /// Resolved outcomes awaiting [`MemorySystem::take_outcomes`]. Only
    /// tagged prefetches produce entries, so untracked runs pay nothing.
    outcomes: Vec<PrefetchResolution>,
    stats: MemStats,
}

impl MemorySystem {
    /// Creates an empty hierarchy.
    #[must_use]
    pub fn new(config: HierarchyConfig) -> Self {
        MemorySystem {
            l1: Cache::new(config.l1),
            l2: Cache::new(config.l2),
            in_flight: HashMap::new(),
            pending: HashMap::new(),
            outcomes: Vec::new(),
            config,
            stats: MemStats::default(),
        }
    }

    /// The configuration.
    #[must_use]
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Accumulated statistics.
    #[must_use]
    pub fn stats(&self) -> &MemStats {
        &self.stats
    }

    /// Resets statistics (not cache contents).
    pub fn reset_stats(&mut self) {
        self.stats = MemStats::default();
    }

    /// Performs a demand access at simulated time `now` (untimed
    /// convenience: [`MemorySystem::access`] uses `now = u64::MAX`, i.e.
    /// all in-flight prefetches have landed).
    pub fn access_at(&mut self, addr: Addr, kind: AccessKind, now: u64) -> AccessResult {
        let cost = self.config.cost;
        let block = addr.block(self.config.l1.block_size);
        self.land_arrived(now);

        // Still in flight? Stall for the remainder, then treat as an L1
        // fill (prefetcht0 fills both levels).
        if let Some(&done) = self.in_flight.get(&block) {
            let remaining = done.saturating_sub(now);
            self.in_flight.remove(&block);
            self.resolve(block, PrefetchFate::Late, now);
            self.fill_both(addr, false, now); // arrives used
            self.mark_if_store(addr, kind);
            self.stats.prefetches_late += 1;
            self.stats.l1_misses += 1;
            self.stats.l2_misses += 1;
            let cycles = cost.l1_hit_cycles + remaining;
            self.stats.demand_cycles += cycles;
            // The stalled-for block still counts as a (late) useful
            // prefetch: it shortened the miss.
            self.stats.prefetches_useful += 1;
            return AccessResult {
                outcome: AccessOutcome::LatePrefetch,
                cycles,
            };
        }

        if self.l1_access_tracking(addr, kind == AccessKind::Store, now) {
            self.stats.l1_hits += 1;
            let cycles = cost.l1_hit_cycles;
            self.stats.demand_cycles += cycles;
            return AccessResult {
                outcome: AccessOutcome::L1Hit,
                cycles,
            };
        }
        self.stats.l1_misses += 1;
        if self.l2.access(addr) {
            self.stats.l2_hits += 1;
            self.fill_l1(addr, false, now);
            self.mark_if_store(addr, kind);
            let cycles = cost.l2_total_cycles();
            self.stats.demand_cycles += cycles;
            return AccessResult {
                outcome: AccessOutcome::L2Hit,
                cycles,
            };
        }
        self.stats.l2_misses += 1;
        self.fill_both(addr, false, now);
        self.mark_if_store(addr, kind);
        let cycles = cost.full_miss_cycles();
        self.stats.demand_cycles += cycles;
        AccessResult {
            outcome: AccessOutcome::Memory,
            cycles,
        }
    }

    /// Untimed demand access: all previously issued prefetches are
    /// considered complete.
    pub fn access(&mut self, addr: Addr, kind: AccessKind) -> AccessResult {
        self.access_at(addr, kind, u64::MAX)
    }

    /// Issues a `prefetcht0`-style prefetch of `addr` at time `now`: the
    /// block will be resident in both levels `memory_cycles` later (or is
    /// promoted immediately if already L2-resident). Returns the issue
    /// cost in cycles.
    pub fn prefetch_at(&mut self, addr: Addr, now: u64) -> u64 {
        self.prefetch_inner(addr, now, None)
    }

    /// Like [`MemorySystem::prefetch_at`], additionally *tracking* the
    /// prefetch under `tag` (by convention the issuing stream's id): its
    /// eventual resolution — useful, late, or polluted — is queued as a
    /// [`PrefetchResolution`] for [`MemorySystem::take_outcomes`].
    /// Timing and cache effects are identical to the untagged call, so
    /// enabling attribution never perturbs a simulation. Redundant
    /// prefetches of L1-resident blocks are not tracked (they resolve
    /// never), and a re-prefetch of a still-pending block keeps the
    /// original issue record.
    pub fn prefetch_tagged_at(&mut self, addr: Addr, now: u64, tag: u32) -> u64 {
        self.prefetch_inner(addr, now, Some(tag))
    }

    fn prefetch_inner(&mut self, addr: Addr, now: u64, tag: Option<u32>) -> u64 {
        let cost = self.config.cost;
        self.land_arrived(now);
        self.stats.prefetches_issued += 1;
        let block = addr.block(self.config.l1.block_size);
        if self.l1.contains(addr) {
            // Redundant prefetch: no effect beyond issue cost.
            return cost.prefetch_issue_cycles;
        }
        if let Some(tag) = tag {
            self.pending.entry(block).or_insert(PendingPrefetch {
                tag,
                issued_at: now,
            });
        }
        if self.l2.contains(addr) {
            // L2 hit: promotion to L1 is fast; model as immediate.
            self.fill_l1(addr, true, now);
            return cost.prefetch_issue_cycles;
        }
        self.in_flight
            .entry(block)
            .or_insert(now.saturating_add(cost.memory_cycles));
        cost.prefetch_issue_cycles
    }

    /// Untimed prefetch: completes before any later untimed access.
    pub fn prefetch(&mut self, addr: Addr) -> u64 {
        self.prefetch_at(addr, 0)
    }

    /// Drains the queued resolutions of tracked prefetches (in
    /// resolution order). Cheap to call when nothing resolved: an empty
    /// queue is handed back without allocating.
    pub fn take_outcomes(&mut self) -> Vec<PrefetchResolution> {
        std::mem::take(&mut self.outcomes)
    }

    /// Resolves the tracked prefetch of `block`, if any.
    fn resolve(&mut self, block: u64, fate: PrefetchFate, now: u64) {
        if let Some(p) = self.pending.remove(&block) {
            self.outcomes.push(PrefetchResolution {
                tag: p.tag,
                block,
                fate,
                issued_at: p.issued_at,
                resolved_at: now,
            });
        }
    }

    /// Moves completed in-flight prefetches into the caches.
    fn land_arrived(&mut self, now: u64) {
        if self.in_flight.is_empty() {
            return;
        }
        let block_size = self.config.l1.block_size;
        let mut arrived: Vec<u64> = self
            .in_flight
            .iter()
            .filter(|&(_, &t)| t <= now)
            .map(|(&b, _)| b)
            .collect();
        // HashMap iteration order is per-instance random: land in block
        // order so a restored hierarchy fills (and evicts) identically.
        arrived.sort_unstable();
        for block in arrived {
            self.in_flight.remove(&block);
            self.fill_both(Addr(block * block_size), true, now);
        }
    }

    fn l1_access_tracking(&mut self, addr: Addr, write: bool, now: u64) -> bool {
        // Count useful prefetches: a hit on a line still marked
        // prefetched-unused.
        let was_unused_prefetch = self.l1.contains(addr) && {
            // Peek the flag by doing the access and comparing; Cache
            // clears the flag on hit, so probe first.
            self.l1_line_is_unused_prefetch(addr)
        };
        let origin_prefetched = self.l1.line_origin_prefetched(addr);
        let hit = self.l1.access_kind(addr, write);
        if hit {
            if origin_prefetched {
                self.stats.l1_hits_on_prefetched += 1;
            }
            if was_unused_prefetch {
                self.stats.prefetches_useful += 1;
                let block = addr.block(self.config.l1.block_size);
                self.resolve(block, PrefetchFate::Useful, now);
            }
        }
        hit
    }

    fn l1_line_is_unused_prefetch(&self, addr: Addr) -> bool {
        self.l1.line_is_unused_prefetch(addr)
    }

    /// Write-allocate: a store that filled on miss dirties the new line.
    fn mark_if_store(&mut self, addr: Addr, kind: AccessKind) {
        if kind == AccessKind::Store {
            let _ = self.l1.access_kind(addr, true);
        }
    }

    fn fill_l1(&mut self, addr: Addr, prefetched: bool, now: u64) {
        let evicted = self.l1.fill_tracked(addr, prefetched);
        if evicted.kind == EvictedKind::UnusedPrefetch {
            self.stats.prefetches_polluting += 1;
            self.resolve(evicted.block, PrefetchFate::Polluted, now);
        }
        if evicted.dirty {
            self.stats.writebacks += 1;
        }
    }

    fn fill_both(&mut self, addr: Addr, prefetched: bool, now: u64) {
        self.fill_l1(addr, prefetched, now);
        let _ = self.l2.fill_tracked(addr, prefetched);
    }

    /// Installs the block containing `addr` directly into L1 (not L2),
    /// charging nothing — for integrations that stage data outside the
    /// hierarchy, like stream buffers, where the fill cost is accounted
    /// by the caller.
    pub fn install_l1(&mut self, addr: Addr) {
        self.fill_l1(addr, false, 0);
    }

    /// Is the block containing `addr` L1-resident?
    #[must_use]
    pub fn l1_contains(&self, addr: Addr) -> bool {
        self.l1.contains(addr)
    }

    /// Is the block containing `addr` L2-resident?
    #[must_use]
    pub fn l2_contains(&self, addr: Addr) -> bool {
        self.l2.contains(addr)
    }

    /// Empties both caches and the in-flight queue, preserving stats.
    /// Tracked-but-unresolved prefetches are dropped without an outcome
    /// (their lines no longer exist to resolve against).
    pub fn clear(&mut self) {
        self.l1.clear();
        self.l2.clear();
        self.in_flight.clear();
        self.pending.clear();
    }

    /// Exports the hierarchy's complete mutable state in canonical
    /// order (in-flight and pending maps sorted by block, outcome queue
    /// in arrival order) — the checkpointing primitive.
    #[must_use]
    pub fn export_state(&self) -> MemState {
        let mut in_flight: Vec<(u64, u64)> = self.in_flight.iter().map(|(&b, &t)| (b, t)).collect();
        in_flight.sort_unstable();
        let mut pending: Vec<(u64, u32, u64)> = self
            .pending
            .iter()
            .map(|(&b, p)| (b, p.tag, p.issued_at))
            .collect();
        pending.sort_unstable();
        MemState {
            l1: self.l1.export_state(),
            l2: self.l2.export_state(),
            in_flight,
            pending,
            outcomes: self.outcomes.clone(),
            stats: self.stats,
        }
    }

    /// Restores state exported by [`MemorySystem::export_state`]. The
    /// hierarchy must have the geometry the state was exported under.
    ///
    /// # Panics
    ///
    /// Panics on a cache-geometry mismatch.
    pub fn restore_state(&mut self, state: &MemState) {
        self.l1.restore_state(&state.l1);
        self.l2.restore_state(&state.l2);
        self.in_flight = state.in_flight.iter().copied().collect();
        self.pending = state
            .pending
            .iter()
            .map(|&(block, tag, issued_at)| (block, PendingPrefetch { tag, issued_at }))
            .collect();
        self.outcomes = state.outcomes.clone();
        self.stats = state.stats;
    }
}

/// A [`MemorySystem`]'s complete mutable state in canonical order,
/// produced by [`MemorySystem::export_state`] for crash-consistent
/// snapshots.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct MemState {
    /// First-level cache state.
    pub l1: crate::cache::CacheState,
    /// Second-level cache state.
    pub l2: crate::cache::CacheState,
    /// In-flight prefetches as `(block, completion_time)`, sorted.
    pub in_flight: Vec<(u64, u64)>,
    /// Tracked prefetches as `(block, tag, issued_at)`, sorted.
    pub pending: Vec<(u64, u32, u64)>,
    /// Resolved-but-undrained outcomes, in resolution order.
    pub outcomes: Vec<PrefetchResolution>,
    /// Accumulated statistics.
    pub stats: MemStats,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> MemorySystem {
        MemorySystem::new(HierarchyConfig::tiny())
    }

    #[test]
    fn miss_then_l1_hit() {
        let mut m = mem();
        let r = m.access(Addr(0x100), AccessKind::Load);
        assert_eq!(r.outcome, AccessOutcome::Memory);
        assert_eq!(r.cycles, CostModel::default().full_miss_cycles());
        let r = m.access(Addr(0x100), AccessKind::Load);
        assert_eq!(r.outcome, AccessOutcome::L1Hit);
        assert_eq!(r.cycles, CostModel::default().l1_hit_cycles);
        assert_eq!(m.stats().l1_hits, 1);
        assert_eq!(m.stats().l2_misses, 1);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let mut m = mem();
        // Fill L1 set 0 (2-way, 16 sets for 512B/32B... 512/(2*32) = 8 sets).
        // Blocks 0, 8, 16 map to set 0.
        m.access(Addr(0), AccessKind::Load);
        m.access(Addr(8 * 32), AccessKind::Load);
        m.access(Addr(16 * 32), AccessKind::Load); // evicts block 0 from L1
        let r = m.access(Addr(0), AccessKind::Load);
        assert_eq!(r.outcome, AccessOutcome::L2Hit);
        assert_eq!(r.cycles, CostModel::default().l2_total_cycles());
    }

    #[test]
    fn timely_prefetch_turns_miss_into_hit() {
        let mut m = mem();
        m.prefetch_at(Addr(0x200), 0);
        // Access long after completion: L1 hit, prefetch useful.
        let r = m.access_at(Addr(0x200), AccessKind::Load, 10_000);
        assert_eq!(r.outcome, AccessOutcome::L1Hit);
        assert_eq!(m.stats().prefetches_useful, 1);
        assert_eq!(m.stats().prefetches_issued, 1);
    }

    #[test]
    fn late_prefetch_stalls_partially() {
        let mut m = mem();
        let cost = CostModel::default();
        m.prefetch_at(Addr(0x200), 0);
        // Access half-way through the memory latency.
        let half = cost.memory_cycles / 2;
        let r = m.access_at(Addr(0x200), AccessKind::Load, half);
        assert_eq!(r.outcome, AccessOutcome::LatePrefetch);
        assert_eq!(r.cycles, cost.l1_hit_cycles + (cost.memory_cycles - half));
        assert!(r.cycles < cost.full_miss_cycles());
        assert_eq!(m.stats().prefetches_late, 1);
    }

    #[test]
    fn prefetch_of_l2_resident_promotes() {
        let mut m = mem();
        // Get a block into L2 but not L1.
        m.access(Addr(0), AccessKind::Load);
        m.access(Addr(8 * 32), AccessKind::Load);
        m.access(Addr(16 * 32), AccessKind::Load); // block 0 now only in L2
        assert!(!m.l1_contains(Addr(0)));
        m.prefetch_at(Addr(0), 0);
        assert!(m.l1_contains(Addr(0)));
        let r = m.access_at(Addr(0), AccessKind::Load, 1);
        assert_eq!(r.outcome, AccessOutcome::L1Hit);
    }

    #[test]
    fn pollution_counted_on_unused_eviction() {
        let mut m = mem();
        // Prefetch two blocks into L1 set 0 and never use them.
        m.prefetch(Addr(0));
        m.prefetch(Addr(8 * 32));
        // Land them.
        m.access_at(Addr(32), AccessKind::Load, u64::MAX); // unrelated access lands in-flight
                                                           // Demand-fill two more set-0 blocks: evicts the unused prefetches.
        m.access(Addr(16 * 32), AccessKind::Load);
        m.access(Addr(24 * 32), AccessKind::Load);
        m.access(Addr(32 * 32), AccessKind::Load);
        assert!(m.stats().prefetches_polluting >= 1, "{}", m.stats());
    }

    #[test]
    fn redundant_prefetch_costs_only_issue() {
        let mut m = mem();
        m.access(Addr(0x40), AccessKind::Load);
        let before = *m.stats();
        let cycles = m.prefetch_at(Addr(0x40), 100);
        assert_eq!(cycles, CostModel::default().prefetch_issue_cycles);
        assert_eq!(m.stats().prefetches_issued, before.prefetches_issued + 1);
        // No in-flight entry created.
        let r = m.access_at(Addr(0x40), AccessKind::Load, 101);
        assert_eq!(r.outcome, AccessOutcome::L1Hit);
    }

    #[test]
    fn stats_display_and_rates() {
        let mut m = mem();
        m.access(Addr(0), AccessKind::Load);
        m.access(Addr(0), AccessKind::Load);
        let s = m.stats();
        assert!((s.l1_miss_rate() - 0.5).abs() < 1e-9);
        assert_eq!(s.prefetch_accuracy(), 0.0);
        assert!(s.to_string().contains("L1 1/2 miss"));
    }

    #[test]
    fn clear_preserves_stats() {
        let mut m = mem();
        m.access(Addr(0), AccessKind::Load);
        m.clear();
        assert_eq!(m.stats().l1_misses, 1);
        assert!(!m.l1_contains(Addr(0)));
        let r = m.access(Addr(0), AccessKind::Load);
        assert_eq!(r.outcome, AccessOutcome::Memory);
    }

    #[test]
    fn dirty_evictions_count_writebacks() {
        let mut m = mem();
        // Dirty block 0 (set 0), then evict it with two more set-0 fills.
        m.access(Addr(0), AccessKind::Store);
        m.access(Addr(8 * 32), AccessKind::Load);
        m.access(Addr(16 * 32), AccessKind::Load); // evicts dirty block 0
        assert_eq!(m.stats().writebacks, 1, "{}", m.stats());
        // Clean traffic adds no write-backs.
        m.access(Addr(24 * 32), AccessKind::Load);
        assert_eq!(m.stats().writebacks, 1);
    }

    #[test]
    fn tagged_prefetches_resolve_with_fates() {
        let cost = CostModel::default();
        let mut m = mem();
        // Useful: prefetched, landed, demand-hit.
        m.prefetch_tagged_at(Addr(0x200), 0, 7);
        m.access_at(Addr(0x200), AccessKind::Load, cost.memory_cycles + 1);
        // Late: demand access catches the block in flight.
        m.prefetch_tagged_at(Addr(0x400), 1_000_000, 7);
        m.access_at(
            Addr(0x400),
            AccessKind::Load,
            1_000_000 + cost.memory_cycles / 2,
        );
        let outcomes = m.take_outcomes();
        assert_eq!(outcomes.len(), 2);
        assert_eq!(outcomes[0].fate, PrefetchFate::Useful);
        assert_eq!(outcomes[0].tag, 7);
        assert!(outcomes[0].resolved_at > outcomes[0].issued_at);
        assert_eq!(outcomes[1].fate, PrefetchFate::Late);
        // Queue drained.
        assert!(m.take_outcomes().is_empty());
    }

    #[test]
    fn tagged_pollution_resolves_on_eviction() {
        let mut m = mem();
        m.prefetch_tagged_at(Addr(0), 0, 3);
        // Land it, then evict it with demand fills of the same set.
        m.access_at(Addr(8 * 32), AccessKind::Load, u64::MAX);
        m.access_at(Addr(16 * 32), AccessKind::Load, u64::MAX);
        m.access_at(Addr(24 * 32), AccessKind::Load, u64::MAX);
        let outcomes = m.take_outcomes();
        assert!(
            outcomes
                .iter()
                .any(|o| o.fate == PrefetchFate::Polluted && o.tag == 3 && o.block == 0),
            "{outcomes:?}"
        );
    }

    #[test]
    fn untagged_prefetches_produce_no_outcomes() {
        let mut m = mem();
        m.prefetch_at(Addr(0x200), 0);
        m.access_at(Addr(0x200), AccessKind::Load, u64::MAX);
        assert!(m.take_outcomes().is_empty());
        assert_eq!(m.stats().prefetches_useful, 1);
    }

    #[test]
    fn tagging_never_perturbs_timing_or_stats() {
        let drive = |tagged: bool| {
            let mut m = mem();
            let mut total = 0u64;
            for i in 0..200u64 {
                let addr = Addr((i % 50) * 64);
                if i % 3 == 0 {
                    if tagged {
                        m.prefetch_tagged_at(addr, i * 10, (i % 4) as u32);
                    } else {
                        m.prefetch_at(addr, i * 10);
                    }
                }
                total += m.access_at(addr, AccessKind::Load, i * 10 + 5).cycles;
            }
            (total, *m.stats())
        };
        assert_eq!(drive(false), drive(true));
    }

    #[test]
    fn hits_attributed_to_prefetched_lines() {
        let mut m = mem();
        // Prefetched line: every hit counts, not just the first.
        m.prefetch(Addr(0x200));
        m.access_at(Addr(0x200), AccessKind::Load, u64::MAX);
        m.access_at(Addr(0x200), AccessKind::Load, u64::MAX);
        // Demand line: hits are not attributed to prefetching.
        m.access_at(Addr(0x600), AccessKind::Load, u64::MAX);
        m.access_at(Addr(0x600), AccessKind::Load, u64::MAX);
        let s = m.stats();
        assert_eq!(s.l1_hits_on_prefetched, 2, "{s}");
        assert_eq!(s.l1_hits, 3);
        assert_eq!(s.prefetches_useful, 1);
    }

    #[test]
    fn stores_and_loads_share_the_cache() {
        let mut m = mem();
        m.access(Addr(0x80), AccessKind::Store);
        let r = m.access(Addr(0x80), AccessKind::Load);
        assert_eq!(r.outcome, AccessOutcome::L1Hit);
    }

    /// A restored hierarchy is bit-identical going forward: export
    /// mid-run (with prefetches in flight and outcomes queued), restore
    /// into a fresh system, and both produce identical results for the
    /// same continuation.
    #[test]
    fn export_restore_resumes_identical_behaviour() {
        let drive_prefix = |m: &mut MemorySystem| {
            for i in 0..60u64 {
                let addr = Addr((i % 17) * 64);
                if i % 3 == 0 {
                    m.prefetch_tagged_at(addr, i * 10, (i % 4) as u32);
                }
                m.access_at(addr, AccessKind::Load, i * 10 + 5);
            }
            // Leave prefetches in flight and outcomes undrained.
            m.prefetch_tagged_at(Addr(0x4000), 601, 9);
            m.prefetch_tagged_at(Addr(0x4400), 602, 9);
        };
        let mut original = mem();
        drive_prefix(&mut original);
        let state = original.export_state();
        assert!(!state.in_flight.is_empty(), "test needs in-flight blocks");
        assert!(state.in_flight.windows(2).all(|w| w[0].0 < w[1].0));
        let mut resumed = mem();
        resumed.restore_state(&state);
        assert_eq!(resumed.export_state(), state, "round-trip must be exact");
        for i in 0..80u64 {
            let now = 650 + i * 7;
            let addr = Addr((i % 23) * 64);
            let a = original.access_at(addr, AccessKind::Load, now);
            let b = resumed.access_at(addr, AccessKind::Load, now);
            assert_eq!(a, b, "access {i} diverged after restore");
        }
        assert_eq!(original.stats(), resumed.stats());
        assert_eq!(original.take_outcomes(), resumed.take_outcomes());
        assert_eq!(original.export_state(), resumed.export_state());
    }
}
