//! The cycle cost model.
//!
//! All "execution time" in this reproduction is deterministic simulated
//! cycles. The charges below are calibrated to the paper's era (a 550 MHz
//! Pentium III with SDRAM: an L2 hit costs ~10–18 cycles, a memory access
//! ~80–100) and to the overhead figures of the paper's Figure 11 (the
//! bare dynamic checks cost 2.5–6%, full profiling ≤ 7%).

/// Cycle charges for every event the simulation can produce.
///
/// # Examples
///
/// ```
/// use hds_memsim::CostModel;
///
/// let cost = CostModel::default();
/// assert!(cost.memory_cycles > cost.l2_hit_cycles);
/// assert!(cost.l2_hit_cycles > cost.l1_hit_cycles);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CostModel {
    /// One plain (non-memory) instruction.
    pub work_cycles: u64,
    /// A load/store that hits L1.
    pub l1_hit_cycles: u64,
    /// Additional penalty when L1 misses but L2 hits.
    pub l2_hit_cycles: u64,
    /// Additional penalty when both levels miss (memory access).
    pub memory_cycles: u64,
    /// One bursty-tracing dynamic check in the *checking* code version
    /// (counter decrement + branch).
    pub check_cycles: u64,
    /// One dynamic check in the *instrumented* code version.
    pub instr_check_cycles: u64,
    /// Recording one traced data reference (buffer append; the amortised
    /// per-symbol Sequitur cost is charged separately per analysis).
    pub record_ref_cycles: u64,
    /// Executing one injected DFSM prefix-match check site (the if-chain
    /// of Figure 7 at one instrumented pc).
    pub dfsm_check_cycles: u64,
    /// Issuing one `prefetcht0` instruction.
    pub prefetch_issue_cycles: u64,
    /// Per-symbol cost of the online Sequitur + hot-stream analysis,
    /// charged when the optimizer processes the trace buffer.
    pub analysis_per_ref_cycles: u64,
    /// Fixed cost of one optimization step (DFSM construction, code
    /// injection, thread stop/restart — §3.2).
    pub optimize_cycles: u64,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            work_cycles: 1,
            l1_hit_cycles: 1,
            l2_hit_cycles: 22,
            memory_cycles: 90,
            check_cycles: 3,
            instr_check_cycles: 4,
            record_ref_cycles: 4,
            dfsm_check_cycles: 3,
            prefetch_issue_cycles: 1,
            analysis_per_ref_cycles: 8,
            optimize_cycles: 25_000,
        }
    }
}

impl CostModel {
    /// Total latency of an access that misses all the way to memory.
    #[must_use]
    pub fn full_miss_cycles(&self) -> u64 {
        self.l1_hit_cycles + self.l2_hit_cycles + self.memory_cycles
    }

    /// Total latency of an access served by L2.
    #[must_use]
    pub fn l2_total_cycles(&self) -> u64 {
        self.l1_hit_cycles + self.l2_hit_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ordering_sane() {
        let c = CostModel::default();
        assert!(c.work_cycles >= 1);
        assert!(c.l1_hit_cycles < c.l2_total_cycles());
        assert!(c.l2_total_cycles() < c.full_miss_cycles());
        assert!(c.check_cycles < c.instr_check_cycles);
    }

    #[test]
    fn totals_add_up() {
        let c = CostModel::default();
        assert_eq!(c.l2_total_cycles(), 23);
        assert_eq!(c.full_miss_cycles(), 113);
    }
}
