//! Baseline prefetchers from the related-work landscape (paper §5.1).
//!
//! The paper positions hot-data-stream prefetching against simpler
//! schemes: stride prefetchers "learn if load address sequences are
//! related by a fixed delta" \[7\], and correlation/Markov prefetchers
//! learn digrams of miss addresses \[16\]. §4.3 also argues "many
//! \[hot data addresses\] will not be successfully prefetched using a
//! simple stride-based prefetching scheme". These baselines make that
//! comparison measurable (`related_prefetchers` experiment binary).

use std::collections::HashMap;

use hds_trace::{Addr, DataRef, Pc};

use crate::hierarchy::AccessOutcome;

/// A demand-access-driven prefetcher: observes every access (with its
/// outcome) and proposes addresses to prefetch.
pub trait Prefetcher {
    /// Observes one demand access; returns addresses to prefetch now.
    fn on_access(&mut self, r: DataRef, outcome: AccessOutcome) -> Vec<Addr>;

    /// Human-readable name for reports.
    fn name(&self) -> &'static str;
}

/// The null prefetcher (baseline "no prefetching").
#[derive(Clone, Copy, Debug, Default)]
pub struct NullPrefetcher;

impl Prefetcher for NullPrefetcher {
    fn on_access(&mut self, _r: DataRef, _outcome: AccessOutcome) -> Vec<Addr> {
        Vec::new()
    }

    fn name(&self) -> &'static str {
        "none"
    }
}

/// Next-block sequential prefetcher: on a miss, prefetch the following
/// `degree` cache blocks. The classic "stream buffer"-ish baseline for
/// array codes.
#[derive(Clone, Debug)]
pub struct SequentialPrefetcher {
    block_size: u64,
    degree: u32,
}

impl SequentialPrefetcher {
    /// Creates a sequential prefetcher for the given block size and
    /// prefetch degree.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero or `block_size` is not a power of two.
    #[must_use]
    pub fn new(block_size: u64, degree: u32) -> Self {
        assert!(degree > 0, "degree must be nonzero");
        assert!(
            block_size.is_power_of_two(),
            "block size must be a power of two"
        );
        SequentialPrefetcher { block_size, degree }
    }
}

impl Prefetcher for SequentialPrefetcher {
    fn on_access(&mut self, r: DataRef, outcome: AccessOutcome) -> Vec<Addr> {
        if matches!(outcome, AccessOutcome::L1Hit) {
            return Vec::new();
        }
        let base = r.addr.block(self.block_size);
        (1..=u64::from(self.degree))
            .map(|i| Addr((base + i) * self.block_size))
            .collect()
    }

    fn name(&self) -> &'static str {
        "sequential"
    }
}

#[derive(Clone, Copy, Debug, Default)]
struct StrideEntry {
    last_addr: u64,
    stride: i64,
    confidence: u8,
}

/// Per-pc stride prefetcher (Chen & Baer style \[7\]): learns a fixed
/// delta per load site; once confident, prefetches `degree` strides
/// ahead.
#[derive(Clone, Debug)]
pub struct StridePrefetcher {
    table: HashMap<Pc, StrideEntry>,
    /// Confidence (consecutive confirmations) required before issuing.
    threshold: u8,
    degree: u32,
}

impl StridePrefetcher {
    /// Creates a stride prefetcher that issues after `threshold`
    /// consecutive confirmations, fetching `degree` strides ahead.
    ///
    /// # Panics
    ///
    /// Panics if `degree` is zero.
    #[must_use]
    pub fn new(threshold: u8, degree: u32) -> Self {
        assert!(degree > 0, "degree must be nonzero");
        StridePrefetcher {
            table: HashMap::new(),
            threshold,
            degree,
        }
    }
}

impl Prefetcher for StridePrefetcher {
    fn on_access(&mut self, r: DataRef, _outcome: AccessOutcome) -> Vec<Addr> {
        let entry = self.table.entry(r.pc).or_default();
        let new_stride = r.addr.0.wrapping_sub(entry.last_addr) as i64;
        if entry.last_addr != 0 && new_stride == entry.stride && new_stride != 0 {
            entry.confidence = entry.confidence.saturating_add(1);
        } else {
            entry.stride = new_stride;
            entry.confidence = 0;
        }
        entry.last_addr = r.addr.0;
        if entry.confidence >= self.threshold {
            let stride = entry.stride;
            (1..=i64::from(self.degree))
                .map(|i| r.addr.offset(stride * i))
                .collect()
        } else {
            Vec::new()
        }
    }

    fn name(&self) -> &'static str {
        "stride"
    }
}

/// Markov (correlation) prefetcher \[16\]: learns digrams of *miss*
/// addresses; on a miss to a known node, prefetches the most probable
/// successors.
#[derive(Clone, Debug)]
pub struct MarkovPrefetcher {
    /// Per miss-address successor counts (bounded fan-out).
    table: HashMap<u64, Vec<(u64, u32)>>,
    /// FIFO of node insertion order, for capacity eviction.
    order: std::collections::VecDeque<u64>,
    last_miss: Option<u64>,
    block_size: u64,
    max_successors: usize,
    degree: usize,
    max_nodes: usize,
}

impl MarkovPrefetcher {
    /// Default node capacity: models the bounded correlation tables of
    /// the hardware proposals (Joseph & Grunwald used ~1 MB of prediction
    /// state; at this simulation's working-set scale, 4096 nodes).
    pub const DEFAULT_MAX_NODES: usize = 4096;

    /// Creates a Markov prefetcher over cache-block-granular miss
    /// digrams, remembering at most `max_successors` successors per node
    /// and prefetching the top `degree` on each miss. Table capacity
    /// defaults to [`MarkovPrefetcher::DEFAULT_MAX_NODES`]; tune with
    /// [`MarkovPrefetcher::with_max_nodes`].
    ///
    /// # Panics
    ///
    /// Panics if `degree` or `max_successors` is zero, or if `degree`
    /// exceeds `max_successors`.
    #[must_use]
    pub fn new(block_size: u64, max_successors: usize, degree: usize) -> Self {
        assert!(
            degree > 0 && max_successors > 0,
            "degree/max_successors must be nonzero"
        );
        assert!(degree <= max_successors, "degree exceeds table fan-out");
        assert!(
            block_size.is_power_of_two(),
            "block size must be a power of two"
        );
        MarkovPrefetcher {
            table: HashMap::new(),
            order: std::collections::VecDeque::new(),
            last_miss: None,
            block_size,
            max_successors,
            degree,
            max_nodes: Self::DEFAULT_MAX_NODES,
        }
    }

    /// Returns a copy with a custom node capacity.
    ///
    /// # Panics
    ///
    /// Panics if `max_nodes` is zero.
    #[must_use]
    pub fn with_max_nodes(mut self, max_nodes: usize) -> Self {
        assert!(max_nodes > 0, "max_nodes must be nonzero");
        self.max_nodes = max_nodes;
        self
    }

    /// Number of learned nodes (diagnostic).
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.table.len()
    }
}

impl Prefetcher for MarkovPrefetcher {
    fn on_access(&mut self, r: DataRef, outcome: AccessOutcome) -> Vec<Addr> {
        if matches!(outcome, AccessOutcome::L1Hit) {
            return Vec::new();
        }
        let block = r.addr.block(self.block_size);
        // Learn the digram (last_miss -> block).
        if let Some(prev) = self.last_miss {
            if prev != block {
                // Capacity eviction (FIFO) when inserting a new node.
                if !self.table.contains_key(&prev) {
                    while self.table.len() >= self.max_nodes {
                        if let Some(old) = self.order.pop_front() {
                            self.table.remove(&old);
                        } else {
                            break;
                        }
                    }
                    self.order.push_back(prev);
                }
                let successors = self.table.entry(prev).or_default();
                if let Some(slot) = successors.iter_mut().find(|(b, _)| *b == block) {
                    slot.1 += 1;
                } else if successors.len() < self.max_successors {
                    successors.push((block, 1));
                } else if let Some(weakest) = successors.iter_mut().min_by_key(|(_, c)| *c) {
                    // Replace the weakest successor (simple LFU).
                    *weakest = (block, 1);
                }
            }
        }
        self.last_miss = Some(block);
        // Predict: top-`degree` successors of the current miss, by count.
        match self.table.get(&block) {
            None => Vec::new(),
            Some(successors) => {
                let mut sorted = successors.clone();
                sorted.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
                sorted
                    .into_iter()
                    .take(self.degree)
                    .map(|(b, _)| Addr(b * self.block_size))
                    .collect()
            }
        }
    }

    fn name(&self) -> &'static str {
        "markov"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(pc: u32, addr: u64) -> DataRef {
        DataRef::new(Pc(pc), Addr(addr))
    }

    #[test]
    fn null_never_prefetches() {
        let mut p = NullPrefetcher;
        assert!(p
            .on_access(load(1, 0x100), AccessOutcome::Memory)
            .is_empty());
        assert_eq!(p.name(), "none");
    }

    #[test]
    fn sequential_prefetches_next_blocks_on_miss() {
        let mut p = SequentialPrefetcher::new(32, 2);
        let out = p.on_access(load(1, 0x47), AccessOutcome::Memory);
        // 0x47 is in block 2 (0x40); next blocks start at 0x60, 0x80.
        assert_eq!(out, vec![Addr(0x60), Addr(0x80)]);
        // No prefetch on an L1 hit.
        assert!(p.on_access(load(1, 0x47), AccessOutcome::L1Hit).is_empty());
    }

    #[test]
    fn stride_learns_fixed_delta() {
        let mut p = StridePrefetcher::new(2, 1);
        // Strides of 64 from pc 7.
        assert!(p
            .on_access(load(7, 0x1000), AccessOutcome::Memory)
            .is_empty());
        assert!(p
            .on_access(load(7, 0x1040), AccessOutcome::Memory)
            .is_empty());
        assert!(p
            .on_access(load(7, 0x1080), AccessOutcome::Memory)
            .is_empty());
        // Confidence reached: predict next.
        let out = p.on_access(load(7, 0x10c0), AccessOutcome::Memory);
        assert_eq!(out, vec![Addr(0x1100)]);
    }

    #[test]
    fn stride_resets_on_irregular_pattern() {
        let mut p = StridePrefetcher::new(1, 1);
        p.on_access(load(7, 0x1000), AccessOutcome::Memory);
        p.on_access(load(7, 0x1040), AccessOutcome::Memory);
        let out = p.on_access(load(7, 0x1080), AccessOutcome::Memory);
        assert_eq!(out, vec![Addr(0x10c0)]); // confident
                                             // Pointer-chasing jump breaks the stride.
        let out = p.on_access(load(7, 0x9000), AccessOutcome::Memory);
        assert!(out.is_empty());
    }

    #[test]
    fn stride_is_per_pc() {
        let mut p = StridePrefetcher::new(1, 1);
        p.on_access(load(1, 0x1000), AccessOutcome::Memory);
        p.on_access(load(2, 0x5000), AccessOutcome::Memory);
        p.on_access(load(1, 0x1040), AccessOutcome::Memory);
        p.on_access(load(2, 0x5008), AccessOutcome::Memory);
        let a = p.on_access(load(1, 0x1080), AccessOutcome::Memory);
        let b = p.on_access(load(2, 0x5010), AccessOutcome::Memory);
        assert_eq!(a, vec![Addr(0x10c0)]);
        assert_eq!(b, vec![Addr(0x5018)]);
    }

    #[test]
    fn markov_learns_digrams() {
        let mut p = MarkovPrefetcher::new(32, 4, 1);
        // Teach A -> B twice.
        p.on_access(load(1, 0x100), AccessOutcome::Memory); // A
        p.on_access(load(1, 0x900), AccessOutcome::Memory); // B (learn A->B)
        p.on_access(load(1, 0x100), AccessOutcome::Memory); // A again
        let out = p.on_access(load(1, 0x900), AccessOutcome::Memory);
        // At B, nothing learned after B yet except B->A? B->A learned when
        // A followed B... second A-access learned B->A. So at this B we
        // predict A.
        assert_eq!(out.len(), 1);
        // Now at A (after this B), the predictor should suggest B.
        let out = p.on_access(load(1, 0x100), AccessOutcome::Memory);
        assert_eq!(out, vec![Addr(0x900)]);
        assert!(p.node_count() >= 2);
    }

    #[test]
    fn markov_ignores_l1_hits() {
        let mut p = MarkovPrefetcher::new(32, 4, 2);
        p.on_access(load(1, 0x100), AccessOutcome::Memory);
        assert!(p.on_access(load(1, 0x900), AccessOutcome::L1Hit).is_empty());
        // The hit did not pollute the digram table.
        p.on_access(load(1, 0x500), AccessOutcome::Memory);
        let out = p.on_access(load(1, 0x100), AccessOutcome::Memory);
        // Learned 0x100 -> 0x500 (the two misses), not 0x100 -> 0x900.
        assert_eq!(out, vec![Addr(0x500 / 32 * 32)]);
    }

    #[test]
    fn markov_bounded_fanout_replaces_weakest() {
        let mut p = MarkovPrefetcher::new(32, 2, 2);
        // A followed by B, C (fills fan-out), then B again (strengthen),
        // then D (replaces weakest = C).
        for succ in [0x200u64, 0x300, 0x200, 0x400] {
            p.on_access(load(1, 0x100), AccessOutcome::Memory);
            p.on_access(load(1, succ), AccessOutcome::Memory);
        }
        let out = p.on_access(load(1, 0x100), AccessOutcome::Memory);
        // B (count 2) is the strongest; C was replaced by D.
        assert!(out.contains(&Addr(0x200)));
        assert!(!out.contains(&Addr(0x300)));
    }

    #[test]
    #[should_panic(expected = "degree")]
    fn markov_validates_degree() {
        let _ = MarkovPrefetcher::new(32, 2, 3);
    }

    #[test]
    fn markov_capacity_evicts_oldest_nodes() {
        let mut p = MarkovPrefetcher::new(32, 2, 1).with_max_nodes(2);
        // Teach three digrams from three distinct sources.
        for (a, b) in [(0x100u64, 0x200u64), (0x300, 0x400), (0x500, 0x600)] {
            p.on_access(load(1, a), AccessOutcome::Memory);
            p.on_access(load(1, b), AccessOutcome::Memory);
        }
        assert!(p.node_count() <= 2, "capacity exceeded: {}", p.node_count());
        // The oldest node (0x100) was evicted: no prediction there.
        let out = p.on_access(load(1, 0x100), AccessOutcome::Memory);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "max_nodes")]
    fn markov_validates_capacity() {
        let _ = MarkovPrefetcher::new(32, 2, 1).with_max_nodes(0);
    }
}
