//! Property tests for the cache simulator: the set-associative LRU cache
//! agrees with a naive reference model, and hierarchy invariants hold on
//! random access/prefetch interleavings.

use hds_memsim::{AccessOutcome, Cache, CacheConfig, HierarchyConfig, MemorySystem};
use hds_trace::{AccessKind, Addr};
use proptest::prelude::*;

/// Naive reference: per-set vector of blocks ordered most-recent-first.
struct RefCache {
    sets: Vec<Vec<u64>>,
    assoc: usize,
    block_size: u64,
    num_sets: u64,
}

impl RefCache {
    fn new(config: CacheConfig) -> Self {
        RefCache {
            sets: vec![Vec::new(); config.num_sets() as usize],
            assoc: config.assoc as usize,
            block_size: config.block_size,
            num_sets: config.num_sets(),
        }
    }

    fn set_of(&self, block: u64) -> usize {
        (block % self.num_sets) as usize
    }

    fn access(&mut self, addr: Addr) -> bool {
        let block = addr.block(self.block_size);
        let set = self.set_of(block);
        if let Some(pos) = self.sets[set].iter().position(|&b| b == block) {
            let b = self.sets[set].remove(pos);
            self.sets[set].insert(0, b);
            true
        } else {
            false
        }
    }

    fn fill(&mut self, addr: Addr) {
        let block = addr.block(self.block_size);
        let set = self.set_of(block);
        if let Some(pos) = self.sets[set].iter().position(|&b| b == block) {
            let b = self.sets[set].remove(pos);
            self.sets[set].insert(0, b);
            return;
        }
        if self.sets[set].len() == self.assoc {
            self.sets[set].pop();
        }
        self.sets[set].insert(0, block);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The production cache and the naive MRU-list model agree on every
    /// hit/miss over random access sequences (fill-on-miss policy).
    #[test]
    fn cache_matches_reference_model(
        addrs in proptest::collection::vec(0u64..2048, 1..400),
    ) {
        let config = CacheConfig::new(256, 2, 32); // 4 sets, tiny => heavy eviction
        let mut cache = Cache::new(config);
        let mut reference = RefCache::new(config);
        for &a in &addrs {
            let addr = Addr(a);
            let got = cache.access(addr);
            let want = reference.access(addr);
            prop_assert_eq!(got, want, "divergence at {}", addr);
            if !got {
                cache.fill(addr, false);
                reference.fill(addr);
            }
        }
    }

    /// Hierarchy inclusion-ish sanity: an address that hits L1 was
    /// previously brought in; repeating the same access immediately is
    /// always an L1 hit; stats counters add up.
    #[test]
    fn hierarchy_invariants(
        addrs in proptest::collection::vec(0u64..8192, 1..300),
    ) {
        let mut m = MemorySystem::new(HierarchyConfig::tiny());
        for &a in &addrs {
            let addr = Addr(a);
            let _ = m.access(addr, AccessKind::Load);
            let again = m.access(addr, AccessKind::Load);
            prop_assert_eq!(again.outcome, AccessOutcome::L1Hit);
        }
        let s = m.stats();
        prop_assert_eq!(s.l1_hits + s.l1_misses, 2 * addrs.len() as u64);
        prop_assert_eq!(s.l2_hits + s.l2_misses, s.l1_misses);
        prop_assert!(s.demand_cycles >= s.l1_hits + s.l1_misses);
    }

    /// Prefetching never changes functional behaviour, only timing: with
    /// all prefetches landed, demand cycles with prefetching of exactly
    /// the future addresses is never worse than without.
    #[test]
    fn perfect_prefetching_never_hurts(
        addrs in proptest::collection::vec(0u64..4096, 1..200),
    ) {
        let mut plain = MemorySystem::new(HierarchyConfig::tiny());
        let mut fetched = MemorySystem::new(HierarchyConfig::tiny());
        let mut plain_cycles = 0u64;
        let mut fetched_cycles = 0u64;
        for &a in &addrs {
            let addr = Addr(a);
            plain_cycles += plain.access(addr, AccessKind::Load).cycles;
            // Prefetch exactly the block about to be accessed, untimed
            // (fully timely).
            fetched.prefetch(addr);
            fetched_cycles += fetched.access(addr, AccessKind::Load).cycles;
        }
        prop_assert!(fetched_cycles <= plain_cycles,
            "prefetching made things worse: {} > {}", fetched_cycles, plain_cycles);
        prop_assert_eq!(fetched.stats().l1_misses, 0);
    }

    /// Issued-prefetch accounting: useful + polluting never exceeds
    /// issued (late ones are counted useful).
    #[test]
    fn prefetch_accounting_bounds(
        ops in proptest::collection::vec((0u64..2048, proptest::bool::ANY), 1..300),
    ) {
        let mut m = MemorySystem::new(HierarchyConfig::tiny());
        let mut now = 0u64;
        for &(a, is_prefetch) in &ops {
            now += 7;
            if is_prefetch {
                m.prefetch_at(Addr(a), now);
            } else {
                let _ = m.access_at(Addr(a), AccessKind::Load, now);
            }
        }
        let s = m.stats();
        prop_assert!(s.prefetches_useful + s.prefetches_polluting <= s.prefetches_issued + s.prefetches_useful,
            "accounting out of bounds: {}", s);
        prop_assert!(s.prefetches_late <= s.prefetches_issued);
    }
}
