//! The write-ahead edit journal: crash-consistent binary edits.
//!
//! A stop-the-world edit that dies mid-patch would leave the image with
//! some procedures on the new instrumentation and some on the old — the
//! one state the paper's transparency claim (§3.2) can never tolerate.
//! [`EditSession::commit_journaled`] closes that window with standard
//! write-ahead logging:
//!
//! 1. the complete edit — staged injections, removals, mode, and the
//!    *target* epoch counters — is recorded in the [`EditJournal`]
//!    **before** the image is touched;
//! 2. the edit is applied from the journal entry in a deterministic
//!    order (counter bump, then clears/removals, then injections sorted
//!    by pc);
//! 3. the journal entry is erased only after the last patch landed.
//!
//! A crash before step 1 loses nothing (the image was never touched); a
//! crash inside step 2 leaves a pending entry whose idempotent
//! roll-forward ([`EditJournal::recover`]) completes the edit exactly;
//! a crash between 2 and 3 replays a fully-applied edit, which the
//! overwrite-idempotent replay turns into a no-op. In every case the
//! recovered image is byte-for-byte the committed image — never a
//! half-patched hybrid.
//!
//! A *poisoned* session never reaches step 1: its rollback happens once,
//! at commit time, with nothing journaled — so a crash fault landing on
//! an already-failed edit cannot trigger a second rollback on recovery.

use std::collections::HashMap;

use hds_trace::Pc;

use crate::image::{Copy, EditError, EditReport, EditSession, Image};

/// One journaled edit: everything needed to replay the commit from
/// scratch, recorded before the image is touched.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct JournalEntry<T> {
    /// `true` for replace-mode edits ([`Image::edit`]): the commit
    /// describes the complete new instrumentation and every previous
    /// patch is dropped first.
    pub replace: bool,
    /// Staged injections, sorted by pc — the deterministic apply order.
    pub staged: Vec<(Pc, T)>,
    /// Staged removals (patch mode), sorted and deduplicated.
    pub removals: Vec<Pc>,
    /// The image epoch after the edit completes.
    pub epoch_target: u64,
    /// The image's committed-edit count after the edit completes.
    pub total_edits_target: u64,
}

/// The write-ahead journal guarding an image's edits. At most one entry
/// is pending at a time (edits are stop-the-world, so they never
/// overlap); a pending entry means the last commit may have died
/// mid-apply and [`EditJournal::recover`] must run before the image is
/// trusted.
#[derive(Clone, Debug, Default)]
pub struct EditJournal<T> {
    pending: Option<JournalEntry<T>>,
}

impl<T> EditJournal<T> {
    /// An empty journal (no edit in flight).
    #[must_use]
    pub fn new() -> Self {
        EditJournal { pending: None }
    }

    /// Is an edit recorded but not yet known to have fully applied?
    #[must_use]
    pub fn has_pending(&self) -> bool {
        self.pending.is_some()
    }

    /// The pending entry, if any.
    #[must_use]
    pub fn pending(&self) -> Option<&JournalEntry<T>> {
        self.pending.as_ref()
    }
}

impl<T: Clone> EditJournal<T> {
    /// Rolls the pending edit forward to completion against `image` and
    /// clears the journal. Returns `true` when a pending entry was
    /// replayed, `false` when the journal was empty (nothing to do).
    ///
    /// Replay is *idempotent*: counters are set to their recorded
    /// targets (not incremented), removals of already-removed pcs are
    /// no-ops, and injections overwrite with the journaled payload — so
    /// replaying a torn apply, a fully-applied-but-uncleared commit, or
    /// the same entry twice all land on the identical committed image.
    pub fn recover(&mut self, image: &mut Image<T>) -> bool {
        let Some(entry) = self.pending.take() else {
            return false;
        };
        image.epoch = entry.epoch_target;
        image.total_edits = entry.total_edits_target;
        if entry.replace {
            image.copies.clear();
        } else {
            for &pc in &entry.removals {
                let Some(proc) = image.proc_of(pc) else {
                    continue;
                };
                let Some(copy) = image.copies.get_mut(&proc) else {
                    continue;
                };
                copy.checks.remove(&pc);
                if copy.checks.is_empty() {
                    image.copies.remove(&proc);
                }
            }
        }
        for (pc, payload) in entry.staged {
            let Some(proc) = image.proc_of(pc) else {
                continue;
            };
            let copy = image.copies.entry(proc).or_insert_with(|| Copy {
                checks: HashMap::new(),
                since_epoch: entry.epoch_target,
            });
            copy.checks.insert(pc, payload);
        }
        true
    }
}

impl<T: Clone> EditSession<'_, T> {
    /// Commits through the write-ahead `journal`, optionally tearing the
    /// apply to model a crash mid-edit.
    ///
    /// * `Ok(Some(report))` — the edit fully applied and the journal was
    ///   cleared; identical effect (and report) to [`EditSession::commit`].
    /// * `Ok(None)` — the apply *tore* after `tear_after` injections
    ///   landed (counters bumped, clears/removals done, a prefix of the
    ///   injections applied). The journal entry stays pending; the image
    ///   must not be trusted until [`EditJournal::recover`] runs.
    /// * `Err(e)` — the session was poisoned: the image was never
    ///   touched and **nothing was journaled**. This is the same single
    ///   atomic rollback as [`EditSession::commit`]; a crash fault on
    ///   top of a failed edit cannot roll back a second time on
    ///   recovery, because there is no journal entry to replay.
    ///
    /// `tear_after: Some(k)` dies after `k` injections; `k >=` the
    /// injection count models dying *after* the last patch but *before*
    /// the journal erase (recovery then replays a complete edit).
    ///
    /// # Errors
    ///
    /// The first error that poisoned the session, exactly as
    /// [`EditSession::commit`].
    pub fn commit_journaled(
        self,
        journal: &mut EditJournal<T>,
        tear_after: Option<usize>,
    ) -> Result<Option<EditReport>, EditError> {
        if let Some(err) = self.poisoned {
            return Err(err); // atomic rollback; nothing journaled
        }
        let mut staged: Vec<(Pc, T)> = self.staged.into_iter().collect();
        staged.sort_unstable_by_key(|&(pc, _)| pc);
        let mut removals = self.removals;
        removals.sort_unstable();
        removals.dedup();
        let image = self.image;

        // Step 1: write-ahead — the journal records the full edit and
        // its target counters before any image mutation.
        journal.pending = Some(JournalEntry {
            replace: self.replace,
            staged,
            removals,
            epoch_target: image.epoch + 1,
            total_edits_target: image.total_edits + 1,
        });
        let entry = journal
            .pending
            .as_ref()
            .expect("entry written immediately above");

        // Step 2: apply *from the journal entry* in its deterministic
        // order, so a torn apply is always a prefix of the replay.
        image.epoch = entry.epoch_target;
        image.total_edits = entry.total_edits_target;
        let mut touched: Vec<crate::program::ProcId> = Vec::new();
        if entry.replace {
            image.copies.clear();
        } else {
            for &pc in &entry.removals {
                let Some(proc) = image.proc_of(pc) else {
                    continue;
                };
                let Some(copy) = image.copies.get_mut(&proc) else {
                    continue;
                };
                copy.checks.remove(&pc);
                touched.push(proc);
                if copy.checks.is_empty() {
                    image.copies.remove(&proc);
                }
            }
        }
        let tear = tear_after.unwrap_or(usize::MAX);
        let mut pcs_injected = 0usize;
        for (i, (pc, payload)) in entry.staged.iter().enumerate() {
            if i >= tear {
                return Ok(None); // died mid-apply: entry stays pending
            }
            let Some(proc) = image.proc_of(*pc) else {
                continue;
            };
            let copy = image.copies.entry(proc).or_insert_with(|| Copy {
                checks: HashMap::new(),
                since_epoch: entry.epoch_target,
            });
            copy.checks.insert(*pc, payload.clone());
            touched.push(proc);
            pcs_injected += 1;
        }
        if tear_after.is_some() {
            return Ok(None); // died after the last patch, before the erase
        }
        let procedures_modified = if entry.replace {
            image.copies.len()
        } else {
            touched.sort_unstable();
            touched.dedup();
            touched.len()
        };
        let epoch = entry.epoch_target;

        // Step 3: the edit is fully applied — erase the journal entry.
        journal.pending = None;
        Ok(Some(EditReport {
            procedures_modified,
            pcs_injected,
            epoch,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::{ProcId, Procedure};

    fn image() -> Image<&'static str> {
        Image::new(vec![
            Procedure::new("alpha", vec![Pc(0x10), Pc(0x14)]),
            Procedure::new("beta", vec![Pc(0x20)]),
            Procedure::new("gamma", vec![Pc(0x30), Pc(0x34), Pc(0x38)]),
        ])
    }

    fn digest(img: &Image<&'static str>) -> u64 {
        img.digest_with(|s| s.len() as u64 ^ ((s.as_bytes()[0] as u64) << 8))
    }

    fn preinstall(img: &mut Image<&'static str>) {
        let mut edit = img.edit();
        edit.inject(Pc(0x10), "old-a").unwrap();
        edit.inject(Pc(0x20), "old-b").unwrap();
        edit.commit().unwrap();
    }

    /// Reference: the image a successful plain commit of the "second
    /// install" produces, starting from the preinstalled state.
    fn committed_reference() -> (Image<&'static str>, EditReport) {
        let mut img = image();
        preinstall(&mut img);
        let mut edit = img.edit();
        edit.inject(Pc(0x14), "new-1").unwrap();
        edit.inject(Pc(0x30), "new-2").unwrap();
        edit.inject(Pc(0x34), "new-3").unwrap();
        let report = edit.commit().unwrap();
        (img, report)
    }

    #[test]
    fn journaled_commit_matches_plain_commit() {
        let (reference, ref_report) = committed_reference();
        let mut img = image();
        preinstall(&mut img);
        let mut journal = EditJournal::new();
        let mut edit = img.edit();
        edit.inject(Pc(0x14), "new-1").unwrap();
        edit.inject(Pc(0x30), "new-2").unwrap();
        edit.inject(Pc(0x34), "new-3").unwrap();
        let report = edit
            .commit_journaled(&mut journal, None)
            .unwrap()
            .expect("untorn commit completes");
        assert_eq!(report, ref_report);
        assert!(!journal.has_pending());
        assert_eq!(digest(&img), digest(&reference));
    }

    /// The headline property: tearing the apply at *every* possible
    /// point, then replaying the journal, reconstructs exactly the image
    /// a crash-free commit produces — for replace mode.
    #[test]
    fn torn_replace_commit_replays_to_committed_image() {
        let (reference, _) = committed_reference();
        for tear in 0..=3usize {
            let mut img = image();
            preinstall(&mut img);
            let mut journal = EditJournal::new();
            let mut edit = img.edit();
            edit.inject(Pc(0x14), "new-1").unwrap();
            edit.inject(Pc(0x30), "new-2").unwrap();
            edit.inject(Pc(0x34), "new-3").unwrap();
            let out = edit.commit_journaled(&mut journal, Some(tear)).unwrap();
            assert!(out.is_none(), "tear {tear}: apply must report torn");
            assert!(journal.has_pending(), "tear {tear}: entry must persist");
            assert!(journal.recover(&mut img), "tear {tear}: replay runs");
            assert!(!journal.has_pending());
            assert_eq!(
                digest(&img),
                digest(&reference),
                "tear {tear}: replayed image differs from committed image"
            );
        }
    }

    /// Same property for patch mode (removals + layered injections).
    #[test]
    fn torn_partial_commit_replays_to_committed_image() {
        let reference = {
            let mut img = image();
            preinstall(&mut img);
            let mut patch = img.edit_partial();
            patch.remove(Pc(0x20)).unwrap();
            patch.inject(Pc(0x30), "layer").unwrap();
            patch.inject(Pc(0x34), "layer2").unwrap();
            patch.commit().unwrap();
            img
        };
        for tear in 0..=2usize {
            let mut img = image();
            preinstall(&mut img);
            let mut journal = EditJournal::new();
            let mut patch = img.edit_partial();
            patch.remove(Pc(0x20)).unwrap();
            patch.inject(Pc(0x30), "layer").unwrap();
            patch.inject(Pc(0x34), "layer2").unwrap();
            assert!(patch
                .commit_journaled(&mut journal, Some(tear))
                .unwrap()
                .is_none());
            assert!(journal.recover(&mut img));
            assert_eq!(
                digest(&img),
                digest(&reference),
                "tear {tear}: partial replay diverged"
            );
            // The surgical property survives recovery: alpha's copy kept
            // its original since_epoch, so old activations still see it.
            assert_eq!(img.injected_at(Pc(0x10), 1), Some(&"old-a"));
        }
    }

    /// A poisoned session journals nothing: the rollback happens exactly
    /// once, at commit time, and recovery finds nothing to replay (the
    /// satellite audit — crash-on-failed-edit must not roll back twice).
    #[test]
    fn poisoned_session_never_journals() {
        let mut img = image();
        preinstall(&mut img);
        let before = digest(&img);
        let mut journal = EditJournal::new();
        let mut edit = img.edit();
        edit.inject(Pc(0x14), "x").unwrap();
        edit.fail(EditError::Induced(Pc(0x14)));
        assert_eq!(
            edit.commit_journaled(&mut journal, Some(1)),
            Err(EditError::Induced(Pc(0x14)))
        );
        assert!(!journal.has_pending(), "poisoned commit must not journal");
        assert!(!journal.recover(&mut img), "nothing to replay");
        assert_eq!(digest(&img), before, "rollback must be the only effect");
    }

    /// Dying after the last patch but before the journal erase: the
    /// replay re-applies a complete edit and must be a no-op.
    #[test]
    fn replay_of_fully_applied_commit_is_a_no_op() {
        let (reference, _) = committed_reference();
        let mut img = image();
        preinstall(&mut img);
        let mut journal = EditJournal::new();
        let mut edit = img.edit();
        edit.inject(Pc(0x14), "new-1").unwrap();
        edit.inject(Pc(0x30), "new-2").unwrap();
        edit.inject(Pc(0x34), "new-3").unwrap();
        // Tear point past the last injection: everything applied, entry
        // still pending.
        assert!(edit
            .commit_journaled(&mut journal, Some(99))
            .unwrap()
            .is_none());
        assert_eq!(digest(&img), digest(&reference));
        assert!(journal.recover(&mut img));
        assert_eq!(digest(&img), digest(&reference), "replay must be no-op");
    }

    #[test]
    fn recover_on_empty_journal_is_a_no_op() {
        let mut img = image();
        preinstall(&mut img);
        let before = digest(&img);
        let mut journal: EditJournal<&'static str> = EditJournal::new();
        assert!(!journal.has_pending());
        assert!(journal.pending().is_none());
        assert!(!journal.recover(&mut img));
        assert_eq!(digest(&img), before);
    }

    #[test]
    fn torn_image_is_visibly_mid_edit_until_recovered() {
        let mut img = image();
        preinstall(&mut img);
        let mut journal = EditJournal::new();
        let mut edit = img.edit();
        edit.inject(Pc(0x14), "new-1").unwrap();
        edit.inject(Pc(0x30), "new-2").unwrap();
        assert!(edit
            .commit_journaled(&mut journal, Some(1))
            .unwrap()
            .is_none());
        // Counters bumped, old patches dropped, only the first injection
        // landed: the classic half-patched image the journal exists for.
        assert_eq!(img.epoch(), 2);
        assert_eq!(img.injected_at(Pc(0x14), 2), Some(&"new-1"));
        assert_eq!(img.injected_at(Pc(0x30), 2), None);
        assert_eq!(img.injected_at(Pc(0x20), 2), None, "old patch dropped");
        assert!(journal.recover(&mut img));
        assert_eq!(img.injected_at(Pc(0x30), 2), Some(&"new-2"));
    }

    #[test]
    fn export_restore_round_trips_through_state() {
        let (reference, _) = committed_reference();
        let state = reference.export_state();
        assert_eq!(state.epoch, 2);
        assert_eq!(state.total_edits, 2);
        assert!(state.copies.windows(2).all(|w| w[0].proc < w[1].proc));
        let mut fresh = image();
        fresh.restore_state(state.clone());
        assert_eq!(digest(&fresh), digest(&reference));
        assert_eq!(fresh.export_state(), state);
        assert_eq!(fresh.injected_at(Pc(0x14), 2), Some(&"new-1"));
        // Restore also *overwrites*: a dirty image lands on the state.
        let mut dirty = image();
        let mut e = dirty.edit();
        e.inject(Pc(0x38), "junk").unwrap();
        e.commit().unwrap();
        dirty.restore_state(state);
        assert_eq!(digest(&dirty), digest(&reference));
        assert!(!dirty.is_patched(ProcId(2)) || dirty.injected_at(Pc(0x38), 2).is_none());
    }
}
