//! A tiny RISC-like instruction set, assembler, and interpreter, so that
//! simulated binaries can be *actual programs* rather than event
//! generators.
//!
//! The optimizer only ever sees the [`Event`] stream, so any
//! [`ProgramSource`] works — the benchmark models in `hds-workloads`
//! generate events directly for speed. This module provides the other
//! end of the fidelity spectrum: write a pointer-chasing kernel in a
//! 16-register ISA, assemble it into an [`Image`](crate::Image)-compatible procedure
//! layout, put linked data structures into a word-addressed memory with
//! [`HeapImage`], and run it under the [`Interpreter`], which emits
//! exactly the events a binary-instrumented execution would:
//!
//! * [`Event::Enter`]/[`Event::Exit`] at calls and returns,
//! * [`Event::BackEdge`] at taken backward branches (the bursty-tracing
//!   check sites of Figure 2),
//! * [`Event::Access`] for every load and store, with the pc of the
//!   instruction — the `(pc, addr)` pairs the whole system runs on,
//! * [`Event::Work`] for everything else.
//!
//! See `examples/isa_microbench.rs` for a complete program optimized
//! end-to-end.

use std::collections::HashMap;

use hds_trace::{AccessKind, Addr, DataRef, Pc};

use crate::program::{Event, ProcId, Procedure, ProgramSource};

/// A register name (`r0`–`r15`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Reg(pub u8);

/// A branch target handle, produced by [`Asm::label`] (bound at the
/// current position, for backward branches) or [`Asm::forward`] +
/// [`Asm::bind`] (for forward branches).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Label(usize);

/// One instruction of the mini-ISA.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Inst {
    /// `rd = imm`
    MovImm {
        /// Destination register.
        d: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// `rd = ra + rb`
    Add {
        /// Destination register.
        d: Reg,
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Reg,
    },
    /// `rd = ra + imm`
    AddImm {
        /// Destination register.
        d: Reg,
        /// Operand register.
        a: Reg,
        /// Immediate addend.
        imm: i64,
    },
    /// `rd = ra * rb` (wrapping)
    Mul {
        /// Destination register.
        d: Reg,
        /// First operand.
        a: Reg,
        /// Second operand.
        b: Reg,
    },
    /// `rd = (ra as u64 >> sh) as i64` (logical shift right)
    Shr {
        /// Destination register.
        d: Reg,
        /// Operand register.
        a: Reg,
        /// Shift amount.
        sh: u32,
    },
    /// `rd = ra & imm`
    AndImm {
        /// Destination register.
        d: Reg,
        /// Operand register.
        a: Reg,
        /// Immediate mask.
        imm: i64,
    },
    /// `rd = mem[ra + off]` — a data reference.
    Load {
        /// Destination register.
        d: Reg,
        /// Base address register.
        a: Reg,
        /// Byte offset.
        off: i64,
    },
    /// `mem[ra + off] = rs` — a data reference.
    Store {
        /// Source register.
        s: Reg,
        /// Base address register.
        a: Reg,
        /// Byte offset.
        off: i64,
    },
    /// Branch to `target` if `rc != 0`.
    Bnz {
        /// Condition register.
        c: Reg,
        /// Target label.
        target: Label,
    },
    /// Branch to `target` if `rc == 0`.
    Bz {
        /// Condition register.
        c: Reg,
        /// Target label.
        target: Label,
    },
    /// Unconditional jump.
    Jmp {
        /// Target label.
        target: Label,
    },
    /// Call another procedure.
    Call {
        /// Callee.
        proc: ProcId,
    },
    /// Software-prefetch `mem[ra + off]` (a hint; never faults).
    Prefetch {
        /// Base address register.
        a: Reg,
        /// Byte offset.
        off: i64,
    },
    /// Return from the current procedure.
    Ret,
    /// `n` units of plain (non-memory) work.
    Work(
        /// Number of work units.
        u32,
    ),
}

/// Assembles one procedure: instructions plus forward-referencable
/// labels.
///
/// # Examples
///
/// ```
/// use hds_vulcan::isa::{Asm, Reg};
///
/// let mut asm = Asm::new("count_down");
/// let r0 = Reg(0);
/// asm.mov_imm(r0, 3);
/// let top = asm.label();
/// asm.add_imm(r0, r0, -1);
/// asm.bnz(r0, top); // a backward branch: a loop back-edge
/// asm.ret();
/// let proc = asm.finish();
/// assert_eq!(proc.insts().len(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct Asm {
    name: String,
    insts: Vec<Inst>,
    targets: Vec<Option<usize>>,
}

impl Asm {
    /// Starts assembling a procedure.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Asm {
            name: name.into(),
            insts: Vec::new(),
            targets: Vec::new(),
        }
    }

    /// Returns a label bound to the current position (the index of the
    /// next instruction) — use for backward branch targets.
    #[must_use]
    pub fn label(&mut self) -> Label {
        self.targets.push(Some(self.insts.len()));
        Label(self.targets.len() - 1)
    }

    /// Declares a label to be bound later with [`Asm::bind`] — use for
    /// forward branch targets.
    #[must_use]
    pub fn forward(&mut self) -> Label {
        self.targets.push(None);
        Label(self.targets.len() - 1)
    }

    /// Binds a forward label to the current position.
    ///
    /// # Panics
    ///
    /// Panics if the label is already bound.
    pub fn bind(&mut self, label: Label) {
        assert!(
            self.targets[label.0].is_none(),
            "label {} bound twice in {}",
            label.0,
            self.name
        );
        self.targets[label.0] = Some(self.insts.len());
    }

    /// `rd = imm`
    pub fn mov_imm(&mut self, d: Reg, imm: i64) -> &mut Self {
        self.insts.push(Inst::MovImm { d, imm });
        self
    }

    /// `rd = ra + rb`
    pub fn add(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Self {
        self.insts.push(Inst::Add { d, a, b });
        self
    }

    /// `rd = ra + imm`
    pub fn add_imm(&mut self, d: Reg, a: Reg, imm: i64) -> &mut Self {
        self.insts.push(Inst::AddImm { d, a, imm });
        self
    }

    /// `rd = ra * rb`
    pub fn mul(&mut self, d: Reg, a: Reg, b: Reg) -> &mut Self {
        self.insts.push(Inst::Mul { d, a, b });
        self
    }

    /// `rd = ra >>(logical) sh`
    pub fn shr(&mut self, d: Reg, a: Reg, sh: u32) -> &mut Self {
        self.insts.push(Inst::Shr { d, a, sh });
        self
    }

    /// `rd = ra & imm`
    pub fn and_imm(&mut self, d: Reg, a: Reg, imm: i64) -> &mut Self {
        self.insts.push(Inst::AndImm { d, a, imm });
        self
    }

    /// `rd = mem[ra + off]`
    pub fn load(&mut self, d: Reg, a: Reg, off: i64) -> &mut Self {
        self.insts.push(Inst::Load { d, a, off });
        self
    }

    /// `mem[ra + off] = rs`
    pub fn store(&mut self, s: Reg, a: Reg, off: i64) -> &mut Self {
        self.insts.push(Inst::Store { s, a, off });
        self
    }

    /// Branch if nonzero.
    pub fn bnz(&mut self, c: Reg, target: Label) -> &mut Self {
        self.insts.push(Inst::Bnz { c, target });
        self
    }

    /// Branch if zero.
    pub fn bz(&mut self, c: Reg, target: Label) -> &mut Self {
        self.insts.push(Inst::Bz { c, target });
        self
    }

    /// Unconditional jump.
    pub fn jmp(&mut self, target: Label) -> &mut Self {
        self.insts.push(Inst::Jmp { target });
        self
    }

    /// Call a procedure.
    pub fn call(&mut self, proc: ProcId) -> &mut Self {
        self.insts.push(Inst::Call { proc });
        self
    }

    /// Software-prefetch `mem[ra + off]`.
    pub fn prefetch(&mut self, a: Reg, off: i64) -> &mut Self {
        self.insts.push(Inst::Prefetch { a, off });
        self
    }

    /// Return.
    pub fn ret(&mut self) -> &mut Self {
        self.insts.push(Inst::Ret);
        self
    }

    /// Plain work.
    pub fn work(&mut self, n: u32) -> &mut Self {
        self.insts.push(Inst::Work(n));
        self
    }

    /// Finishes the procedure, resolving every label.
    ///
    /// # Panics
    ///
    /// Panics if a forward label was never bound, or if a branch targets
    /// past the end of the procedure.
    #[must_use]
    pub fn finish(self) -> ProcBody {
        let targets: Vec<usize> = self
            .targets
            .iter()
            .enumerate()
            .map(|(i, t)| t.unwrap_or_else(|| panic!("label {i} never bound in {}", self.name)))
            .collect();
        for inst in &self.insts {
            if let Inst::Bnz { target, .. } | Inst::Bz { target, .. } | Inst::Jmp { target } = inst
            {
                assert!(
                    targets[target.0] <= self.insts.len(),
                    "branch target {} out of range in {}",
                    targets[target.0],
                    self.name
                );
            }
        }
        ProcBody {
            name: self.name,
            insts: self.insts,
            targets,
        }
    }
}

/// An assembled procedure body.
#[derive(Clone, Debug)]
pub struct ProcBody {
    name: String,
    insts: Vec<Inst>,
    /// Resolved label targets (instruction indices).
    targets: Vec<usize>,
}

impl ProcBody {
    /// Resolves a label to its instruction index.
    #[must_use]
    pub fn resolve(&self, label: Label) -> usize {
        self.targets[label.0]
    }
}

impl ProcBody {
    /// The procedure's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The instructions.
    #[must_use]
    pub fn insts(&self) -> &[Inst] {
        &self.insts
    }
}

/// The pc of instruction `index` in procedure `proc`, matching the image
/// layout conventions used throughout the workspace.
#[must_use]
pub fn pc_of(proc: ProcId, index: usize) -> Pc {
    Pc(proc.0 * 100_000 + 16 + (index as u32) * 4)
}

/// A word-addressed (8-byte) memory image for building linked data
/// structures.
///
/// # Examples
///
/// ```
/// use hds_vulcan::isa::HeapImage;
///
/// let mut heap = HeapImage::new();
/// // A two-node list: node at 0x100 points to 0x240, which ends the list.
/// heap.write(0x100, 0x240);
/// heap.write(0x240, 0);
/// assert_eq!(heap.read(0x100), 0x240);
/// assert_eq!(heap.read(0x999), 0); // uninitialised memory reads zero
/// ```
#[derive(Clone, Debug, Default)]
pub struct HeapImage {
    words: HashMap<u64, i64>,
}

impl HeapImage {
    /// An empty (all-zero) memory.
    #[must_use]
    pub fn new() -> Self {
        HeapImage::default()
    }

    /// Reads the word at `addr` (0 if never written).
    #[must_use]
    pub fn read(&self, addr: u64) -> i64 {
        self.words.get(&addr).copied().unwrap_or(0)
    }

    /// Writes the word at `addr`.
    pub fn write(&mut self, addr: u64, value: i64) {
        self.words.insert(addr, value);
    }

    /// Builds a singly linked list whose nodes live at the given
    /// addresses (each node's first word is the `next` pointer; 0
    /// terminates). Returns the head address.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` is empty.
    pub fn link_list(&mut self, nodes: &[u64]) -> u64 {
        assert!(!nodes.is_empty(), "a list needs at least one node");
        for pair in nodes.windows(2) {
            self.write(pair[0], pair[1] as i64);
        }
        self.write(*nodes.last().expect("nonempty"), 0);
        nodes[0]
    }
}

/// Interpreter errors (turned into panics would hide program bugs; the
/// interpreter surfaces them).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ExecError {
    /// `Call`/`Ret` imbalance or a call to an unknown procedure.
    BadCall(ProcId),
    /// Execution ran past the end of a procedure without `Ret`.
    FellOffEnd(ProcId),
    /// A computed address was negative.
    NegativeAddress(i64),
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::BadCall(p) => write!(f, "call to unknown procedure {p}"),
            ExecError::FellOffEnd(p) => write!(f, "fell off the end of {p}"),
            ExecError::NegativeAddress(a) => write!(f, "negative address {a}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// The interpreter: executes an assembled program, emitting the event
/// stream of an instrumented binary. Implements [`ProgramSource`].
///
/// Execution starts at procedure 0 and repeats (re-entering procedure 0)
/// until `fuel` references have been emitted; malformed programs surface
/// an [`ExecError`] through [`Interpreter::error`] and end the stream.
#[derive(Clone, Debug)]
pub struct Interpreter {
    procs: Vec<ProcBody>,
    heap: HeapImage,
    regs: [i64; 16],
    /// Call stack of (procedure, return instruction index).
    stack: Vec<(ProcId, usize)>,
    proc: ProcId,
    ip: usize,
    refs_emitted: u64,
    fuel: u64,
    steps: u64,
    max_steps: u64,
    pending: std::collections::VecDeque<Event>,
    error: Option<ExecError>,
    name: String,
    finished: bool,
}

impl Interpreter {
    /// Creates an interpreter over `procs` (entry point: procedure 0)
    /// and an initial heap, running until `fuel` data references have
    /// been emitted.
    ///
    /// # Panics
    ///
    /// Panics if `procs` is empty.
    #[must_use]
    pub fn new(name: impl Into<String>, procs: Vec<ProcBody>, heap: HeapImage, fuel: u64) -> Self {
        assert!(!procs.is_empty(), "a program needs an entry procedure");
        Interpreter {
            procs,
            heap,
            regs: [0; 16],
            stack: Vec::new(),
            proc: ProcId(0),
            ip: 0,
            refs_emitted: 0,
            fuel,
            steps: 0,
            // Generous step budget so reference-free programs (or
            // infinite compute loops) still terminate deterministically.
            max_steps: fuel.saturating_mul(64).saturating_add(1_000_000),
            pending: std::collections::VecDeque::new(),
            error: None,
            name: name.into(),
            finished: false,
        }
    }

    /// The static procedure list for [`crate::Image`] construction:
    /// every load/store pc, per procedure.
    #[must_use]
    pub fn procedures(&self) -> Vec<Procedure> {
        self.procs
            .iter()
            .enumerate()
            .map(|(i, body)| {
                let pcs: Vec<Pc> = body
                    .insts
                    .iter()
                    .enumerate()
                    .filter(|(_, inst)| matches!(inst, Inst::Load { .. } | Inst::Store { .. }))
                    .map(|(j, _)| pc_of(ProcId(i as u32), j))
                    .collect();
                Procedure::new(body.name.clone(), pcs)
            })
            .collect()
    }

    /// The error that ended execution, if any.
    #[must_use]
    pub fn error(&self) -> Option<&ExecError> {
        self.error.as_ref()
    }

    /// Current register file (diagnostics/tests).
    #[must_use]
    pub fn regs(&self) -> &[i64; 16] {
        &self.regs
    }

    /// Reads a heap word (diagnostics/tests).
    #[must_use]
    pub fn heap_read(&self, addr: u64) -> i64 {
        self.heap.read(addr)
    }

    /// Executes one instruction, queueing its events. Returns false when
    /// the program is over.
    fn step(&mut self) -> bool {
        self.steps += 1;
        if self.refs_emitted >= self.fuel && self.steps > 1 || self.steps > self.max_steps {
            // Unwind politely: close all open activations.
            while let Some((proc, _)) = self.stack.pop() {
                let _ = proc;
            }
            return false;
        }
        let body = &self.procs[self.proc.index()];
        let Some(&inst) = body.insts.get(self.ip) else {
            self.error = Some(ExecError::FellOffEnd(self.proc));
            return false;
        };
        let at = self.ip;
        self.ip += 1;
        match inst {
            Inst::MovImm { d, imm } => {
                self.regs[d.0 as usize] = imm;
                self.pending.push_back(Event::Work(1));
            }
            Inst::Add { d, a, b } => {
                self.regs[d.0 as usize] =
                    self.regs[a.0 as usize].wrapping_add(self.regs[b.0 as usize]);
                self.pending.push_back(Event::Work(1));
            }
            Inst::AddImm { d, a, imm } => {
                self.regs[d.0 as usize] = self.regs[a.0 as usize].wrapping_add(imm);
                self.pending.push_back(Event::Work(1));
            }
            Inst::Mul { d, a, b } => {
                self.regs[d.0 as usize] =
                    self.regs[a.0 as usize].wrapping_mul(self.regs[b.0 as usize]);
                self.pending.push_back(Event::Work(1));
            }
            Inst::Shr { d, a, sh } => {
                #[allow(clippy::cast_sign_loss, clippy::cast_possible_wrap)]
                {
                    self.regs[d.0 as usize] =
                        ((self.regs[a.0 as usize] as u64) >> (sh % 64)) as i64;
                }
                self.pending.push_back(Event::Work(1));
            }
            Inst::AndImm { d, a, imm } => {
                self.regs[d.0 as usize] = self.regs[a.0 as usize] & imm;
                self.pending.push_back(Event::Work(1));
            }
            Inst::Load { d, a, off } => {
                let addr = self.regs[a.0 as usize].wrapping_add(off);
                if addr < 0 {
                    self.error = Some(ExecError::NegativeAddress(addr));
                    return false;
                }
                #[allow(clippy::cast_sign_loss)]
                let addr = addr as u64;
                self.regs[d.0 as usize] = self.heap.read(addr);
                self.refs_emitted += 1;
                self.pending.push_back(Event::Access(
                    DataRef::new(pc_of(self.proc, at), Addr(addr)),
                    AccessKind::Load,
                ));
            }
            Inst::Store { s, a, off } => {
                let addr = self.regs[a.0 as usize].wrapping_add(off);
                if addr < 0 {
                    self.error = Some(ExecError::NegativeAddress(addr));
                    return false;
                }
                #[allow(clippy::cast_sign_loss)]
                let addr = addr as u64;
                self.heap.write(addr, self.regs[s.0 as usize]);
                self.refs_emitted += 1;
                self.pending.push_back(Event::Access(
                    DataRef::new(pc_of(self.proc, at), Addr(addr)),
                    AccessKind::Store,
                ));
            }
            Inst::Bnz { c, target } => {
                self.pending.push_back(Event::Work(1));
                if self.regs[c.0 as usize] != 0 {
                    let t = self.procs[self.proc.index()].resolve(target);
                    if t <= at {
                        // A taken backward branch is a loop back-edge —
                        // a bursty-tracing check site (Figure 2).
                        self.pending.push_back(Event::BackEdge(self.proc));
                    }
                    self.ip = t;
                }
            }
            Inst::Bz { c, target } => {
                self.pending.push_back(Event::Work(1));
                if self.regs[c.0 as usize] == 0 {
                    let t = self.procs[self.proc.index()].resolve(target);
                    if t <= at {
                        self.pending.push_back(Event::BackEdge(self.proc));
                    }
                    self.ip = t;
                }
            }
            Inst::Jmp { target } => {
                self.pending.push_back(Event::Work(1));
                let t = self.procs[self.proc.index()].resolve(target);
                if t <= at {
                    self.pending.push_back(Event::BackEdge(self.proc));
                }
                self.ip = t;
            }
            Inst::Call { proc } => {
                if proc.index() >= self.procs.len() {
                    self.error = Some(ExecError::BadCall(proc));
                    return false;
                }
                self.stack.push((self.proc, self.ip));
                self.proc = proc;
                self.ip = 0;
                self.pending.push_back(Event::Enter(proc));
            }
            Inst::Prefetch { a, off } => {
                let addr = self.regs[a.0 as usize].wrapping_add(off);
                // Prefetches never fault: a bad address is simply dropped.
                if addr >= 0 {
                    #[allow(clippy::cast_sign_loss)]
                    self.pending.push_back(Event::Prefetch(Addr(addr as u64)));
                } else {
                    self.pending.push_back(Event::Work(1));
                }
            }
            Inst::Ret => {
                self.pending.push_back(Event::Exit(self.proc));
                match self.stack.pop() {
                    Some((proc, ip)) => {
                        self.proc = proc;
                        self.ip = ip;
                    }
                    None => {
                        // Returning from the entry procedure: restart it
                        // (the program loops until out of fuel).
                        self.proc = ProcId(0);
                        self.ip = 0;
                        self.pending.push_back(Event::Enter(ProcId(0)));
                    }
                }
            }
            Inst::Work(n) => self.pending.push_back(Event::Work(n)),
        }
        true
    }
}

impl ProgramSource for Interpreter {
    fn next_event(&mut self) -> Option<Event> {
        loop {
            if let Some(e) = self.pending.pop_front() {
                return Some(e);
            }
            if self.finished {
                return None;
            }
            if self.refs_emitted == 0 && self.stack.is_empty() && self.ip == 0 {
                // First event of the run: entering the entry procedure.
                self.pending.push_back(Event::Enter(ProcId(0)));
            }
            if !self.step() {
                self.finished = true;
                // Close the entry activation if it is still open.
                self.pending.push_back(Event::Exit(self.proc));
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(i: u8) -> Reg {
        Reg(i)
    }

    /// A procedure that walks a linked list from r0 until the next
    /// pointer is zero, loading each node.
    fn list_walker() -> ProcBody {
        let mut asm = Asm::new("walk");
        let top = asm.label();
        asm.load(r(1), r(0), 0); // r1 = node.next
        asm.work(2);
        asm.add_imm(r(0), r(1), 0); // r0 = r1
        asm.bnz(r(0), top);
        asm.ret();
        asm.finish()
    }

    #[test]
    fn assembler_builds_and_validates() {
        let body = list_walker();
        assert_eq!(body.name(), "walk");
        assert_eq!(body.insts().len(), 5);
    }

    #[test]
    #[should_panic(expected = "never bound")]
    fn assembler_rejects_unbound_forward_labels() {
        let mut asm = Asm::new("bad");
        let exit = asm.forward();
        asm.jmp(exit);
        let _ = asm.finish();
    }

    #[test]
    fn forward_branches_skip_ahead_without_back_edges() {
        let mut asm = Asm::new("main");
        asm.mov_imm(r(0), 1);
        let exit = asm.forward();
        asm.bnz(r(0), exit); // taken forward branch: no back-edge
        asm.load(r(1), r(0), 0); // skipped
        asm.bind(exit);
        asm.load(r(2), r(0), 0x40); // executed, burns the fuel
        asm.ret();
        let mut interp = Interpreter::new("t", vec![asm.finish()], HeapImage::new(), 1);
        let events = run(&mut interp);
        assert!(
            !events.iter().any(|e| matches!(e, Event::BackEdge(_))),
            "forward branch produced a back-edge"
        );
        let loads: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::Access(r, _) => Some(r.addr.0),
                _ => None,
            })
            .collect();
        assert_eq!(loads, vec![0x41]); // only the post-label load ran
    }

    #[test]
    fn heap_image_links_lists() {
        let mut heap = HeapImage::new();
        let head = heap.link_list(&[0x100, 0x300, 0x200]);
        assert_eq!(head, 0x100);
        assert_eq!(heap.read(0x100), 0x300);
        assert_eq!(heap.read(0x300), 0x200);
        assert_eq!(heap.read(0x200), 0);
    }

    fn driver_plus_walker(head: u64) -> Vec<ProcBody> {
        // proc0: set r0 = head, call walk, ret (then restarts).
        let mut main = Asm::new("main");
        main.mov_imm(r(0), head as i64);
        main.call(ProcId(1));
        main.ret();
        vec![main.finish(), list_walker()]
    }

    fn run(interp: &mut Interpreter) -> Vec<Event> {
        let mut events = Vec::new();
        while let Some(e) = interp.next_event() {
            events.push(e);
        }
        events
    }

    #[test]
    fn interpreter_walks_a_list() {
        let mut heap = HeapImage::new();
        let head = heap.link_list(&[0x100, 0x340, 0x280, 0x1c0]);
        let mut interp = Interpreter::new("t", driver_plus_walker(head), heap, 9);
        let events = run(&mut interp);
        assert!(interp.error().is_none(), "{:?}", interp.error());
        // The loads hit the list nodes in order, repeatedly.
        let addrs: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::Access(r, AccessKind::Load) => Some(r.addr.0),
                _ => None,
            })
            .collect();
        assert_eq!(&addrs[..4], &[0x100, 0x340, 0x280, 0x1c0]);
        // The program restarted and walked again.
        assert_eq!(&addrs[4..8], &[0x100, 0x340, 0x280, 0x1c0]);
    }

    #[test]
    fn events_are_well_formed() {
        let mut heap = HeapImage::new();
        let head = heap.link_list(&[0x100, 0x340, 0x280]);
        let mut interp = Interpreter::new("t", driver_plus_walker(head), heap, 50);
        let events = run(&mut interp);
        let mut depth = 0i64;
        let mut back_edges = 0;
        for e in &events {
            match e {
                Event::Enter(_) => depth += 1,
                Event::Exit(_) => depth -= 1,
                Event::BackEdge(_) => back_edges += 1,
                Event::Access(..) | Event::Work(_) | Event::Prefetch(_) => {
                    assert!(depth > 0, "{e:?} outside proc");
                }
                Event::Thread(_) => unreachable!("single-threaded interpreter"),
            }
            assert!(depth >= 0, "negative depth");
        }
        assert!(back_edges > 0, "loop produced no back-edges");
    }

    #[test]
    fn loads_carry_the_loading_instructions_pc() {
        let mut heap = HeapImage::new();
        let head = heap.link_list(&[0x100, 0x340]);
        let mut interp = Interpreter::new("t", driver_plus_walker(head), heap, 4);
        let procedures = interp.procedures();
        // walk (proc 1) has exactly one load at instruction 0.
        assert_eq!(procedures[1].pcs(), &[pc_of(ProcId(1), 0)]);
        let events = run(&mut interp);
        for e in events {
            if let Event::Access(r, _) = e {
                assert_eq!(r.pc, pc_of(ProcId(1), 0));
            }
        }
    }

    #[test]
    fn alu_ops_compute() {
        let mut asm = Asm::new("main");
        asm.mov_imm(r(0), 6);
        asm.mov_imm(r(1), 7);
        asm.mul(r(2), r(0), r(1)); // 42
        asm.shr(r(3), r(2), 1); // 21
        asm.and_imm(r(4), r(3), 0xF); // 5
        asm.load(r(5), r(0), 0x100); // burn the fuel
        asm.ret();
        // One trailing load burns the single unit of fuel so the
        // program stops after exactly one iteration.
        let mut interp = Interpreter::new("t", vec![asm.finish()], HeapImage::new(), 1);
        let _ = run(&mut interp);
        assert_eq!(interp.regs()[2], 42);
        assert_eq!(interp.regs()[3], 21);
        assert_eq!(interp.regs()[4], 5);
    }

    #[test]
    fn stores_mutate_the_heap() {
        let mut asm = Asm::new("main");
        asm.mov_imm(r(0), 0x500);
        asm.mov_imm(r(1), 42);
        asm.store(r(1), r(0), 8);
        asm.load(r(2), r(0), 8);
        asm.ret();
        let mut interp = Interpreter::new("t", vec![asm.finish()], HeapImage::new(), 2);
        let _ = run(&mut interp);
        assert_eq!(interp.heap_read(0x508), 42);
        assert_eq!(interp.regs()[2], 42);
    }

    #[test]
    fn bad_call_is_surfaced() {
        let mut asm = Asm::new("main");
        asm.call(ProcId(7));
        asm.ret();
        let mut interp = Interpreter::new("t", vec![asm.finish()], HeapImage::new(), 10);
        let _ = run(&mut interp);
        assert_eq!(interp.error(), Some(&ExecError::BadCall(ProcId(7))));
    }

    #[test]
    fn negative_address_is_surfaced() {
        let mut asm = Asm::new("main");
        asm.mov_imm(r(0), -64);
        asm.load(r(1), r(0), 0);
        asm.ret();
        let mut interp = Interpreter::new("t", vec![asm.finish()], HeapImage::new(), 10);
        let _ = run(&mut interp);
        assert_eq!(interp.error(), Some(&ExecError::NegativeAddress(-64)));
    }

    #[test]
    fn fell_off_end_is_surfaced() {
        let asm = Asm::new("main"); // empty body, no Ret
        let mut interp = Interpreter::new("t", vec![asm.finish()], HeapImage::new(), 10);
        let _ = run(&mut interp);
        assert_eq!(interp.error(), Some(&ExecError::FellOffEnd(ProcId(0))));
    }

    #[test]
    fn prefetch_instruction_emits_hint_events() {
        let mut asm = Asm::new("main");
        asm.mov_imm(r(0), 0x400);
        asm.prefetch(r(0), 64); // valid hint
        asm.mov_imm(r(1), -8);
        asm.prefetch(r(1), 0); // negative address: dropped as work
        asm.load(r(2), r(0), 0); // burn fuel
        asm.ret();
        let mut interp = Interpreter::new("t", vec![asm.finish()], HeapImage::new(), 1);
        let events = run(&mut interp);
        let hints: Vec<u64> = events
            .iter()
            .filter_map(|e| match e {
                Event::Prefetch(a) => Some(a.0),
                _ => None,
            })
            .collect();
        assert_eq!(hints, vec![0x440]);
        assert!(interp.error().is_none());
    }

    #[test]
    fn deterministic() {
        let mk = || {
            let mut heap = HeapImage::new();
            let head = heap.link_list(&[0x100, 0x340, 0x280]);
            Interpreter::new("t", driver_plus_walker(head), heap, 100)
        };
        assert_eq!(run(&mut mk()), run(&mut mk()));
    }

    #[test]
    fn fuel_bounds_the_run() {
        let mut heap = HeapImage::new();
        let head = heap.link_list(&[0x100, 0x340, 0x280]);
        let mut interp = Interpreter::new("t", driver_plus_walker(head), heap, 17);
        let events = run(&mut interp);
        let refs = events
            .iter()
            .filter(|e| matches!(e, Event::Access(..)))
            .count();
        assert_eq!(refs, 17);
    }
}
