//! Simulated binary image and dynamic binary editing — the reproduction's
//! stand-in for Vulcan \[32\].
//!
//! The paper's optimizer "uses dynamic Vulcan …, a binary editing tool
//! for the x86", to (§3.2):
//!
//! 1. stop all running program threads,
//! 2. for every procedure containing a pc to instrument: make a copy of
//!    the procedure, inject the code into the copy, and overwrite the
//!    first instruction of the original with a jump to the copy,
//! 3. restart the threads; de-optimization later "need only remove those
//!    jumps".
//!
//! Crucially, "return addresses on the stack still refer to the original
//! procedures. Hence, we will return to original procedures … at most as
//! many times as there were activation records on the stack at
//! optimization time" — stale activations run unpatched code until they
//! return.
//!
//! This crate models exactly those mechanics over an abstract program:
//!
//! * [`Procedure`], [`Image`] — the editable program image; the payload
//!   injected at each pc is a type parameter (the optimizer injects DFSM
//!   check chains, tests inject strings);
//! * [`Image::edit`] — a stop-the-world [`EditSession`] (copy + inject +
//!   patch) that commits atomically or rolls back entirely,
//!   [`Image::edit_partial`] — surgical patch-mode edits (the partial
//!   de-optimization primitive), [`Image::deoptimize`] — jump removal;
//! * [`Event`], [`ProgramSource`] — the execution event stream interface
//!   that workloads implement and the optimizer's executor consumes;
//! * [`FrameTracker`] — call-stack tracking that resolves, per activation,
//!   whether the patched copy or the stale original is executing;
//! * [`EditJournal`] — a write-ahead journal making edits
//!   crash-consistent: a commit that dies mid-patch is deterministically
//!   rolled forward on recovery, never left half-applied
//!   ([`EditSession::commit_journaled`]);
//! * [`ImageState`] / [`Image::export_state`] — canonical-order export
//!   and restore of the image's mutable state, the checkpointing
//!   primitive behind crash-consistent snapshots.
//!
//! # Examples
//!
//! ```
//! use hds_trace::Pc;
//! use hds_vulcan::{Image, Procedure};
//!
//! let mut image: Image<&'static str> = Image::new(vec![
//!     Procedure::new("walk_list", vec![Pc(0x10), Pc(0x14)]),
//! ]);
//! let mut edit = image.edit();
//! edit.inject(Pc(0x10), "check-chain").unwrap();
//! let report = edit.commit().unwrap();
//! assert_eq!(report.procedures_modified, 1);
//! // A fresh activation sees the injected payload…
//! assert_eq!(image.injected_at(Pc(0x10), image.epoch()), Some(&"check-chain"));
//! // …a stale activation (entered at epoch 0) does not.
//! assert_eq!(image.injected_at(Pc(0x10), 0), None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod image;
mod interleave;
pub mod isa;
mod journal;
mod program;

pub use image::{CopyState, EditError, EditReport, EditSession, Image, ImageState};
pub use interleave::Interleaver;
pub use journal::{EditJournal, JournalEntry};
pub use program::{Event, FrameTracker, ProcId, Procedure, ProgramSource, VecSource};
