//! Deterministic multi-thread interleaving.
//!
//! The paper's system handles multi-threaded programs — "Dynamic Vulcan
//! stops all running program threads while binary modifications are in
//! progress and restarts them on completion" (§3.2) — though its
//! evaluation is single-threaded. This module provides the substrate to
//! study what threading does to the scheme: an [`Interleaver`] merges
//! several [`ProgramSource`]s into one event stream, switching between
//! them every `quantum` events and announcing each switch with
//! [`Event::Thread`].
//!
//! Downstream consequences the executor models faithfully:
//!
//! * call stacks are per-thread (each thread gets its own frame
//!   tracker);
//! * the injected DFSM matching *state* is a global variable, exactly as
//!   the paper's Figure 7 code uses a global `v.seen` — so threads
//!   interleaving through the same hot code can clobber each other's
//!   partial matches;
//! * the profiling counters and the trace buffer are global, so sampled
//!   bursts interleave references from all running threads (cross-thread
//!   trace contamination). The `threading_ablation` experiment measures
//!   both effects as a function of the scheduling quantum.

use crate::program::{Event, ProgramSource};

/// Merges several program sources into one deterministic round-robin
/// interleaving.
///
/// # Examples
///
/// ```
/// use hds_vulcan::{Event, Interleaver, ProcId, ProgramSource, VecSource};
///
/// let a = VecSource::new("a", vec![Event::Work(1), Event::Work(2)]);
/// let b = VecSource::new("b", vec![Event::Work(3)]);
/// let mut m = Interleaver::new(vec![Box::new(a), Box::new(b)], 1);
/// let mut order = Vec::new();
/// while let Some(e) = m.next_event() {
///     order.push(e);
/// }
/// assert_eq!(
///     order,
///     vec![
///         Event::Thread(0),
///         Event::Work(1),
///         Event::Thread(1),
///         Event::Work(3),
///         Event::Thread(0),
///         Event::Work(2),
///     ]
/// );
/// ```
pub struct Interleaver {
    threads: Vec<Option<Box<dyn ProgramSource>>>,
    quantum: u64,
    current: usize,
    /// Events remaining in the current quantum.
    remaining: u64,
    /// Has the current slot been announced with a `Thread` event?
    announced: bool,
    /// Lookahead: the event to deliver right after an announcement.
    pending: Option<Event>,
    name: String,
}

impl Interleaver {
    /// Creates an interleaver over `threads`, switching every `quantum`
    /// events.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is empty or `quantum` is zero.
    #[must_use]
    pub fn new(threads: Vec<Box<dyn ProgramSource>>, quantum: u64) -> Self {
        assert!(!threads.is_empty(), "need at least one thread");
        assert!(quantum > 0, "quantum must be nonzero");
        Interleaver {
            threads: threads.into_iter().map(Some).collect(),
            quantum,
            current: 0,
            remaining: quantum,
            announced: false,
            pending: None,
            name: "interleaved".to_string(),
        }
    }

    /// Number of threads still running.
    #[must_use]
    pub fn live_threads(&self) -> usize {
        self.threads.iter().filter(|t| t.is_some()).count()
    }

    /// Advances to the next live thread, if any. Returns false when all
    /// threads are exhausted.
    fn rotate(&mut self) -> bool {
        let n = self.threads.len();
        for step in 1..=n {
            let idx = (self.current + step) % n;
            if self.threads[idx].is_some() {
                self.current = idx;
                self.remaining = self.quantum;
                self.announced = false;
                return true;
            }
        }
        false
    }
}

impl std::fmt::Debug for Interleaver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Interleaver")
            .field("threads", &self.threads.len())
            .field("live", &self.live_threads())
            .field("quantum", &self.quantum)
            .field("current", &self.current)
            .finish()
    }
}

impl ProgramSource for Interleaver {
    fn next_event(&mut self) -> Option<Event> {
        // Deliver the lookahead event that followed an announcement.
        if let Some(e) = self.pending.take() {
            self.remaining = self.remaining.saturating_sub(1);
            return Some(e);
        }
        loop {
            // Rotate when the current slot is dead or its quantum is up.
            if self.threads.get(self.current).is_none_or(Option::is_none) || self.remaining == 0 {
                if !self.rotate() {
                    return None;
                }
                continue;
            }
            let slot = &mut self.threads[self.current];
            match slot.as_mut().and_then(|t| t.next_event()) {
                Some(e) => {
                    if self.announced {
                        self.remaining -= 1;
                        return Some(e);
                    }
                    // Announce the slot only now that it demonstrably has
                    // an event to run (no trailing announcements for
                    // exhausted threads).
                    self.announced = true;
                    self.pending = Some(e);
                    return Some(Event::Thread(self.current as u32));
                }
                None => {
                    // Thread finished: retire it; the loop rotates.
                    *slot = None;
                }
            }
        }
    }

    fn name(&self) -> &str {
        &self.name
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::VecSource;

    fn work(ns: &[u32]) -> Box<dyn ProgramSource> {
        Box::new(VecSource::new(
            "t",
            ns.iter().map(|&n| Event::Work(n)).collect(),
        ))
    }

    fn drain(m: &mut Interleaver) -> Vec<Event> {
        let mut v = Vec::new();
        while let Some(e) = m.next_event() {
            v.push(e);
        }
        v
    }

    #[test]
    fn round_robin_with_quantum() {
        let mut m = Interleaver::new(vec![work(&[1, 2, 3, 4]), work(&[10, 20])], 2);
        let events = drain(&mut m);
        assert_eq!(
            events,
            vec![
                Event::Thread(0),
                Event::Work(1),
                Event::Work(2),
                Event::Thread(1),
                Event::Work(10),
                Event::Work(20),
                Event::Thread(0),
                Event::Work(3),
                Event::Work(4),
            ]
        );
    }

    #[test]
    fn finished_threads_are_skipped() {
        let mut m = Interleaver::new(vec![work(&[1]), work(&[10, 20, 30])], 2);
        let events = drain(&mut m);
        // Thread 0 dies inside its first quantum; thread 1 runs out the
        // rest alone.
        let works: Vec<u32> = events
            .iter()
            .filter_map(|e| match e {
                Event::Work(n) => Some(*n),
                _ => None,
            })
            .collect();
        assert_eq!(works, vec![1, 10, 20, 30]);
        assert_eq!(m.live_threads(), 0);
    }

    #[test]
    fn single_thread_passthrough() {
        let mut m = Interleaver::new(vec![work(&[1, 2, 3])], 100);
        let events = drain(&mut m);
        assert_eq!(events[0], Event::Thread(0));
        assert_eq!(events.len(), 4);
    }

    #[test]
    fn deterministic() {
        let mk = || {
            Interleaver::new(
                vec![work(&[1, 2, 3, 4, 5]), work(&[6, 7]), work(&[8, 9, 10])],
                3,
            )
        };
        assert_eq!(drain(&mut mk()), drain(&mut mk()));
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn rejects_empty() {
        let _ = Interleaver::new(vec![], 1);
    }

    #[test]
    #[should_panic(expected = "quantum")]
    fn rejects_zero_quantum() {
        let _ = Interleaver::new(vec![work(&[1])], 0);
    }
}
