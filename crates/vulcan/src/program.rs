//! The abstract program model: procedures, execution events, and
//! activation tracking.

use std::fmt;

use hds_trace::{AccessKind, Addr, DataRef, Pc};

/// Identifier of a procedure within an [`Image`](crate::Image).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ProcId(pub u32);

impl ProcId {
    /// Returns the id as a `usize` index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for ProcId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "proc{}", self.0)
    }
}

/// A procedure of the simulated binary: a name and the set of load/store
/// pcs it contains. (The actual instruction *sequence* is produced
/// dynamically by the workload as an [`Event`] stream; the static image
/// only needs to know which pcs belong to which procedure so editing can
/// copy and patch at procedure granularity.)
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Procedure {
    name: String,
    pcs: Vec<Pc>,
}

impl Procedure {
    /// Creates a procedure from its name and the access pcs it contains.
    #[must_use]
    pub fn new(name: impl Into<String>, pcs: Vec<Pc>) -> Self {
        Procedure {
            name: name.into(),
            pcs,
        }
    }

    /// The procedure's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The access pcs the procedure contains.
    #[must_use]
    pub fn pcs(&self) -> &[Pc] {
        &self.pcs
    }
}

/// One step of a simulated program's execution, produced by a
/// [`ProgramSource`] and consumed by the optimizer's executor.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Event {
    /// A procedure is entered — a bursty-tracing check site, and the
    /// point where the entry jump of a patched procedure takes effect.
    Enter(ProcId),
    /// A loop back-edge inside the given procedure — the other
    /// bursty-tracing check site (Figure 2).
    BackEdge(ProcId),
    /// `n` plain (non-memory) instructions execute.
    Work(u32),
    /// A load or store executes.
    Access(DataRef, AccessKind),
    /// The current activation of the given procedure returns.
    Exit(ProcId),
    /// A *software* prefetch instruction that is part of the program
    /// itself (e.g. compiler-inserted jump-pointer prefetching \[22\]),
    /// as opposed to the prefetches the optimizer injects.
    Prefetch(Addr),
    /// Subsequent events execute on the given thread (emitted by the
    /// [`Interleaver`](crate::Interleaver); single-threaded sources never
    /// produce it). Call stacks are per-thread; the injected matching
    /// state and the profiling machinery are global, as in the paper.
    Thread(u32),
}

/// A source of execution events — implemented by every workload.
///
/// Sources must be deterministic for a given construction seed: the
/// paper's framework "is deterministic … executions of deterministic
/// benchmarks are repeatable, which helps testing" (§2.2).
pub trait ProgramSource {
    /// Produces the next event, or `None` when the program finishes.
    fn next_event(&mut self) -> Option<Event>;

    /// A short name for reports.
    fn name(&self) -> &str;
}

/// Replays a pre-recorded event vector (testing and microbenchmarks).
#[derive(Clone, Debug)]
pub struct VecSource {
    name: String,
    events: std::vec::IntoIter<Event>,
}

impl VecSource {
    /// Creates a source replaying `events` in order.
    #[must_use]
    pub fn new(name: impl Into<String>, events: Vec<Event>) -> Self {
        VecSource {
            name: name.into(),
            events: events.into_iter(),
        }
    }
}

impl ProgramSource for VecSource {
    fn next_event(&mut self) -> Option<Event> {
        self.events.next()
    }

    fn name(&self) -> &str {
        &self.name
    }
}

/// Tracks live activations and the image epoch each one was entered at,
/// implementing the paper's stale-activation semantics: a frame entered
/// before a patch keeps executing the original code; only activations
/// entered *after* the patch run the instrumented copy.
///
/// # Examples
///
/// ```
/// use hds_vulcan::{FrameTracker, ProcId};
///
/// let mut frames = FrameTracker::new();
/// frames.enter(ProcId(0), 0);      // entered at epoch 0
/// assert_eq!(frames.current_epoch(), Some(0));
/// frames.enter(ProcId(1), 3);      // nested call after a patch at epoch 3
/// assert_eq!(frames.current_epoch(), Some(3));
/// frames.exit(ProcId(1));
/// assert_eq!(frames.current_epoch(), Some(0));
/// ```
#[derive(Clone, Debug, Default)]
pub struct FrameTracker {
    stack: Vec<(ProcId, u64)>,
    max_depth: usize,
}

impl FrameTracker {
    /// Creates an empty call stack.
    #[must_use]
    pub fn new() -> Self {
        FrameTracker::default()
    }

    /// Pushes an activation of `proc` entered at image `epoch`.
    pub fn enter(&mut self, proc: ProcId, epoch: u64) {
        self.stack.push((proc, epoch));
        self.max_depth = self.max_depth.max(self.stack.len());
    }

    /// Pops the current activation.
    ///
    /// # Panics
    ///
    /// Panics if the stack is empty or the top frame is a different
    /// procedure — the event stream is malformed.
    pub fn exit(&mut self, proc: ProcId) {
        match self.stack.pop() {
            Some((top, _)) if top == proc => {}
            Some((top, _)) => panic!("exit of {proc} but current frame is {top}"),
            None => panic!("exit of {proc} with empty call stack"),
        }
    }

    /// The epoch at which the current (innermost) activation was entered,
    /// or `None` outside any procedure.
    #[must_use]
    pub fn current_epoch(&self) -> Option<u64> {
        self.stack.last().map(|&(_, e)| e)
    }

    /// The currently executing procedure.
    #[must_use]
    pub fn current_proc(&self) -> Option<ProcId> {
        self.stack.last().map(|&(p, _)| p)
    }

    /// Current stack depth.
    #[must_use]
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Deepest stack observed (diagnostic).
    #[must_use]
    pub fn max_depth(&self) -> usize {
        self.max_depth
    }

    /// The live activation stack, outermost first — the checkpointing
    /// export (pairs of procedure and entry epoch).
    #[must_use]
    pub fn export_stack(&self) -> Vec<(ProcId, u64)> {
        self.stack.clone()
    }

    /// Reconstructs a tracker from a stack exported by
    /// [`FrameTracker::export_stack`] plus the observed `max_depth`
    /// diagnostic.
    #[must_use]
    pub fn from_parts(stack: Vec<(ProcId, u64)>, max_depth: usize) -> Self {
        let max_depth = max_depth.max(stack.len());
        FrameTracker { stack, max_depth }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hds_trace::Addr;

    #[test]
    fn vec_source_replays_in_order() {
        let events = vec![
            Event::Enter(ProcId(0)),
            Event::Work(5),
            Event::Access(DataRef::new(Pc(1), Addr(2)), AccessKind::Load),
            Event::Exit(ProcId(0)),
        ];
        let mut src = VecSource::new("replay", events.clone());
        assert_eq!(src.name(), "replay");
        let mut collected = Vec::new();
        while let Some(e) = src.next_event() {
            collected.push(e);
        }
        assert_eq!(collected, events);
    }

    #[test]
    fn frame_tracker_nesting() {
        let mut t = FrameTracker::new();
        assert_eq!(t.current_epoch(), None);
        assert_eq!(t.current_proc(), None);
        t.enter(ProcId(0), 0);
        t.enter(ProcId(1), 0);
        t.enter(ProcId(0), 2); // recursive re-entry after a patch
        assert_eq!(t.depth(), 3);
        assert_eq!(t.current_epoch(), Some(2));
        t.exit(ProcId(0));
        assert_eq!(t.current_epoch(), Some(0));
        assert_eq!(t.current_proc(), Some(ProcId(1)));
        t.exit(ProcId(1));
        t.exit(ProcId(0));
        assert_eq!(t.depth(), 0);
        assert_eq!(t.max_depth(), 3);
    }

    #[test]
    #[should_panic(expected = "empty call stack")]
    fn exit_without_enter_panics() {
        FrameTracker::new().exit(ProcId(0));
    }

    #[test]
    #[should_panic(expected = "current frame is")]
    fn mismatched_exit_panics() {
        let mut t = FrameTracker::new();
        t.enter(ProcId(0), 0);
        t.exit(ProcId(1));
    }

    #[test]
    fn procedure_accessors() {
        let p = Procedure::new("main", vec![Pc(1), Pc(2)]);
        assert_eq!(p.name(), "main");
        assert_eq!(p.pcs(), &[Pc(1), Pc(2)]);
        assert_eq!(ProcId(3).to_string(), "proc3");
    }
}
