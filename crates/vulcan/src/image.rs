//! The editable program image: procedure copies, check injection, entry
//! patching, and de-optimization.

use std::collections::HashMap;
use std::fmt;

use hds_trace::Pc;

use crate::program::{ProcId, Procedure};

/// Errors from an [`EditSession`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditError {
    /// The pc does not belong to any procedure of the image.
    UnknownPc(Pc),
    /// A payload was already injected at this pc in this session.
    AlreadyInjected(Pc),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::UnknownPc(pc) => write!(f, "{pc} does not belong to the image"),
            EditError::AlreadyInjected(pc) => write!(f, "{pc} already has injected code"),
        }
    }
}

impl std::error::Error for EditError {}

/// Statistics of one committed edit session — the Table 2 inputs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EditReport {
    /// Procedures copied and patched in this session.
    pub procedures_modified: usize,
    /// Total pcs that received injected code.
    pub pcs_injected: usize,
    /// The image epoch after the edit (fresh activations from this epoch
    /// on execute the patched copies).
    pub epoch: u64,
}

/// One patched procedure copy: the injected payloads per pc, and the
/// epoch at which the copy became live.
#[derive(Clone, Debug)]
struct Copy<T> {
    checks: HashMap<Pc, T>,
    since_epoch: u64,
}

/// The editable program image.
///
/// `T` is the payload type injected at instrumented pcs (the optimizer
/// injects DFSM check chains). The image starts unpatched; an
/// [`EditSession`] models dynamic Vulcan's stop-the-world binary edit.
#[derive(Clone, Debug)]
pub struct Image<T> {
    procs: Vec<Procedure>,
    pc_to_proc: HashMap<Pc, ProcId>,
    copies: HashMap<ProcId, Copy<T>>,
    epoch: u64,
    total_edits: u64,
    total_deopts: u64,
}

impl<T> Image<T> {
    /// Creates an unpatched image from its procedures.
    ///
    /// # Panics
    ///
    /// Panics if two procedures claim the same pc.
    #[must_use]
    pub fn new(procs: Vec<Procedure>) -> Self {
        let mut pc_to_proc = HashMap::new();
        for (i, p) in procs.iter().enumerate() {
            for &pc in p.pcs() {
                let clash = pc_to_proc.insert(pc, ProcId(i as u32));
                assert!(clash.is_none(), "{pc} belongs to two procedures");
            }
        }
        Image {
            procs,
            pc_to_proc,
            copies: HashMap::new(),
            epoch: 0,
            total_edits: 0,
            total_deopts: 0,
        }
    }

    /// The procedures of the image.
    #[must_use]
    pub fn procedures(&self) -> &[Procedure] {
        &self.procs
    }

    /// Resolves the procedure owning `pc`.
    #[must_use]
    pub fn proc_of(&self, pc: Pc) -> Option<ProcId> {
        self.pc_to_proc.get(&pc).copied()
    }

    /// The current image epoch. Bumped by every committed edit and every
    /// de-optimization; activations record the epoch they entered at.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Is the procedure's entry currently patched with a jump to a copy?
    #[must_use]
    pub fn is_patched(&self, proc: ProcId) -> bool {
        self.copies.contains_key(&proc)
    }

    /// The payload injected at `pc`, as seen by an activation that
    /// entered its procedure at `frame_epoch`.
    ///
    /// Returns `None` when the owning procedure is unpatched, or when the
    /// activation predates the patch (a *stale* activation: its return
    /// address targets the original code, §3.2).
    #[must_use]
    pub fn injected_at(&self, pc: Pc, frame_epoch: u64) -> Option<&T> {
        let proc = self.proc_of(pc)?;
        let copy = self.copies.get(&proc)?;
        if frame_epoch < copy.since_epoch {
            return None; // stale activation runs the original code
        }
        copy.checks.get(&pc)
    }

    /// Begins a stop-the-world edit session ("Dynamic Vulcan stops all
    /// running program threads while binary modifications are in
    /// progress").
    pub fn edit(&mut self) -> EditSession<'_, T> {
        EditSession {
            staged: HashMap::new(),
            image: self,
        }
    }

    /// Removes every entry jump, reverting all procedures to their
    /// original code ("when the optimizer wants to deoptimize later, it
    /// need only remove those jumps"). Returns how many procedures were
    /// reverted.
    pub fn deoptimize(&mut self) -> usize {
        let n = self.copies.len();
        self.copies.clear();
        if n > 0 {
            self.epoch += 1;
            self.total_deopts += 1;
        }
        n
    }

    /// Number of committed edit sessions.
    #[must_use]
    pub fn total_edits(&self) -> u64 {
        self.total_edits
    }

    /// Number of de-optimizations that actually removed patches.
    #[must_use]
    pub fn total_deopts(&self) -> u64 {
        self.total_deopts
    }

    /// The set of currently patched procedures.
    #[must_use]
    pub fn patched_procs(&self) -> Vec<ProcId> {
        let mut v: Vec<ProcId> = self.copies.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

/// A stop-the-world edit: stage injections, then [`EditSession::commit`]
/// to copy the affected procedures, attach the payloads, and patch the
/// entry jumps atomically.
#[derive(Debug)]
pub struct EditSession<'a, T> {
    staged: HashMap<Pc, T>,
    image: &'a mut Image<T>,
}

impl<T> EditSession<'_, T> {
    /// Stages a payload for injection at `pc`.
    ///
    /// # Errors
    ///
    /// * [`EditError::UnknownPc`] if `pc` belongs to no procedure;
    /// * [`EditError::AlreadyInjected`] if this session already staged a
    ///   payload at `pc`.
    pub fn inject(&mut self, pc: Pc, payload: T) -> Result<(), EditError> {
        if self.image.proc_of(pc).is_none() {
            return Err(EditError::UnknownPc(pc));
        }
        if self.staged.contains_key(&pc) {
            return Err(EditError::AlreadyInjected(pc));
        }
        self.staged.insert(pc, payload);
        Ok(())
    }

    /// Commits the staged edits: bumps the epoch, copies every procedure
    /// containing a staged pc, attaches the payloads to the copies, and
    /// patches the entries. Any previous patch of an affected procedure
    /// is replaced; patches of unaffected procedures are removed (the
    /// optimizer de-optimizes before re-optimizing — §1's cycle — so a
    /// commit describes the complete new instrumentation).
    pub fn commit(self) -> EditReport {
        let image = self.image;
        image.epoch += 1;
        image.total_edits += 1;
        let epoch = image.epoch;
        image.copies.clear();
        let mut pcs_injected = 0usize;
        for (pc, payload) in self.staged {
            let proc = image.proc_of(pc).expect("validated by inject");
            let copy = image.copies.entry(proc).or_insert_with(|| Copy {
                checks: HashMap::new(),
                since_epoch: epoch,
            });
            copy.checks.insert(pc, payload);
            pcs_injected += 1;
        }
        EditReport {
            procedures_modified: image.copies.len(),
            pcs_injected,
            epoch,
        }
    }

    /// Abandons the session without modifying the image.
    pub fn abort(self) {
        // Dropping the session discards the staged edits.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> Image<&'static str> {
        Image::new(vec![
            Procedure::new("alpha", vec![Pc(0x10), Pc(0x14)]),
            Procedure::new("beta", vec![Pc(0x20)]),
            Procedure::new("gamma", vec![Pc(0x30), Pc(0x34), Pc(0x38)]),
        ])
    }

    #[test]
    fn pc_ownership() {
        let img = image();
        assert_eq!(img.proc_of(Pc(0x14)), Some(ProcId(0)));
        assert_eq!(img.proc_of(Pc(0x30)), Some(ProcId(2)));
        assert_eq!(img.proc_of(Pc(0x99)), None);
        assert_eq!(img.procedures().len(), 3);
    }

    #[test]
    #[should_panic(expected = "belongs to two procedures")]
    fn duplicate_pcs_rejected() {
        let _: Image<()> = Image::new(vec![
            Procedure::new("a", vec![Pc(1)]),
            Procedure::new("b", vec![Pc(1)]),
        ]);
    }

    #[test]
    fn edit_injects_and_patches() {
        let mut img = image();
        let mut edit = img.edit();
        edit.inject(Pc(0x10), "c1").unwrap();
        edit.inject(Pc(0x14), "c2").unwrap();
        edit.inject(Pc(0x20), "c3").unwrap();
        let report = edit.commit();
        assert_eq!(report.procedures_modified, 2);
        assert_eq!(report.pcs_injected, 3);
        assert_eq!(report.epoch, 1);
        assert!(img.is_patched(ProcId(0)));
        assert!(img.is_patched(ProcId(1)));
        assert!(!img.is_patched(ProcId(2)));
        assert_eq!(img.patched_procs(), vec![ProcId(0), ProcId(1)]);
        assert_eq!(img.injected_at(Pc(0x10), 1), Some(&"c1"));
        // Un-injected pc of a patched procedure: no payload.
        assert_eq!(img.injected_at(Pc(0x30), 1), None);
    }

    #[test]
    fn stale_activations_see_original_code() {
        let mut img = image();
        let mut edit = img.edit();
        edit.inject(Pc(0x10), "chk").unwrap();
        edit.commit();
        // Frame entered before the patch (epoch 0): original code.
        assert_eq!(img.injected_at(Pc(0x10), 0), None);
        // Frame entered at/after the patch epoch: instrumented copy.
        assert_eq!(img.injected_at(Pc(0x10), 1), Some(&"chk"));
        assert_eq!(img.injected_at(Pc(0x10), 5), Some(&"chk"));
    }

    #[test]
    fn deoptimize_removes_all_patches() {
        let mut img = image();
        let mut edit = img.edit();
        edit.inject(Pc(0x10), "chk").unwrap();
        edit.commit();
        assert_eq!(img.deoptimize(), 1);
        assert!(!img.is_patched(ProcId(0)));
        assert_eq!(img.injected_at(Pc(0x10), img.epoch()), None);
        assert_eq!(img.epoch(), 2);
        // Deoptimizing an unpatched image is a no-op.
        assert_eq!(img.deoptimize(), 0);
        assert_eq!(img.epoch(), 2);
        assert_eq!(img.total_deopts(), 1);
    }

    #[test]
    fn recommit_replaces_previous_patches() {
        let mut img = image();
        let mut edit = img.edit();
        edit.inject(Pc(0x10), "old").unwrap();
        edit.commit();
        let mut edit = img.edit();
        edit.inject(Pc(0x20), "new").unwrap();
        let report = edit.commit();
        assert_eq!(report.procedures_modified, 1);
        // alpha's patch is gone, beta's is live.
        assert!(!img.is_patched(ProcId(0)));
        assert_eq!(img.injected_at(Pc(0x20), img.epoch()), Some(&"new"));
        assert_eq!(img.total_edits(), 2);
    }

    #[test]
    fn edit_errors() {
        let mut img = image();
        let mut edit = img.edit();
        assert_eq!(edit.inject(Pc(0x99), "x"), Err(EditError::UnknownPc(Pc(0x99))));
        edit.inject(Pc(0x10), "x").unwrap();
        assert_eq!(
            edit.inject(Pc(0x10), "y"),
            Err(EditError::AlreadyInjected(Pc(0x10)))
        );
        edit.abort();
        assert_eq!(img.epoch(), 0);
        assert_eq!(img.total_edits(), 0);
    }

    #[test]
    fn error_display() {
        assert!(EditError::UnknownPc(Pc(0x7)).to_string().contains("0x7"));
        assert!(EditError::AlreadyInjected(Pc(0x7))
            .to_string()
            .contains("already"));
    }
}
