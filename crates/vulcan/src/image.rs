//! The editable program image: procedure copies, check injection, entry
//! patching, and de-optimization.

use std::collections::HashMap;
use std::fmt;

use hds_trace::Pc;

use crate::program::{ProcId, Procedure};

/// Errors from an [`EditSession`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum EditError {
    /// The pc does not belong to any procedure of the image.
    UnknownPc(Pc),
    /// A payload was already injected at this pc in this session.
    AlreadyInjected(Pc),
    /// A removal targeted a pc that has no injected payload.
    NotInjected(Pc),
    /// An induced editor failure at this pc (fault injection / transient
    /// binary-editor error). The session is poisoned and its commit
    /// rolls back.
    Induced(Pc),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::UnknownPc(pc) => write!(f, "{pc} does not belong to the image"),
            EditError::AlreadyInjected(pc) => write!(f, "{pc} already has injected code"),
            EditError::NotInjected(pc) => write!(f, "{pc} has no injected code to remove"),
            EditError::Induced(pc) => write!(f, "induced editor failure at {pc}"),
        }
    }
}

impl std::error::Error for EditError {}

/// Statistics of one committed edit session — the Table 2 inputs.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EditReport {
    /// Procedures copied and patched in this session.
    pub procedures_modified: usize,
    /// Total pcs that received injected code.
    pub pcs_injected: usize,
    /// The image epoch after the edit (fresh activations from this epoch
    /// on execute the patched copies).
    pub epoch: u64,
}

/// One patched procedure copy: the injected payloads per pc, and the
/// epoch at which the copy became live.
#[derive(Clone, Debug)]
pub(crate) struct Copy<T> {
    pub(crate) checks: HashMap<Pc, T>,
    pub(crate) since_epoch: u64,
}

/// The patched state of one procedure, in canonical (sorted) order —
/// the unit of [`Image::export_state`] / [`Image::restore_state`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CopyState<T> {
    /// The patched procedure.
    pub proc: ProcId,
    /// Epoch at which the copy became live.
    pub since_epoch: u64,
    /// Injected payloads, sorted by pc.
    pub checks: Vec<(Pc, T)>,
}

/// The complete mutable state of an [`Image`] in canonical order:
/// epoch counters plus every live procedure copy. The static side
/// (procedures, pc ownership) is not part of the state — a restored
/// image must be constructed over the same procedures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImageState<T> {
    /// Current image epoch.
    pub epoch: u64,
    /// Committed edit sessions so far.
    pub total_edits: u64,
    /// De-optimizations that removed patches so far.
    pub total_deopts: u64,
    /// Live procedure copies, sorted by procedure id.
    pub copies: Vec<CopyState<T>>,
}

/// The editable program image.
///
/// `T` is the payload type injected at instrumented pcs (the optimizer
/// injects DFSM check chains). The image starts unpatched; an
/// [`EditSession`] models dynamic Vulcan's stop-the-world binary edit.
#[derive(Clone, Debug)]
pub struct Image<T> {
    procs: Vec<Procedure>,
    pc_to_proc: HashMap<Pc, ProcId>,
    pub(crate) copies: HashMap<ProcId, Copy<T>>,
    pub(crate) epoch: u64,
    pub(crate) total_edits: u64,
    total_deopts: u64,
}

impl<T> Image<T> {
    /// Creates an unpatched image from its procedures.
    ///
    /// # Panics
    ///
    /// Panics if two procedures claim the same pc.
    #[must_use]
    pub fn new(procs: Vec<Procedure>) -> Self {
        let mut pc_to_proc = HashMap::new();
        for (i, p) in procs.iter().enumerate() {
            for &pc in p.pcs() {
                let clash = pc_to_proc.insert(pc, ProcId(i as u32));
                assert!(clash.is_none(), "{pc} belongs to two procedures");
            }
        }
        Image {
            procs,
            pc_to_proc,
            copies: HashMap::new(),
            epoch: 0,
            total_edits: 0,
            total_deopts: 0,
        }
    }

    /// The procedures of the image.
    #[must_use]
    pub fn procedures(&self) -> &[Procedure] {
        &self.procs
    }

    /// Resolves the procedure owning `pc`.
    #[must_use]
    pub fn proc_of(&self, pc: Pc) -> Option<ProcId> {
        self.pc_to_proc.get(&pc).copied()
    }

    /// The current image epoch. Bumped by every committed edit and every
    /// de-optimization; activations record the epoch they entered at.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Is the procedure's entry currently patched with a jump to a copy?
    #[must_use]
    pub fn is_patched(&self, proc: ProcId) -> bool {
        self.copies.contains_key(&proc)
    }

    /// The payload injected at `pc`, as seen by an activation that
    /// entered its procedure at `frame_epoch`.
    ///
    /// Returns `None` when the owning procedure is unpatched, or when the
    /// activation predates the patch (a *stale* activation: its return
    /// address targets the original code, §3.2).
    #[must_use]
    pub fn injected_at(&self, pc: Pc, frame_epoch: u64) -> Option<&T> {
        let proc = self.proc_of(pc)?;
        let copy = self.copies.get(&proc)?;
        if frame_epoch < copy.since_epoch {
            return None; // stale activation runs the original code
        }
        copy.checks.get(&pc)
    }

    /// Begins a stop-the-world edit session ("Dynamic Vulcan stops all
    /// running program threads while binary modifications are in
    /// progress"). The commit *replaces* the complete instrumentation:
    /// patches of procedures not touched by the session are removed.
    pub fn edit(&mut self) -> EditSession<'_, T> {
        EditSession {
            staged: HashMap::new(),
            removals: Vec::new(),
            poisoned: None,
            replace: true,
            image: self,
        }
    }

    /// Begins a *patch-mode* edit session for surgical, partial changes:
    /// staged injections are layered onto the live instrumentation and
    /// staged removals delete individual payloads, while every untouched
    /// procedure copy survives **with its original `since_epoch`** — so
    /// activations already running a surviving copy keep executing its
    /// checks. This is the partial-deoptimization primitive.
    pub fn edit_partial(&mut self) -> EditSession<'_, T> {
        EditSession {
            staged: HashMap::new(),
            removals: Vec::new(),
            poisoned: None,
            replace: false,
            image: self,
        }
    }

    /// The payload currently injected at `pc` in the live copy of its
    /// procedure, regardless of activation epoch.
    fn live_payload(&self, pc: Pc) -> Option<&T> {
        let proc = self.proc_of(pc)?;
        self.copies.get(&proc)?.checks.get(&pc)
    }

    /// Removes every entry jump, reverting all procedures to their
    /// original code ("when the optimizer wants to deoptimize later, it
    /// need only remove those jumps"). Returns how many procedures were
    /// reverted.
    pub fn deoptimize(&mut self) -> usize {
        let n = self.copies.len();
        self.copies.clear();
        if n > 0 {
            self.epoch += 1;
            self.total_deopts += 1;
        }
        n
    }

    /// Number of committed edit sessions.
    #[must_use]
    pub fn total_edits(&self) -> u64 {
        self.total_edits
    }

    /// Number of de-optimizations that actually removed patches.
    #[must_use]
    pub fn total_deopts(&self) -> u64 {
        self.total_deopts
    }

    /// The set of currently patched procedures.
    #[must_use]
    pub fn patched_procs(&self) -> Vec<ProcId> {
        let mut v: Vec<ProcId> = self.copies.keys().copied().collect();
        v.sort_unstable();
        v
    }
}

impl<T: Clone> Image<T> {
    /// Exports the image's mutable state in canonical (sorted) order —
    /// the checkpointing primitive. The static procedure table is not
    /// included; restore into an image built over the same procedures.
    #[must_use]
    pub fn export_state(&self) -> ImageState<T> {
        let mut copies: Vec<CopyState<T>> = self
            .copies
            .iter()
            .map(|(&proc, copy)| {
                let mut checks: Vec<(Pc, T)> = copy
                    .checks
                    .iter()
                    .map(|(&pc, payload)| (pc, payload.clone()))
                    .collect();
                checks.sort_unstable_by_key(|&(pc, _)| pc);
                CopyState {
                    proc,
                    since_epoch: copy.since_epoch,
                    checks,
                }
            })
            .collect();
        copies.sort_unstable_by_key(|c| c.proc);
        ImageState {
            epoch: self.epoch,
            total_edits: self.total_edits,
            total_deopts: self.total_deopts,
            copies,
        }
    }

    /// Restores mutable state previously produced by
    /// [`Image::export_state`], replacing all live patches and epoch
    /// counters. The procedures the image was constructed over are
    /// untouched.
    pub fn restore_state(&mut self, state: ImageState<T>) {
        self.epoch = state.epoch;
        self.total_edits = state.total_edits;
        self.total_deopts = state.total_deopts;
        self.copies = state
            .copies
            .into_iter()
            .map(|c| {
                (
                    c.proc,
                    Copy {
                        checks: c.checks.into_iter().collect(),
                        since_epoch: c.since_epoch,
                    },
                )
            })
            .collect();
    }

    /// A deterministic digest of the image's mutable state, hashing
    /// each payload through `f`. Two images digest equal iff their
    /// epochs, edit/deopt counters, and live patches (procedure,
    /// since-epoch, pc, payload hash) all agree — the chaos suite's
    /// bit-identical-image assertion.
    #[must_use]
    pub fn digest_with(&self, f: impl Fn(&T) -> u64) -> u64 {
        use std::hash::{Hash, Hasher};
        let mut h = std::collections::hash_map::DefaultHasher::new();
        self.epoch.hash(&mut h);
        self.total_edits.hash(&mut h);
        self.total_deopts.hash(&mut h);
        let mut procs: Vec<ProcId> = self.copies.keys().copied().collect();
        procs.sort_unstable();
        for proc in procs {
            let copy = &self.copies[&proc];
            proc.0.hash(&mut h);
            copy.since_epoch.hash(&mut h);
            let mut pcs: Vec<Pc> = copy.checks.keys().copied().collect();
            pcs.sort_unstable();
            for pc in pcs {
                pc.hash(&mut h);
                f(&copy.checks[&pc]).hash(&mut h);
            }
        }
        h.finish()
    }
}

/// A stop-the-world edit: stage injections (and, in patch mode,
/// removals), then [`EditSession::commit`] to apply everything
/// atomically.
///
/// The session is *transactional*: the first staging error poisons it,
/// and a poisoned commit performs **no** image mutation — no epoch
/// bump, no copy touched. A half-failed edit therefore rolls the whole
/// session back, leaving the pre-edit image intact (threads resume on
/// exactly the code they were stopped on).
#[derive(Debug)]
pub struct EditSession<'a, T> {
    pub(crate) staged: HashMap<Pc, T>,
    pub(crate) removals: Vec<Pc>,
    pub(crate) poisoned: Option<EditError>,
    /// `true` for [`Image::edit`] (commit describes the complete new
    /// instrumentation), `false` for [`Image::edit_partial`].
    pub(crate) replace: bool,
    pub(crate) image: &'a mut Image<T>,
}

impl<T> EditSession<'_, T> {
    /// Stages a payload for injection at `pc`.
    ///
    /// # Errors
    ///
    /// * [`EditError::UnknownPc`] if `pc` belongs to no procedure;
    /// * [`EditError::AlreadyInjected`] if this session already staged a
    ///   payload at `pc`, or (in patch mode) the live image already has
    ///   one there.
    ///
    /// Any error poisons the session: its commit will roll back.
    pub fn inject(&mut self, pc: Pc, payload: T) -> Result<(), EditError> {
        if self.image.proc_of(pc).is_none() {
            return Err(self.poison(EditError::UnknownPc(pc)));
        }
        if self.staged.contains_key(&pc) || (!self.replace && self.image.live_payload(pc).is_some())
        {
            return Err(self.poison(EditError::AlreadyInjected(pc)));
        }
        self.staged.insert(pc, payload);
        Ok(())
    }

    /// Stages the removal of the payload injected at `pc` (patch mode;
    /// in replace mode the commit discards old patches anyway, so a
    /// removal of a live pc is accepted and redundant).
    ///
    /// # Errors
    ///
    /// * [`EditError::UnknownPc`] if `pc` belongs to no procedure;
    /// * [`EditError::NotInjected`] if the live image has no payload at
    ///   `pc`.
    ///
    /// Any error poisons the session: its commit will roll back.
    pub fn remove(&mut self, pc: Pc) -> Result<(), EditError> {
        if self.image.proc_of(pc).is_none() {
            return Err(self.poison(EditError::UnknownPc(pc)));
        }
        if self.image.live_payload(pc).is_none() {
            return Err(self.poison(EditError::NotInjected(pc)));
        }
        self.removals.push(pc);
        Ok(())
    }

    /// Poisons the session with an externally induced failure (the
    /// fault-injection layer models a binary editor dying mid-edit).
    /// The commit will roll back with this error.
    pub fn fail(&mut self, err: EditError) {
        let _ = self.poison(err);
    }

    /// The error that poisoned this session, if any.
    #[must_use]
    pub fn poisoned(&self) -> Option<&EditError> {
        self.poisoned.as_ref()
    }

    fn poison(&mut self, err: EditError) -> EditError {
        if self.poisoned.is_none() {
            self.poisoned = Some(err.clone());
        }
        err
    }

    /// Commits the staged edits atomically: bumps the epoch, copies
    /// every affected procedure, attaches the payloads, and patches the
    /// entries.
    ///
    /// In replace mode ([`Image::edit`]) patches of unaffected
    /// procedures are removed — the commit describes the complete new
    /// instrumentation (§1's deoptimize-before-reoptimize cycle). In
    /// patch mode ([`Image::edit_partial`]) staged removals delete
    /// individual payloads, a procedure copy with no payloads left is
    /// unpatched, and surviving copies keep their `since_epoch`.
    ///
    /// # Errors
    ///
    /// If the session was poisoned by a failed [`EditSession::inject`] /
    /// [`EditSession::remove`] or an induced [`EditSession::fail`], the
    /// first such error is returned and the image is **not** modified in
    /// any way (no epoch bump, all copies intact).
    pub fn commit(self) -> Result<EditReport, EditError> {
        if let Some(err) = self.poisoned {
            return Err(err); // atomic rollback: the image was never touched
        }
        let image = self.image;
        image.epoch += 1;
        image.total_edits += 1;
        let epoch = image.epoch;
        let mut touched: Vec<ProcId> = Vec::new();
        if self.replace {
            image.copies.clear();
        } else {
            for pc in self.removals {
                // Validated by `remove`; a pc no longer live (duplicate
                // removal staged twice) is simply already gone.
                let Some(proc) = image.proc_of(pc) else {
                    continue;
                };
                let Some(copy) = image.copies.get_mut(&proc) else {
                    continue;
                };
                copy.checks.remove(&pc);
                touched.push(proc);
                if copy.checks.is_empty() {
                    image.copies.remove(&proc); // entry jump removed: original code
                }
            }
        }
        let mut pcs_injected = 0usize;
        for (pc, payload) in self.staged {
            // Validated by `inject`; skipping an (impossible) unknown pc
            // beats panicking inside a stop-the-world edit.
            let Some(proc) = image.proc_of(pc) else {
                continue;
            };
            let copy = image.copies.entry(proc).or_insert_with(|| Copy {
                checks: HashMap::new(),
                since_epoch: epoch,
            });
            copy.checks.insert(pc, payload);
            touched.push(proc);
            pcs_injected += 1;
        }
        let procedures_modified = if self.replace {
            image.copies.len()
        } else {
            touched.sort_unstable();
            touched.dedup();
            touched.len()
        };
        Ok(EditReport {
            procedures_modified,
            pcs_injected,
            epoch,
        })
    }

    /// Abandons the session without modifying the image.
    pub fn abort(self) {
        // Dropping the session discards the staged edits.
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn image() -> Image<&'static str> {
        Image::new(vec![
            Procedure::new("alpha", vec![Pc(0x10), Pc(0x14)]),
            Procedure::new("beta", vec![Pc(0x20)]),
            Procedure::new("gamma", vec![Pc(0x30), Pc(0x34), Pc(0x38)]),
        ])
    }

    #[test]
    fn pc_ownership() {
        let img = image();
        assert_eq!(img.proc_of(Pc(0x14)), Some(ProcId(0)));
        assert_eq!(img.proc_of(Pc(0x30)), Some(ProcId(2)));
        assert_eq!(img.proc_of(Pc(0x99)), None);
        assert_eq!(img.procedures().len(), 3);
    }

    #[test]
    #[should_panic(expected = "belongs to two procedures")]
    fn duplicate_pcs_rejected() {
        let _: Image<()> = Image::new(vec![
            Procedure::new("a", vec![Pc(1)]),
            Procedure::new("b", vec![Pc(1)]),
        ]);
    }

    #[test]
    fn edit_injects_and_patches() {
        let mut img = image();
        let mut edit = img.edit();
        edit.inject(Pc(0x10), "c1").unwrap();
        edit.inject(Pc(0x14), "c2").unwrap();
        edit.inject(Pc(0x20), "c3").unwrap();
        let report = edit.commit().unwrap();
        assert_eq!(report.procedures_modified, 2);
        assert_eq!(report.pcs_injected, 3);
        assert_eq!(report.epoch, 1);
        assert!(img.is_patched(ProcId(0)));
        assert!(img.is_patched(ProcId(1)));
        assert!(!img.is_patched(ProcId(2)));
        assert_eq!(img.patched_procs(), vec![ProcId(0), ProcId(1)]);
        assert_eq!(img.injected_at(Pc(0x10), 1), Some(&"c1"));
        // Un-injected pc of a patched procedure: no payload.
        assert_eq!(img.injected_at(Pc(0x30), 1), None);
    }

    #[test]
    fn stale_activations_see_original_code() {
        let mut img = image();
        let mut edit = img.edit();
        edit.inject(Pc(0x10), "chk").unwrap();
        edit.commit().unwrap();
        // Frame entered before the patch (epoch 0): original code.
        assert_eq!(img.injected_at(Pc(0x10), 0), None);
        // Frame entered at/after the patch epoch: instrumented copy.
        assert_eq!(img.injected_at(Pc(0x10), 1), Some(&"chk"));
        assert_eq!(img.injected_at(Pc(0x10), 5), Some(&"chk"));
    }

    #[test]
    fn deoptimize_removes_all_patches() {
        let mut img = image();
        let mut edit = img.edit();
        edit.inject(Pc(0x10), "chk").unwrap();
        edit.commit().unwrap();
        assert_eq!(img.deoptimize(), 1);
        assert!(!img.is_patched(ProcId(0)));
        assert_eq!(img.injected_at(Pc(0x10), img.epoch()), None);
        assert_eq!(img.epoch(), 2);
        // Deoptimizing an unpatched image is a no-op.
        assert_eq!(img.deoptimize(), 0);
        assert_eq!(img.epoch(), 2);
        assert_eq!(img.total_deopts(), 1);
    }

    #[test]
    fn recommit_replaces_previous_patches() {
        let mut img = image();
        let mut edit = img.edit();
        edit.inject(Pc(0x10), "old").unwrap();
        edit.commit().unwrap();
        let mut edit = img.edit();
        edit.inject(Pc(0x20), "new").unwrap();
        let report = edit.commit().unwrap();
        assert_eq!(report.procedures_modified, 1);
        // alpha's patch is gone, beta's is live.
        assert!(!img.is_patched(ProcId(0)));
        assert_eq!(img.injected_at(Pc(0x20), img.epoch()), Some(&"new"));
        assert_eq!(img.total_edits(), 2);
    }

    #[test]
    fn edit_errors() {
        let mut img = image();
        let mut edit = img.edit();
        assert_eq!(
            edit.inject(Pc(0x99), "x"),
            Err(EditError::UnknownPc(Pc(0x99)))
        );
        edit.inject(Pc(0x10), "x").unwrap();
        assert_eq!(
            edit.inject(Pc(0x10), "y"),
            Err(EditError::AlreadyInjected(Pc(0x10)))
        );
        edit.abort();
        assert_eq!(img.epoch(), 0);
        assert_eq!(img.total_edits(), 0);
    }

    #[test]
    fn error_display() {
        assert!(EditError::UnknownPc(Pc(0x7)).to_string().contains("0x7"));
        assert!(EditError::AlreadyInjected(Pc(0x7))
            .to_string()
            .contains("already"));
        assert!(EditError::NotInjected(Pc(0x7))
            .to_string()
            .contains("remove"));
        assert!(EditError::Induced(Pc(0x7)).to_string().contains("induced"));
    }

    /// Regression: a mid-session failure must not leave the image
    /// half-patched. Committing a poisoned session rolls back — the
    /// pre-edit instrumentation and epoch are intact.
    #[test]
    fn failed_injection_rolls_back_the_whole_session() {
        let mut img = image();
        let mut edit = img.edit();
        edit.inject(Pc(0x10), "keep").unwrap();
        edit.commit().unwrap();
        let epoch_before = img.epoch();

        let mut edit = img.edit();
        edit.inject(Pc(0x20), "half").unwrap();
        // Second injection fails mid-session...
        assert_eq!(
            edit.inject(Pc(0x99), "bad"),
            Err(EditError::UnknownPc(Pc(0x99)))
        );
        assert_eq!(edit.poisoned(), Some(&EditError::UnknownPc(Pc(0x99))));
        // ...and a further valid staging does not un-poison it.
        edit.inject(Pc(0x30), "late").unwrap();
        assert_eq!(edit.commit(), Err(EditError::UnknownPc(Pc(0x99))));

        // Pre-edit image fully intact: old payload live, nothing new.
        assert_eq!(img.epoch(), epoch_before);
        assert_eq!(img.injected_at(Pc(0x10), epoch_before), Some(&"keep"));
        assert_eq!(img.injected_at(Pc(0x20), epoch_before), None);
        assert_eq!(img.injected_at(Pc(0x30), epoch_before), None);
        assert_eq!(img.total_edits(), 1);
    }

    #[test]
    fn induced_failure_rolls_back() {
        let mut img = image();
        let mut edit = img.edit();
        edit.inject(Pc(0x10), "x").unwrap();
        edit.fail(EditError::Induced(Pc(0x10)));
        assert_eq!(edit.commit(), Err(EditError::Induced(Pc(0x10))));
        assert_eq!(img.epoch(), 0);
        assert!(!img.is_patched(ProcId(0)));
        assert_eq!(img.total_edits(), 0);
    }

    #[test]
    fn partial_edit_removes_one_pc_and_preserves_survivor_epoch() {
        let mut img = image();
        let mut edit = img.edit();
        edit.inject(Pc(0x10), "good").unwrap();
        edit.inject(Pc(0x20), "bad").unwrap();
        edit.commit().unwrap();
        let install_epoch = img.epoch();

        let mut patch = img.edit_partial();
        patch.remove(Pc(0x20)).unwrap();
        let report = patch.commit().unwrap();
        assert_eq!(report.procedures_modified, 1);
        assert_eq!(report.pcs_injected, 0);
        assert_eq!(report.epoch, install_epoch + 1);

        // beta's copy is empty → unpatched; alpha's survives...
        assert!(!img.is_patched(ProcId(1)));
        assert!(img.is_patched(ProcId(0)));
        // ...with its original since_epoch: an activation that entered
        // at the *install* epoch (before the partial deopt) still sees
        // the surviving check. This is the surgical property.
        assert_eq!(img.injected_at(Pc(0x10), install_epoch), Some(&"good"));
        assert_eq!(img.injected_at(Pc(0x20), img.epoch()), None);
    }

    #[test]
    fn partial_edit_errors_poison_and_roll_back() {
        let mut img = image();
        let mut edit = img.edit();
        edit.inject(Pc(0x10), "live").unwrap();
        edit.commit().unwrap();

        let mut patch = img.edit_partial();
        // Removing a never-injected pc fails...
        assert_eq!(
            patch.remove(Pc(0x30)),
            Err(EditError::NotInjected(Pc(0x30)))
        );
        // ...as does re-injecting over a live payload in patch mode.
        let mut patch = img.edit_partial();
        assert_eq!(
            patch.inject(Pc(0x10), "dup"),
            Err(EditError::AlreadyInjected(Pc(0x10)))
        );
        patch.remove(Pc(0x10)).unwrap();
        assert_eq!(patch.commit(), Err(EditError::AlreadyInjected(Pc(0x10))));
        // Rollback: the live payload survived both poisoned sessions.
        assert_eq!(img.injected_at(Pc(0x10), img.epoch()), Some(&"live"));
        assert_eq!(img.epoch(), 1);
    }

    #[test]
    fn partial_edit_can_layer_new_checks() {
        let mut img = image();
        let mut edit = img.edit();
        edit.inject(Pc(0x10), "a").unwrap();
        edit.commit().unwrap();
        let mut patch = img.edit_partial();
        patch.inject(Pc(0x30), "b").unwrap();
        let report = patch.commit().unwrap();
        assert_eq!(report.pcs_injected, 1);
        // Both live; alpha's copy kept since_epoch 1, gamma's starts at 2.
        assert_eq!(img.injected_at(Pc(0x10), 1), Some(&"a"));
        assert_eq!(img.injected_at(Pc(0x30), 1), None); // stale for gamma
        assert_eq!(img.injected_at(Pc(0x30), 2), Some(&"b"));
    }
}
