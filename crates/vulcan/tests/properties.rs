//! Property tests for the binary-editing substrate: arbitrary sequences
//! of edit / de-optimize operations maintain the image's invariants and
//! the stale-activation visibility rules.

use hds_trace::Pc;
use hds_vulcan::{Image, ProcId, Procedure};
use proptest::prelude::*;

/// A random image with `n` procedures of 1–4 pcs each.
fn image_with(n: usize) -> Image<u32> {
    let mut procs = Vec::new();
    for i in 0..n {
        let pcs: Vec<Pc> = (0..=(i % 4)).map(|j| Pc((i * 100 + j) as u32)).collect();
        procs.push(Procedure::new(format!("p{i}"), pcs));
    }
    Image::new(procs)
}

#[derive(Clone, Debug)]
enum Op {
    /// Commit an edit injecting payloads at the pcs of these procedures.
    Edit(Vec<usize>),
    /// Abort an edit after staging at these procedures.
    Abort(Vec<usize>),
    /// De-optimize.
    Deopt,
}

fn op_strategy(n_procs: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::collection::vec(0..n_procs, 0..4).prop_map(Op::Edit),
        proptest::collection::vec(0..n_procs, 0..4).prop_map(Op::Abort),
        Just(Op::Deopt),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn edit_sequences_maintain_invariants(
        ops in proptest::collection::vec(op_strategy(6), 0..24),
    ) {
        let n_procs = 6;
        let mut image = image_with(n_procs);
        // Shadow model: the currently injected payload per pc, plus the
        // epoch of the live patch set.
        let mut live: std::collections::HashMap<Pc, u32> = std::collections::HashMap::new();
        let mut payload_counter = 0u32;
        let mut last_epoch = image.epoch();

        for op in &ops {
            match op {
                Op::Edit(procs) => {
                    let mut edit = image.edit();
                    let mut staged = std::collections::HashMap::new();
                    for &p in procs {
                        let pc = Pc((p * 100) as u32); // first pc of proc p
                        payload_counter += 1;
                        if let std::collections::hash_map::Entry::Vacant(slot) =
                            staged.entry(pc)
                        {
                            edit.inject(pc, payload_counter).unwrap();
                            slot.insert(payload_counter);
                        } else {
                            prop_assert!(edit.inject(pc, payload_counter).is_err());
                        }
                    }
                    let report = edit.commit();
                    // A commit always replaces the whole patch set.
                    live = staged;
                    let unique_procs: std::collections::HashSet<_> =
                        live.keys().map(|pc| pc.0 / 100).collect();
                    prop_assert_eq!(report.procedures_modified, unique_procs.len());
                    prop_assert!(image.epoch() > last_epoch, "commit must bump the epoch");
                    last_epoch = image.epoch();
                }
                Op::Abort(procs) => {
                    let mut edit = image.edit();
                    for &p in procs {
                        let _ = edit.inject(Pc((p * 100) as u32), 0);
                    }
                    edit.abort();
                    prop_assert_eq!(image.epoch(), last_epoch, "abort must not bump the epoch");
                }
                Op::Deopt => {
                    let removed = image.deoptimize();
                    prop_assert_eq!(removed, image_patched_count(&live));
                    if removed > 0 {
                        prop_assert!(image.epoch() > last_epoch);
                        last_epoch = image.epoch();
                    }
                    live.clear();
                }
            }
            // Visibility: current-epoch activations see exactly the live
            // payloads; epoch-0 (stale) activations see nothing unless
            // the image is still at epoch 0.
            for p in 0..n_procs {
                for j in 0..=(p % 4) {
                    let pc = Pc((p * 100 + j) as u32);
                    prop_assert_eq!(
                        image.injected_at(pc, image.epoch()),
                        live.get(&pc),
                        "live view wrong at {}", pc
                    );
                    if image.epoch() > 0 {
                        prop_assert_eq!(image.injected_at(pc, 0), None,
                            "stale activation saw a patch at {}", pc);
                    }
                }
            }
            // patched_procs agrees with the live set.
            let expect: std::collections::HashSet<ProcId> = live
                .keys()
                .map(|pc| ProcId(pc.0 / 100))
                .collect();
            let got: std::collections::HashSet<ProcId> =
                image.patched_procs().into_iter().collect();
            prop_assert_eq!(got, expect);
        }
    }
}

fn image_patched_count(live: &std::collections::HashMap<Pc, u32>) -> usize {
    live.keys()
        .map(|pc| pc.0 / 100)
        .collect::<std::collections::HashSet<_>>()
        .len()
}

/// Activations entered at intermediate epochs see the patch set that was
/// live at their entry — not earlier ones, not later ones.
#[test]
fn epoch_visibility_is_monotone() {
    let mut image = image_with(3);
    // Epoch 1: patch proc 0.
    let mut edit = image.edit();
    edit.inject(Pc(0), 10).unwrap();
    edit.commit();
    let epoch1 = image.epoch();
    // Epoch 2: patch proc 1 instead.
    let mut edit = image.edit();
    edit.inject(Pc(100), 20).unwrap();
    edit.commit();
    let epoch2 = image.epoch();

    // An activation from epoch1 entered before the *current* patch of
    // proc 1, so it must not see it…
    assert_eq!(image.injected_at(Pc(100), epoch1), None);
    // …and proc 0's patch no longer exists at all.
    assert_eq!(image.injected_at(Pc(0), epoch1), None);
    assert_eq!(image.injected_at(Pc(0), epoch2), None);
    // Fresh activations see the live patch.
    assert_eq!(image.injected_at(Pc(100), epoch2), Some(&20));
}
