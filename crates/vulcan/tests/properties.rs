//! Property tests for the binary-editing substrate: arbitrary sequences
//! of edit / de-optimize operations maintain the image's invariants and
//! the stale-activation visibility rules.

use hds_trace::Pc;
use hds_vulcan::{Image, ProcId, Procedure};
use proptest::prelude::*;

/// A random image with `n` procedures of 1–4 pcs each.
fn image_with(n: usize) -> Image<u32> {
    let mut procs = Vec::new();
    for i in 0..n {
        let pcs: Vec<Pc> = (0..=(i % 4)).map(|j| Pc((i * 100 + j) as u32)).collect();
        procs.push(Procedure::new(format!("p{i}"), pcs));
    }
    Image::new(procs)
}

#[derive(Clone, Debug)]
enum Op {
    /// Commit an edit injecting payloads at the pcs of these procedures.
    Edit(Vec<usize>),
    /// Abort an edit after staging at these procedures.
    Abort(Vec<usize>),
    /// De-optimize.
    Deopt,
}

fn op_strategy(n_procs: usize) -> impl Strategy<Value = Op> {
    prop_oneof![
        proptest::collection::vec(0..n_procs, 0..4).prop_map(Op::Edit),
        proptest::collection::vec(0..n_procs, 0..4).prop_map(Op::Abort),
        Just(Op::Deopt),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    #[test]
    fn edit_sequences_maintain_invariants(
        ops in proptest::collection::vec(op_strategy(6), 0..24),
    ) {
        let n_procs = 6;
        let mut image = image_with(n_procs);
        // Shadow model: the currently injected payload per pc, plus the
        // epoch of the live patch set.
        let mut live: std::collections::HashMap<Pc, u32> = std::collections::HashMap::new();
        let mut payload_counter = 0u32;
        let mut last_epoch = image.epoch();

        for op in &ops {
            match op {
                Op::Edit(procs) => {
                    let mut edit = image.edit();
                    let mut staged = std::collections::HashMap::new();
                    let mut poisoned = false;
                    for &p in procs {
                        let pc = Pc((p * 100) as u32); // first pc of proc p
                        payload_counter += 1;
                        if let std::collections::hash_map::Entry::Vacant(slot) =
                            staged.entry(pc)
                        {
                            edit.inject(pc, payload_counter).unwrap();
                            slot.insert(payload_counter);
                        } else {
                            prop_assert!(edit.inject(pc, payload_counter).is_err());
                            poisoned = true;
                        }
                    }
                    let result = edit.commit();
                    if poisoned {
                        // A session with any failed staging rolls back
                        // atomically: the live set and epoch are untouched.
                        prop_assert!(result.is_err());
                        prop_assert_eq!(image.epoch(), last_epoch,
                            "poisoned commit must not bump the epoch");
                    } else {
                        let report = result.unwrap();
                        // A commit always replaces the whole patch set.
                        live = staged;
                        let unique_procs: std::collections::HashSet<_> =
                            live.keys().map(|pc| pc.0 / 100).collect();
                        prop_assert_eq!(report.procedures_modified, unique_procs.len());
                        prop_assert!(image.epoch() > last_epoch, "commit must bump the epoch");
                        last_epoch = image.epoch();
                    }
                }
                Op::Abort(procs) => {
                    let mut edit = image.edit();
                    for &p in procs {
                        let _ = edit.inject(Pc((p * 100) as u32), 0);
                    }
                    edit.abort();
                    prop_assert_eq!(image.epoch(), last_epoch, "abort must not bump the epoch");
                }
                Op::Deopt => {
                    let removed = image.deoptimize();
                    prop_assert_eq!(removed, image_patched_count(&live));
                    if removed > 0 {
                        prop_assert!(image.epoch() > last_epoch);
                        last_epoch = image.epoch();
                    }
                    live.clear();
                }
            }
            // Visibility: current-epoch activations see exactly the live
            // payloads; epoch-0 (stale) activations see nothing unless
            // the image is still at epoch 0.
            for p in 0..n_procs {
                for j in 0..=(p % 4) {
                    let pc = Pc((p * 100 + j) as u32);
                    prop_assert_eq!(
                        image.injected_at(pc, image.epoch()),
                        live.get(&pc),
                        "live view wrong at {}", pc
                    );
                    if image.epoch() > 0 {
                        prop_assert_eq!(image.injected_at(pc, 0), None,
                            "stale activation saw a patch at {}", pc);
                    }
                }
            }
            // patched_procs agrees with the live set.
            let expect: std::collections::HashSet<ProcId> = live
                .keys()
                .map(|pc| ProcId(pc.0 / 100))
                .collect();
            let got: std::collections::HashSet<ProcId> =
                image.patched_procs().into_iter().collect();
            prop_assert_eq!(got, expect);
        }
    }
}

/// One simulated thread activation: the image epoch it entered its
/// procedure at (what [`hds_vulcan::FrameTracker`] records at runtime).
#[derive(Clone, Copy, Debug)]
struct Frame {
    entered_at: u64,
}

#[derive(Clone, Debug)]
enum ChaosOp {
    /// Full stop-the-world edit over these procedures; `fail` induces a
    /// mid-edit editor fault (the session must roll back).
    FullEdit { procs: Vec<usize>, fail: bool },
    /// Patch-mode removal of one procedure's first-pc payload.
    PartialRemove { proc: usize },
    /// Patch-mode injection at one procedure's first pc.
    PartialAdd { proc: usize },
    /// De-optimize everything.
    Deopt,
    /// A thread switch: a thread enters a procedure *now*, recording the
    /// current epoch in its activation record.
    Spawn,
}

fn chaos_op(n_procs: usize) -> impl Strategy<Value = ChaosOp> {
    prop_oneof![
        (proptest::collection::vec(0..n_procs, 0..4), any::<bool>())
            .prop_map(|(procs, fail)| ChaosOp::FullEdit { procs, fail }),
        (0..n_procs).prop_map(|proc| ChaosOp::PartialRemove { proc }),
        (0..n_procs).prop_map(|proc| ChaosOp::PartialAdd { proc }),
        Just(ChaosOp::Deopt),
        Just(ChaosOp::Spawn),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// Epoch discipline under random thread-switch schedules: whatever a
    /// thread observes at its entry epoch is all-or-nothing — either the
    /// procedure's complete current copy or the original code. No
    /// interleaving of full edits, partial edits, induced edit failures,
    /// deopts, and thread switches ever exposes a half-patched copy.
    #[test]
    fn thread_switches_never_observe_half_patched_copies(
        ops in proptest::collection::vec(chaos_op(5), 0..32),
    ) {
        use hds_vulcan::EditError;
        let n_procs = 5;
        let mut image = image_with(n_procs);
        // Shadow model: per-proc (since_epoch, payloads).
        let mut model: std::collections::HashMap<usize, (u64, std::collections::HashMap<Pc, u32>)> =
            std::collections::HashMap::new();
        let mut frames: Vec<Frame> = vec![Frame { entered_at: 0 }];
        let mut payload = 0u32;

        for op in &ops {
            match op {
                ChaosOp::FullEdit { procs, fail } => {
                    let epoch_before = image.epoch();
                    let mut edit = image.edit();
                    let mut staged: std::collections::HashMap<usize, std::collections::HashMap<Pc, u32>> =
                        std::collections::HashMap::new();
                    let mut poisoned = false;
                    for &p in procs {
                        let pc = Pc((p * 100) as u32);
                        payload += 1;
                        if edit.inject(pc, payload).is_ok() {
                            staged.entry(p).or_default().insert(pc, payload);
                        } else {
                            poisoned = true; // duplicate pc poisons the session
                        }
                    }
                    if *fail || poisoned {
                        if *fail {
                            edit.fail(EditError::Induced(Pc(0)));
                        }
                        prop_assert!(edit.commit().is_err());
                        prop_assert_eq!(image.epoch(), epoch_before,
                            "failed edit must not bump the epoch");
                        // model unchanged: rollback.
                    } else {
                        edit.commit().unwrap();
                        model = staged
                            .into_iter()
                            .map(|(p, checks)| (p, (image.epoch(), checks)))
                            .collect();
                    }
                }
                ChaosOp::PartialRemove { proc } => {
                    let pc = Pc((proc * 100) as u32);
                    let live = model.get(proc).is_some_and(|(_, c)| c.contains_key(&pc));
                    let mut patch = image.edit_partial();
                    if live {
                        patch.remove(pc).unwrap();
                        patch.commit().unwrap();
                        let empty = {
                            let entry = model.get_mut(proc).unwrap();
                            entry.1.remove(&pc);
                            entry.1.is_empty()
                        };
                        if empty {
                            model.remove(proc);
                        }
                    } else {
                        prop_assert!(patch.remove(pc).is_err());
                        prop_assert!(patch.commit().is_err());
                    }
                }
                ChaosOp::PartialAdd { proc } => {
                    let pc = Pc((proc * 100) as u32);
                    let live = model.get(proc).is_some_and(|(_, c)| c.contains_key(&pc));
                    let mut patch = image.edit_partial();
                    payload += 1;
                    if live {
                        prop_assert!(patch.inject(pc, payload).is_err());
                        prop_assert!(patch.commit().is_err());
                    } else {
                        patch.inject(pc, payload).unwrap();
                        patch.commit().unwrap();
                        // A fresh copy starts at the new epoch; a surviving
                        // copy keeps its since_epoch.
                        let entry = model
                            .entry(*proc)
                            .or_insert_with(|| (image.epoch(), std::collections::HashMap::new()));
                        entry.1.insert(pc, payload);
                    }
                }
                ChaosOp::Deopt => {
                    image.deoptimize();
                    model.clear();
                }
                ChaosOp::Spawn => {
                    frames.push(Frame { entered_at: image.epoch() });
                }
            }

            // Every thread's view is all-or-nothing per procedure.
            for frame in &frames {
                for p in 0..n_procs {
                    let visible: std::collections::HashMap<Pc, u32> = (0..=(p % 4))
                        .filter_map(|j| {
                            let pc = Pc((p * 100 + j) as u32);
                            image.injected_at(pc, frame.entered_at).map(|v| (pc, *v))
                        })
                        .collect();
                    let expect = match model.get(&p) {
                        Some((since, checks)) if frame.entered_at >= *since => checks.clone(),
                        _ => std::collections::HashMap::new(), // original code
                    };
                    prop_assert_eq!(
                        visible, expect,
                        "thread entered at epoch {} saw a half-patched proc {}",
                        frame.entered_at, p
                    );
                }
            }
        }
    }
}

fn image_patched_count(live: &std::collections::HashMap<Pc, u32>) -> usize {
    live.keys()
        .map(|pc| pc.0 / 100)
        .collect::<std::collections::HashSet<_>>()
        .len()
}

/// Activations entered at intermediate epochs see the patch set that was
/// live at their entry — not earlier ones, not later ones.
#[test]
fn epoch_visibility_is_monotone() {
    let mut image = image_with(3);
    // Epoch 1: patch proc 0.
    let mut edit = image.edit();
    edit.inject(Pc(0), 10).unwrap();
    edit.commit().unwrap();
    let epoch1 = image.epoch();
    // Epoch 2: patch proc 1 instead.
    let mut edit = image.edit();
    edit.inject(Pc(100), 20).unwrap();
    edit.commit().unwrap();
    let epoch2 = image.epoch();

    // An activation from epoch1 entered before the *current* patch of
    // proc 1, so it must not see it…
    assert_eq!(image.injected_at(Pc(100), epoch1), None);
    // …and proc 0's patch no longer exists at all.
    assert_eq!(image.injected_at(Pc(0), epoch1), None);
    assert_eq!(image.injected_at(Pc(0), epoch2), None);
    // Fresh activations see the live patch.
    assert_eq!(image.injected_at(Pc(100), epoch2), Some(&20));
}
