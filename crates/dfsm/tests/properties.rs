//! Property-based tests: the DFSM is exactly the subset construction of
//! the per-stream prefix-matching semantics.

use hds_dfsm::{build, DfsmConfig, Matcher, NfaOracle};
use hds_trace::{Addr, DataRef, Pc};
use proptest::prelude::*;

/// Strategy: a set of streams over a small reference alphabet (so heads
/// collide and share prefixes), plus a trace to drive the machine with.
fn small_ref(max: u32) -> impl Strategy<Value = DataRef> {
    (0..max).prop_map(|i| DataRef::new(Pc(i % 5), Addr(u64::from(i) * 8)))
}

fn streams_strategy() -> impl Strategy<Value = Vec<Vec<DataRef>>> {
    proptest::collection::vec(proptest::collection::vec(small_ref(8), 4..10), 1..6)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(160))]

    /// The DFSM matcher and the direct NFA-semantics oracle agree on
    /// every step of a random trace: same element sets, same prefetches.
    #[test]
    fn dfsm_equals_subset_construction(
        streams in streams_strategy(),
        trace in proptest::collection::vec(small_ref(8), 0..200),
        head_len in 1usize..4,
    ) {
        let dfsm = match build(&streams, &DfsmConfig::new(head_len)) {
            Ok(d) => d,
            Err(_) => return Ok(()), // short streams: rejected by contract
        };
        dfsm.verify().map_err(TestCaseError::fail)?;
        let mut matcher = Matcher::new(&dfsm);
        let mut oracle = NfaOracle::new(&dfsm);
        for &r in &trace {
            let got = matcher.observe(r).to_vec();
            let want = oracle.observe(r);
            prop_assert_eq!(&got, &want, "prefetch divergence on {}", r);
            prop_assert_eq!(
                dfsm.elements(matcher.state()),
                oracle.elements(),
                "element-set divergence on {}", r
            );
        }
    }

    /// Feeding a stream's own head from the start state always completes
    /// the match and prefetches its tail addresses.
    #[test]
    fn own_head_always_matches(
        streams in streams_strategy(),
        head_len in 1usize..4,
        pick in 0usize..6,
    ) {
        let dfsm = match build(&streams, &DfsmConfig::new(head_len)) {
            Ok(d) => d,
            Err(_) => return Ok(()),
        };
        let stream = &dfsm.streams()[pick % dfsm.streams().len()];
        let mut matcher = Matcher::new(&dfsm);
        let mut last: Vec<Addr> = Vec::new();
        for &r in stream.head() {
            last = matcher.observe(r).to_vec();
        }
        // The final head reference completes at least this stream, so
        // every one of its tail addresses is among the fired prefetches.
        for addr in stream.tail_addrs() {
            prop_assert!(last.contains(&addr), "missing prefetch of {}", addr);
        }
    }

    /// State count stays near headLen * n + 1 for streams with distinct
    /// references (the paper's empirical observation), and the machine
    /// always verifies.
    #[test]
    fn state_count_linear_for_distinct_refs(
        n in 1usize..12,
        head_len in 1usize..4,
    ) {
        let streams: Vec<Vec<DataRef>> = (0..n)
            .map(|k| {
                (0..(head_len + 3))
                    .map(|i| DataRef::new(
                        Pc((k * 100 + i) as u32),
                        Addr((k * 4096 + i * 8) as u64),
                    ))
                    .collect()
            })
            .collect();
        let dfsm = build(&streams, &DfsmConfig::new(head_len)).unwrap();
        dfsm.verify().map_err(TestCaseError::fail)?;
        prop_assert_eq!(dfsm.state_count(), head_len * n + 1);
        // Exact edge count for fully distinct references: the start state
        // has n edges; each of the n*(head_len-1) mid states has one
        // advance edge plus n restart edges; each of the n completed
        // states has n restart edges.
        let expected = n + n * (head_len - 1) * (n + 1) + n * n;
        prop_assert_eq!(dfsm.transition_count(), expected);
        // One address check per distinct head reference.
        prop_assert_eq!(dfsm.address_check_count(), head_len * n);
    }

    /// Construction is deterministic.
    #[test]
    fn build_deterministic(streams in streams_strategy(), head_len in 1usize..3) {
        let a = build(&streams, &DfsmConfig::new(head_len));
        let b = build(&streams, &DfsmConfig::new(head_len));
        match (a, b) {
            (Ok(x), Ok(y)) => {
                prop_assert_eq!(x.render(), y.render());
                prop_assert_eq!(x.state_count(), y.state_count());
            }
            (Err(x), Err(y)) => prop_assert_eq!(x, y),
            _ => prop_assert!(false, "one build failed, the other succeeded"),
        }
    }
}
