//! Hot data streams split into matchable head and prefetchable tail.

use std::fmt;

use hds_trace::{Addr, DataRef};

/// A hot data stream divided for prefetching: the optimizer "uses a fixed
/// constant `headLen` to divide each hot data stream `v` into a head
/// `v.head = v_1 … v_headLen` and a tail
/// `v.tail = v_{headLen+1} … v_{v.length}`. When it detects the data
/// references in `v.head`, it prefetches from the addresses of `v.tail`"
/// (§3.1).
///
/// # Examples
///
/// ```
/// use hds_dfsm::PrefetchStream;
/// use hds_trace::{Addr, DataRef, Pc};
///
/// let refs: Vec<DataRef> = (0..5)
///     .map(|i| DataRef::new(Pc(i), Addr(u64::from(i) * 0x10)))
///     .collect();
/// let stream = PrefetchStream::new(refs, 2).expect("long enough");
/// assert_eq!(stream.head().len(), 2);
/// assert_eq!(stream.tail_addrs().len(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PrefetchStream {
    refs: Vec<DataRef>,
    head_len: usize,
}

impl PrefetchStream {
    /// Splits a stream at `head_len`.
    ///
    /// Returns `None` when the stream is too short to be useful: the head
    /// must be complete (`refs.len() > head_len`) and the tail non-empty,
    /// otherwise a full prefix match would have nothing to prefetch.
    /// `head_len` must be at least 1.
    #[must_use]
    pub fn new(refs: Vec<DataRef>, head_len: usize) -> Option<Self> {
        if head_len == 0 || refs.len() <= head_len {
            return None;
        }
        Some(PrefetchStream { refs, head_len })
    }

    /// The full stream contents.
    #[must_use]
    pub fn refs(&self) -> &[DataRef] {
        &self.refs
    }

    /// The head: the prefix that must be matched before prefetching.
    #[must_use]
    pub fn head(&self) -> &[DataRef] {
        &self.refs[..self.head_len]
    }

    /// The tail: the references whose addresses are prefetched on a
    /// complete head match.
    #[must_use]
    pub fn tail(&self) -> &[DataRef] {
        &self.refs[self.head_len..]
    }

    /// The distinct addresses of the tail, in first-occurrence order —
    /// the paper's example issues `prefetch c.addr,a.addr,d.addr,e.addr`
    /// for stream `abacadae` (duplicate `a` collapsed).
    #[must_use]
    pub fn tail_addrs(&self) -> Vec<Addr> {
        let mut out: Vec<Addr> = Vec::with_capacity(self.tail().len());
        for r in self.tail() {
            if !out.contains(&r.addr) {
                out.push(r.addr);
            }
        }
        out
    }

    /// The configured head length.
    #[must_use]
    pub fn head_len(&self) -> usize {
        self.head_len
    }

    /// Stream length in references.
    #[must_use]
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Never true — construction rejects empty streams — but required for
    /// a well-behaved API alongside [`PrefetchStream::len`].
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }
}

impl fmt::Display for PrefetchStream {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "stream(len {}, head {}, tail {} addrs)",
            self.len(),
            self.head_len,
            self.tail_addrs().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use hds_trace::Pc;

    fn refs(s: &str) -> Vec<DataRef> {
        s.bytes()
            .map(|b| DataRef::new(Pc(u32::from(b)), Addr(u64::from(b))))
            .collect()
    }

    #[test]
    fn paper_example_tail_addrs() {
        // v = abacadae, headLen = 3: head aba, tail cadae,
        // prefetch c, a, d, e (deduplicated, order preserved).
        let v = PrefetchStream::new(refs("abacadae"), 3).unwrap();
        assert_eq!(v.head(), &refs("aba")[..]);
        assert_eq!(v.tail(), &refs("cadae")[..]);
        let addrs: Vec<u64> = v.tail_addrs().iter().map(|a| a.0).collect();
        assert_eq!(
            addrs,
            vec![
                u64::from(b'c'),
                u64::from(b'a'),
                u64::from(b'd'),
                u64::from(b'e')
            ]
        );
    }

    #[test]
    fn rejects_too_short_streams() {
        assert!(PrefetchStream::new(refs("ab"), 2).is_none()); // empty tail
        assert!(PrefetchStream::new(refs("a"), 2).is_none());
        assert!(PrefetchStream::new(refs(""), 1).is_none());
        assert!(PrefetchStream::new(refs("abc"), 0).is_none());
        assert!(PrefetchStream::new(refs("abc"), 2).is_some());
    }

    #[test]
    fn head_tail_partition() {
        let v = PrefetchStream::new(refs("abcdef"), 2).unwrap();
        let mut whole = v.head().to_vec();
        whole.extend_from_slice(v.tail());
        assert_eq!(whole, refs("abcdef"));
        assert_eq!(v.len(), 6);
        assert!(!v.is_empty());
        assert_eq!(v.head_len(), 2);
    }

    #[test]
    fn display_is_informative() {
        let v = PrefetchStream::new(refs("abcd"), 1).unwrap();
        assert_eq!(v.to_string(), "stream(len 4, head 1, tail 3 addrs)");
    }
}
