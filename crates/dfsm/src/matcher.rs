//! Drivers for the prefix-matching machine.
//!
//! [`Matcher`] is the production driver: O(log k) per observed reference
//! (binary search among a state's transitions — the injected code's
//! if-chain). [`NfaOracle`] recomputes the element set from scratch on
//! every step, directly from the paper's `d(s,a)` definition; it exists
//! so property tests can assert the DFSM is exactly the subset
//! construction of the per-stream matching semantics.

use hds_trace::{Addr, DataRef};

use crate::machine::{delta, Dfsm, StateId, StreamId};
use crate::stream::PrefetchStream;

/// The production matcher: drives a [`Dfsm`] over the data references
/// observed at instrumented pcs.
///
/// Feed it **every** execution of an instrumented pc, whatever address is
/// accessed — a non-matching reference resets the machine, exactly like
/// the `else { v.seen = 0; }` arms of the paper's Figure 7.
///
/// # Examples
///
/// ```
/// use hds_dfsm::{build, DfsmConfig, Matcher};
/// use hds_trace::{Addr, DataRef, Pc};
///
/// let stream: Vec<DataRef> = (0..4)
///     .map(|i| DataRef::new(Pc(i), Addr(u64::from(i) * 8)))
///     .collect();
/// let dfsm = build(&[stream.clone()], &DfsmConfig::new(2))?;
/// let mut matcher = Matcher::new(&dfsm);
/// assert!(matcher.observe(stream[0]).is_empty());
/// // Completing the head fires prefetches for the tail addresses.
/// assert_eq!(matcher.observe(stream[1]), &[Addr(16), Addr(24)]);
/// # Ok::<(), hds_dfsm::BuildError>(())
/// ```
#[derive(Clone, Debug)]
pub struct Matcher<'a> {
    dfsm: &'a Dfsm,
    state: StateId,
    completions: u64,
    observations: u64,
}

impl<'a> Matcher<'a> {
    /// Creates a matcher positioned at the start state.
    #[must_use]
    pub fn new(dfsm: &'a Dfsm) -> Self {
        Matcher {
            dfsm,
            state: StateId::START,
            completions: 0,
            observations: 0,
        }
    }

    /// Observes one data reference at an instrumented pc; returns the
    /// addresses to prefetch (usually empty).
    pub fn observe(&mut self, r: DataRef) -> &'a [Addr] {
        self.observations += 1;
        match self.dfsm.transition(self.state, r) {
            Some(next) => {
                self.state = next;
                let prefetches = self.dfsm.prefetches(next);
                if !prefetches.is_empty() {
                    self.completions += 1;
                }
                prefetches
            }
            None => {
                self.state = StateId::START;
                &[]
            }
        }
    }

    /// The current state.
    #[must_use]
    pub fn state(&self) -> StateId {
        self.state
    }

    /// Resets to the start state (used at optimization-cycle boundaries).
    pub fn reset(&mut self) {
        self.state = StateId::START;
    }

    /// Number of complete head matches observed so far.
    #[must_use]
    pub fn completions(&self) -> u64 {
        self.completions
    }

    /// Number of references observed so far.
    #[must_use]
    pub fn observations(&self) -> u64 {
        self.observations
    }
}

/// Reference oracle: simulates the nondeterministic element-set semantics
/// directly, recomputing `d(s,a)` from the stream definitions at every
/// step. Quadratic and allocation-happy — for tests only.
#[derive(Clone, Debug)]
pub struct NfaOracle {
    streams: Vec<PrefetchStream>,
    head_len: u32,
    elements: Vec<(StreamId, u32)>,
}

impl NfaOracle {
    /// Creates an oracle over the same streams and `headLen` as `dfsm`.
    #[must_use]
    pub fn new(dfsm: &Dfsm) -> Self {
        NfaOracle {
            streams: dfsm.streams().to_vec(),
            head_len: dfsm.head_len() as u32,
            elements: Vec::new(),
        }
    }

    /// Observes one reference; returns the deduplicated tail addresses of
    /// every stream whose head completed on this step.
    pub fn observe(&mut self, r: DataRef) -> Vec<Addr> {
        self.elements = delta(&self.streams, &self.elements, r, self.head_len);
        let mut out: Vec<Addr> = Vec::new();
        for &(v, n) in &self.elements {
            if n == self.head_len {
                for addr in self.streams[v.index()].tail_addrs() {
                    if !out.contains(&addr) {
                        out.push(addr);
                    }
                }
            }
        }
        out
    }

    /// The current element set (sorted).
    #[must_use]
    pub fn elements(&self) -> &[(StreamId, u32)] {
        &self.elements
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::build;
    use crate::machine::DfsmConfig;
    use hds_trace::Pc;

    fn refs(s: &str) -> Vec<DataRef> {
        s.bytes()
            .map(|b| DataRef::new(Pc(u32::from(b)), Addr(u64::from(b))))
            .collect()
    }

    #[test]
    fn matcher_completes_and_resets() {
        let dfsm = build(&[refs("abcde")], &DfsmConfig::new(2)).unwrap();
        let mut m = Matcher::new(&dfsm);
        let (a, b, z) = (refs("a")[0], refs("b")[0], refs("z")[0]);
        assert!(m.observe(a).is_empty());
        assert_eq!(m.observe(b).len(), 3); // tail cde
        assert_eq!(m.completions(), 1);
        // Unknown ref resets.
        assert!(m.observe(z).is_empty());
        assert_eq!(m.state(), StateId::START);
        // Match again.
        m.observe(a);
        assert_eq!(m.observe(b).len(), 3);
        assert_eq!(m.completions(), 2);
        assert_eq!(m.observations(), 5);
    }

    #[test]
    fn matcher_partial_then_fail() {
        let dfsm = build(&[refs("abcd")], &DfsmConfig::new(3)).unwrap();
        let mut m = Matcher::new(&dfsm);
        m.observe(refs("a")[0]);
        m.observe(refs("b")[0]);
        // 'a' is not v3 (= c) but restarts the prefix.
        assert!(m.observe(refs("a")[0]).is_empty());
        assert_eq!(dfsm.elements(m.state()), &[(StreamId(0), 1)]);
    }

    #[test]
    fn oracle_agrees_on_fig8_walk() {
        let streams = vec![refs("abacadae"), refs("bbghij")];
        let dfsm = build(&streams, &DfsmConfig::new(3)).unwrap();
        let mut m = Matcher::new(&dfsm);
        let mut oracle = NfaOracle::new(&dfsm);
        for r in refs("ababbgababahbbghbb") {
            let got = m.observe(r).to_vec();
            let want = oracle.observe(r);
            assert_eq!(got, want, "divergence on {r}");
            assert_eq!(dfsm.elements(m.state()), oracle.elements());
        }
    }

    #[test]
    fn reset_returns_to_start() {
        let dfsm = build(&[refs("abc")], &DfsmConfig::new(1)).unwrap();
        let mut m = Matcher::new(&dfsm);
        m.observe(refs("a")[0]);
        assert_ne!(m.state(), StateId::START);
        m.reset();
        assert_eq!(m.state(), StateId::START);
    }

    #[test]
    fn head_len_one_fires_immediately() {
        let dfsm = build(&[refs("abcd")], &DfsmConfig::new(1)).unwrap();
        let mut m = Matcher::new(&dfsm);
        assert_eq!(m.observe(refs("a")[0]).len(), 3);
    }
}
